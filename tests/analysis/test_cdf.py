"""Tests for repro.analysis.cdf, including hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cdf import ECDF

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestBasics:
    def test_len(self):
        assert len(ECDF([1, 2, 3])) == 3

    def test_fraction_below(self):
        cdf = ECDF([1, 2, 3, 4])
        assert cdf.fraction_below(2) == 0.5
        assert cdf.fraction_below(0) == 0.0
        assert cdf.fraction_below(4) == 1.0

    def test_fraction_strictly_below(self):
        cdf = ECDF([1, 2, 2, 3])
        assert cdf.fraction_strictly_below(2) == 0.25

    def test_fraction_at_spike(self):
        # The §3.3 capping plateau: a spike exactly at 21599.
        cdf = ECDF([21599] * 15 + [300] * 85)
        assert cdf.fraction_at(21599) == pytest.approx(0.15)

    def test_quantiles(self):
        cdf = ECDF(range(1, 101))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(0.95) == 95
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 100

    def test_median_property(self):
        assert ECDF([1, 2, 3]).median == 2

    def test_min_max_mean(self):
        cdf = ECDF([4, 1, 7])
        assert (cdf.min, cdf.max) == (1, 7)
        assert cdf.mean == 4

    def test_empty_raises(self):
        cdf = ECDF([])
        with pytest.raises(ValueError):
            cdf.quantile(0.5)
        with pytest.raises(ValueError):
            cdf.fraction_below(1)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            ECDF([1]).quantile(1.5)

    def test_describe(self):
        described = ECDF([1, 2, 3, 4]).describe()
        assert described["n"] == 4
        assert "p50" in described and "p99" in described


class TestPoints:
    def test_points_end_at_one(self):
        points = ECDF([5, 1, 3]).points()
        assert points[-1] == (5, 1.0)

    def test_points_downsampled(self):
        points = ECDF(range(10000)).points(max_points=100)
        assert len(points) <= 102

    def test_points_empty(self):
        assert ECDF([]).points() == []


@given(samples)
def test_cdf_monotone_nondecreasing(values):
    cdf = ECDF(values)
    points = cdf.points()
    ys = [y for _, y in points]
    xs = [x for x, _ in points]
    assert ys == sorted(ys)
    assert xs == sorted(xs)


@given(samples, st.floats(min_value=0, max_value=1))
def test_quantile_within_range(values, q):
    cdf = ECDF(values)
    assert cdf.min <= cdf.quantile(q) <= cdf.max


@given(samples)
def test_fraction_below_max_is_one(values):
    cdf = ECDF(values)
    assert cdf.fraction_below(cdf.max) == 1.0


@given(samples, st.floats(allow_nan=False, min_value=-1e6, max_value=1e6))
def test_fraction_below_in_unit_interval(values, x):
    assert 0.0 <= ECDF(values).fraction_below(x) <= 1.0


@given(samples)
def test_quantile_consistent_with_fraction(values):
    cdf = ECDF(values)
    median = cdf.quantile(0.5)
    assert cdf.fraction_below(median) >= 0.5
