"""Tests for repro.analysis.tables."""

import pytest

from repro.analysis.tables import (
    Table,
    fraction,
    paper_vs_measured,
    render_cdf,
    render_timeseries,
)


class TestTable:
    def test_render_aligns_columns(self):
        table = Table(["name", "value"], title="demo")
        table.add_row("a", 1)
        table.add_row("longer-name", 22)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_wrong_arity_rejected(self):
        table = Table(["one"])
        with pytest.raises(ValueError):
            table.add_row("a", "b")

    def test_str(self):
        table = Table(["x"])
        table.add_row("1")
        assert "x" in str(table)


class TestRenderCdf:
    def test_quantile_columns(self):
        rendered = render_cdf({"series": [1, 2, 3, 4, 5]}, title="t")
        assert "p50" in rendered and "series" in rendered

    def test_empty_series_dashes(self):
        rendered = render_cdf({"empty": []})
        assert "-" in rendered

    def test_multiple_series(self):
        rendered = render_cdf({"a": [1], "b": [2]})
        assert "a" in rendered and "b" in rendered


class TestRenderTimeseries:
    def test_bars_present(self):
        rendered = render_timeseries(
            {"old": {0: 10, 1: 5}, "new": {1: 5, 2: 10}}, bin_seconds=600
        )
        assert "t=" in rendered
        assert "#" in rendered and "*" in rendered
        assert "old:10" in rendered

    def test_empty(self):
        assert "(no data)" in render_timeseries({}, title="x")


class TestRenderCdfPlot:
    def test_shape(self):
        from repro.analysis.tables import render_cdf_plot

        rendered = render_cdf_plot({"s": [1, 10, 100, 1000]}, height=8, width=30)
        lines = rendered.splitlines()
        assert lines[1].startswith("#=s")
        assert sum(1 for line in lines if "|" in line) == 8
        assert "(log x)" in lines[-1]

    def test_multiple_series_markers(self):
        from repro.analysis.tables import render_cdf_plot

        rendered = render_cdf_plot({"a": [1, 2], "b": [100, 200]})
        assert "#" in rendered and "*" in rendered

    def test_linear_axis(self):
        from repro.analysis.tables import render_cdf_plot

        rendered = render_cdf_plot({"s": [0, 5, 10]}, log_x=False)
        assert "(log x)" not in rendered

    def test_empty(self):
        from repro.analysis.tables import render_cdf_plot

        assert "(no data)" in render_cdf_plot({"s": []})

    def test_monotone_columns(self):
        """The plotted curve never decreases left to right."""
        from repro.analysis.tables import render_cdf_plot

        rendered = render_cdf_plot({"s": list(range(1, 200))}, height=10, width=40)
        rows = [line.split("|")[1] for line in rendered.splitlines() if "|" in line]
        # For each column, find the topmost marker; it must descend (or
        # stay) as x grows — i.e. the curve's height is non-decreasing.
        heights = []
        for column in range(40):
            top = next(
                (i for i in range(10) if rows[i][column] == "#"), 10
            )
            heights.append(10 - top)
        assert heights == sorted(heights)


class TestHelpers:
    def test_fraction(self):
        assert fraction(0.123) == "12.3%"

    def test_paper_vs_measured(self):
        rendered = paper_vs_measured("T1", [("metric", "90%", "88%")])
        assert "paper" in rendered and "measured" in rendered and "T1" in rendered
