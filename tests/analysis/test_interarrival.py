"""Tests for repro.analysis.interarrival."""

import pytest

from repro.analysis.interarrival import (
    filter_retransmissions,
    hourly_bumps,
    interarrivals,
    min_interarrival_per_group,
    queries_per_group,
)


class TestInterarrivals:
    def test_gaps(self):
        assert interarrivals([0.0, 10.0, 25.0]) == [10.0, 15.0]

    def test_single_sample_no_gaps(self):
        assert interarrivals([5.0]) == []

    def test_empty(self):
        assert interarrivals([]) == []


class TestRetransmissionFilter:
    def test_drops_close_repeats(self):
        # Paper Figure 3: queries within 2 s are retransmissions.
        assert filter_retransmissions([0.0, 1.0, 1.5, 10.0]) == [0.0, 10.0]

    def test_keeps_spaced(self):
        assert filter_retransmissions([0.0, 3.0, 6.0]) == [0.0, 3.0, 6.0]

    def test_custom_threshold(self):
        assert filter_retransmissions([0.0, 4.0], threshold=5.0) == [0.0]


class TestQueriesPerGroup:
    def test_counts(self):
        groups = {("r1", "n"): [0.0], ("r2", "n"): [0.0, 1.0, 2.0]}
        assert sorted(queries_per_group(groups)) == [1, 3]

    def test_filtered_counts(self):
        groups = {("r", "n"): [0.0, 0.5, 10.0]}
        assert queries_per_group(groups, filter_retrans=True) == [2]

    def test_paper_observation_filtering_changes_little(self):
        # §3.4: the filtered and unfiltered curves are "essentially
        # identical" when queries are well spaced.
        groups = {("r", i): [float(j * 3600) for j in range(5)] for i in range(10)}
        assert queries_per_group(groups) == queries_per_group(groups, filter_retrans=True)


class TestMinInterarrival:
    def test_minimum_per_group(self):
        groups = {
            ("r1", "n"): [0.0, 3600.0, 3700.0],
            ("r2", "n"): [0.0],
        }
        assert min_interarrival_per_group(groups) == [100.0]

    def test_empty(self):
        assert min_interarrival_per_group({}) == []


class TestHourlyBumps:
    def test_detects_hour_multiples(self):
        minima = [3600.0, 3610.0, 7150.0, 7300.0, 5000.0]
        bumps = hourly_bumps(minima)
        assert bumps[1] == 2
        assert bumps[2] == 2
        assert 5000.0 / 3600 not in bumps

    def test_tolerance(self):
        assert hourly_bumps([3600 * 1.04]) == {1: 1}
        assert hourly_bumps([3600 * 1.2]) == {}

    def test_ignores_sub_hour(self):
        assert hourly_bumps([100.0, 900.0]) == {}
