"""Tests for repro.analysis.latencystats."""

import pytest

from repro.analysis.latencystats import (
    improvement_factor,
    latency_summary,
    regional_summaries,
)
from repro.net.topology import Region


class TestSummary:
    def test_quantiles(self):
        summary = latency_summary(range(1, 101))
        assert summary.median == 50
        assert summary.p95 == 95
        assert summary.n == 100

    def test_empty_returns_none(self):
        assert latency_summary([]) is None

    def test_as_row_formats(self):
        row = latency_summary([10.0, 20.0, 30.0]).as_row()
        assert row[0] == "3"
        assert all(isinstance(cell, str) for cell in row)


class TestRegional:
    def test_per_region(self):
        data = {Region.EU: [10.0, 20.0], Region.SA: [100.0, 200.0]}
        summaries = regional_summaries(data)
        assert summaries[Region.EU].median < summaries[Region.SA].median

    def test_missing_regions_skipped(self):
        summaries = regional_summaries({Region.EU: [10.0]})
        assert Region.AF not in summaries


class TestImprovement:
    def test_uy_style_improvement(self):
        # §5.3: median 183 ms → 28.7 ms ≈ 6.4×.
        factor = improvement_factor([183.0] * 10, [28.7] * 10)
        assert factor == pytest.approx(183.0 / 28.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            improvement_factor([], [1.0])

    def test_zero_after_is_infinite(self):
        assert improvement_factor([5.0], [0.0]) == float("inf")
