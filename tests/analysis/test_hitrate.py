"""Tests for repro.analysis.hitrate (the Jung et al. cache model)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.hitrate import (
    analytic_hit_rate,
    diminishing_returns_ttl,
    hit_rate_curve,
    latency_model,
    simulate_hit_rate,
)


class TestAnalytic:
    def test_zero_ttl_never_hits(self):
        assert analytic_hit_rate(1.0, 0.0) == 0.0

    def test_monotone_in_ttl(self):
        rates = [analytic_hit_rate(0.01, ttl) for ttl in (60, 300, 3600, 86400)]
        assert rates == sorted(rates)

    def test_known_point(self):
        # λT = 1 → hit rate 1/2.
        assert analytic_hit_rate(1 / 300, 300) == pytest.approx(0.5)

    def test_production_band(self):
        # Paper §7 (Moura et al. 2018): ~70 % hit rates for TTLs
        # 1800–86400 s at production query rates.
        rate = 20 / 3600.0  # a modestly popular name at one resolver
        assert analytic_hit_rate(rate, 1800) > 0.7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            analytic_hit_rate(-1.0, 10)


class TestSimulation:
    def test_matches_analytic(self):
        rate = 0.02
        for ttl in (60, 600, 3600):
            simulated = simulate_hit_rate(rate, ttl, duration=500000, seed=3)
            analytic = analytic_hit_rate(rate, ttl)
            assert abs(simulated - analytic) < 0.05

    def test_zero_rate(self):
        assert simulate_hit_rate(0.0, 300) == 0.0

    def test_deterministic(self):
        a = simulate_hit_rate(0.01, 300, seed=7)
        b = simulate_hit_rate(0.01, 300, seed=7)
        assert a == b


class TestDerived:
    def test_curve_shape(self):
        curve = hit_rate_curve([60, 600, 3600], 0.01)
        assert [ttl for ttl, _ in curve] == [60, 600, 3600]
        assert curve[0][1] < curve[-1][1]

    def test_diminishing_returns_jung_observation(self):
        # Jung et al.: TTLs beyond ~1000 s reap little extra benefit, at
        # the query rates their traces show (tens per hour per name).
        knee = diminishing_returns_ttl(arrival_rate=30 / 3600.0)
        assert knee < 1200

    def test_diminishing_returns_validation(self):
        with pytest.raises(ValueError):
            diminishing_returns_ttl(0.0)
        with pytest.raises(ValueError):
            diminishing_returns_ttl(1.0, target_fraction=1.5)

    def test_latency_model_interpolates(self):
        fast = latency_model(0.01, 86400, hit_latency_ms=1, miss_latency_ms=100)
        slow = latency_model(0.01, 60, hit_latency_ms=1, miss_latency_ms=100)
        assert 1 <= fast < slow <= 100


@given(
    st.floats(min_value=1e-6, max_value=1.0),
    st.floats(min_value=0.0, max_value=1e6),
)
def test_hit_rate_in_unit_interval(rate, ttl):
    assert 0.0 <= analytic_hit_rate(rate, ttl) < 1.0


@given(
    st.floats(min_value=1e-6, max_value=1.0),
    st.floats(min_value=0.0, max_value=1e5),
    st.floats(min_value=1.0, max_value=1e5),
)
def test_hit_rate_monotone(rate, ttl, extra):
    assert analytic_hit_rate(rate, ttl + extra) >= analytic_hit_rate(rate, ttl)
