"""Tests for repro.analysis.centricity."""

import pytest

from repro.analysis.centricity import (
    classify_active_ttls,
    classify_capped_or_child,
    classify_passive_groups,
    sticky_vps,
)


class TestActiveClassification:
    def test_uy_style(self):
        # Parent 172800, child 300: answers ≤300 are child-centric.
        ttls = [300, 250, 10, 172800, 171000, 21599]
        breakdown = classify_active_ttls(ttls, parent_ttl=172800, child_ttl=300)
        assert breakdown.child == 3
        assert breakdown.parent == 2
        assert breakdown.capped == 1
        assert breakdown.full_parent_ttl == 1

    def test_fractions(self):
        breakdown = classify_active_ttls([300] * 9 + [172800], 172800, 300)
        assert breakdown.child_fraction == pytest.approx(0.9)
        assert breakdown.parent_fraction == pytest.approx(0.1)

    def test_above_parent_is_other(self):
        breakdown = classify_active_ttls([200000], 172800, 300)
        assert breakdown.other == 1

    def test_requires_child_below_parent(self):
        with pytest.raises(ValueError):
            classify_active_ttls([1], parent_ttl=300, child_ttl=900)

    def test_as_dict(self):
        d = classify_active_ttls([300], 172800, 300).as_dict()
        assert d["total"] == 1 and d["child"] == 1.0


class TestGoogleCoClassification:
    def test_fig2_shape(self):
        # Parent 900, child 345600: >900 child, ==21599 capped, ==900 parent.
        ttls = [345600] * 7 + [21599] * 2 + [900]
        breakdown = classify_capped_or_child(ttls, parent_ttl=900, child_ttl=345600)
        assert breakdown.child == 7
        assert breakdown.capped == 2
        assert breakdown.parent == 1
        assert breakdown.full_parent_ttl == 1

    def test_requires_child_above_parent(self):
        with pytest.raises(ValueError):
            classify_capped_or_child([1], parent_ttl=900, child_ttl=300)


class TestPassiveClassification:
    def test_multi_vs_single(self):
        groups = {
            ("10.0.0.1", "ns1"): [0.0, 3600.0],
            ("10.0.0.2", "ns1"): [5.0],
            ("10.0.0.2", "ns2"): [1.0, 2000.0, 9000.0],
        }
        breakdown = classify_passive_groups(groups)
        assert breakdown.groups == 3
        assert breakdown.multi_query_groups == 2
        assert breakdown.single_query_groups == 1
        # 10.0.0.2 is single for ns1 but multi for ns2 → child elsewhere.
        assert breakdown.single_but_child_elsewhere == 1

    def test_fractions(self):
        groups = {("r", i): [0.0] for i in range(48)}
        groups.update({("s", i): [0.0, 1.0] for i in range(52)})
        breakdown = classify_passive_groups(groups)
        assert breakdown.multi_fraction == pytest.approx(0.52)
        assert breakdown.single_fraction == pytest.approx(0.48)

    def test_empty(self):
        breakdown = classify_passive_groups({})
        assert breakdown.groups == 0
        assert breakdown.multi_fraction == 0.0


class TestSticky:
    def test_sticky_definition(self):
        per_vp = {
            "vp-old-only": [(10.0, ("old",)), (700.0, ("old",))],
            "vp-switched": [(10.0, ("old",)), (700.0, ("new",))],
            "vp-late-starter": [(900.0, ("old",))],
        }
        sticky = sticky_vps(per_vp, old_answer="old", first_round_end=600.0)
        assert sticky == {"vp-old-only"}

    def test_empty_rows_ignored(self):
        assert sticky_vps({"vp": []}, "old", 600.0) == set()
