"""Tests for the refresh-ahead scheduler: ordering, budget, backoff."""

import pytest

from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.metrics import MetricsRegistry
from repro.predict import RefreshScheduler


class Recorder:
    """A refresh callback that logs calls and returns scripted results."""

    def __init__(self, fail=()):
        self.calls = []
        self.fail = set(fail)

    def __call__(self, qname, qtype, when):
        self.calls.append((str(qname), qtype, when))
        return str(qname) not in self.fail


def name(label):
    return Name(f"{label}.example.")


class TestOrdering:
    def test_jobs_run_in_due_order(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder)
        scheduler.schedule(name("b"), RdataType.A, due=20.0)
        scheduler.schedule(name("a"), RdataType.A, due=10.0)
        assert scheduler.pump(30.0) == 2
        assert [call[0] for call in recorder.calls] == ["a.example.", "b.example."]

    def test_jobs_run_backdated_to_due_time(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder)
        scheduler.schedule(name("a"), RdataType.A, due=10.0)
        scheduler.pump(400.0)
        assert recorder.calls == [("a.example.", RdataType.A, 10.0)]

    def test_future_jobs_wait(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder)
        scheduler.schedule(name("a"), RdataType.A, due=50.0)
        assert scheduler.pump(49.9) == 0
        assert scheduler.pump(50.0) == 1

    def test_submission_order_breaks_ties(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder)
        scheduler.schedule(name("z"), RdataType.A, due=10.0)
        scheduler.schedule(name("a"), RdataType.A, due=10.0)
        scheduler.pump(10.0)
        assert [call[0] for call in recorder.calls] == ["z.example.", "a.example."]


class TestDedupe:
    def test_one_job_per_key(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder)
        for _ in range(5):
            scheduler.schedule(name("a"), RdataType.A, due=10.0)
        assert len(scheduler) == 1
        assert scheduler.pump(10.0) == 1

    def test_resubmission_only_moves_earlier(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder)
        scheduler.schedule(name("a"), RdataType.A, due=10.0)
        assert not scheduler.schedule(name("a"), RdataType.A, due=20.0)
        assert scheduler.schedule(name("a"), RdataType.A, due=5.0)
        scheduler.pump(30.0)
        assert recorder.calls == [("a.example.", RdataType.A, 5.0)]

    def test_cancel(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder)
        scheduler.schedule(name("a"), RdataType.A, due=10.0)
        scheduler.cancel(name("a"), RdataType.A)
        assert scheduler.pump(10.0) == 0

    def test_types_are_distinct_keys(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder)
        scheduler.schedule(name("a"), RdataType.A, due=10.0)
        scheduler.schedule(name("a"), RdataType.AAAA, due=10.0)
        assert scheduler.pump(10.0) == 2


class TestBudget:
    def test_burst_caps_simultaneous_refreshes(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(
            recorder, max_refresh_per_s=0.001, refresh_burst=2
        )
        for index in range(5):
            scheduler.schedule(name(f"k{index}"), RdataType.A, due=10.0)
        assert scheduler.pump(10.0) == 2  # bucket depth, rest suppressed

    def test_tokens_refill_over_time(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder, max_refresh_per_s=1.0, refresh_burst=1)
        scheduler.schedule(name("a"), RdataType.A, due=0.0)
        assert scheduler.pump(0.0) == 1
        scheduler.schedule(name("b"), RdataType.A, due=0.5)
        assert scheduler.pump(0.5) == 0  # only half a token back
        scheduler.schedule(name("b"), RdataType.A, due=1.5)
        assert scheduler.pump(1.5) == 1

    def test_suppressed_jobs_are_dropped_not_queued(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(
            recorder, max_refresh_per_s=0.001, refresh_burst=1
        )
        scheduler.schedule(name("a"), RdataType.A, due=10.0)
        scheduler.schedule(name("b"), RdataType.A, due=10.0)
        scheduler.pump(10.0)
        assert len(scheduler) == 0  # the over-budget job did not linger

    def test_unbudgeted_when_rate_is_none(self):
        recorder = Recorder()
        scheduler = RefreshScheduler(recorder)
        for index in range(50):
            scheduler.schedule(name(f"k{index}"), RdataType.A, due=0.0)
        assert scheduler.pump(0.0) == 50

    def test_total_volume_bounded_by_rate_times_duration(self):
        recorder = Recorder()
        rate, burst, duration = 2.0, 3, 100.0
        scheduler = RefreshScheduler(
            recorder, max_refresh_per_s=rate, refresh_burst=burst
        )
        executed = 0
        at = 0.0
        while at <= duration:
            for index in range(10):
                scheduler.schedule(name(f"k{index}"), RdataType.A, due=at)
            executed += scheduler.pump(at)
            at += 1.0
        assert executed <= rate * duration + burst


class TestFailureBackoff:
    def test_failed_key_backs_off(self):
        recorder = Recorder(fail={"a.example."})
        scheduler = RefreshScheduler(recorder, failure_backoff_s=30.0)
        scheduler.schedule(name("a"), RdataType.A, due=0.0)
        scheduler.pump(0.0)
        # Resubmitted inside the backoff window: clamped to t=30.
        scheduler.schedule(name("a"), RdataType.A, due=1.0)
        assert scheduler.pump(29.9) == 0
        assert scheduler.pump(30.0) == 1

    def test_backoff_doubles_and_caps(self):
        recorder = Recorder(fail={"a.example."})
        scheduler = RefreshScheduler(
            recorder, failure_backoff_s=10.0, failure_backoff_cap_s=25.0
        )
        at = 0.0
        for expected_gap in (10.0, 20.0, 25.0, 25.0):
            scheduler.schedule(name("a"), RdataType.A, due=at)
            assert scheduler.pump(at) == 1
            scheduler.schedule(name("a"), RdataType.A, due=at)
            assert scheduler.pump(at + expected_gap - 0.1) == 0
            at += expected_gap

    def test_success_clears_backoff(self):
        recorder = Recorder(fail={"a.example."})
        scheduler = RefreshScheduler(recorder, failure_backoff_s=30.0)
        scheduler.schedule(name("a"), RdataType.A, due=0.0)
        scheduler.pump(0.0)
        recorder.fail.clear()  # upstream recovered
        scheduler.schedule(name("a"), RdataType.A, due=10.0)
        assert scheduler.pump(30.0) == 1  # ran at the backoff deadline
        scheduler.schedule(name("a"), RdataType.A, due=31.0)
        assert scheduler.pump(31.0) == 1  # no residual backoff


class TestMetrics:
    def test_counters(self):
        registry = MetricsRegistry()
        recorder = Recorder(fail={"bad.example."})
        scheduler = RefreshScheduler(
            recorder,
            max_refresh_per_s=0.001,
            refresh_burst=2,
            metrics=registry,
        )
        scheduler.schedule(name("good"), RdataType.A, due=0.0, expires_at=5.0)
        scheduler.schedule(name("bad"), RdataType.A, due=0.0)
        scheduler.schedule(name("extra"), RdataType.A, due=0.0)
        scheduler.schedule(name("reval"), RdataType.A, due=0.0, kind="revalidate")
        scheduler.pump(0.0)
        snapshot = registry.snapshot()
        assert snapshot.value("predict.refreshes") == 2
        assert snapshot.value("predict.refresh_suppressed") == 2
        assert snapshot.value("predict.refresh_failures") == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RefreshScheduler(Recorder(), refresh_burst=0)
