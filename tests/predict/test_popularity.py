"""Tests for the space-saving popularity tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predict import PopularityTracker


class TestRecording:
    def test_counts_arrivals(self):
        tracker = PopularityTracker(capacity=4)
        tracker.record("a", 0.0)
        tracker.record("a", 1.0)
        tracker.record("b", 2.0)
        assert tracker.count("a") == 2
        assert tracker.count("b") == 1
        assert tracker.count("zzz") == 0

    def test_bounded_at_capacity(self):
        tracker = PopularityTracker(capacity=3)
        for index in range(50):
            tracker.record(f"key{index}", float(index))
        assert len(tracker) == 3

    def test_eviction_keeps_the_heavy_hitter(self):
        tracker = PopularityTracker(capacity=2)
        for at in range(10):
            tracker.record("hot", float(at))
        tracker.record("one", 10.0)
        tracker.record("two", 11.0)  # evicts "one", not "hot"
        assert "hot" in tracker
        assert "one" not in tracker

    def test_inherited_count_carries_error(self):
        tracker = PopularityTracker(capacity=1, min_hits=2)
        tracker.record("a", 0.0)
        tracker.record("a", 1.0)
        tracker.record("b", 2.0)  # inherits a's count of 2
        assert tracker.count("b") == 3
        assert tracker.guaranteed_count("b") == 1  # only one provable arrival
        assert not tracker.is_hot("b")


class TestHotness:
    def test_hot_after_min_hits(self):
        tracker = PopularityTracker(capacity=4, min_hits=3)
        tracker.record("a", 0.0)
        tracker.record("a", 1.0)
        assert not tracker.is_hot("a")
        tracker.record("a", 2.0)
        assert tracker.is_hot("a")

    def test_hot_keys_admission_order(self):
        tracker = PopularityTracker(capacity=4, min_hits=2)
        for key in ("b", "a", "b", "a", "c"):
            tracker.record(key, 0.0)
        assert list(tracker.hot_keys()) == ["b", "a"]

    def test_rate_is_guaranteed_arrivals_per_second(self):
        tracker = PopularityTracker(capacity=4)
        for at in range(10):
            tracker.record("a", float(at))
        assert tracker.rate("a", now=10.0) == pytest.approx(1.0)
        assert tracker.rate("nope", now=10.0) == 0.0


class TestDeterminism:
    def test_same_sequence_same_state(self):
        sequence = [f"key{(index * 7) % 5}" for index in range(200)]
        one = PopularityTracker(capacity=3)
        two = PopularityTracker(capacity=3)
        for at, key in enumerate(sequence):
            one.record(key, float(at))
            two.record(key, float(at))
        assert one.snapshot() == two.snapshot()

    def test_heap_compaction_is_invisible(self):
        tracker = PopularityTracker(capacity=2)
        for index in range(1000):  # far past the compaction threshold
            tracker.record(f"key{index % 3}", float(index))
        assert len(tracker) == 2
        assert sum(tracker.count(f"key{i}") for i in range(3)) >= 1000 // 3


class TestSnapshotMerge:
    def test_merge_sums_counts(self):
        one = PopularityTracker(capacity=4)
        two = PopularityTracker(capacity=4)
        for at in range(3):
            one.record("a", float(at))
        for at in range(2):
            two.record("a", float(10 + at))
        two.record("b", 12.0)
        one.merge(two.snapshot())
        assert one.count("a") == 5
        assert one.count("b") == 1

    def test_merge_trims_to_capacity(self):
        one = PopularityTracker(capacity=2)
        two = PopularityTracker(capacity=2)
        one.record("a", 0.0)
        one.record("a", 1.0)
        two.record("b", 0.0)
        two.record("c", 1.0)
        one.merge(two.snapshot())
        assert len(one) == 2
        assert "a" in one  # the heaviest key survives the trim

    def test_merge_takes_earliest_first_seen(self):
        one = PopularityTracker(capacity=4)
        two = PopularityTracker(capacity=4)
        one.record("a", 5.0)
        one.record("a", 6.0)
        two.record("a", 1.0)
        two.record("a", 2.0)
        one.merge(two.snapshot())
        # 4 guaranteed arrivals since t=1 → rate uses the earlier stamp.
        assert one.rate("a", now=5.0) == pytest.approx(1.0)


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PopularityTracker(capacity=0)

    def test_rejects_bad_min_hits(self):
        with pytest.raises(ValueError):
            PopularityTracker(capacity=1, min_hits=0)

    def test_clear(self):
        tracker = PopularityTracker(capacity=4)
        tracker.record("a", 0.0)
        tracker.clear()
        assert len(tracker) == 0
        assert tracker.count("a") == 0


class TestAging:
    def test_age_halves_counts_and_errors(self):
        tracker = PopularityTracker(capacity=2)
        for at in range(8):
            tracker.record("hot", float(at))
        tracker.record("one", 10.0)
        tracker.record("two", 11.0)  # evicts "one"; "two" inherits error 1
        assert tracker.count("two") == 2
        dropped = tracker.age(100.0)
        assert dropped == 0
        assert tracker.count("hot") == 4
        assert tracker.count("two") == 1
        assert tracker.guaranteed_count("two") == 1  # error 1 // 2 == 0

    def test_age_drops_keys_that_reach_zero(self):
        tracker = PopularityTracker(capacity=4)
        tracker.record("once", 0.0)
        tracker.record("twice", 0.0)
        tracker.record("twice", 1.0)
        dropped = tracker.age(10.0)
        assert dropped == 1
        assert "once" not in tracker
        assert "twice" in tracker
        assert tracker.count("twice") == 1

    def test_window_triggers_aging_from_record(self):
        tracker = PopularityTracker(capacity=4, window_s=60.0)
        tracker.record("a", 0.0)
        tracker.record("a", 1.0)
        tracker.record("a", 2.0)
        tracker.record("b", 59.9)  # within the window: no decay yet
        assert tracker.count("a") == 3
        tracker.record("b", 60.0)  # boundary: halve, then count the arrival
        assert tracker.count("a") == 1
        assert tracker.count("b") == 1  # old 1 // 2 == 0 dropped, re-admitted
        assert tracker.guaranteed_count("b") == 1

    def test_no_window_never_decays(self):
        tracker = PopularityTracker(capacity=4)
        tracker.record("a", 0.0)
        tracker.record("a", 1e9)
        assert tracker.count("a") == 2

    def test_aging_keeps_eviction_order_sane(self):
        """After the heap rebuild, the minimum-count key is still the
        one evicted when a newcomer arrives at capacity."""
        tracker = PopularityTracker(capacity=2)
        for at in range(9):
            tracker.record("hot", float(at))
        tracker.record("warm", 10.0)
        tracker.record("warm", 11.0)
        tracker.age(20.0)  # hot: 4, warm: 1
        tracker.record("new", 21.0)  # must evict "warm", not "hot"
        assert "hot" in tracker
        assert "warm" not in tracker

    def test_clear_resets_window(self):
        tracker = PopularityTracker(capacity=4, window_s=10.0)
        tracker.record("a", 0.0)
        tracker.clear()
        tracker.record("b", 1000.0)  # fresh window starts here, no age yet
        assert tracker.count("b") == 1
        tracker.record("b", 1005.0)
        assert tracker.count("b") == 2

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            PopularityTracker(capacity=4, window_s=0.0)


arrival_keys = st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h"])

events = st.lists(
    st.one_of(arrival_keys, st.just("<age>")), min_size=0, max_size=60
)


class TestAgingProperties:
    @given(events=events)
    @settings(max_examples=200, deadline=None)
    def test_aging_never_resurrects_or_promotes(self, events):
        """Replaying arrivals interleaved with agings: aging only ever
        shrinks — no evicted key reappears, capacity holds, no key's
        guaranteed count grows, and bounds stay non-negative."""
        tracker = PopularityTracker(capacity=3, min_hits=2)
        now = 0.0
        for event in events:
            now += 1.0
            if event == "<age>":
                before = {
                    key: tracker.guaranteed_count(key)
                    for key, _, _, _ in tracker.snapshot()
                }
                tracked_before = set(before)
                tracker.age(now)
                tracked_after = {key for key, _, _, _ in tracker.snapshot()}
                assert tracked_after <= tracked_before
                for key in tracked_after:
                    assert tracker.guaranteed_count(key) <= before[key]
            else:
                tracker.record(event, now)
            assert len(tracker) <= tracker.capacity
            for key, count, error, _ in tracker.snapshot():
                assert count >= 1
                assert error >= 0
                assert count - error >= 0
