"""Faulted campaigns honour the runner's determinism contract.

Serial (``--parallel 1``) and parallel (``--parallel 4``) executions of
the same faulted campaign must produce identical results and
byte-identical sim-domain metrics JSON, and a checkpointed run must
replay the exact fault schedule (a changed plan is a different campaign).
"""

import filecmp

import pytest

from repro.cli import main
from repro.core.scenarios import scenario_ddos_resilience, scenario_uy_ns
from repro.faults import FaultPlan, FaultSpec
from repro.runner.checkpoint import CheckpointMismatch


def loss_plan(rate=0.4) -> FaultPlan:
    return FaultPlan(
        faults=(
            FaultSpec(kind="loss", start=0.0, duration=3600.0, rate=rate),
            FaultSpec(kind="servfail", start=600.0, duration=600.0),
        ),
        name="det-test",
        seed=3,
    )


class TestScenarioIdentity:
    def test_ddos_serial_vs_parallel(self):
        serial = scenario_ddos_resilience(ttls=(300, 3600), parallelism=1)
        parallel = scenario_ddos_resilience(ttls=(300, 3600), parallelism=4)
        assert serial.tiers == parallel.tiers
        assert serial.metrics.to_json() == parallel.metrics.to_json()

    def test_uy_faulted_serial_vs_parallel(self):
        kwargs = dict(probes=12, duration=1800.0, shards=4, faults=loss_plan())
        serial = scenario_uy_ns(parallelism=1, **kwargs)
        parallel = scenario_uy_ns(parallelism=4, **kwargs)
        assert serial.results.ttls() == parallel.results.ttls()
        assert serial.results.rtts_ms() == parallel.results.rtts_ms()
        assert serial.metrics.to_json() == parallel.metrics.to_json()
        counts = serial.metrics.to_payload()["metrics"]["faults.injected"]
        assert counts["values"]  # the plan actually fired

    def test_plan_accepts_payload_dict(self):
        plan = loss_plan()
        by_object = scenario_uy_ns(probes=8, duration=1200.0, parallelism=1,
                                   faults=plan)
        by_payload = scenario_uy_ns(probes=8, duration=1200.0, parallelism=1,
                                    faults=plan.to_payload())
        assert by_object.metrics.to_json() == by_payload.metrics.to_json()


class TestCliIdentity:
    def test_faulted_metrics_files_are_byte_identical(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(loss_plan().to_json(), encoding="ascii")
        serial_file = tmp_path / "serial.json"
        parallel_file = tmp_path / "parallel.json"
        base = ["run", "t2-uy", "--probes", "12", "--duration", "1800",
                "--shards", "4", "--quiet", "--faults", str(plan_file)]
        assert main(base + ["--metrics", str(serial_file)]) == 0
        assert main(base + ["--parallel", "4", "--metrics", str(parallel_file)]) == 0
        assert filecmp.cmp(serial_file, parallel_file, shallow=False)

    def test_invalid_plan_rejected(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text('{"schema": "repro.faults/v1", "faults": '
                             '[{"kind": "loss", "start": 0, "duration": 1}]}\n',
                             encoding="ascii")
        assert main(["run", "t2-uy", "--quiet", "--faults", str(plan_file)]) == 2
        assert "rate" in capsys.readouterr().err

    def test_missing_plan_file_rejected(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["run", "t2-uy", "--quiet", "--faults", missing]) == 2
        assert main(["faults", missing]) == 2
        err = capsys.readouterr().err
        assert "cannot read fault plan" in err

    def test_unfaultable_campaign_rejected(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(loss_plan().to_json(), encoding="ascii")
        assert main(["run", "crawl", "--quiet", "--faults", str(plan_file)]) == 2


class TestCheckpointReplay:
    def test_resume_replays_and_rejects_changed_plan(self, tmp_path):
        run_dir = str(tmp_path / "campaign")
        kwargs = dict(probes=12, duration=1800.0, shards=4, parallelism=1,
                      run_dir=run_dir)
        first = scenario_uy_ns(faults=loss_plan(), **kwargs)
        resumed = scenario_uy_ns(faults=loss_plan(), **kwargs)
        assert first.metrics.to_json() == resumed.metrics.to_json()
        # A different schedule is a different campaign: the run dir must
        # refuse to mix the two rather than resume with stale shards.
        with pytest.raises(CheckpointMismatch):
            scenario_uy_ns(faults=loss_plan(rate=0.9), **kwargs)
