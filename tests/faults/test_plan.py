"""Tests for repro.faults.plan (schema, validation, round-trips)."""

import json

import pytest

from repro.faults import (
    KINDS,
    SCHEMA_ID,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    derive_fault_seed,
    validate_json,
    validate_payload,
)


def sample_plan() -> FaultPlan:
    return FaultPlan(
        faults=(
            FaultSpec(kind="server_outage", start=150.0, duration=3600.0,
                      target="198.51.100.53"),
            FaultSpec(kind="loss", start=0.0, duration=600.0, rate=0.25),
            FaultSpec(kind="delay", start=60.0, duration=60.0, delay_ms=250.0),
            FaultSpec(kind="resolver_restart", start=900.0, duration=0.0),
        ),
        name="sample",
        seed=11,
    )


class TestFaultSpec:
    def test_window_is_half_open(self):
        spec = FaultSpec(kind="servfail", start=10.0, duration=5.0)
        assert not spec.active(9.999)
        assert spec.active(10.0)
        assert spec.active(14.999)
        assert not spec.active(15.0)

    def test_point_event_active_forever_after(self):
        spec = FaultSpec(kind="resolver_restart", start=10.0, duration=0.0)
        assert not spec.active(9.0)
        assert spec.active(10.0)
        assert spec.active(1e9)

    def test_payload_omits_unset_fields(self):
        spec = FaultSpec(kind="server_outage", start=0.0, duration=1.0,
                         target="a")
        payload = spec.to_payload()
        assert "rate" not in payload and "site" not in payload
        assert FaultSpec.from_payload(payload) == spec

    @pytest.mark.parametrize("kwargs", [
        dict(kind="nonsense", start=0.0, duration=1.0),
        dict(kind="loss", start=0.0, duration=1.0),            # missing rate
        dict(kind="loss", start=0.0, duration=1.0, rate=1.5),  # rate > 1
        dict(kind="delay", start=0.0, duration=1.0),           # missing delay_ms
        dict(kind="server_outage", start=0.0, duration=1.0),   # missing target
        dict(kind="blackhole", start=0.0, duration=1.0),       # needs target/src
        dict(kind="anycast_site_down", start=0.0, duration=1.0),  # needs site
        dict(kind="resolver_restart", start=0.0, duration=5.0),   # not a point
        dict(kind="servfail", start=0.0, duration=1.0, site="x"),  # site misuse
        dict(kind="servfail", start=-1.0, duration=1.0),       # negative start
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(FaultPlanError):
            FaultSpec(**kwargs)


class TestFaultPlan:
    def test_round_trip_is_exact(self):
        plan = sample_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_is_canonical(self):
        text = sample_plan().to_json()
        assert text.endswith("\n")
        payload = json.loads(text)
        assert payload["schema"] == SCHEMA_ID
        # Canonical form: re-serializing the parsed payload reproduces it.
        assert FaultPlan.from_payload(payload).to_json() == text

    def test_window_spans_all_faults(self):
        assert sample_plan().window() == (0.0, 150.0 + 3600.0)
        assert FaultPlan().window() == (0.0, 0.0)

    def test_ddos_builder(self):
        plan = FaultPlan.ddos("198.51.100.53", start=100.0, duration=3600.0)
        (spec,) = plan.faults
        assert spec.kind == "server_outage"
        assert spec.target == "198.51.100.53"
        assert plan.window() == (100.0, 3700.0)

    def test_from_payload_rejects_bad_schema(self):
        payload = sample_plan().to_payload()
        payload["schema"] = "something/else"
        with pytest.raises(FaultPlanError):
            FaultPlan.from_payload(payload)

    def test_every_kind_is_constructible(self):
        required = {
            "loss": dict(rate=0.5),
            "delay": dict(delay_ms=100.0),
            "blackhole": dict(target="a"),
            "server_outage": dict(target="a"),
            "anycast_site_down": dict(site="s01"),
            "ratelimit": dict(rate=10.0, target="a"),
            "record_change": dict(target="www.example."),
        }
        for kind in KINDS:
            duration = (
                0.0 if kind in ("resolver_restart", "record_change") else 10.0
            )
            spec = FaultSpec(kind=kind, start=0.0, duration=duration,
                             **required.get(kind, {}))
            assert FaultSpec.from_payload(spec.to_payload()) == spec


class TestValidation:
    def test_valid_payload_has_no_errors(self):
        assert validate_payload(sample_plan().to_payload()) == []

    def test_errors_name_the_offending_fault(self):
        payload = sample_plan().to_payload()
        payload["faults"][1]["rate"] = 2.0
        errors = validate_payload(payload)
        assert errors and any("faults[1]" in error for error in errors)

    def test_validate_json_rejects_garbage(self):
        assert validate_json("{not json")
        assert validate_json(json.dumps({"schema": SCHEMA_ID, "faults": 3}))


class TestSeedDerivation:
    def test_stable_across_processes(self):
        # blake2b, not hash(): the value must never depend on PYTHONHASHSEED.
        assert derive_fault_seed(0, 0) == derive_fault_seed(0, 0)
        assert derive_fault_seed(1, 0) != derive_fault_seed(0, 0)
        assert derive_fault_seed(0, 1) != derive_fault_seed(0, 0)

    def test_shards_get_independent_streams(self):
        seeds = {derive_fault_seed(7, shard) for shard in range(64)}
        assert len(seeds) == 64


class TestRecordChange:
    def test_round_trips_through_payload(self):
        spec = FaultSpec(kind="record_change", start=120.0, duration=0.0,
                         target="www.pushed.example.")
        assert FaultSpec.from_payload(spec.to_payload()) == spec
        plan = FaultPlan(faults=(spec,), name="renum", seed=3)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_must_be_a_point_event(self):
        payload = FaultPlan(
            faults=(FaultSpec(kind="record_change", start=0.0, duration=0.0,
                              target="www.example."),),
        ).to_payload()
        payload["faults"][0]["duration"] = 60.0
        errors = validate_payload(payload)
        assert errors and any("point event" in error for error in errors)

    def test_requires_a_target_owner_name(self):
        payload = FaultPlan(
            faults=(FaultSpec(kind="record_change", start=0.0, duration=0.0,
                              target="www.example."),),
        ).to_payload()
        payload["faults"][0]["target"] = None
        errors = validate_payload(payload)
        assert errors and any("target" in error for error in errors)

    def test_renumbering_builder(self):
        plan = FaultPlan.renumbering("www.pushed.example.", [600.0, 1200.0],
                                     seed=5)
        assert plan.name == "renumbering"
        assert plan.seed == 5
        assert len(plan.faults) == 2
        for spec, start in zip(plan.faults, (600.0, 1200.0)):
            assert spec.kind == "record_change"
            assert spec.start == start
            assert spec.duration == 0.0
            assert spec.target == "www.pushed.example."
        # Builders must emit plans that pass their own validation.
        assert validate_payload(plan.to_payload()) == []
