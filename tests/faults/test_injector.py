"""Tests for repro.faults.injector (hooks, metrics, recovery clock)."""

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.zone import Zone
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.metrics.registry import MetricsRegistry
from repro.net.topology import Region, Topology
from repro.net.transport import Network, NetworkTimeout
from repro.server.anycast import AnycastCluster
from repro.server.authoritative import AuthoritativeServer


def injector(*specs, seed=0, plan_seed=0, registry=None):
    inj = FaultInjector(FaultPlan(faults=tuple(specs), seed=plan_seed), seed=seed)
    if registry is not None:
        inj.attach_metrics(registry)
    return inj


def metric(registry, name):
    return registry.snapshot().to_payload()["metrics"][name]


def query():
    return Message.make_query("www.shop.example.", RdataType.A)


class TestTransmissionFate:
    def test_outage_drops_only_its_target_in_window(self):
        inj = injector(FaultSpec(kind="server_outage", start=10.0,
                                 duration=10.0, target="a"))
        assert inj.transmission_fate("c", "a", 15.0) == (True, 0.0)
        assert inj.transmission_fate("c", "b", 15.0) == (False, 0.0)
        assert inj.transmission_fate("c", "a", 9.0) == (False, 0.0)
        assert inj.transmission_fate("c", "a", 20.0) == (False, 0.0)

    def test_blackhole_narrows_by_src(self):
        inj = injector(FaultSpec(kind="blackhole", start=0.0, duration=10.0,
                                 target="a", src="victim"))
        assert inj.transmission_fate("victim", "a", 5.0) == (True, 0.0)
        assert inj.transmission_fate("bystander", "a", 5.0) == (False, 0.0)

    def test_upstream_storm_matches_source(self):
        inj = injector(FaultSpec(kind="upstream_storm", start=0.0,
                                 duration=10.0, target="res"))
        assert inj.transmission_fate("res", "anywhere", 5.0) == (True, 0.0)
        assert inj.transmission_fate("other", "anywhere", 5.0) == (False, 0.0)

    def test_delay_adds_up_without_losing(self):
        inj = injector(
            FaultSpec(kind="delay", start=0.0, duration=10.0, delay_ms=100.0),
            FaultSpec(kind="delay", start=0.0, duration=10.0, delay_ms=50.0),
        )
        assert inj.transmission_fate("c", "a", 5.0) == (False, pytest.approx(0.15))

    def test_loss_rate_statistics_and_suppression(self):
        registry = MetricsRegistry()
        inj = injector(
            FaultSpec(kind="loss", start=0.0, duration=1e9, rate=0.3),
            registry=registry,
        )
        losses = sum(inj.transmission_fate("c", "a", 1.0)[0] for _ in range(5000))
        assert 0.25 < losses / 5000 < 0.35
        counts = metric(registry, "faults.injected")["values"]
        suppressed = metric(registry, "faults.suppressed")["values"]
        assert counts["loss"] == losses
        assert suppressed["loss"] == 5000 - losses

    def test_rng_stream_independent_of_other_windows(self):
        # An outage window over the same instants must not perturb the
        # loss draws: the stream is a pure function of (plan seed, seed).
        spec = FaultSpec(kind="loss", start=0.0, duration=1e9, rate=0.5)
        outage = FaultSpec(kind="server_outage", start=0.0, duration=1e9,
                           target="other")
        lone = injector(spec)
        paired = injector(spec, outage)
        fates = [(lone.transmission_fate("c", "a", t)[0],
                  paired.transmission_fate("c", "a", t)[0])
                 for t in range(200)]
        assert all(a == b for a, b in fates)


class TestServerIntercepts:
    def test_servfail_override(self):
        inj = injector(FaultSpec(kind="servfail", start=0.0, duration=10.0,
                                 target="a"))
        response = inj.intercept_server("a", query(), 5.0)
        assert response is not None and response.rcode == Rcode.SERVFAIL
        assert inj.intercept_server("b", query(), 5.0) is None
        assert inj.intercept_server("a", query(), 15.0) is None

    def test_truncate_sets_tc(self):
        inj = injector(FaultSpec(kind="truncate", start=0.0, duration=10.0))
        response = inj.intercept_server("a", query(), 5.0)
        assert response is not None and response.flags.tc

    def test_ratelimit_slips_over_budget(self):
        registry = MetricsRegistry()
        inj = injector(
            FaultSpec(kind="ratelimit", start=0.0, duration=10.0, rate=2.0),
            registry=registry,
        )
        # Three queries in the same one-second bucket: two pass, one slips.
        fates = [inj.intercept_server("a", query(), 1.2) for _ in range(3)]
        assert fates[0] is None and fates[1] is None
        assert fates[2] is not None and fates[2].flags.tc
        # A fresh bucket resets the accounting.
        assert inj.intercept_server("a", query(), 2.0) is None
        assert metric(registry, "faults.injected")["values"]["ratelimit"] == 1
        assert metric(registry, "faults.suppressed")["values"]["ratelimit"] == 3


class TestResolverRestart:
    def test_fires_once_per_address(self):
        inj = injector(FaultSpec(kind="resolver_restart", start=10.0,
                                 duration=0.0))
        assert not inj.take_restart("res1", 5.0)
        assert inj.take_restart("res1", 12.0)
        assert not inj.take_restart("res1", 13.0)
        assert inj.take_restart("res2", 12.0)  # independent per resolver

    def test_targeted_restart_skips_others(self):
        inj = injector(FaultSpec(kind="resolver_restart", start=0.0,
                                 duration=0.0, target="res1"))
        assert inj.take_restart("res1", 1.0)
        assert not inj.take_restart("res2", 1.0)


class TestAnycastSiteDown:
    @pytest.fixture
    def cluster_rig(self):
        topology = Topology(seed=0)
        network = Network(seed=0)
        zone = Zone("shop.example.", default_ttl=300)
        zone.add_soa("ns1.shop.example.")
        zone.add("shop.example.", RdataType.NS, NS("ns1.shop.example."))
        zone.add("www.shop.example.", RdataType.A, A("203.0.113.10"))
        sites = [
            topology.endpoint_in_region(Region.EU, "site-eu"),
            topology.endpoint_in_region(Region.NA, "site-na"),
        ]
        cluster = AnycastCluster("198.51.100.1", sites, network.latency, [zone])
        network.register(cluster, "198.51.100.1")
        client = topology.endpoint_in_region(Region.EU, "cli")
        return network, cluster, client, sites

    def test_down_site_fails_over_to_survivor(self, cluster_rig):
        network, cluster, client, sites = cluster_rig
        nominal = cluster.endpoint_for(client, network.latency)
        registry = MetricsRegistry()
        network.attach_metrics(registry)
        network.attach_faults(
            injector(FaultSpec(kind="anycast_site_down", start=0.0,
                               duration=100.0, site=nominal.name))
        )
        response, _ = network.exchange(client, "198.51.100.1", query(), 10.0)
        assert response.rcode == Rcode.NOERROR
        entry = list(cluster.query_log)[-1]
        assert entry.server != str(nominal)
        assert metric(registry, "faults.injected")["values"]["anycast_site_down"] > 0

    def test_all_sites_down_means_loss(self, cluster_rig):
        network, cluster, client, sites = cluster_rig
        network.attach_faults(
            injector(*[
                FaultSpec(kind="anycast_site_down", start=0.0, duration=100.0,
                          site=site.name)
                for site in sites
            ])
        )
        with pytest.raises(NetworkTimeout):
            network.exchange(client, "198.51.100.1", query(), 10.0, retries=0)

    def test_unicast_server_has_no_failover(self):
        topology = Topology(seed=0)
        network = Network(seed=0)
        zone = Zone("shop.example.", default_ttl=300)
        zone.add_soa("ns1.shop.example.")
        zone.add("www.shop.example.", RdataType.A, A("203.0.113.10"))
        server = AuthoritativeServer(
            topology.endpoint_in_region(Region.EU, "ns1.shop.example"), [zone]
        )
        network.register(server)
        network.attach_faults(
            injector(FaultSpec(kind="anycast_site_down", start=0.0,
                               duration=100.0, site="ns1.shop.example"))
        )
        client = topology.endpoint_in_region(Region.EU, "cli")
        with pytest.raises(NetworkTimeout):
            network.exchange(client, server.endpoint.address, query(), 10.0,
                             retries=0)


class TestRecovery:
    def test_recovery_counts_first_delivery_after_window(self):
        registry = MetricsRegistry()
        inj = injector(
            FaultSpec(kind="server_outage", start=0.0, duration=100.0,
                      target="a"),
            registry=registry,
        )
        assert inj.transmission_fate("c", "a", 50.0)[0]
        inj.note_delivery("c", "a", 90.0)   # still inside: not a recovery
        inj.note_delivery("c", "b", 150.0)  # wrong target: not a recovery
        assert metric(registry, "faults.recovered")["values"] == {}
        inj.note_delivery("c", "a", 150.0)
        inj.note_delivery("c", "a", 200.0)  # only the first one counts
        assert metric(registry, "faults.recovered")["values"]["server_outage"] == 1
        histogram = metric(registry, "faults.time_to_recovery_s")
        assert histogram["count"] == 1
        assert histogram["min"] == pytest.approx(50.0)

    def test_unimpacted_window_never_recovers(self):
        registry = MetricsRegistry()
        inj = injector(
            FaultSpec(kind="server_outage", start=0.0, duration=100.0,
                      target="a"),
            registry=registry,
        )
        # No transmission ever hit the window, so there is nothing to heal.
        inj.note_delivery("c", "a", 150.0)
        assert metric(registry, "faults.recovered")["values"] == {}


class TestEndToEndOutage:
    def test_window_ending_mid_retry_lets_exchange_succeed(self):
        """An outage of [0, 3) with timeout=2, retries=2: attempts at
        t=0 and t=2 die, the third at t=4 lands — the exchange succeeds
        and the fault records a recovery."""
        topology = Topology(seed=0)
        network = Network(seed=0)
        zone = Zone("shop.example.", default_ttl=300)
        zone.add_soa("ns1.shop.example.")
        zone.add("www.shop.example.", RdataType.A, A("203.0.113.10"))
        server = AuthoritativeServer(
            topology.endpoint_in_region(Region.EU, "ns1.shop.example"), [zone]
        )
        network.register(server)
        registry = MetricsRegistry()
        network.attach_metrics(registry)
        network.attach_faults(
            injector(FaultSpec(kind="server_outage", start=0.0, duration=3.0,
                               target=server.endpoint.address))
        )
        client = topology.endpoint_in_region(Region.EU, "cli")
        response, elapsed = network.exchange(
            client, server.endpoint.address, query(), 0.0, timeout=2.0, retries=2
        )
        assert response.rcode == Rcode.NOERROR
        assert elapsed > 4.0  # two burned timeouts plus the live RTT
        assert metric(registry, "faults.recovered")["values"]["server_outage"] == 1


class TestRecordChanges:
    def test_each_spec_fires_exactly_once(self):
        early = FaultSpec(kind="record_change", start=60.0, duration=0.0,
                          target="www.a.example.")
        late = FaultSpec(kind="record_change", start=120.0, duration=0.0,
                         target="www.b.example.")
        inj = injector(early, late)
        assert inj.take_record_changes(30.0) == ()
        assert inj.take_record_changes(60.0) == (early,)
        assert inj.take_record_changes(61.0) == ()  # already fired
        # A coarse probe tick that jumps past both starts drains the rest.
        assert inj.take_record_changes(500.0) == (late,)
        assert inj.take_record_changes(1000.0) == ()

    def test_simultaneous_changes_fire_in_plan_order(self):
        first = FaultSpec(kind="record_change", start=10.0, duration=0.0,
                          target="a.example.")
        second = FaultSpec(kind="record_change", start=10.0, duration=0.0,
                           target="b.example.")
        assert injector(first, second).take_record_changes(10.0) == (
            first, second)

    def test_fires_land_in_injected_metric(self):
        registry = MetricsRegistry()
        inj = injector(
            FaultSpec(kind="record_change", start=0.0, duration=0.0,
                      target="www.example."),
            registry=registry,
        )
        inj.take_record_changes(0.0)
        assert metric(registry, "faults.injected")["values"]["record_change"] == 1
