"""Tests for repro.net.clock."""

import pytest

from repro.net.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(10.0).now == 10.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(5.5) == 5.5
        assert clock.now == 5.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(100.0)
        assert clock.now == 100.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(50.0)
        clock.advance_to(10.0)
        assert clock.now == 50.0

    def test_repr(self):
        assert "12.000" in repr(SimClock(12.0))
