"""Tests for the long-lived TCP session layer (repro.net.transport)."""

import pytest

from repro.dns.message import Message
from repro.dns.rdtypes import RdataType
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.metrics.registry import MetricsRegistry
from repro.net.topology import Region, Topology
from repro.net.transport import LossModel, Network, NetworkTimeout, SessionBroken


class EchoServer:
    """Minimal Server implementation recording arrivals."""

    def __init__(self, endpoint):
        self._endpoint = endpoint
        self.seen: list[tuple[str, float]] = []

    @property
    def endpoint(self):
        return self._endpoint

    def endpoint_for(self, client, latency):
        return self._endpoint

    def handle_query(self, query, client, now):
        self.seen.append((client.address, now))
        return query.make_response(authoritative=True)


@pytest.fixture
def rig():
    topology = Topology(seed=0)
    network = Network(seed=0)
    server = EchoServer(topology.endpoint_in_region(Region.EU, "srv"))
    network.register(server)
    client = topology.endpoint_in_region(Region.EU, "cli")
    return network, server, client


def query():
    return Message.make_query("example.com", RdataType.A)


class TestSessionLifecycle:
    def test_connect_then_reuse_for_many_exchanges(self, rig):
        network, server, client = rig
        session = network.open_session(client, server.endpoint.address)
        assert not session.alive
        rtt = session.connect(0.0)
        assert rtt > 0
        assert session.alive
        for k in range(5):
            response, elapsed = session.exchange(query(), float(k + 1))
            assert response.flags.qr
            assert elapsed > 0
        assert session.exchanges == 5
        assert len(server.seen) == 5

    def test_exchange_before_connect_raises(self, rig):
        network, server, client = rig
        session = network.open_session(client, server.endpoint.address)
        with pytest.raises(SessionBroken):
            session.exchange(query(), 0.0)

    def test_keepalive_skips_the_server(self, rig):
        """Keepalives are transport frames: no handle_query, no tally."""
        network, server, client = rig
        session = network.open_session(client, server.endpoint.address)
        session.connect(0.0)
        rtt = session.keepalive(10.0)
        assert rtt > 0
        assert session.keepalives == 1
        assert server.seen == []

    def test_close_is_orderly(self, rig):
        network, server, client = rig
        session = network.open_session(client, server.endpoint.address)
        session.connect(0.0)
        session.close(5.0)
        assert not session.alive
        with pytest.raises(SessionBroken):
            session.exchange(query(), 6.0)

    def test_unknown_address_cannot_connect(self, rig):
        network, _, client = rig
        session = network.open_session(client, "203.0.113.99")
        with pytest.raises(NetworkTimeout):
            session.connect(0.0)


class TestSessionFaults:
    @staticmethod
    def _attach(network, spec):
        plan = FaultPlan(faults=(spec,), name="t", seed=1)
        network.attach_faults(FaultInjector(plan, seed=1))

    def test_blackhole_breaks_mid_session(self, rig):
        network, server, client = rig
        session = network.open_session(client, server.endpoint.address)
        session.connect(0.0)
        session.exchange(query(), 1.0)
        self._attach(
            network,
            FaultSpec(
                kind="blackhole", start=10.0, duration=100.0,
                target=server.endpoint.address,
            ),
        )
        with pytest.raises(SessionBroken):
            session.exchange(query(), 50.0)
        assert not session.alive
        # After the window lifts the session stays dead until reconnect.
        with pytest.raises(SessionBroken):
            session.exchange(query(), 200.0)
        session.connect(200.0)
        response, _ = session.exchange(query(), 201.0)
        assert response.flags.qr

    def test_keepalive_detects_server_outage(self, rig):
        network, server, client = rig
        self._attach(
            network,
            FaultSpec(
                kind="server_outage", start=10.0, duration=100.0,
                target=server.endpoint.address,
            ),
        )
        session = network.open_session(client, server.endpoint.address)
        session.connect(0.0)
        session.keepalive(5.0)
        with pytest.raises(SessionBroken):
            session.keepalive(50.0)
        assert not session.alive

    def test_delay_stretches_rtt_without_breaking(self, rig):
        network, server, client = rig
        session = network.open_session(client, server.endpoint.address)
        session.connect(0.0)
        _, clean = session.exchange(query(), 1.0)
        self._attach(
            network,
            FaultSpec(
                kind="delay", start=10.0, duration=100.0,
                target=server.endpoint.address, delay_ms=500.0,
            ),
        )
        _, slowed = session.exchange(query(), 50.0)
        assert session.alive
        # The fault adds 500 ms one-way on top of the (jittered) base RTT.
        assert slowed >= 0.5
        assert slowed > clean

    def test_datagram_loss_model_is_absorbed(self):
        """TCP retransmits under the abstraction: the fabric's baseline
        probabilistic datagram loss never breaks an established session
        (unlike a ``loss`` fault storm, which can)."""
        topology = Topology(seed=0)
        network = Network(seed=0, loss=LossModel(rate=0.9, seed=0))
        server = EchoServer(topology.endpoint_in_region(Region.EU, "srv"))
        network.register(server)
        client = topology.endpoint_in_region(Region.EU, "cli")
        session = network.open_session(client, server.endpoint.address)
        session.connect(0.0)
        for k in range(20):
            response, _ = session.exchange(query(), float(k + 1))
            assert response.flags.qr
        assert session.alive

    def test_loss_storm_fault_can_break_session(self, rig):
        """A ``loss`` fault window is a storm, not baseline noise: its
        unlucky draws doom framed transmissions like datagrams."""
        network, server, client = rig
        self._attach(
            network,
            FaultSpec(
                kind="loss", start=0.0, duration=10_000.0,
                target=server.endpoint.address, rate=0.9,
            ),
        )
        session = network.open_session(client, server.endpoint.address)
        broke = False
        t = 0.0
        for k in range(40):
            t = float(k + 1)
            try:
                if not session.alive:
                    session.connect(t)
                session.exchange(query(), t)
            except (NetworkTimeout, SessionBroken):
                broke = True
        assert broke

    def test_connect_refused_during_outage(self, rig):
        network, server, client = rig
        self._attach(
            network,
            FaultSpec(
                kind="server_outage", start=0.0, duration=100.0,
                target=server.endpoint.address,
            ),
        )
        session = network.open_session(client, server.endpoint.address)
        with pytest.raises(NetworkTimeout):
            session.connect(50.0)
        assert not session.alive
        session.connect(150.0)
        assert session.alive


class TestSessionDeterminism:
    def _run(self, seed):
        topology = Topology(seed=seed)
        network = Network(seed=seed)
        registry = MetricsRegistry()
        network.attach_metrics(registry)
        server = EchoServer(topology.endpoint_in_region(Region.EU, "srv"))
        network.register(server)
        client = topology.endpoint_in_region(Region.EU, "cli")
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="server_outage", start=30.0, duration=30.0,
                    target=server.endpoint.address,
                ),
            ),
            name="det",
            seed=7,
        )
        network.attach_faults(FaultInjector(plan, seed=seed))
        session = network.open_session(client, server.endpoint.address)
        events = []
        t = 0.0
        connected = False
        for k in range(30):
            t = k * 5.0
            try:
                if not session.alive:
                    session.connect(t)
                    connected = True
                    events.append(("connect", t))
                _, elapsed = session.exchange(query(), t)
                events.append(("ok", round(elapsed, 9)))
            except (NetworkTimeout, SessionBroken) as exc:
                events.append((type(exc).__name__, t))
        return events, registry.snapshot().to_json()

    def test_reconnect_sequence_reproducible(self):
        first_events, first_metrics = self._run(3)
        second_events, second_metrics = self._run(3)
        assert first_events == second_events
        assert first_metrics == second_metrics
        # The fault window must actually have produced breaks.
        assert any(kind == "SessionBroken" for kind, _ in first_events)
