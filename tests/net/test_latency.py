"""Tests for repro.net.latency."""

import random

from repro.net.latency import LatencyModel
from repro.net.topology import Region, Topology


def endpoints(region_a, region_b, seed=0):
    topology = Topology(seed=seed)
    return (
        topology.endpoint_in_region(region_a, "a"),
        topology.endpoint_in_region(region_b, "b"),
    )


class TestBaseRtt:
    def test_symmetric(self):
        model = LatencyModel()
        a, b = endpoints(Region.EU, Region.AS)
        assert model.base_rtt_ms(a, b) == model.base_rtt_ms(b, a)

    def test_deterministic(self):
        a, b = endpoints(Region.EU, Region.NA)
        assert LatencyModel(seed=3).base_rtt_ms(a, b) == LatencyModel(
            seed=3
        ).base_rtt_ms(a, b)

    def test_intra_region_faster_than_intercontinental(self):
        model = LatencyModel()
        a, b = endpoints(Region.EU, Region.EU)
        c, d = endpoints(Region.EU, Region.OC, seed=1)
        assert model.base_rtt_ms(a, b) < model.base_rtt_ms(c, d)

    def test_self_is_negligible(self):
        model = LatencyModel()
        a, _ = endpoints(Region.EU, Region.EU)
        assert model.base_rtt_ms(a, a) < 1.0

    def test_pairs_differ(self):
        # Hosts in the same regions are not equidistant.
        topology = Topology()
        a = topology.endpoint_in_region(Region.EU)
        b = topology.endpoint_in_region(Region.NA)
        c = topology.endpoint_in_region(Region.NA)
        model = LatencyModel()
        assert model.base_rtt_ms(a, b) != model.base_rtt_ms(a, c)


class TestSampledRtt:
    def test_returns_seconds(self):
        model = LatencyModel()
        a, b = endpoints(Region.EU, Region.NA)
        sample = model.rtt(a, b, random.Random(0))
        assert 0.01 < sample < 2.0  # ~100 ms in seconds, with jitter

    def test_jitter_varies(self):
        model = LatencyModel()
        a, b = endpoints(Region.EU, Region.NA)
        rng = random.Random(0)
        samples = {round(model.rtt(a, b, rng), 9) for _ in range(10)}
        assert len(samples) > 1

    def test_last_mile_is_fast(self):
        model = LatencyModel()
        assert model.last_mile_rtt(random.Random(0)) < 0.05


class TestNearest:
    def test_picks_same_region_site(self):
        topology = Topology()
        client = topology.endpoint_in_region(Region.SA)
        sites = [
            topology.endpoint_in_region(Region.EU),
            topology.endpoint_in_region(Region.SA),
            topology.endpoint_in_region(Region.AS),
        ]
        model = LatencyModel()
        assert model.nearest(client, sites).region is Region.SA

    def test_empty_candidates_rejected(self):
        import pytest

        model = LatencyModel()
        topology = Topology()
        with pytest.raises(ValueError):
            model.nearest(topology.endpoint_in_region(Region.EU), [])
