"""Tests for repro.net.topology."""

import pytest

from repro.net.topology import (
    ATLAS_REGION_WEIGHTS,
    AddressAllocator,
    Region,
    Topology,
)


class TestAddressAllocator:
    def test_unique_addresses(self):
        allocator = AddressAllocator()
        addresses = allocator.allocate_many(1000)
        assert len(set(addresses)) == 1000

    def test_addresses_are_valid_ipv4(self):
        import ipaddress

        allocator = AddressAllocator()
        for address in allocator.allocate_many(10):
            ipaddress.IPv4Address(address)


class TestTopology:
    def test_deterministic_by_seed(self):
        a = Topology(seed=7)
        b = Topology(seed=7)
        ea = [a.create_endpoint().address for _ in range(20)]
        eb = [b.create_endpoint().address for _ in range(20)]
        ra = [e.region for e in a.endpoints]
        rb = [e.region for e in b.endpoints]
        assert ea == eb and ra == rb

    def test_create_as_assigns_unique_asns(self):
        topology = Topology()
        ases = topology.create_ases(10)
        assert len({a.asn for a in ases}) == 10

    def test_endpoint_inherits_as_region(self):
        topology = Topology()
        autonomous_system = topology.create_as(Region.OC)
        endpoint = topology.create_endpoint(autonomous_system)
        assert endpoint.region is Region.OC
        assert endpoint.asn == autonomous_system.asn

    def test_endpoint_in_region(self):
        endpoint = Topology().endpoint_in_region(Region.AF, name="srv")
        assert endpoint.region is Region.AF
        assert endpoint.name == "srv"

    def test_region_weights_skew_europe(self):
        # The Atlas population is Europe-heavy (paper §7).
        topology = Topology(seed=0)
        regions = [topology.pick_region() for _ in range(2000)]
        eu_share = sum(1 for r in regions if r is Region.EU) / len(regions)
        assert 0.45 < eu_share < 0.65

    def test_custom_weights(self):
        topology = Topology(seed=0, region_weights={Region.SA: 1.0})
        assert all(topology.pick_region() is Region.SA for _ in range(10))

    def test_endpoints_by_region_covers_all_regions(self):
        topology = Topology()
        grouped = topology.endpoints_by_region()
        assert set(grouped) == set(Region)

    def test_atlas_weights_sum_to_one(self):
        assert abs(sum(ATLAS_REGION_WEIGHTS.values()) - 1.0) < 1e-9

    def test_str_forms(self):
        topology = Topology()
        endpoint = topology.create_endpoint(name="thing")
        assert str(endpoint) == "thing"
        assert str(topology.ases[0]).startswith("AS")
