"""Tests for repro.net.trace."""

import pytest

from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.net.trace import TraceRecorder, attach, detach
from repro.net.topology import Region
from repro.resolver.recursive import RecursiveResolver


@pytest.fixture
def traced_world(mini_world):
    recorder = TraceRecorder()
    attach(mini_world.network, recorder)
    yield mini_world, recorder
    detach(mini_world.network)


def resolve_once(world):
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU),
        network=world.network,
        root_hints=world.hints,
    )
    return resolver.resolve("www.example.tld.", RdataType.A, now=0.0)


class TestRecording:
    def test_full_resolution_chain_captured(self, traced_world):
        world, recorder = traced_world
        resolve_once(world)
        assert len(recorder) >= 3  # root, tld, child at minimum
        servers = {r.server_address for r in recorder}
        assert world.root_server.endpoint.address in servers
        assert world.child_server.endpoint.address in servers

    def test_referrals_flagged(self, traced_world):
        world, recorder = traced_world
        resolve_once(world)
        root_records = recorder.to_server(world.root_server.endpoint.address)
        assert root_records and all(r.referral for r in root_records)

    def test_authoritative_answer_flagged(self, traced_world):
        world, recorder = traced_world
        resolve_once(world)
        child_records = recorder.for_qname("www.example.tld.")
        final = [r for r in child_records if not r.referral]
        assert final and all(r.authoritative for r in final)

    def test_queries_per_server(self, traced_world):
        world, recorder = traced_world
        resolve_once(world)
        counts = recorder.queries_per_server()
        assert sum(counts.values()) == len(recorder)

    def test_filter_predicate(self, mini_world):
        recorder = TraceRecorder(keep=lambda r: r.qtype == RdataType.NS)
        attach(mini_world.network, recorder)
        try:
            resolve_once(mini_world)
        finally:
            detach(mini_world.network)
        assert all(r.qtype == RdataType.NS for r in recorder)

    def test_render(self, traced_world):
        world, recorder = traced_world
        resolve_once(world)
        rendered = recorder.render(limit=2)
        assert "t=" in rendered
        if len(recorder) > 2:
            assert "more" in rendered

    def test_clear(self, traced_world):
        world, recorder = traced_world
        resolve_once(world)
        recorder.clear()
        assert len(recorder) == 0


class TestAttachment:
    def test_double_attach_rejected(self, traced_world):
        world, _ = traced_world
        with pytest.raises(RuntimeError):
            attach(world.network, TraceRecorder())

    def test_detach_restores(self, mini_world):
        recorder = TraceRecorder()
        attach(mini_world.network, recorder)
        detach(mini_world.network)
        resolve_once(mini_world)
        assert len(recorder) == 0

    def test_detach_idempotent(self, mini_world):
        detach(mini_world.network)  # never attached: no-op

    def test_timing_fields(self, traced_world):
        world, recorder = traced_world
        out = resolve_once(world)
        assert all(r.rtt > 0 for r in recorder)
        # Out-of-band target fetches aren't charged to the client, so the
        # sum can exceed elapsed — but no single exchange can.
        assert max(r.rtt for r in recorder) <= out.elapsed + 1e-6


class TestPaperStyleUse:
    def test_confirmation_from_the_authoritative_side(self, traced_world):
        """§4.6-style check: the child server never received NS queries
        for the zone when glue answered them."""
        world, recorder = traced_world
        resolve_once(world)
        child_ns = [
            r
            for r in recorder.to_server(world.child_server.endpoint.address)
            if r.qtype == RdataType.NS and r.qname == Name("example.tld.")
        ]
        assert child_ns == []
