"""Tests for repro.net.transport (delivery, loss, timeout, anycast hook)."""

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.rdtypes import RdataType
from repro.net.latency import LatencyModel
from repro.net.topology import Region, Topology
from repro.net.transport import LossModel, Network, NetworkTimeout


class EchoServer:
    """Minimal Server implementation recording arrivals."""

    def __init__(self, endpoint):
        self._endpoint = endpoint
        self.seen: list[tuple[str, float]] = []

    @property
    def endpoint(self):
        return self._endpoint

    def endpoint_for(self, client, latency):
        return self._endpoint

    def handle_query(self, query, client, now):
        self.seen.append((client.address, now))
        return query.make_response(authoritative=True)


@pytest.fixture
def rig():
    topology = Topology(seed=0)
    network = Network(seed=0)
    server = EchoServer(topology.endpoint_in_region(Region.EU, "srv"))
    network.register(server)
    client = topology.endpoint_in_region(Region.EU, "cli")
    return network, server, client


def query():
    return Message.make_query("example.com", RdataType.A)


class TestExchange:
    def test_response_and_elapsed(self, rig):
        network, server, client = rig
        response, elapsed = network.exchange(client, server.endpoint.address, query(), 0.0)
        assert response.flags.qr
        assert elapsed > 0

    def test_server_sees_midpoint_time(self, rig):
        network, server, client = rig
        _, elapsed = network.exchange(client, server.endpoint.address, query(), 100.0)
        (_, arrival), = server.seen
        assert 100.0 < arrival < 100.0 + elapsed

    def test_unknown_address_times_out(self, rig):
        network, _, client = rig
        with pytest.raises(NetworkTimeout) as exc:
            network.exchange(client, "203.0.113.99", query(), 0.0, timeout=1.5, retries=2)
        assert exc.value.elapsed == pytest.approx(4.5)

    def test_deregister(self, rig):
        network, server, client = rig
        network.deregister(server.endpoint.address)
        with pytest.raises(NetworkTimeout):
            network.exchange(client, server.endpoint.address, query(), 0.0, retries=0)

    def test_server_at(self, rig):
        network, server, _ = rig
        assert network.server_at(server.endpoint.address) is server
        assert network.server_at("198.18.0.1") is None


class TestLoss:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            LossModel(rate=1.0)

    def test_zero_rate_never_loses(self):
        loss = LossModel(rate=0.0)
        assert not any(loss.lost("10.0.0.1") for _ in range(100))

    def test_rate_statistics(self):
        loss = LossModel(rate=0.3, seed=1)
        losses = sum(loss.lost("10.0.0.1") for _ in range(5000))
        assert 0.25 < losses / 5000 < 0.35

    def test_down_address_always_lost(self):
        loss = LossModel(rate=0.0)
        loss.take_down("10.0.0.9")
        assert loss.lost("10.0.0.9")
        assert loss.is_down("10.0.0.9")

    def test_bring_up(self):
        loss = LossModel(rate=0.0)
        loss.take_down("10.0.0.9")
        loss.bring_up("10.0.0.9")
        assert not loss.lost("10.0.0.9")

    def test_retry_succeeds_after_losses(self):
        topology = Topology(seed=0)
        network = Network(loss=LossModel(rate=0.5, seed=4), seed=0)
        server = EchoServer(topology.endpoint_in_region(Region.EU, "srv"))
        network.register(server)
        client = topology.endpoint_in_region(Region.EU, "cli")
        successes = 0
        for _ in range(50):
            try:
                network.exchange(client, server.endpoint.address, query(), 0.0, retries=5)
                successes += 1
            except NetworkTimeout:
                pass
        assert successes > 45  # (1/2)^6 residual failure odds

    def test_loss_burns_timeout_into_elapsed(self):
        topology = Topology(seed=0)
        network = Network(loss=LossModel(rate=0.999999, seed=2), seed=0)
        server = EchoServer(topology.endpoint_in_region(Region.EU, "srv"))
        network.register(server)
        client = topology.endpoint_in_region(Region.EU, "cli")
        with pytest.raises(NetworkTimeout) as exc:
            network.exchange(client, server.endpoint.address, query(), 0.0,
                             timeout=2.0, retries=1)
        assert exc.value.elapsed == pytest.approx(4.0)


class TestAnycastHook:
    def test_exchange_uses_endpoint_for(self):
        topology = Topology(seed=0)
        network = Network(seed=0)
        near = topology.endpoint_in_region(Region.SA, "site-sa")
        far = topology.endpoint_in_region(Region.OC, "site-oc")

        class TwoFaced(EchoServer):
            def endpoint_for(self, client, latency):
                return latency.nearest(client, [near, far])

        server = TwoFaced(far)
        network.register(server, "198.51.100.1")
        client = topology.endpoint_in_region(Region.SA, "cli")
        _, elapsed_anycast = network.exchange(client, "198.51.100.1", query(), 0.0)
        # Against the far unicast endpoint the RTT must be much larger.
        network.register(EchoServer(far), far.address)
        _, elapsed_far = network.exchange(client, far.address, query(), 0.0)
        assert elapsed_anycast < elapsed_far
