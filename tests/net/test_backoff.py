"""Tests for the transport retry policy (BackoffPolicy, budget, jitter)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import Message
from repro.dns.rdtypes import RdataType
from repro.metrics.registry import MetricsRegistry
from repro.net.topology import Region, Topology
from repro.net.transport import BackoffPolicy, Network, NetworkTimeout


def query():
    return Message.make_query("example.com", RdataType.A)


class TestPolicy:
    def test_defaults_match_legacy_fixed_interval(self):
        policy = BackoffPolicy(timeout=1.5, retries=2)
        rng = random.Random(0)
        assert [policy.attempt_wait(a, rng) for a in range(3)] == [1.5, 1.5, 1.5]

    def test_exponential_growth(self):
        policy = BackoffPolicy(timeout=1.0, retries=3, factor=2.0)
        rng = random.Random(0)
        assert [policy.attempt_wait(a, rng) for a in range(4)] == [1.0, 2.0, 4.0, 8.0]

    def test_jitter_stays_in_band(self):
        policy = BackoffPolicy(timeout=1.0, retries=0, jitter=0.1)
        rng = random.Random(7)
        waits = [policy.attempt_wait(0, rng) for _ in range(200)]
        assert all(0.9 <= wait <= 1.1 for wait in waits)
        assert len(set(waits)) > 1  # actually random, not constant

    def test_hardened_profile(self):
        policy = BackoffPolicy.hardened()
        assert policy.factor > 1.0 and policy.jitter > 0.0
        assert policy.budget is not None

    @pytest.mark.parametrize("kwargs", [
        dict(timeout=0.0),
        dict(retries=-1),
        dict(factor=0.5),
        dict(jitter=1.0),
        dict(jitter=-0.1),
        dict(budget=0.0),
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)


@pytest.fixture
def dead_rig():
    topology = Topology(seed=0)
    network = Network(seed=0)
    client = topology.endpoint_in_region(Region.EU, "cli")
    return network, client


class TestBudget:
    @settings(max_examples=40, deadline=None)
    @given(
        timeout=st.floats(min_value=0.1, max_value=3.0),
        retries=st.integers(min_value=0, max_value=5),
        factor=st.floats(min_value=1.0, max_value=3.0),
        jitter=st.floats(min_value=0.0, max_value=0.5),
        budget=st.floats(min_value=0.1, max_value=10.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_total_retry_delay_respects_budget(
        self, timeout, retries, factor, jitter, budget, seed
    ):
        """Property: however the policy is shaped, the time burned waiting
        on a dead address never exceeds the budget."""
        topology = Topology(seed=0)
        network = Network(seed=seed)
        client = topology.endpoint_in_region(Region.EU, "cli")
        policy = BackoffPolicy(timeout=timeout, retries=retries, factor=factor,
                               jitter=jitter, budget=budget)
        with pytest.raises(NetworkTimeout) as exc:
            network.exchange(client, "203.0.113.99", query(), 0.0, backoff=policy)
        assert exc.value.elapsed <= budget + 1e-9

    def test_without_budget_all_attempts_run(self, dead_rig):
        network, client = dead_rig
        policy = BackoffPolicy(timeout=1.0, retries=3, factor=2.0)
        with pytest.raises(NetworkTimeout) as exc:
            network.exchange(client, "203.0.113.99", query(), 0.0, backoff=policy)
        assert exc.value.elapsed == pytest.approx(1.0 + 2.0 + 4.0 + 8.0)

    def test_budget_exhaustion_is_counted(self, dead_rig):
        network, client = dead_rig
        registry = MetricsRegistry()
        network.attach_metrics(registry)
        policy = BackoffPolicy(timeout=2.0, retries=5, budget=3.0)
        with pytest.raises(NetworkTimeout):
            network.exchange(client, "203.0.113.99", query(), 0.0, backoff=policy)
        payload = registry.snapshot().to_payload()["metrics"]
        assert payload["net.retry_budget_exhausted"]["value"] == 1
        assert payload["net.retries"]["value"] >= 1

    def test_network_default_policy_applies(self, dead_rig):
        network, client = dead_rig
        network.backoff = BackoffPolicy(timeout=0.5, retries=1)
        with pytest.raises(NetworkTimeout) as exc:
            network.exchange(client, "203.0.113.99", query(), 0.0)
        assert exc.value.elapsed == pytest.approx(1.0)

    def test_explicit_timeout_still_wins_without_policy(self, dead_rig):
        # The legacy call shape keeps its exact semantics (PR-3 perf tests
        # and the resolver depend on elapsed == (retries + 1) * timeout).
        network, client = dead_rig
        with pytest.raises(NetworkTimeout) as exc:
            network.exchange(client, "203.0.113.99", query(), 0.0,
                             timeout=1.5, retries=2)
        assert exc.value.elapsed == pytest.approx(4.5)
