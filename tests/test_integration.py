"""End-to-end integration and failure-injection tests.

These exercise whole subsystems together: full resolution chains through
multiple delegations, outage scenarios (the paper's §4.4 / §6.1 arguments),
loss sweeps, and the interplay of population + measurement + analysis.
"""

import pytest

from repro.dns.message import Rcode
from repro.dns.rdtypes import A, NS, RdataType
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver

from tests.conftest import build_mini_world


def make_resolver(world, policy=None, region=Region.EU):
    return RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(region),
        network=world.network,
        root_hints=world.hints,
        policy=policy,
    )


class TestDeepChains:
    def test_three_level_delegation(self):
        """root -> tld -> example -> deep.example, each with its own cut."""
        world = build_mini_world()
        deep_server = world.topology.endpoint_in_region(Region.EU, "ns.deep")
        from repro.dns.zone import Zone
        from repro.server.authoritative import AuthoritativeServer

        deep = Zone("deep.example.tld.", default_ttl=120)
        deep.add_soa("ns.deep.example.tld.")
        deep.add("deep.example.tld.", RdataType.NS, NS("ns.deep.example.tld."), ttl=120)
        server = AuthoritativeServer(deep_server, [deep])
        world.network.register(server)
        deep.add("ns.deep.example.tld.", RdataType.A, A(deep_server.address), ttl=120)
        deep.add("host.deep.example.tld.", RdataType.A, A("203.0.113.99"), ttl=60)
        world.child_zone.add(
            "deep.example.tld.", RdataType.NS, NS("ns.deep.example.tld."), ttl=300
        )
        world.child_zone.add(
            "ns.deep.example.tld.", RdataType.A, A(deep_server.address), ttl=300
        )

        resolver = make_resolver(world)
        out = resolver.resolve("host.deep.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert str(out.answers[-1].rdatas[0]) == "203.0.113.99"
        assert len(out.servers_contacted) >= 4

    def test_out_of_bailiwick_cross_resolution(self):
        """A zone served by a name under a *different* TLD resolves via a
        sub-resolution through that other branch."""
        world = build_mini_world()
        from repro.dns.zone import Zone
        from repro.server.authoritative import AuthoritativeServer

        # otherzone.tld served by ns.hosting.tld (a different 2LD).
        hosting = Zone("hosting.tld.", default_ttl=3600)
        hosting.add_soa("ns.hosting.tld.")
        hosting.add("hosting.tld.", RdataType.NS, NS("ns.hosting.tld."), ttl=3600)
        host_endpoint = world.topology.endpoint_in_region(Region.NA, "ns.hosting")
        host_server = AuthoritativeServer(host_endpoint, [hosting])
        world.network.register(host_server)
        hosting.add("ns.hosting.tld.", RdataType.A, A(host_endpoint.address), ttl=3600)
        world.tld_zone.add("hosting.tld.", RdataType.NS, NS("ns.hosting.tld."), ttl=7200)
        world.tld_zone.add("ns.hosting.tld.", RdataType.A, A(host_endpoint.address), ttl=7200)

        other = Zone("otherzone.tld.", default_ttl=600)
        other.add_soa("ns.hosting.tld.")
        other.add("otherzone.tld.", RdataType.NS, NS("ns.hosting.tld."), ttl=600)
        other.add("www.otherzone.tld.", RdataType.A, A("198.51.100.44"), ttl=300)
        host_server.add_zone(other)
        world.tld_zone.add("otherzone.tld.", RdataType.NS, NS("ns.hosting.tld."), ttl=7200)

        resolver = make_resolver(world)
        out = resolver.resolve("www.otherzone.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert str(out.answers[-1].rdatas[0]) == "198.51.100.44"


class TestOutages:
    def test_root_down_after_warmup_still_resolves(self):
        """With TLD infrastructure cached, losing the root is invisible —
        the resilience argument for long infrastructure TTLs (§6.1)."""
        world = build_mini_world()
        resolver = make_resolver(world)
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        world.network.loss.take_down(world.root_server.endpoint.address)
        out = resolver.resolve("www.example.tld.", RdataType.A, now=120.0)
        assert out.rcode == Rcode.NOERROR

    def test_root_down_cold_cache_fails(self):
        world = build_mini_world()
        world.network.loss.take_down(world.root_server.endpoint.address)
        resolver = make_resolver(world)
        out = resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.SERVFAIL

    def test_tld_down_with_cached_child_ns(self):
        world = build_mini_world()
        resolver = make_resolver(world)
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        world.network.loss.take_down(world.tld_server.endpoint.address)
        # Child NS/A are cached; answer TTL (60) expired but child zone is
        # reachable directly.
        out = resolver.resolve("www.example.tld.", RdataType.A, now=100.0)
        assert out.rcode == Rcode.NOERROR

    def test_outage_latency_reflects_timeouts(self):
        world = build_mini_world()
        world.network.loss.take_down(world.child_server.endpoint.address)
        resolver = make_resolver(world)
        out = resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.SERVFAIL
        assert out.elapsed >= 2.0  # at least one burned timeout

    def test_recovery_after_outage(self):
        world = build_mini_world()
        resolver = make_resolver(world)
        world.network.loss.take_down(world.child_server.endpoint.address)
        assert resolver.resolve("www.example.tld.", RdataType.A, now=0.0).rcode == Rcode.SERVFAIL
        world.network.loss.bring_up(world.child_server.endpoint.address)
        out = resolver.resolve("www.example.tld.", RdataType.A, now=10.0)
        assert out.rcode == Rcode.NOERROR


class TestLossSweep:
    @pytest.mark.parametrize("loss_rate", [0.0, 0.1, 0.3])
    def test_success_degrades_gracefully(self, loss_rate):
        world = build_mini_world(loss_rate=loss_rate)
        resolver = make_resolver(world)
        outcomes = [
            resolver.resolve("www.example.tld.", RdataType.A, now=float(i * 200)).rcode
            for i in range(25)
        ]
        success = sum(1 for rcode in outcomes if rcode == Rcode.NOERROR) / len(outcomes)
        # Retries absorb substantial loss; even 30% loss mostly succeeds.
        assert success >= (1.0 if loss_rate == 0.0 else 0.7)

    def test_loss_inflates_tail_latency(self):
        clean = build_mini_world(loss_rate=0.0)
        lossy = build_mini_world(loss_rate=0.25)
        clean_resolver = make_resolver(clean)
        lossy_resolver = make_resolver(lossy)
        clean_latencies = []
        lossy_latencies = []
        for i in range(30):
            clean_latencies.append(
                clean_resolver.resolve("www.example.tld.", RdataType.A, float(i * 200)).elapsed
            )
            lossy_latencies.append(
                lossy_resolver.resolve("www.example.tld.", RdataType.A, float(i * 200)).elapsed
            )
        assert max(lossy_latencies) > max(clean_latencies)


class TestPopulationPipeline:
    def test_measurement_to_analysis_pipeline(self):
        """Population -> measurement -> result set -> centricity analysis,
        all in one pass (the §3.2 pipeline end to end)."""
        from repro.analysis.centricity import classify_active_ttls
        from repro.atlas.measurement import Measurement, MeasurementSpec
        from repro.atlas.population import AtlasConfig, AtlasPopulation

        world = build_mini_world()
        population = AtlasPopulation(
            AtlasConfig(probes=60, seed=5),
            world.topology,
            world.network,
            world.hints,
            world.root_zone,
        )
        spec = MeasurementSpec(
            qname="example.tld.", qtype=RdataType.NS, interval=600, duration=1800
        )
        results = Measurement(
            spec=spec, vantage_points=population.vantage_points(), seed=5
        ).run()
        valid = results.valid()
        assert len(valid) > 0
        breakdown = classify_active_ttls(
            valid.ttls(), parent_ttl=7200, child_ttl=300
        )
        assert breakdown.child_fraction > 0.5
        summary = results.summary()
        assert summary["vps"] >= summary["probes"]

    def test_forwarded_vps_still_child_centric(self):
        from repro.atlas.population import AtlasConfig, AtlasPopulation

        world = build_mini_world()
        population = AtlasPopulation(
            AtlasConfig(probes=40, seed=2, forwarder_share=1.0, public_share=0.0),
            world.topology,
            world.network,
            world.hints,
            world.root_zone,
        )
        forwarded = [
            vp for vp in population.vantage_points()
            if population.resolver_label.get(vp.resolver_address, "").startswith("fwd+")
        ]
        assert forwarded
        answer = forwarded[0].stub.query("example.tld.", RdataType.NS, now=0.0)
        assert answer.rcode == Rcode.NOERROR
        assert answer.ttl() <= 300  # child TTL through two cache layers


class TestQueryVolumeAccounting:
    def test_cache_cuts_authoritative_queries(self):
        """The §6.2 load result at micro scale: repeated client queries at
        a warm resolver generate no authoritative traffic."""
        world = build_mini_world()
        resolver = make_resolver(world)
        resolver.resolve("example.tld.", RdataType.NS, now=0.0)
        baseline = len(world.child_server.query_log)
        for i in range(10):
            resolver.resolve("example.tld.", RdataType.NS, now=1.0 + i)
        assert len(world.child_server.query_log) == baseline

    def test_short_ttl_generates_periodic_refetch(self):
        world = build_mini_world()
        resolver = make_resolver(world)
        for i in range(5):
            resolver.resolve("example.tld.", RdataType.NS, now=float(i * 600))
        # Child NS TTL is 300 s; every 600 s round misses.
        ns_queries = [
            e for e in world.child_server.query_log if e.qtype == RdataType.NS
        ]
        assert len(ns_queries) >= 5
