"""Tests for repro.crawler.crawl."""

import pytest

from repro.crawler.crawl import Crawler
from repro.crawler.toplists import build_crawl_universe


@pytest.fixture(scope="module")
def crawled():
    universe = build_crawl_universe(scale=0.0005, seed=3)
    crawler = Crawler(universe)
    return universe, crawler.crawl()


class TestCrawlRecords:
    def test_every_domain_crawled(self, crawled):
        universe, result = crawled
        assert len(result) == len(universe.domains)

    def test_parent_ttls_recorded(self, crawled):
        _, result = crawled
        with_parent = [r for r in result if r.parent_ns_ttl is not None]
        assert with_parent
        # TLD zones delegate at one day (one hour for .nl), the root at
        # two days.
        assert {r.parent_ns_ttl for r in with_parent} <= {3600, 86400, 172800}

    def test_unresponsive_have_no_records(self, crawled):
        _, result = crawled
        for record in result:
            if not record.domain.responsive and record.domain.format != "TLD":
                assert not record.responsive
                assert not record.records

    def test_child_ns_ttls_differ_from_parent(self, crawled):
        _, result = crawled
        diffs = [
            record
            for record in result
            if record.responsive
            and record.ttls("NS")
            and record.parent_ns_ttl is not None
            and record.ttls("NS")[0] != record.parent_ns_ttl
        ]
        # Most child zones choose their own TTLs.
        assert len(diffs) > len(result) * 0.2

    def test_ns_response_classes(self, crawled):
        _, result = crawled
        classes = {record.ns_response for record in result}
        assert {"ns", "cname", "soa"} <= classes

    def test_bailiwick_only_for_ns_responders(self, crawled):
        _, result = crawled
        for record in result:
            if record.ns_response != "ns":
                assert record.bailiwick is None

    def test_bailiwick_matches_ground_truth_mostly(self, crawled):
        _, result = crawled
        matched = 0
        total = 0
        for record in result:
            if record.bailiwick is None or record.domain.kind != "apex":
                continue
            total += 1
            matched += record.bailiwick == record.domain.bailiwick
        assert total > 0
        assert matched / total > 0.95

    def test_dnskey_ttls_collected(self, crawled):
        _, result = crawled
        assert any(record.ttls("DNSKEY") for record in result)

    def test_query_accounting(self, crawled):
        universe, _ = crawled
        crawler = Crawler(universe)
        crawler.crawl(universe.lists["root"])
        assert crawler.queries_sent > len(universe.lists["root"])
