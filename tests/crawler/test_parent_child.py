"""Tests for the parent-vs-child TTL comparison (the paper's future work)."""

import pytest

from repro.crawler.crawl import Crawler
from repro.crawler.report import parent_child_comparison
from repro.crawler.toplists import build_crawl_universe


@pytest.fixture(scope="module")
def comparisons():
    universe = build_crawl_universe(scale=0.002, seed=6)
    crawl = Crawler(universe).crawl()
    return parent_child_comparison(crawl)


class TestParentChildComparison:
    def test_all_lists_compared(self, comparisons):
        assert set(comparisons) == {"Alexa", "Majestic", "Umbrella", ".nl", "Root"}
        assert all(c.compared > 0 for c in comparisons.values())

    def test_counts_partition(self, comparisons):
        for comparison in comparisons.values():
            assert (
                comparison.child_shorter
                + comparison.child_equal
                + comparison.child_longer
                == comparison.compared
            )

    def test_nl_forty_percent_anchor(self, comparisons):
        """§5.1: "about 40% of .nl children have shorter TTLs" than the
        one-hour parent delegation."""
        nl = comparisons[".nl"]
        assert 0.30 < nl.shorter_fraction < 0.50

    def test_mismatch_is_the_norm(self, comparisons):
        """Across every list, a substantial share of children disagree with
        the parent — the precondition for §3's centricity question."""
        for comparison in comparisons.values():
            disagreement = 1.0 - comparison.fraction(comparison.child_equal)
            assert disagreement > 0.3

    def test_root_children_never_longer(self, comparisons):
        # The root delegates at 2 days, the ceiling of human-chosen values
        # in our profiles: no TLD picks more.
        assert comparisons["Root"].child_longer == 0
