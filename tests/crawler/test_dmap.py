"""Tests for repro.crawler.dmap (Tables 6 and 7)."""

import pytest

from repro.crawler.crawl import Crawler
from repro.crawler.dmap import ContentCategory, dmap_classify
from repro.crawler.toplists import build_crawl_universe


@pytest.fixture(scope="module")
def report():
    universe = build_crawl_universe(scale=0.0008, seed=5, lists=["nl"])
    crawl = Crawler(universe).crawl()
    return dmap_classify(crawl)


class TestTable6:
    def test_all_categories_present(self, report):
        assert set(report.category_counts) == set(ContentCategory)

    def test_placeholder_dominates(self, report):
        counts = report.category_counts
        assert counts[ContentCategory.PLACEHOLDER] > counts[ContentCategory.ECOMMERCE]
        assert counts[ContentCategory.PLACEHOLDER] > counts[ContentCategory.PARKING]

    def test_total_classified(self, report):
        assert report.total_classified == sum(report.category_counts.values())
        assert report.total_classified > 0


class TestTable7:
    def test_parking_ns_longest(self, report):
        medians = report.median_ttl_hours
        assert medians[ContentCategory.PARKING]["NS"] == pytest.approx(24.0)
        assert medians[ContentCategory.PLACEHOLDER]["NS"] == pytest.approx(4.0)
        assert medians[ContentCategory.ECOMMERCE]["NS"] == pytest.approx(4.0)

    def test_a_record_median_one_hour_everywhere(self, report):
        for category in ContentCategory:
            assert report.median_ttl_hours[category]["A"] == pytest.approx(1.0)

    def test_ecommerce_aaaa_short(self, report):
        assert report.median_ttl_hours[ContentCategory.ECOMMERCE]["AAAA"] == pytest.approx(0.1)

    def test_dnskey_medians(self, report):
        medians = report.median_ttl_hours
        assert medians[ContentCategory.PARKING]["DNSKEY"] == pytest.approx(24.0)
        assert medians[ContentCategory.ECOMMERCE]["DNSKEY"] == pytest.approx(1.0)
