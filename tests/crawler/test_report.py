"""Tests for repro.crawler.report (Table 5/8/9, Figure 9 aggregations)."""

import pytest

from repro.crawler.crawl import Crawler
from repro.crawler.report import (
    bailiwick_census,
    record_counts,
    ttl_cdf_by_type,
    ttl_zero_census,
)
from repro.crawler.toplists import build_crawl_universe


@pytest.fixture(scope="module")
def result():
    universe = build_crawl_universe(scale=0.001, seed=4)
    return Crawler(universe).crawl()


class TestRecordCounts:
    def test_all_lists_present(self, result):
        counts = record_counts(result)
        assert set(counts) == {"Alexa", "Majestic", "Umbrella", ".nl", "Root"}

    def test_ratio_matches_table5_band(self, result):
        counts = record_counts(result)
        assert counts["Alexa"].ratio > 0.95
        assert counts["Umbrella"].ratio < 0.9

    def test_shared_hosting_ratios(self, result):
        counts = record_counts(result)
        # .nl reflects heavy shared hosting (Table 5: NS ratio 190).
        nl_ratio = counts[".nl"].unique_ratio("NS")
        alexa_ratio = counts["Alexa"].unique_ratio("NS")
        assert nl_ratio > alexa_ratio > 1.0

    def test_unique_ratio_none_when_absent(self, result):
        counts = record_counts(result)
        assert counts["Root"].unique_ratio("DNSKEY") is None


class TestTtlCdfs:
    def test_fig9_ns_longest_a_shortest(self, result):
        cdfs = ttl_cdf_by_type(result)
        for list_name in ("Alexa", "Majestic"):
            per_type = cdfs[list_name]
            assert per_type["NS"].median >= per_type["A"].median

    def test_root_records_long_lived(self, result):
        cdfs = ttl_cdf_by_type(result)
        # §5.1: ~80 % of root records at 1–2 day TTLs.
        assert cdfs["Root"]["NS"].fraction_below(86399) < 0.3

    def test_umbrella_short_ttls(self, result):
        cdfs = ttl_cdf_by_type(result)
        assert cdfs["Umbrella"]["NS"].fraction_below(60) > 0.15

    def test_human_chosen_values_dominate(self, result):
        cdfs = ttl_cdf_by_type(result)
        alexa_ns = cdfs["Alexa"]["NS"]
        common = sum(
            alexa_ns.fraction_at(v) for v in (300, 3600, 7200, 21600, 86400, 172800)
        )
        assert common > 0.9


class TestTtlZero:
    def test_table8_shape(self, result):
        census = ttl_zero_census(result)
        # TTL=0 exists but is rare (Table 8 vs Table 5 scale).
        total_zero = sum(census["Alexa"][t] for t in ("NS", "A", "AAAA", "MX"))
        assert 0 < total_zero < 50

    def test_root_has_no_zeros(self, result):
        census = ttl_zero_census(result)
        assert all(v == 0 for v in census["Root"].values())

    def test_unique_counts_domains_once(self, result):
        census = ttl_zero_census(result)
        for per_type in census.values():
            per_rtype_total = sum(v for k, v in per_type.items() if k != "unique")
            assert per_type["unique"] <= per_rtype_total or per_rtype_total == 0


class TestBailiwickCensus:
    def test_popular_lists_mostly_out(self, result):
        census = bailiwick_census(result)
        for list_name in ("Alexa", "Majestic", ".nl"):
            assert census[list_name].percent_out > 85.0

    def test_root_split(self, result):
        census = bailiwick_census(result)
        root = census["Root"]
        assert 30.0 < root.percent_out < 70.0
        assert root.in_only > 0

    def test_umbrella_cname_heavy(self, result):
        census = bailiwick_census(result)
        umbrella = census["Umbrella"]
        assert umbrella.cname > umbrella.respond_ns

    def test_counts_consistent(self, result):
        census = bailiwick_census(result)
        for block in census.values():
            assert block.respond_ns == block.out_only + block.in_only + block.mixed
            assert block.respond_ns + block.cname + block.soa <= block.responsive
