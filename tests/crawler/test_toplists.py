"""Tests for repro.crawler.toplists."""

import pytest

from repro.crawler.toplists import (
    LIST_PROFILES,
    NL_CATEGORY_SHARES,
    build_crawl_universe,
)


@pytest.fixture(scope="module")
def universe():
    return build_crawl_universe(scale=0.0005, seed=2)


class TestProfiles:
    def test_all_five_lists(self):
        assert set(LIST_PROFILES) == {"alexa", "majestic", "umbrella", "nl", "root"}

    def test_buckets_have_positive_weights(self):
        for profile in LIST_PROFILES.values():
            for buckets in (profile.ttl.ns, profile.ttl.a, profile.ttl.mx):
                assert all(weight > 0 for _, weight in buckets)
                assert all(ttl >= 0 for ttl, _ in buckets)

    def test_bailiwick_weights_sum_to_one(self):
        for profile in LIST_PROFILES.values():
            assert abs(sum(profile.bailiwick) - 1.0) < 1e-6

    def test_umbrella_short_ns_mass(self):
        # §5.1: "25% of its domains with NS records are under 1 minute".
        profile = LIST_PROFILES["umbrella"]
        short = sum(w for ttl, w in profile.ttl.ns if ttl <= 60)
        assert 0.2 < short < 0.35

    def test_root_long_ttl_mass(self):
        profile = LIST_PROFILES["root"]
        long = sum(w for ttl, w in profile.ttl.ns if ttl >= 86400)
        assert long > 0.75

    def test_nl_category_shares_sum_to_one(self):
        assert abs(sum(NL_CATEGORY_SHARES.values()) - 1.0) < 1e-9


class TestUniverse:
    def test_all_lists_generated(self, universe):
        assert set(universe.lists) == set(LIST_PROFILES)

    def test_deterministic(self):
        a = build_crawl_universe(scale=0.0002, seed=9)
        b = build_crawl_universe(scale=0.0002, seed=9)
        assert [str(d.name) for d in a.domains] == [str(d.name) for d in b.domains]
        assert [d.responsive for d in a.domains] == [d.responsive for d in b.domains]

    def test_responsiveness_rates(self, universe):
        for list_name, profile in LIST_PROFILES.items():
            domains = universe.lists[list_name]
            rate = sum(d.responsive for d in domains) / len(domains)
            assert abs(rate - profile.responsive_rate) < 0.1

    def test_responsive_domains_are_served(self, universe):
        from repro.dns.message import Message
        from repro.dns.rdtypes import RdataType

        served = 0
        for domain in universe.lists["alexa"]:
            if not domain.responsive or domain.kind != "apex":
                continue
            tld = domain.parent.labels[0]
            tld_zone = universe.tld_zones[tld]
            result = tld_zone.lookup(domain.name, RdataType.NS)
            assert result.status.name == "DELEGATION"
            served += 1
        assert served > 0

    def test_unresponsive_not_delegated(self, universe):
        from repro.dns.rdtypes import RdataType
        from repro.dns.zone import LookupStatus

        for domain in universe.lists["alexa"]:
            if domain.responsive or domain.format == "TLD":
                continue
            tld_zone = universe.tld_zones[domain.parent.labels[0]]
            result = tld_zone.lookup(domain.name, RdataType.NS)
            assert result.status is LookupStatus.NXDOMAIN

    def test_nl_domains_carry_categories(self, universe):
        categorized = [d for d in universe.lists["nl"] if d.category is not None]
        assert categorized
        assert {d.category for d in categorized} <= {
            "placeholder", "ecommerce", "parking"
        }

    def test_root_entries_are_tlds(self, universe):
        assert all(len(d.name) == 1 for d in universe.lists["root"])

    def test_host_addresses_resolve_ns_names(self, universe):
        for domain in universe.lists["majestic"]:
            if not domain.responsive:
                continue
            for ns_name in domain.ns_names:
                if not ns_name.is_subdomain_of(domain.name):
                    assert ns_name in universe.host_addresses
