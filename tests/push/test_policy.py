"""Tests for PushPolicy (validation, payload round-trip, backoff)."""

import pytest

from repro.push import PushPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = PushPolicy()
        assert policy.keepalive_interval_s == 30.0
        assert policy.update_in_place

    def test_rejects_bad_keepalive(self):
        with pytest.raises(ValueError):
            PushPolicy(keepalive_interval_s=0.0)

    def test_rejects_bad_subscription_bound(self):
        with pytest.raises(ValueError):
            PushPolicy(max_subscriptions=0)

    def test_bad_backoff_fails_at_construction(self):
        # BackoffPolicy validates the reconnect knobs; the policy must
        # surface that on __init__, not on the first session break.
        with pytest.raises(ValueError):
            PushPolicy(reconnect_factor=0.5)
        with pytest.raises(ValueError):
            PushPolicy(reconnect_jitter=1.5)

    def test_backoff_carries_the_reconnect_knobs(self):
        policy = PushPolicy(
            reconnect_timeout_s=2.0, reconnect_retries=4,
            reconnect_factor=3.0, reconnect_jitter=0.0,
        )
        backoff = policy.backoff()
        assert backoff.timeout == 2.0
        assert backoff.retries == 4
        assert backoff.factor == 3.0


class TestPayload:
    def test_round_trips(self):
        policy = PushPolicy(keepalive_interval_s=15.0, update_in_place=False)
        assert PushPolicy.from_payload(policy.to_payload()) == policy

    def test_rejects_unknown_fields(self):
        payload = PushPolicy().to_payload()
        payload["mystery"] = 1
        with pytest.raises(ValueError, match="mystery"):
            PushPolicy.from_payload(payload)

    def test_with_replaces_fields(self):
        policy = PushPolicy().with_(update_in_place=False)
        assert not policy.update_in_place
        assert policy.keepalive_interval_s == 30.0


class TestDescribe:
    def test_names_the_notify_mode(self):
        assert "update" in PushPolicy().describe()
        assert "invalidate" in PushPolicy(update_in_place=False).describe()
