"""Tests for the resolver-side PushClient (repro.push.subscriber)."""

import pytest

from repro.core.worlds import build_push_world
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.metrics.registry import MetricsRegistry
from repro.net.topology import Region
from repro.push import PushClient, PushPolicy, attach_publisher, derive_client_seed
from repro.resolver.cache import Cache, Credibility
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver

WWW = Name("www.pushed.example.")


def make_rig(ttl=300, policy=None, publisher=True):
    testbed = build_push_world(ttl=ttl)
    pub = attach_publisher(testbed.server, testbed.world.network) if publisher else None
    endpoint = testbed.world.topology.endpoint_in_region(Region.EU, "sub")
    cache = Cache()
    client = PushClient(
        endpoint, testbed.world.network, cache, policy or PushPolicy()
    )
    return testbed, pub, client, cache


def cached_address(cache, now):
    entry = cache.get(WWW, RdataType.A, now)
    return None if entry is None else str(entry.rrset.rdatas[0])


class TestSeed:
    def test_is_a_pure_function_of_the_address(self):
        assert derive_client_seed("10.0.0.1") == derive_client_seed("10.0.0.1")
        assert derive_client_seed("10.0.0.1") != derive_client_seed("10.0.0.2")


class TestNoteAnswer:
    def test_subscribes_and_reconciles(self):
        testbed, pub, client, cache = make_rig()
        client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
        assert client.subscription_count() == 1
        assert client.alive_session_count() == 1
        assert pub.subscriber_count() == 1
        # The SUBSCRIBE response's RRset landed in the cache.
        assert cached_address(cache, 1.0) == "203.0.113.10"

    def test_noop_without_a_publisher(self):
        testbed, _, client, cache = make_rig(publisher=False)
        client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
        assert client.session_count() == 0
        assert cached_address(cache, 1.0) is None

    def test_noop_for_unknown_server(self):
        _, _, client, _ = make_rig()
        client.note_answer(WWW, RdataType.A, "203.0.113.250", 0.0)
        assert client.session_count() == 0

    def test_respects_the_subscription_bound(self):
        testbed, pub, client, _ = make_rig(
            policy=PushPolicy(max_subscriptions=1)
        )
        client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
        client.note_answer(
            Name("ns1.pushed.example."), RdataType.A,
            testbed.target_address, 1.0,
        )
        assert client.subscription_count() == 1

    def test_restart_drops_sessions(self):
        testbed, _, client, _ = make_rig()
        client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
        client.restart()
        assert client.session_count() == 0
        assert client.subscription_count() == 0


class TestPump:
    def test_applies_a_delivered_notify(self):
        testbed, pub, client, cache = make_rig()
        client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
        testbed.apply_change(0)
        pub.publish(WWW, RdataType.A, 100.0)
        assert client.pump(100.0) == 0  # frame still in flight
        assert client.pump(110.0) == 1
        assert cached_address(cache, 110.0) == testbed.content_address(0)
        assert client.notifications_applied == 1

    def test_invalidate_mode_expires_instead(self):
        testbed, pub, client, cache = make_rig(
            policy=PushPolicy(update_in_place=False)
        )
        client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
        # Invalidate mode never applies pushed RRsets, so seed the cache
        # through the normal path the resolver would have used.
        zone_rrset = testbed.zone.get(WWW, RdataType.A)
        cache.put(zone_rrset, Credibility.AUTH_ANSWER, 0.0)
        assert cached_address(cache, 1.0) == "203.0.113.10"
        testbed.apply_change(0)
        pub.publish(WWW, RdataType.A, 100.0)
        assert client.pump(110.0) == 1
        # The entry is force-expired: the next lookup misses.
        assert cached_address(cache, 110.0) is None

    def test_keepalive_rides_the_idle_session(self):
        testbed, _, client, _ = make_rig(
            policy=PushPolicy(keepalive_interval_s=30.0)
        )
        client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
        session = client._channels[testbed.target_address].session
        client.pump(10.0)
        assert session.keepalives == 0
        client.pump(30.0)
        assert session.keepalives == 1
        client.pump(31.0)  # interval restarts from the last probe
        assert session.keepalives == 1


class TestOutageRecovery:
    def outage_rig(self):
        testbed, pub, client, cache = make_rig(
            policy=PushPolicy(reconnect_jitter=0.0)
        )
        plan = FaultPlan(
            faults=(FaultSpec(kind="server_outage", start=100.0,
                              duration=100.0, target=testbed.target_address),),
            name="t", seed=1,
        )
        testbed.world.network.attach_faults(FaultInjector(plan, seed=1))
        return testbed, pub, client, cache

    def test_break_reconnect_resubscribe(self):
        testbed, pub, client, cache = self.outage_rig()
        client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
        testbed.apply_change(0)
        pub.publish(WWW, RdataType.A, 110.0)  # doomed: resets the session
        assert client.pump(120.0) == 0  # poll discovers the break
        assert client.alive_session_count() == 0
        channel = client._channels[testbed.target_address]
        assert channel.retry_at > 120.0
        # Retries during the window keep failing and keep backing off.
        client.pump(channel.retry_at)
        assert client.alive_session_count() == 0
        # After the window lifts, the next due retry reconnects and the
        # re-SUBSCRIBE reconciles the renumbered record into the cache.
        client.pump(250.0)
        assert client.alive_session_count() == 1
        assert client.reconnects == 1
        assert client.subscription_count() == 1
        assert cached_address(cache, 250.0) == testbed.content_address(0)

    def test_keepalive_discovers_a_quiet_break(self):
        testbed, _, client, _ = self.outage_rig()
        client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
        # No NOTIFY traffic: the keepalive due at t=30k lands inside the
        # outage window and breaks the session client-side.
        client.pump(30.0)
        assert client.alive_session_count() == 1
        client.pump(110.0)
        assert client.alive_session_count() == 0

    def test_reconnect_sequence_is_reproducible(self):
        def run():
            testbed, pub, client, cache = self.outage_rig()
            registry = MetricsRegistry()
            testbed.world.network.attach_metrics(registry)
            client.note_answer(WWW, RdataType.A, testbed.target_address, 0.0)
            events = []
            for step in range(30):
                now = float(step * 10)
                if step == 11:  # t=110, inside the outage
                    testbed.apply_change(0)
                    pub.publish(WWW, RdataType.A, now)
                events.append((client.pump(now), client.alive_session_count()))
            return events, registry.snapshot().to_json()

        first_events, first_metrics = run()
        second_events, second_metrics = run()
        assert first_events == second_events
        assert first_metrics == second_metrics
        assert any(alive == 0 for _, alive in first_events)


class TestResolverIntegration:
    def test_resolution_subscribes_and_pump_applies(self):
        testbed = build_push_world(ttl=86400)
        pub = attach_publisher(testbed.server, testbed.world.network)
        world = testbed.world
        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU, "res"),
            network=world.network,
            root_hints=world.hints,
            policy=ResolverPolicy.pushing(),
        )
        out = resolver.resolve(WWW, RdataType.A, now=0.0)
        assert str(out.answers[0].rdatas[0]) == "203.0.113.10"
        assert pub.subscriber_count() == 1
        # Renumber mid-TTL: polling would stay stale for a day; the
        # pushed update lands on the next pump and the resolver answers
        # fresh from cache without another upstream query.
        testbed.apply_change(0)
        pub.publish(WWW, RdataType.A, 600.0)
        sent_before = resolver.queries_sent
        out = resolver.resolve(WWW, RdataType.A, now=650.0)
        assert out.cache_hit
        assert str(out.answers[0].rdatas[0]) == testbed.content_address(0)
        assert resolver.queries_sent == sent_before
