"""Tests for the authoritative-side publisher (repro.push.publisher)."""

import pytest

from repro.core.worlds import build_push_world
from repro.dns.message import Message, Opcode, Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.metrics.registry import MetricsRegistry
from repro.net.topology import Region
from repro.push import attach_publisher

WWW = Name("www.pushed.example.")


def subscribe_query(name=WWW, rdtype=RdataType.A):
    query = Message.make_query(name, rdtype, recursion_desired=False)
    query.opcode = Opcode.SUBSCRIBE
    return query


def unsubscribe_query(name=WWW, rdtype=RdataType.A):
    query = subscribe_query(name, rdtype)
    query.opcode = Opcode.UNSUBSCRIBE
    return query


@pytest.fixture
def rig():
    testbed = build_push_world(ttl=300)
    publisher = attach_publisher(testbed.server, testbed.world.network)
    client = testbed.world.topology.endpoint_in_region(Region.EU, "cli")
    return testbed, publisher, client


class TestSubscribe:
    def test_response_carries_the_current_rrset(self, rig):
        testbed, publisher, client = rig
        response = testbed.server.handle_query(subscribe_query(), client, 0.0)
        assert response.rcode is Rcode.NOERROR
        rrset = response.answer_rrset()
        assert rrset is not None
        assert str(rrset.rdatas[0]) == "203.0.113.10"
        assert publisher.subscriber_count() == 1
        assert publisher.subscription_count() == 1

    def test_without_publisher_subscribe_is_notimp(self):
        testbed = build_push_world(ttl=300)  # no attach_publisher
        client = testbed.world.topology.endpoint_in_region(Region.EU, "cli")
        response = testbed.server.handle_query(subscribe_query(), client, 0.0)
        assert response.rcode is Rcode.NOTIMP

    def test_resubscribe_is_idempotent(self, rig):
        testbed, publisher, client = rig
        testbed.server.handle_query(subscribe_query(), client, 0.0)
        testbed.server.handle_query(subscribe_query(), client, 1.0)
        assert publisher.subscriber_count() == 1
        assert publisher.subscription_count() == 1

    def test_subscriber_bound_refuses(self):
        testbed = build_push_world(ttl=300)
        attach_publisher(testbed.server, testbed.world.network,
                         max_subscribers=1)
        topology = testbed.world.topology
        first = topology.endpoint_in_region(Region.EU, "one")
        second = topology.endpoint_in_region(Region.EU, "two")
        assert testbed.server.handle_query(
            subscribe_query(), first, 0.0).rcode is Rcode.NOERROR
        assert testbed.server.handle_query(
            subscribe_query(), second, 0.0).rcode is Rcode.REFUSED

    def test_per_session_bound_refuses(self):
        testbed = build_push_world(ttl=300)
        attach_publisher(testbed.server, testbed.world.network,
                         max_subscriptions_per_session=1)
        client = testbed.world.topology.endpoint_in_region(Region.EU, "cli")
        assert testbed.server.handle_query(
            subscribe_query(), client, 0.0).rcode is Rcode.NOERROR
        other = subscribe_query(Name("ns1.pushed.example."), RdataType.A)
        assert testbed.server.handle_query(
            other, client, 1.0).rcode is Rcode.REFUSED

    def test_unsubscribe_forgets_the_subscriber(self, rig):
        testbed, publisher, client = rig
        testbed.server.handle_query(subscribe_query(), client, 0.0)
        response = testbed.server.handle_query(
            unsubscribe_query(), client, 1.0)
        assert response.rcode is Rcode.NOERROR
        assert publisher.subscriber_count() == 0
        assert publisher.publish(WWW, RdataType.A, 2.0) == 0


class TestPublish:
    def test_no_subscribers_enqueues_nothing(self, rig):
        testbed, publisher, client = rig
        assert publisher.publish(WWW, RdataType.A, 10.0) == 0
        assert publisher.last_change(WWW, RdataType.A) == 10.0

    def test_notify_delivers_after_one_way_delay(self, rig):
        testbed, publisher, client = rig
        testbed.server.handle_query(subscribe_query(), client, 0.0)
        testbed.apply_change(0)
        assert publisher.publish(WWW, RdataType.A, 100.0) == 1
        frames, broken = publisher.poll(client.address, 100.0)
        assert frames == () and broken is None  # still in flight
        frames, broken = publisher.poll(client.address, 110.0)
        assert broken is None
        assert len(frames) == 1
        frame = frames[0]
        assert frame.changed_at == 100.0
        assert 100.0 < frame.deliver_at <= 110.0
        assert str(frame.rrset.rdatas[0]) == testbed.content_address(0)
        # Delivery drains the queue: a second poll is empty.
        assert publisher.poll(client.address, 120.0) == ((), None)

    def test_unknown_address_polls_as_broken(self, rig):
        _, publisher, client = rig
        frames, broken = publisher.poll("203.0.113.250", 5.0)
        assert frames == ()
        assert broken is not None

    def test_changes_coalesce_per_key(self, rig):
        testbed, publisher, client = rig
        registry = MetricsRegistry()
        testbed.world.network.attach_metrics(registry)
        testbed.server.handle_query(subscribe_query(), client, 0.0)
        testbed.apply_change(0)
        publisher.publish(WWW, RdataType.A, 100.0)
        testbed.apply_change(1)
        publisher.publish(WWW, RdataType.A, 101.0)
        frames, _ = publisher.poll(client.address, 200.0)
        assert len(frames) == 1  # the older frame was replaced
        assert str(frames[0].rrset.rdatas[0]) == testbed.content_address(1)
        metrics = registry.snapshot().to_payload()["metrics"]
        assert metrics["push.coalesced"]["value"] == 1
        assert metrics["push.notifications"]["value"] == 2

    def test_removal_publishes_an_invalidation(self, rig):
        testbed, publisher, client = rig
        testbed.server.handle_query(subscribe_query(), client, 0.0)
        testbed.zone.remove(WWW, RdataType.A)
        publisher.publish(WWW, RdataType.A, 100.0)
        frames, _ = publisher.poll(client.address, 200.0)
        assert len(frames) == 1
        assert frames[0].rrset is None


class TestFaultedDelivery:
    def test_doomed_notify_resets_the_session(self, rig):
        testbed, publisher, client = rig
        network = testbed.world.network
        registry = MetricsRegistry()
        network.attach_metrics(registry)
        plan = FaultPlan(
            faults=(FaultSpec(kind="server_outage", start=50.0,
                              duration=100.0, target=testbed.target_address),),
            name="t", seed=1,
        )
        network.attach_faults(FaultInjector(plan, seed=1))
        testbed.server.handle_query(subscribe_query(), client, 0.0)
        testbed.apply_change(0)
        assert publisher.publish(WWW, RdataType.A, 60.0) == 0  # doomed
        frames, broken = publisher.poll(client.address, 70.0)
        assert frames == ()
        assert broken == 60.0
        metrics = registry.snapshot().to_payload()["metrics"]
        assert metrics["push.session_resets"]["value"] == 1
        # Frames published while broken are not queued either.
        testbed.apply_change(1)
        assert publisher.publish(WWW, RdataType.A, 80.0) == 0

    def test_resubscribe_clears_the_break(self, rig):
        testbed, publisher, client = rig
        network = testbed.world.network
        plan = FaultPlan(
            faults=(FaultSpec(kind="server_outage", start=50.0,
                              duration=100.0, target=testbed.target_address),),
            name="t", seed=1,
        )
        network.attach_faults(FaultInjector(plan, seed=1))
        testbed.server.handle_query(subscribe_query(), client, 0.0)
        testbed.apply_change(0)
        publisher.publish(WWW, RdataType.A, 60.0)  # dooms the session
        # After the window, a fresh SUBSCRIBE reconciles and re-arms.
        response = testbed.server.handle_query(subscribe_query(), client, 200.0)
        assert response.rcode is Rcode.NOERROR
        assert str(response.answer_rrset().rdatas[0]) == testbed.content_address(0)
        testbed.apply_change(1)
        assert publisher.publish(WWW, RdataType.A, 210.0) == 1
        frames, broken = publisher.poll(client.address, 220.0)
        assert broken is None
        assert len(frames) == 1
