"""Tests for the repro.push subscription subsystem."""
