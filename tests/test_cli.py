"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestRecommend:
    def test_general(self, capsys):
        assert main(["recommend"]) == 0
        out = capsys.readouterr().out
        assert "NS TTL" in out

    def test_registry_flags(self, capsys):
        assert main(["recommend", "--kind", "registry", "--no-parent-control"]) == 0
        out = capsys.readouterr().out
        assert "86400" in out
        assert "parent" in out.lower()

    def test_ddos(self, capsys):
        assert main(["recommend", "--ddos-mitigation"]) == 0
        out = capsys.readouterr().out
        assert "300 s" in out


class TestEffective:
    def test_uy_configuration(self, capsys):
        assert main([
            "effective", "--parent-ns", "172800", "--child-ns", "300",
            "--parent-glue", "172800", "--child-address", "120",
        ]) == 0
        out = capsys.readouterr().out
        assert "child" in out and "parent" in out
        assert "172800s" in out and "300s" in out
        assert "never" in out  # the sticky row

    def test_out_of_bailiwick(self, capsys):
        assert main([
            "effective", "--parent-ns", "3600", "--child-ns", "3600",
            "--child-address", "7200", "--out-of-bailiwick",
            "--policies", "child",
        ]) == 0
        out = capsys.readouterr().out
        assert "7200s" in out


class TestHitrate:
    def test_table_and_knee(self, capsys):
        assert main(["hitrate", "--rate-per-hour", "12", "--ttl", "300", "3600"]) == 0
        out = capsys.readouterr().out
        assert "50.0%" in out  # λT = 1 at 300 s and 12/hour
        assert "90% of the caching benefit" in out


class TestAudit:
    CHILD = (
        "$ORIGIN z.example.\n"
        "$TTL 300\n"
        "@ IN SOA ns1 h 1 7200 3600 86400 300\n"
        "@ 300 IN NS ns1\n"
        "ns1 7200 IN A 192.0.2.1\n"
    )

    def test_audit_reports_findings(self, tmp_path, capsys):
        zonefile = tmp_path / "child.zone"
        zonefile.write_text(self.CHILD)
        assert main(["audit", str(zonefile)]) == 0  # warnings only
        out = capsys.readouterr().out
        assert "address-outlives-ns" in out
        assert "ns-ttl-short" in out

    def test_audit_error_exit_code(self, tmp_path, capsys):
        zonefile = tmp_path / "broken.zone"
        zonefile.write_text(
            "$ORIGIN z.example.\n@ 30 IN NS ns1\n"  # in-bailiwick, no glue
        )
        assert main(["audit", str(zonefile)]) == 1
        assert "missing-inbailiwick-address" in capsys.readouterr().out

    def test_audit_with_parent(self, tmp_path, capsys):
        child = tmp_path / "child.zone"
        child.write_text(self.CHILD)
        parent = tmp_path / "parent.zone"
        parent.write_text(
            "$ORIGIN example.\n"
            "z 172800 IN NS ns1.z\n"
            "ns1.z 172800 IN A 192.0.2.1\n"
        )
        main(["audit", str(child), "--parent-zonefile", str(parent)])
        assert "parent-child-ttl-mismatch" in capsys.readouterr().out


class TestAnalyze:
    @pytest.fixture
    def dataset(self, tmp_path, mini_world):
        from repro.atlas.datasets import save_results
        from repro.atlas.measurement import Measurement, MeasurementSpec
        from repro.atlas.population import AtlasConfig, AtlasPopulation
        from repro.dns.rdtypes import RdataType

        population = AtlasPopulation(
            AtlasConfig(probes=15, seed=4),
            mini_world.topology,
            mini_world.network,
            mini_world.hints,
            mini_world.root_zone,
        )
        spec = MeasurementSpec("example.tld.", RdataType.NS, interval=600, duration=1200)
        results = Measurement(spec=spec, vantage_points=population.vantage_points()).run()
        path = tmp_path / "run.jsonl"
        save_results(results, path)
        return path

    def test_summary_printed(self, dataset, capsys):
        assert main(["analyze", str(dataset)]) == 0
        out = capsys.readouterr().out
        assert "probes" in out and "TTLs:" in out and "RTTs:" in out

    def test_centricity_with_ttls(self, dataset, capsys):
        assert main([
            "analyze", str(dataset), "--parent-ttl", "7200", "--child-ttl", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "centricity:" in out


class TestReproduce:
    def test_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "172800" in out and "a.nic.cl" in out

    def test_fig10(self, capsys):
        assert main(["reproduce", "fig10", "--probes", "40"]) == 0
        out = capsys.readouterr().out
        assert "TTL 300s" in out and "TTL 86400s" in out

    def test_unknown_artifact(self, capsys):
        assert main(["reproduce", "nope"]) == 2
        err = capsys.readouterr().err
        assert "table1" in err


class TestSimulationCommands:
    def test_demo_uy(self, capsys):
        assert main(["demo-uy", "--probes", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "TTL 300s" in out and "TTL 86400s" in out

    def test_crawl(self, capsys):
        assert main(["crawl", "--scale", "0.0002", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "out-of-bailiwick" in out
        assert "Alexa" in out


class TestMetricsCommand:
    def _snapshot_file(self, tmp_path):
        from repro.metrics import MetricsRegistry, log_buckets

        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(42)
        registry.labeled_counter("auth.queries").inc("ns1.example", 7)
        registry.histogram("net.rtt_ms", bounds=log_buckets(1.0, 1000.0)).observe(35.0)
        path = tmp_path / "metrics.json"
        path.write_text(registry.snapshot().to_json(include_host=True))
        return path

    def test_render(self, tmp_path, capsys):
        path = self._snapshot_file(tmp_path)
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cache.hits" in out and "42" in out
        assert "auth.queries" in out and "net.rtt_ms" in out

    def test_validate_only(self, tmp_path, capsys):
        path = self._snapshot_file(tmp_path)
        assert main(["metrics", str(path), "--validate-only"]) == 0
        out = capsys.readouterr().out
        assert "valid (3 metrics)" in out

    def test_invalid_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"schema": "repro.metrics/v1", "metrics": {"c": '
                        '{"kind": "counter", "domain": "sim", "value": -5}}}')
        assert main(["metrics", str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid" in err

    def test_run_writes_metrics_file(self, tmp_path, capsys):
        out = tmp_path / "campaign.json"
        assert main([
            "run", "t2-uy", "--probes", "8", "--duration", "600",
            "--metrics", str(out), "--quiet",
        ]) == 0
        capsys.readouterr()
        assert main(["metrics", str(out), "--validate-only"]) == 0
        assert "valid" in capsys.readouterr().out


class TestRunProfileAndSnapshots:
    def test_serial_profile_writes_whole_campaign_stats(self, tmp_path, capsys):
        import pstats

        stats = tmp_path / "campaign.pstats"
        assert main([
            "run", "t2-uy", "--probes", "8", "--duration", "600",
            "--profile", str(stats), "--quiet",
        ]) == 0
        capsys.readouterr()
        assert stats.exists()
        assert pstats.Stats(str(stats)).total_calls > 0

    def test_parallel_profile_writes_per_shard_stats(self, tmp_path, capsys):
        stats = tmp_path / "campaign.pstats"
        assert main([
            "run", "t2-uy", "--probes", "8", "--duration", "600",
            "--parallel", "2", "--shards", "2",
            "--profile", str(stats), "--quiet",
        ]) == 0
        capsys.readouterr()
        assert not stats.exists()  # per-shard dumps only under --parallel
        shard_files = sorted(p.name for p in tmp_path.glob("campaign.pstats.shard-*"))
        assert shard_files == ["campaign.pstats.shard-0000",
                               "campaign.pstats.shard-0001"]

    def test_snapshot_every_requires_run_dir(self, capsys):
        assert main([
            "run", "t2-uy", "--probes", "8", "--duration", "600",
            "--snapshot-every", "50", "--quiet",
        ]) == 2
        assert "--run-dir" in capsys.readouterr().err

    def test_snapshot_every_rejects_non_centricity_campaign(self, tmp_path, capsys):
        assert main([
            "run", "ddos", "--run-dir", str(tmp_path / "run"),
            "--snapshot-every", "50", "--quiet",
        ]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_snapshot_run_completes_and_leaves_no_wsnap(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main([
            "run", "t2-uy", "--probes", "8", "--duration", "600",
            "--run-dir", str(run_dir), "--snapshot-every", "10", "--quiet",
        ]) == 0
        capsys.readouterr()
        assert list(run_dir.glob("shard-*.pkl"))
        assert not list(run_dir.glob("wsnap-*.pkl"))


class TestServeLoadgen:
    def test_loadgen_requires_port(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["loadgen"])

    def test_serve_rejects_unknown_world(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["serve", "--world", "narnia"])

    def test_analyze_querylog_flag(self, tmp_path, capsys):
        from repro.dns.name import Name
        from repro.dns.rdtypes import RdataType
        from repro.server.querylog import QueryLog, QueryLogEntry

        log = QueryLog()
        for ts in (0.0, 10.0, 3700.0):
            log.append(QueryLogEntry(ts, "10.0.0.1", 0, Name("www.domain1.nl."),
                                     RdataType.A, "serve"))
        path = tmp_path / "live.jsonl"
        log.write_jsonl(path)
        assert main(["analyze", str(path), "--querylog"]) == 0
        out = capsys.readouterr().out
        assert "groups (client, qname)" in out
        assert "min interarrival" in out
