"""Unit tests for the metrics registry primitives."""

import pytest

from repro.metrics.registry import (
    FIXED_POINT,
    HOST,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    SIM,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricError,
    MetricsRegistry,
    log_buckets,
)
from repro.metrics.schema import validate_payload


class TestLogBuckets:
    def test_pure_function_of_arguments(self):
        assert log_buckets(0.1, 1000.0) == log_buckets(0.1, 1000.0)

    def test_covers_range_and_strictly_increases(self):
        bounds = log_buckets(0.5, 2000.0, per_decade=4)
        assert bounds[0] <= 0.5
        assert bounds[-1] >= 2000.0
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_rejects_bad_ranges(self):
        with pytest.raises(MetricError):
            log_buckets(0.0, 10.0)
        with pytest.raises(MetricError):
            log_buckets(10.0, 10.0)
        with pytest.raises(MetricError):
            log_buckets(1.0, 10.0, per_decade=0)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(MetricError):
            Counter("c").inc(-1)

    def test_labeled_family(self):
        family = LabeledCounter("f")
        family.inc("a")
        family.inc("b", 3)
        family.inc("a")
        assert family.values == {"a": 2, "b": 3}
        assert list(family.payload()["values"]) == ["a", "b"]  # sorted
        with pytest.raises(MetricError):
            family.inc("a", -2)


class TestGauge:
    def test_high_watermark(self):
        gauge = Gauge("g")
        assert gauge.value is None
        gauge.record(5)
        gauge.record(2)  # lower value never lowers the watermark
        assert gauge.value == 5
        gauge.record(9)
        assert gauge.value == 9


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 100.0, 1000.0):
            hist.observe(value)
        # <=1, <=10, <=100, overflow
        assert hist.counts == [2, 1, 1]
        assert hist.overflow == 1
        assert hist.count == 5
        assert hist.min == 0.5
        assert hist.max == 1000.0

    def test_fixed_point_sum_and_mean(self):
        hist = Histogram("h", bounds=(10.0,))
        hist.observe(0.1)
        hist.observe(0.2)
        assert hist.sum_fp == round(0.1 * FIXED_POINT) + round(0.2 * FIXED_POINT)
        assert hist.mean == pytest.approx(0.15)

    def test_empty_mean_is_none(self):
        assert Histogram("h", bounds=(1.0,)).mean is None

    def test_rejects_bad_bounds(self):
        with pytest.raises(MetricError):
            Histogram("h", bounds=())
        with pytest.raises(MetricError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("h", bounds=(2.0, 1.0))


class TestNullMetrics:
    def test_all_operations_are_noops(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(10)
        NULL_GAUGE.record(5)
        NULL_HISTOGRAM.observe(1.0)


class TestRegistry:
    def test_redeclaration_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("c")
        second = registry.counter("c")
        assert first is second
        hist = registry.histogram("h", bounds=(1.0, 2.0))
        assert registry.histogram("h", bounds=(1.0, 2.0)) is hist

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_domain_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", domain=SIM)
        with pytest.raises(MetricError):
            registry.counter("x", domain=HOST)

    def test_histogram_bounds_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("h", bounds=(1.0, 3.0))

    def test_snapshot_covers_every_metric_and_validates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.labeled_counter("f").inc("srv", 2)
        registry.gauge("g").record(7)
        registry.histogram("h", bounds=(1.0, 10.0)).observe(2.0)
        registry.counter("wall", domain=HOST).inc()
        snapshot = registry.snapshot()
        assert len(snapshot) == 5
        assert snapshot.value("c") == 3
        assert validate_payload(snapshot.to_payload()) == []
        # The sim-only view drops host telemetry but nothing else.
        sim_only = snapshot.without_host()
        assert len(sim_only) == 4
        assert sim_only.value("wall") is None


class TestSchemaRejectsCorruption:
    def _payload(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", bounds=(1.0, 10.0)).observe(3.0)
        return registry.snapshot().to_payload()

    def test_valid_baseline(self):
        assert validate_payload(self._payload()) == []

    def test_wrong_schema_id(self):
        payload = self._payload()
        payload["schema"] = "repro.metrics/v0"
        assert validate_payload(payload)

    def test_negative_counter(self):
        payload = self._payload()
        payload["metrics"]["c"]["value"] = -1
        assert validate_payload(payload)

    def test_counts_length_mismatch(self):
        payload = self._payload()
        payload["metrics"]["h"]["counts"] = [1]
        assert validate_payload(payload)

    def test_count_totals_mismatch(self):
        payload = self._payload()
        payload["metrics"]["h"]["count"] = 99
        assert validate_payload(payload)

    def test_bad_domain(self):
        payload = self._payload()
        payload["metrics"]["c"]["domain"] = "cluster"
        assert validate_payload(payload)

    def test_unknown_kind(self):
        payload = self._payload()
        payload["metrics"]["c"]["kind"] = "summary"
        assert validate_payload(payload)
