"""Shard-independence of exported metrics (the determinism contract).

ISSUE 2 acceptance: a campaign run serially and the same campaign run
with ``--parallel 4`` on the same shard plan must export *byte-identical*
metrics JSON.  Sim-domain metrics are facts of the simulated world, so
neither the worker count nor shard completion order may leak into them;
host-domain telemetry (wall clocks, retries) is excluded from the export
by default, which is exactly what makes the bytes comparable.
"""

import pytest

from repro.cli import main
from repro.core.scenarios import scenario_uy_ns
from repro.metrics.schema import validate_json

SEED = 20191021
PROBES = 32
DURATION = 1200.0


@pytest.fixture(scope="module")
def serial_metrics():
    run = scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION, parallelism=1, shards=4
    )
    assert run.metrics is not None
    return run.metrics


def test_serial_vs_parallel_4_byte_identical(serial_metrics):
    parallel = scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION, parallelism=4, shards=4
    )
    assert parallel.metrics is not None
    assert parallel.metrics.to_json() == serial_metrics.to_json()


def test_exported_metrics_cover_the_instrumented_surface(serial_metrics):
    exported = serial_metrics.without_host()
    names = set(exported.metrics)
    # One metric from each instrumented layer must survive the merge.
    assert "resolver.client_queries" in names
    assert "resolver.upstream_queries" in names
    assert "cache.hits" in names
    assert "net.exchanges" in names
    assert "net.rtt_ms" in names
    assert "auth.queries" in names
    # Queries actually flowed through every layer.
    assert exported.value("resolver.client_queries") > 0
    assert exported.value("net.exchanges") > 0


def test_host_telemetry_present_but_not_exported(serial_metrics):
    # The campaign-level snapshot carries runner wall-clock telemetry...
    assert serial_metrics.value("runner.shards_completed") == 4
    # ...but the canonical export drops it.
    assert "runner.shards_completed" not in serial_metrics.without_host().metrics
    assert "runner" not in serial_metrics.to_json()


def test_predict_serial_vs_parallel_4_byte_identical():
    """ISSUE 6 acceptance: the determinism contract survives the predict
    layer — refresh-ahead and stale-while-revalidate run on the sim
    clock, so worker count still cannot leak into the exported bytes."""
    serial = scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION, parallelism=1,
        shards=4, predict=True,
    )
    parallel = scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION, parallelism=4,
        shards=4, predict=True,
    )
    assert serial.metrics is not None and parallel.metrics is not None
    assert parallel.metrics.to_json() == serial.metrics.to_json()
    # The predict layer actually engaged (child TTL 300 s, rounds 600 s
    # apart: the second round is answered stale while revalidating) and
    # its counters export in the sim domain.
    exported = serial.metrics.without_host()
    assert exported.value("predict.stale_answered") > 0
    assert exported.value("predict.revalidations") > 0


def test_cli_run_metrics_files_byte_identical(tmp_path):
    """`repro run --metrics` end to end: serial vs --parallel 4 file bytes."""
    paths = {}
    for label, parallel in (("serial", "1"), ("parallel", "4")):
        out = tmp_path / f"{label}.json"
        code = main([
            "run", "t2-uy", "--probes", str(PROBES),
            "--duration", str(int(DURATION)), "--seed", str(SEED),
            "--parallel", parallel, "--shards", "4",
            "--metrics", str(out), "--quiet",
        ])
        assert code == 0
        paths[label] = out
    serial_bytes = paths["serial"].read_bytes()
    assert serial_bytes == paths["parallel"].read_bytes()
    assert validate_json(serial_bytes.decode("ascii")) == []
