"""Arrival schedules and Zipf popularity sampling."""

import math
import random

import pytest

from repro.loadgen.arrivals import (
    ZipfSampler,
    fixed_schedule,
    poisson_schedule,
    qnames_for_ranks,
)


def test_fixed_schedule_spacing():
    times = list(fixed_schedule(10.0, 1.0))
    assert len(times) == 10
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(gap == pytest.approx(0.1) for gap in gaps)
    assert times[0] == 0.0
    assert times[-1] < 1.0


def test_fixed_schedule_rejects_bad_rate():
    with pytest.raises(ValueError):
        list(fixed_schedule(0.0, 1.0))
    with pytest.raises(ValueError):
        list(fixed_schedule(10.0, -1.0))


def test_poisson_schedule_rate_and_bounds():
    rng = random.Random(42)
    times = list(poisson_schedule(1000.0, 5.0, rng))
    assert all(0.0 < t < 5.0 for t in times)
    assert times == sorted(times)
    # Mean count is rate * duration = 5000; 4 sigma ≈ ±283.
    assert 4700 < len(times) < 5300


def test_poisson_schedule_is_seed_deterministic():
    a = list(poisson_schedule(100.0, 2.0, random.Random(7)))
    b = list(poisson_schedule(100.0, 2.0, random.Random(7)))
    assert a == b


def test_zipf_sampler_rank_distribution():
    sampler = ZipfSampler(population=100, exponent=1.0)
    rng = random.Random(1)
    draws = sampler.ranks(20_000, rng)
    assert all(0 <= rank < 100 for rank in draws)
    counts = [0] * 100
    for rank in draws:
        counts[rank] += 1
    # Under Zipf(1), rank 0 is twice as popular as rank 1, 10x rank 9.
    assert counts[0] > counts[1] > counts[10]
    harmonic = math.fsum(1.0 / k for k in range(1, 101))
    expected_top = 20_000 / harmonic
    assert counts[0] == pytest.approx(expected_top, rel=0.15)


def test_zipf_exponent_zero_is_uniform():
    sampler = ZipfSampler(population=10, exponent=0.0)
    rng = random.Random(3)
    draws = sampler.ranks(20_000, rng)
    counts = [0] * 10
    for rank in draws:
        counts[rank] += 1
    assert min(counts) > 0.8 * max(counts)


def test_zipf_sampler_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ZipfSampler(population=0)
    with pytest.raises(ValueError):
        ZipfSampler(population=10, exponent=-1.0)


def test_qnames_for_ranks_template():
    assert qnames_for_ranks("www.domain{}.nl.", [0, 3]) == [
        "www.domain0.nl.",
        "www.domain3.nl.",
    ]
    with pytest.raises(ValueError):
        qnames_for_ranks("www.example.com.", [0])
