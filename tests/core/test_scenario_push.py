"""Tests for scenario_push_vs_poll (pub/sub updates vs TTL polling)."""

import pytest

from repro.core.scenarios import PUSH_POPULATIONS, scenario_push_vs_poll


class TestPushVsPoll:
    @pytest.fixture(scope="class")
    def run(self):
        # changes=6 keeps the change interval (~514 s) off the 60 s probe
        # grid, so neither channel gets a free alignment win.
        return scenario_push_vs_poll(
            seed=0, ttls=(60, 86400), duration=3600.0, changes=6
        )

    def test_covers_every_cell(self, run):
        assert {(c.plan, c.mode, c.ttl) for c in run.cells} == {
            (plan, mode, ttl)
            for plan in ("renumbering", "ddos")
            for mode in ("poll", "push")
            for ttl in (60, 86400)
        }

    def test_polling_trades_volume_for_freshness(self, run):
        # The paper's axis: short TTLs poll hard but stay fresh, long
        # TTLs are quiet but serve the old address for hours.
        fresh = run.cell("renumbering", "poll", 60)
        quiet = run.cell("renumbering", "poll", 86400)
        assert fresh.auth_queries > 10 * quiet.auth_queries
        assert fresh.mean_staleness_s < quiet.mean_staleness_s
        assert quiet.stale_probes > fresh.stale_probes

    def test_push_beats_polling_on_both_axes(self, run):
        # The headline: push at TTL 86400 posts (a) less authoritative
        # volume than TTL-60 polling at better freshness, and (b) a far
        # smaller staleness window than TTL-86400 polling at comparable
        # volume (SUBSCRIBEs only add a handful of exchanges).
        push = run.cell("renumbering", "push", 86400)
        loud = run.cell("renumbering", "poll", 60)
        quiet = run.cell("renumbering", "poll", 86400)
        assert push.auth_queries < loud.auth_queries / 10
        assert push.mean_staleness_s <= loud.mean_staleness_s
        assert push.auth_queries < quiet.auth_queries + 2 * run.seats
        assert push.mean_staleness_s < quiet.mean_staleness_s / 5
        assert push.notifications > 0
        assert push.stale_rate < quiet.stale_rate

    def test_ddos_long_ttl_push_keeps_answering(self, run):
        # Under the outage, short-TTL polling goes dark on expiry while
        # the push seats ride their long-TTL cache through the window.
        dark = run.cell("ddos", "poll", 60)
        push = run.cell("ddos", "push", 86400)
        assert dark.answered_rate < 1.0
        assert push.answered_rate == 1.0
        assert push.answered_rate > dark.answered_rate

    def test_ddos_breaks_and_recovers_push_sessions(self, run):
        # A NOTIFY published into the outage dooms sessions; the seeded
        # backoff reconnects and re-SUBSCRIBEs after the window lifts.
        push = run.cell("ddos", "push", 86400)
        assert push.session_resets > 0
        assert push.reconnects > 0

    def test_projection_scales_linearly(self, run):
        cell = run.cell("renumbering", "poll", 60)
        assert [p for p, _ in cell.projected_auth_qps] == list(PUSH_POPULATIONS)
        base_population, base_qps = cell.projected_auth_qps[0]
        for population, qps in cell.projected_auth_qps:
            assert qps == pytest.approx(base_qps * population / base_population)
        # The measured per-seat rate and the projection agree at 1 seat.
        assert base_qps * 3600.0 / base_population == pytest.approx(
            cell.per_seat_auth_per_hour
        )

    def test_analytic_poll_miss_rate_brackets_the_measurement(self, run):
        # Jung et al.: a seat probing at rate lambda misses (and hence
        # queries the authoritative) at lambda/(1 + lambda*TTL) qps.
        cell = run.cell("renumbering", "poll", 86400)
        lam = 1.0 / run.probe_interval
        assert cell.analytic_poll_miss_qps == pytest.approx(
            lam / (1.0 + lam * 86400), rel=1e-6
        )

    def test_metrics_ride_along(self, run):
        assert run.metrics is not None
        exported = run.metrics.without_host()
        assert exported.value("push.notifications") > 0
        assert exported.value("push.subscribes") > 0
        assert "push.staleness_s" in exported.metrics

    def test_profiles_cover_the_ttl_axis(self, run):
        assert set(run.staleness_profile("renumbering", "push")) == {60, 86400}
        assert set(run.volume_profile("ddos", "poll")) == {60, 86400}

    def test_cell_lookup_raises_on_unknown(self, run):
        with pytest.raises(KeyError):
            run.cell("renumbering", "poll", 12345)


class TestValidation:
    def test_rejects_unknown_plan(self):
        with pytest.raises(ValueError):
            scenario_push_vs_poll(plans=("meteor",))

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            scenario_push_vs_poll(modes=("carrier-pigeon",))

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            scenario_push_vs_poll(ttls=())


class TestDeterminism:
    def test_serial_vs_parallel_byte_identical(self):
        kwargs = dict(seed=3, ttls=(60, 86400), duration=1800.0, changes=3)
        serial = scenario_push_vs_poll(parallelism=1, **kwargs)
        parallel = scenario_push_vs_poll(parallelism=4, **kwargs)
        assert parallel.metrics.to_json() == serial.metrics.to_json()
        assert parallel.cells == serial.cells

    def test_inline_matches_sharded(self):
        kwargs = dict(seed=3, ttls=(60, 86400), duration=1800.0, changes=3)
        inline = scenario_push_vs_poll(**kwargs)
        sharded = scenario_push_vs_poll(parallelism=2, **kwargs)
        assert inline.cells == sharded.cells
        assert inline.metrics.to_json() == sharded.metrics.to_json()
