"""Tests for scenario_prefetch_tradeoff (the repro.predict figure)."""

import pytest

from repro.core.scenarios import scenario_prefetch_tradeoff


class TestTradeoff:
    @pytest.fixture(scope="class")
    def run(self):
        return scenario_prefetch_tradeoff(
            seed=7, ttls=(60, 86400), duration=600.0
        )

    def test_covers_every_cell(self, run):
        assert {(c.mode, c.ttl) for c in run.cells} == {
            (mode, ttl)
            for mode in ("off", "onhit", "ahead")
            for ttl in (60, 86400)
        }

    def test_refresh_ahead_lifts_short_ttl_hit_rate(self, run):
        # The whole point of the figure: at TTL 60 s refresh-ahead keeps
        # the hot set warm, so its hit rate beats predict-off.
        assert run.cell("ahead", 60).hit_rate > run.cell("off", 60).hit_rate
        assert run.cell("ahead", 60).refreshes > 0

    def test_long_ttl_modes_converge(self, run):
        # Nothing expires inside a 600 s run at TTL 86400: no refreshes,
        # no stale answers, identical authoritative volume.
        for mode in ("off", "onhit", "ahead"):
            cell = run.cell(mode, 86400)
            assert cell.refreshes == 0
            assert cell.stale_answered == 0
        assert (run.cell("ahead", 86400).auth_queries
                == run.cell("off", 86400).auth_queries)

    def test_predict_metrics_ride_along(self, run):
        assert run.metrics is not None
        exported = run.metrics.without_host()
        assert exported.value("predict.refreshes") > 0
        # auth.queries is labelled per server; every label saw traffic.
        assert all(v > 0 for v in exported.value("auth.queries").values())

    def test_profiles_cover_the_ttl_axis(self, run):
        assert set(run.p99_profile("ahead")) == {60, 86400}
        assert set(run.auth_profile("off")) == {60, 86400}

    def test_cell_lookup_raises_on_unknown(self, run):
        with pytest.raises(KeyError):
            run.cell("off", 12345)


class TestDeterminism:
    def test_serial_vs_parallel_byte_identical(self):
        kwargs = dict(seed=7, ttls=(60,), duration=300.0)
        serial = scenario_prefetch_tradeoff(parallelism=1, **kwargs)
        parallel = scenario_prefetch_tradeoff(parallelism=3, **kwargs)
        assert parallel.metrics.to_json() == serial.metrics.to_json()
        assert parallel.cells == serial.cells


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown prefetch mode"):
            scenario_prefetch_tradeoff(modes=("off", "turbo"))

    def test_empty_ttls_rejected(self):
        with pytest.raises(ValueError):
            scenario_prefetch_tradeoff(ttls=())
