"""Tests for scenario_ecs_cdn (the ECS + CDN interplay figure)."""

import pytest

from repro.core.scenarios import scenario_ecs_cdn


class TestEcsCdn:
    @pytest.fixture(scope="class")
    def run(self):
        return scenario_ecs_cdn(
            seed=7, ttls=(60, 3600), subnets=6, rate_qps=0.6, duration=900.0
        )

    def test_covers_every_cell(self, run):
        assert {(c.mode, c.ttl) for c in run.cells} == {
            (mode, ttl)
            for mode in ("isp", "public", "public-ecs")
            for ttl in (60, 3600)
        }

    def test_isp_resolvers_always_hit_the_local_site(self, run):
        # Each ISP resolver sits in the client's own region, so the
        # resolver-address fallback already routes correctly.
        for ttl in (60, 3600):
            assert run.cell("isp", ttl).local_site_rate == 1.0

    def test_public_resolver_misroutes_without_ecs(self, run):
        # The anycast catchment sends AS clients to the EU egress; the
        # CDN sees only the egress address, so a third of the population
        # never reaches its local site — the misdirection ECS repairs.
        for ttl in (60, 3600):
            cell = run.cell("public", ttl)
            assert cell.local_site_rate < 1.0
            assert cell.scoped_entries == 0
            assert dict(cell.site_counts).get("as", 0) == 0

    def test_ecs_restores_local_routing(self, run):
        for ttl in (60, 3600):
            cell = run.cell("public-ecs", ttl)
            assert cell.local_site_rate == 1.0
            assert dict(cell.site_counts).get("as", 0) > 0

    def test_ecs_pays_with_cache_cardinality(self, run):
        # One scoped entry per client subnet, against at most one global
        # entry per egress without ECS — the cardinality trade-off.  At
        # TTL 60 entries expire mid-run and pruned buckets can end below
        # the full count; at TTL 3600 nothing expires inside the run.
        assert run.cell("public-ecs", 3600).scoped_entries == run.subnets
        for ttl in (60, 3600):
            ecs = run.cell("public-ecs", ttl)
            assert 0 < ecs.scoped_entries <= run.subnets
            assert ecs.hit_rate <= run.cell("public", ttl).hit_rate

    def test_higher_ttl_lifts_hit_rate_in_every_mode(self, run):
        for mode in ("isp", "public", "public-ecs"):
            assert (run.cell(mode, 3600).hit_rate
                    >= run.cell(mode, 60).hit_rate)
            assert (run.cell(mode, 3600).auth_queries
                    <= run.cell(mode, 60).auth_queries)

    def test_metrics_ride_along(self, run):
        assert run.metrics is not None
        exported = run.metrics.without_host()
        # The gauge is a per-cache high watermark; the two egress caches
        # split the client subnets, so the merged max is below the total.
        assert 0 < exported.value("cache.ecs_scoped_entries") <= run.subnets
        sites = exported.value("cdn.site_answers")
        assert all(count > 0 for count in sites.values())

    def test_profiles_cover_the_ttl_axis(self, run):
        assert set(run.latency_profile("public")) == {60, 3600}
        assert set(run.hit_profile("public-ecs")) == {60, 3600}

    def test_cell_lookup_raises_on_unknown(self, run):
        with pytest.raises(KeyError):
            run.cell("isp", 12345)


class TestDeterminism:
    def test_serial_vs_parallel_byte_identical(self):
        kwargs = dict(seed=7, ttls=(60,), subnets=4, rate_qps=0.5, duration=300.0)
        serial = scenario_ecs_cdn(parallelism=1, **kwargs)
        parallel = scenario_ecs_cdn(parallelism=4, **kwargs)
        assert parallel.metrics.to_json() == serial.metrics.to_json()
        assert parallel.cells == serial.cells


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown ECS mode"):
            scenario_ecs_cdn(modes=("isp", "hybrid"))

    def test_empty_ttls_rejected(self):
        with pytest.raises(ValueError):
            scenario_ecs_cdn(ttls=())
