"""Integration tests: each scenario reproduces its paper result's shape.

These run the actual simulations at reduced scale, asserting the
calibration targets from DESIGN.md §5.  They are the slowest tests in the
suite (a few seconds each).
"""

import pytest

from repro.core import scenarios


class TestTable1:
    def test_three_different_ttls(self):
        rows = scenarios.scenario_table1_cl()
        ttls = {row.ttl for row in rows}
        assert {172800, 3600, 43200} <= ttls

    def test_authoritative_flags(self):
        rows = scenarios.scenario_table1_cl()
        root_rows = [r for r in rows if r.server == "a.root-servers.net"]
        child_rows = [r for r in rows if r.server == "a.nic.cl"]
        assert not any(r.authoritative for r in root_rows)
        assert all(r.authoritative for r in child_rows)


@pytest.fixture(scope="module")
def uy_run():
    return scenarios.scenario_uy_ns(seed=1, probes=250, duration=3600)


class TestUyCentricity:
    def test_mostly_child_centric(self, uy_run):
        # §3.2: ~90 % of answers at/below the child TTL.
        assert uy_run.breakdown.child_fraction > 0.8

    def test_parent_centric_minority(self, uy_run):
        # §3.2: roughly 10 % parent-centric; must be present but minority.
        assert 0.01 < uy_run.breakdown.parent_fraction < 0.25

    def test_some_full_parent_ttl(self, uy_run):
        # §3.2: ~2.9 % show the full 172800 s.
        assert uy_run.breakdown.full_parent_fraction < 0.1

    def test_summary_bookkeeping(self, uy_run):
        summary = uy_run.summary
        assert summary["vps"] > summary["probes"]
        assert summary["responses_valid"] > 0

    def test_shared_caches_spread_ttls_below_child_value(self, uy_run):
        """VPs behind shared resolvers see *remaining* TTLs: the Figure 1
        curve has real mass strictly below 300 s, not a point mass at it
        (§3.2's query intervals exceed the TTL, so the spread comes from
        cache sharing across VPs, not repeat hits)."""
        child_ttls = [t for t in uy_run.results.ttls() if t <= 300]
        strictly_below = sum(1 for t in child_ttls if t < 300)
        assert strictly_below / len(child_ttls) > 0.2

    def test_uy_new_ttl_campaign(self):
        """The .uy-NS-new column of Table 2: after the raise, answers
        follow the new one-day child TTL."""
        run = scenarios.scenario_uy_ns(
            seed=3, probes=150, child_ns_ttl=86400, duration=3600
        )
        assert run.breakdown.child_fraction > 0.75
        assert max(run.results.ttls()) <= 172800
        in_new_range = sum(1 for t in run.results.ttls() if t <= 86400)
        assert in_new_range / len(run.results.ttls()) > 0.75


class TestGoogleCo:
    def test_fig2_shape(self):
        run = scenarios.scenario_googleco_ns(seed=1, probes=250)
        # §3.3: ~70 % above the parent TTL (child), ~15 % capped at 21599.
        assert run.breakdown.child_fraction > 0.5
        assert 0.02 < run.breakdown.capped_fraction < 0.35
        assert run.breakdown.parent_fraction < 0.35


class TestAnicuyA:
    def test_child_centric_address(self):
        run = scenarios.scenario_anicuy_a(seed=1, probes=200, duration=3600)
        assert run.breakdown.child_fraction > 0.8
        cdf = run.ttl_cdf()
        assert cdf.fraction_below(120) > 0.8


class TestBailiwick:
    @pytest.fixture(scope="class")
    def in_run(self):
        return scenarios.scenario_bailiwick(seed=1, in_bailiwick=True, probes=150)

    @pytest.fixture(scope="class")
    def out_run(self):
        return scenarios.scenario_bailiwick(seed=1, in_bailiwick=False, probes=150)

    def test_no_switch_before_renumber(self, in_run):
        assert in_run.switched_by_round[0] == 0.0

    def test_in_bailiwick_majority_switches_at_ns_expiry(self, in_run):
        # Figure 6: ~90 % on the new server just after 60 minutes.
        assert in_run.switched_by_round[7] > 0.8
        # …but most still on the old server before that.
        assert in_run.switched_by_round[5] < 0.3

    def test_out_of_bailiwick_switches_at_address_expiry(self, out_run):
        # Figure 7: nothing moves before 120 minutes, most after.
        assert out_run.switched_by_round[11] < 0.2
        assert out_run.switched_by_round[13] > 0.6

    def test_out_has_more_sticky_than_in(self, in_run, out_run):
        # Table 4: 196 vs 1642 VPs — out-of-bailiwick has far more.
        assert len(out_run.sticky_vp_ids) > len(in_run.sticky_vp_ids)

    def test_sticky_minority(self, out_run):
        share = len(out_run.sticky_vp_ids) / len(out_run.results.vp_ids())
        assert 0.02 < share < 0.35


class TestMatchedSticky:
    def test_fig8_sticky_vps_behave_normally_in_bailiwick(self):
        _, _, ratios = scenarios.scenario_matched_sticky(seed=2, probes=120)
        assert ratios
        # Figure 8: the same VPs mostly retrieve from the new server.
        assert sum(1 for r in ratios if r > 0.5) / len(ratios) > 0.5


class TestZurrundeduOffline:
    def test_only_parent_centric_answer(self):
        results, population = scenarios.scenario_zurrundedu_offline(seed=1, probes=150)
        ok = results.valid()
        assert len(ok) > 0
        labels = {
            population.resolver_label.get(r.resolver_address, "?").removeprefix("fwd+")
            for r in ok
        }
        assert labels <= {"opendns-like", "parent", "local-root"}


class TestNlPassive:
    @pytest.fixture(scope="class")
    def run(self):
        return scenarios.scenario_nl_passive(seed=1, resolvers=250, domain_count=150)

    def test_split_near_paper(self, run):
        # §3.4: 52 % multi-query vs 48 % single-query.
        assert 0.35 < run.breakdown.multi_fraction < 0.75

    def test_some_singles_are_child_elsewhere(self, run):
        # §3.4: ~14 % of single-query resolvers multi-query other names.
        assert run.breakdown.single_but_child_elsewhere > 0

    def test_hourly_bumps(self, run):
        from repro.analysis.interarrival import hourly_bumps

        bumps = hourly_bumps(run.min_interarrivals)
        assert bumps.get(1, 0) >= 1  # re-fetch at the 1-hour child TTL

    def test_only_monitored_servers_counted(self, run):
        world = run.world
        for name in world.monitored:
            assert len(world.world.servers[name].query_log) > 0


class TestUyNatural:
    def test_fig10_latency_drop(self):
        run = scenarios.scenario_uy_natural(seed=1, probes=200, duration=3600)
        from repro.analysis.cdf import ECDF

        before = ECDF(run.before.rtts_ms())
        after = ECDF(run.after.rtts_ms())
        # §5.3: large median and tail reductions.
        assert after.median < before.median / 2
        assert after.quantile(0.75) < before.quantile(0.75)

    def test_fig10b_every_region_improves(self):
        run = scenarios.scenario_uy_natural(seed=1, probes=250, duration=3600)
        from repro.analysis.latencystats import regional_summaries

        before = regional_summaries(run.rtts_by_region("before"))
        after = regional_summaries(run.rtts_by_region("after"))
        improved = 0
        compared = 0
        for region in before:
            if region in after and before[region].n >= 20 and after[region].n >= 20:
                compared += 1
                improved += after[region].median < before[region].median
        assert compared > 0
        assert improved == compared


class TestControlled:
    @pytest.fixture(scope="class")
    def runs(self):
        return scenarios.scenario_controlled_ttl(seed=1, probes=150)

    def test_long_ttl_cuts_authoritative_load(self, runs):
        # §6.2: ~77 % query reduction with the long TTL.
        reduction_unique = 1 - runs["TTL86400-u"].auth_queries / runs["TTL60-u"].auth_queries
        reduction_shared = 1 - runs["TTL86400-s"].auth_queries / runs["TTL60-s"].auth_queries
        assert reduction_unique > 0.5
        assert reduction_shared > 0.5

    def test_long_ttl_cuts_median_latency(self, runs):
        from repro.analysis.cdf import ECDF

        assert ECDF(runs["TTL86400-u"].rtts_ms()).median < ECDF(
            runs["TTL60-u"].rtts_ms()
        ).median / 2

    def test_caching_beats_anycast_at_median(self, runs):
        from repro.analysis.cdf import ECDF

        anycast = ECDF(runs["TTL60-anycast"].rtts_ms())
        cached = ECDF(runs["TTL86400-s"].rtts_ms())
        short = ECDF(runs["TTL60-s"].rtts_ms())
        # §6.2 ordering: TTL86400 < anycast < TTL60 at the median.
        assert cached.median < anycast.median < short.median

    def test_anycast_helps_the_tail(self, runs):
        from repro.analysis.cdf import ECDF

        anycast = ECDF(runs["TTL60-anycast"].rtts_ms())
        short = ECDF(runs["TTL60-s"].rtts_ms())
        assert anycast.quantile(0.95) < short.quantile(0.95)

    def test_shared_names_warm_caches(self, runs):
        # Shared-name runs see fewer authoritative queries than unique-name
        # runs (other VPs warm the resolver caches).
        assert runs["TTL60-s"].auth_queries < runs["TTL60-u"].auth_queries
