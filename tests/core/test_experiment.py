"""Tests for repro.core.experiment plumbing."""

from repro.core.experiment import ExperimentReport, PaperComparison, make_population
from repro.core.worlds import build_base_world


class TestMakePopulation:
    def test_attaches_to_world(self):
        world = build_base_world(seed=3)
        population = make_population(world, probes=30)
        assert len(population.probes) == 30
        # Recursive resolvers live on the world's fabric and use its hints
        # (forwarders delegate to one that does).
        from repro.resolver.recursive import RecursiveResolver

        recursives = [
            r for r in population.unique_resolvers()
            if isinstance(r, RecursiveResolver)
        ]
        assert recursives
        assert all(r.root_hints == world.hints for r in recursives)

    def test_seed_defaults_to_world_seed(self):
        world_a = build_base_world(seed=9)
        world_b = build_base_world(seed=9)
        pop_a = make_population(world_a, probes=20)
        pop_b = make_population(world_b, probes=20)
        assert [p.endpoint.address for p in pop_a.probes] == [
            p.endpoint.address for p in pop_b.probes
        ]


class TestExperimentReport:
    def test_add_and_render(self):
        report = ExperimentReport(experiment_id="T2", title="centricity")
        report.add("child fraction", "90%", 0.894)
        rendered = report.render()
        assert "T2: centricity" in rendered
        assert "90%" in rendered and "0.894" in rendered

    def test_comparisons_are_strings(self):
        report = ExperimentReport(experiment_id="X", title="t")
        report.add("metric", 1, 2.0)
        (comparison,) = report.comparisons
        assert comparison == PaperComparison("metric", "1", "2.0")
        assert comparison.as_tuple() == ("metric", "1", "2.0")
