"""Tests for scenario_ddos_resilience (§6.1's headline numbers)."""

import pytest

from repro.core.scenarios import scenario_ddos_resilience
from repro.faults import FaultPlan, FaultSpec


class TestHeadlineNumbers:
    @pytest.fixture(scope="class")
    def run(self):
        return scenario_ddos_resilience()

    def test_availability_climbs_with_ttl(self, run):
        profile = run.availability_profile(serve_stale=False)
        assert profile[60] == 0.0
        assert profile[300] == pytest.approx(1 / 12)
        assert profile[1800] == pytest.approx(0.5)
        assert profile[3600] == 1.0
        assert profile[86400] == 1.0

    def test_serve_stale_rescues_every_tier(self, run):
        profile = run.availability_profile(serve_stale=True)
        assert all(value == 1.0 for value in profile.values())
        # The rescue really is stale serving, not hidden freshness: the
        # stale fraction mirrors what the plain tier failed to answer.
        for ttl, plain_availability in run.availability_profile(False).items():
            tier = run.tier(ttl, serve_stale=True)
            assert tier.served_stale_fraction == pytest.approx(
                1.0 - plain_availability
            )

    def test_every_tier_recovers_after_the_attack(self, run):
        assert all(tier.recovered for tier in run.tiers)

    def test_fault_events_are_observable(self, run):
        metrics = run.metrics.to_payload()["metrics"]
        injected = metrics["faults.injected"]["values"]
        assert injected["server_outage"] > 0
        # Tiers whose cache outlived the outage never re-queried the
        # target, so recoveries < tiers; but the short-TTL tiers heal.
        assert metrics["faults.recovered"]["values"]["server_outage"] >= 1
        assert metrics["faults.time_to_recovery_s"]["count"] >= 1
        assert metrics["resolver.served_stale"]["value"] > 0


class TestParameters:
    def test_extra_faults_ride_along(self):
        # A resolver restart mid-attack wipes the cache: even the
        # longest-TTL tier goes dark for the remaining probes.
        plan = FaultPlan(
            faults=(FaultSpec(kind="resolver_restart", start=1000.0,
                              duration=0.0),),
        )
        run = scenario_ddos_resilience(ttls=(86400,), faults=plan)
        tier = run.tier(86400, serve_stale=False)
        assert tier.availability < 1.0
        restarts = run.metrics.to_payload()["metrics"]["resolver.restarts"]
        assert restarts["value"] >= 1

    def test_attack_shorter_than_ttl_is_invisible(self):
        run = scenario_ddos_resilience(ttls=(86400,), attack_seconds=1200.0)
        assert run.tier(86400, serve_stale=False).availability == 1.0

    def test_tier_lookup_raises_on_unknown(self):
        run = scenario_ddos_resilience(ttls=(60,), attack_seconds=600.0)
        with pytest.raises(KeyError):
            run.tier(12345, serve_stale=False)
