"""Tests for the §4.4 OpenDNS case study scenario."""

import pytest

from repro.core.scenarios import scenario_opendns_case_study


@pytest.fixture(scope="module")
def case():
    # Probe every 300 s for ~13.5 h, as the paper's confirmation did
    # (161 responses over 2.5 months of context; ours is one session).
    return scenario_opendns_case_study(seed=0)


class TestOpenDnsCase:
    def test_old_answers_persist_past_every_child_ttl(self, case):
        """Paper: "13 contained answers which were from the original server
        after the expired TTLs."  A single pinned backend keeps serving the
        old answer for the parent's full 2-day TTL — the paper's smaller
        fraction reflects cache-fragmented backend pools, ours is one
        backend observed continuously."""
        assert case.old_answers > 0
        assert case.old_fraction > 0.5

    def test_never_switches_within_parent_ttl(self, case):
        assert case.new_answers == 0

    def test_child_receives_no_ns_queries(self, case):
        """Paper: "our authoritative servers have received no queries for
        NS zurrundedu.com, therefore they could have only trusted the
        parent." """
        assert case.child_ns_queries_seen == 0

    def test_responses_cover_the_whole_window(self, case):
        assert case.responses >= 160
