"""Tests for repro.core.audit (§6.3 as a lint pass)."""

import pytest

from repro.core.audit import Severity, audit_zone, render_report
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.zone import Zone


def clean_zone():
    zone = Zone("good.example.", default_ttl=28800)
    zone.add_soa("ns1.good.example.")
    zone.add("good.example.", RdataType.NS, NS("ns1.good.example."), ttl=28800)
    zone.add("ns1.good.example.", RdataType.A, A("192.0.2.53"), ttl=28800)
    zone.add("www.good.example.", RdataType.A, A("192.0.2.80"), ttl=3600)
    return zone


def codes(findings):
    return {finding.code for finding in findings}


class TestCleanZone:
    def test_no_findings(self):
        assert audit_zone(clean_zone()) == []

    def test_render_clean(self):
        assert "clean" in render_report([])


class TestZeroTtl:
    def test_detected(self):
        zone = clean_zone()
        zone.replace("www.good.example.", RdataType.A, A("192.0.2.80"), ttl=0)
        findings = audit_zone(zone)
        assert "ttl-zero" in codes(findings)


class TestAddressVsNs:
    def test_inbailiwick_address_outliving_ns(self):
        zone = clean_zone()
        zone.replace("ns1.good.example.", RdataType.A, A("192.0.2.53"), ttl=86400)
        findings = audit_zone(zone)
        assert "address-outlives-ns" in codes(findings)

    def test_out_of_bailiwick_address_not_flagged(self):
        zone = clean_zone()
        zone.replace("good.example.", RdataType.NS, NS("ns.provider.net."), ttl=3600)
        zone.remove("ns1.good.example.", RdataType.A)
        assert "address-outlives-ns" not in codes(audit_zone(zone))


class TestShortNs:
    def test_very_short_is_error(self):
        zone = clean_zone()
        zone.set_ttl("good.example.", RdataType.NS, 30)
        findings = audit_zone(zone)
        matching = [f for f in findings if f.code == "ns-ttl-very-short"]
        assert matching and matching[0].severity is Severity.ERROR

    def test_sub_hour_is_info(self):
        zone = clean_zone()
        zone.set_ttl("good.example.", RdataType.NS, 900)
        matching = [f for f in audit_zone(zone) if f.code == "ns-ttl-short"]
        assert matching and matching[0].severity is Severity.INFO


class TestGlue:
    def test_missing_inbailiwick_address(self):
        zone = clean_zone()
        zone.remove("ns1.good.example.", RdataType.A)
        assert "missing-inbailiwick-address" in codes(audit_zone(zone))


class TestParentChild:
    def parent_for(self, zone, ns_ttl=28800, address="192.0.2.53",
                   glue_ttl=28800, target="ns1.good.example."):
        parent = Zone("example.", default_ttl=86400)
        parent.add_soa("ns.example.")
        parent.add("good.example.", RdataType.NS, NS(target), ttl=ns_ttl)
        parent.add(target, RdataType.A, A(address), ttl=glue_ttl)
        return parent

    def test_agreement_passes(self):
        zone = clean_zone()
        assert audit_zone(zone, self.parent_for(zone)) == []

    def test_ttl_mismatch(self):
        zone = clean_zone()
        parent = self.parent_for(zone, ns_ttl=172800)
        assert "parent-child-ttl-mismatch" in codes(audit_zone(zone, parent))

    def test_ns_set_mismatch(self):
        zone = clean_zone()
        parent = self.parent_for(zone, target="ns.other.example.")
        assert "ns-set-mismatch" in codes(audit_zone(zone, parent))

    def test_glue_address_mismatch(self):
        zone = clean_zone()
        parent = self.parent_for(zone, address="198.51.100.9")
        assert "glue-address-mismatch" in codes(audit_zone(zone, parent))

    def test_glue_ttl_mismatch_is_info(self):
        zone = clean_zone()
        parent = self.parent_for(zone, glue_ttl=172800)
        matching = [
            f for f in audit_zone(zone, parent) if f.code == "glue-ttl-mismatch"
        ]
        assert matching and matching[0].severity is Severity.INFO


class TestUyStory:
    def test_2019_uy_configuration_flagged(self):
        """The exact situation the paper found at .uy: child 300 s, parent
        2 days."""
        uy = Zone("uy.", default_ttl=300)
        uy.add_soa("a.nic.uy.")
        uy.add("uy.", RdataType.NS, NS("a.nic.uy."), ttl=300)
        uy.add("a.nic.uy.", RdataType.A, A("192.0.2.10"), ttl=120)
        root = Zone("", default_ttl=172800)
        root.add_soa("a.root-servers.net.")
        root.add("uy.", RdataType.NS, NS("a.nic.uy."), ttl=172800)
        root.add("a.nic.uy.", RdataType.A, A("192.0.2.10"), ttl=172800)
        findings = audit_zone(uy, root)
        assert "parent-child-ttl-mismatch" in codes(findings)
        assert "ns-ttl-short" in codes(findings)

    def test_report_renders_sorted(self):
        zone = clean_zone()
        zone.set_ttl("good.example.", RdataType.NS, 30)
        zone.replace("www.good.example.", RdataType.A, A("192.0.2.80"), ttl=0)
        report = render_report(audit_zone(zone))
        assert report.index("ns-ttl-very-short") < report.index("ttl-zero")
