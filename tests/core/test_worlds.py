"""Tests for repro.core.worlds — the canonical configurations."""

import pytest

from repro.core.worlds import (
    ROOT_DELEGATION_TTL,
    build_base_world,
    build_cachetest_world,
    build_cl_world,
    build_controlled_world,
    build_googleco_world,
    build_nl_world,
    build_uy_world,
)
from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType


def direct_query(world, server_name, qname, qtype):
    from repro.net.topology import Region

    client = world.topology.endpoint_in_region(Region.EU, "test-client")
    query = Message.make_query(qname, qtype, recursion_desired=False)
    response, _ = world.network.exchange(
        client, world.address_of(server_name), query, 0.0
    )
    return response


class TestBaseWorld:
    def test_root_servers_serve_root(self):
        world = build_base_world()
        response = direct_query(world, "a.root-servers.net", ".", RdataType.NS)
        assert response.flags.aa
        assert len(world.hints) == 2


class TestClWorld:
    def test_table1_parent_ttls(self):
        world = build_cl_world()
        response = direct_query(world, "a.root-servers.net", "cl.", RdataType.NS)
        ns = [r for r in response.authority if r.rdtype == RdataType.NS]
        glue = [r for r in response.additional if r.rdtype == RdataType.A]
        assert ns[0].ttl == ROOT_DELEGATION_TTL
        assert glue[0].ttl == ROOT_DELEGATION_TTL

    def test_table1_child_ttls(self):
        world = build_cl_world()
        ns_answer = direct_query(world, "a.nic.cl", "cl.", RdataType.NS)
        a_answer = direct_query(world, "a.nic.cl", "a.nic.cl.", RdataType.A)
        assert ns_answer.answer[0].ttl == 3600
        assert a_answer.answer[0].ttl == 43200
        assert ns_answer.flags.aa and a_answer.flags.aa


class TestUyWorld:
    def test_initial_ttls(self):
        uy = build_uy_world()
        response = direct_query(uy.world, "a.nic.uy", "uy.", RdataType.NS)
        assert response.answer[0].ttl == 300

    def test_natural_experiment_change(self):
        uy = build_uy_world()
        uy.raise_ns_ttl(86400)
        response = direct_query(uy.world, "a.nic.uy", "uy.", RdataType.NS)
        assert response.answer[0].ttl == 86400
        assert uy.child_ns_ttl == 86400

    def test_parent_unchanged_by_child_change(self):
        uy = build_uy_world()
        uy.raise_ns_ttl()
        response = direct_query(uy.world, "a.root-servers.net", "uy.", RdataType.NS)
        assert response.authority[0].ttl == ROOT_DELEGATION_TTL


class TestGoogleCoWorld:
    def test_parent_ns_ttl_900(self):
        world = build_googleco_world()
        response = direct_query(world, "ns.cctld.co", "google.co.", RdataType.NS)
        assert response.is_referral()
        assert response.authority[0].ttl == 900

    def test_child_ns_ttl_345600(self):
        world = build_googleco_world()
        response = direct_query(world, "ns1.google.com", "google.co.", RdataType.NS)
        assert response.flags.aa
        assert response.answer[0].ttl == 345600

    def test_servers_out_of_bailiwick(self):
        world = build_googleco_world()
        response = direct_query(world, "ns.cctld.co", "google.co.", RdataType.NS)
        assert not response.additional  # no glue possible


class TestCachetestWorld:
    def test_in_bailiwick_glue_present(self):
        ct = build_cachetest_world(in_bailiwick=True)
        response = direct_query(
            ct.world, "ns1.cachetest.net", "x.sub.cachetest.net.", RdataType.AAAA
        )
        assert response.is_referral()
        assert any(r.name == Name("ns1.sub.cachetest.net.") for r in response.additional)

    def test_out_of_bailiwick_no_glue(self):
        ct = build_cachetest_world(in_bailiwick=False)
        response = direct_query(
            ct.world, "ns1.cachetest.net", "x.sub.cachetest.net.", RdataType.AAAA
        )
        assert response.is_referral()
        assert not response.additional

    def test_wildcard_answers_with_probe_ids(self):
        ct = build_cachetest_world(in_bailiwick=True)
        client_answer = ct.sub_zone_old.lookup("p77.sub.cachetest.net.", RdataType.AAAA)
        assert str(client_answer.rrsets[0].rdatas[0]) == ct.old_answer
        assert client_answer.rrsets[0].ttl == 60

    def test_renumber_changes_glue_only(self):
        ct = build_cachetest_world(in_bailiwick=True)
        ct.renumber()
        parent = ct.world.zone("cachetest.net.")
        glue = parent.get("ns1.sub.cachetest.net.", RdataType.A)
        assert str(glue.rdatas[0]) == ct.new_server.endpoint.address
        # Old VM still serves its original data.
        old = ct.sub_zone_old.get("ns1.sub.cachetest.net.", RdataType.A)
        assert str(old.rdatas[0]) == ct.old_server.endpoint.address

    def test_renumber_out_of_bailiwick_updates_com_glue(self):
        ct = build_cachetest_world(in_bailiwick=False)
        ct.renumber()
        com = ct.world.zone("com.")
        glue = com.get("ns1.zurrundedu.com.", RdataType.A)
        assert str(glue.rdatas[0]) == ct.new_server.endpoint.address

    def test_take_child_offline(self):
        from repro.net.transport import NetworkTimeout
        from repro.net.topology import Region

        ct = build_cachetest_world(in_bailiwick=False)
        ct.take_child_offline()
        client = ct.world.topology.endpoint_in_region(Region.EU)
        with pytest.raises(NetworkTimeout):
            ct.world.network.exchange(
                client,
                ct.old_server.endpoint.address,
                Message.make_query("sub.cachetest.net.", RdataType.NS),
                0.0,
                retries=0,
            )

    def test_old_and_new_answers_differ(self):
        ct = build_cachetest_world()
        assert ct.old_answer != ct.new_answer


class TestNlWorld:
    def test_four_servers_two_monitored(self):
        nl = build_nl_world(domain_count=20)
        assert len(nl.server_names) == 4
        assert nl.monitored == ["ns1.dns.nl", "ns3.dns.nl"]

    def test_glue_at_root_two_days(self):
        nl = build_nl_world(domain_count=10)
        response = direct_query(nl.world, "a.root-servers.net", "nl.", RdataType.NS)
        glue = [r for r in response.additional if r.rdtype == RdataType.A]
        assert glue and all(r.ttl == ROOT_DELEGATION_TTL for r in glue)

    def test_child_a_ttl_one_hour(self):
        nl = build_nl_world(domain_count=10)
        response = direct_query(nl.world, "ns1.dns.nl", "ns1.dns.nl.", RdataType.A)
        assert response.answer[0].ttl == 3600

    def test_out_of_bailiwick_server_resolvable(self):
        nl = build_nl_world(domain_count=10)
        response = direct_query(nl.world, "ns.isc.org", "sns-pb.isc.org.", RdataType.A)
        assert response.flags.aa and response.answer

    def test_content_domains_served(self):
        nl = build_nl_world(domain_count=10)
        response = direct_query(nl.world, "ns.hoster0.nl", "www.domain0.nl.", RdataType.A)
        assert response.flags.aa and response.answer


class TestControlledWorld:
    def test_anycast_has_45_sites(self):
        world = build_controlled_world()
        assert len(world.anycast.sites) == 45

    def test_ttl_configurations(self):
        world = build_controlled_world()
        assert world.zone_unicast_60.get(
            "*.ttl60.mapache-de-madrid.co.", RdataType.AAAA
        ).ttl == 60
        assert world.zone_unicast_86400.get(
            "*.ttl86400.mapache-de-madrid.co.", RdataType.AAAA
        ).ttl == 86400

    def test_unicast_answers(self):
        world = build_controlled_world()
        response = direct_query(
            world.world,
            "ns1-unicast.mapache-de-madrid.co",
            "p5.ttl60.mapache-de-madrid.co.",
            RdataType.AAAA,
        )
        assert response.flags.aa and response.answer[0].ttl == 60
