"""Tests for repro.core.recommendations (§6.3 guidance)."""

from repro.core.recommendations import (
    AGILE_TTL,
    LONG_TTL_FLOOR,
    LONG_TTL_PREFERRED,
    REGISTRY_TTL,
    SHORT_TTL,
    OperatorKind,
    Recommendation,
    ZoneSituation,
    recommend,
)


class TestGeneralZone:
    def test_long_ttls_preferred(self):
        rec = recommend(ZoneSituation())
        assert rec.ns_ttl >= LONG_TTL_FLOOR
        assert rec.address_ttl >= LONG_TTL_FLOOR

    def test_default_is_eight_hours(self):
        assert recommend(ZoneSituation()).ns_ttl == LONG_TTL_PREFERRED


class TestRegistry:
    def test_one_day(self):
        rec = recommend(ZoneSituation(kind=OperatorKind.TLD_REGISTRY))
        assert rec.ns_ttl == REGISTRY_TTL

    def test_mentions_uy(self):
        rec = recommend(ZoneSituation(kind=OperatorKind.TLD_REGISTRY))
        assert any(".uy" in note for note in rec.notes)


class TestShortTtlUsers:
    def test_ddos_mitigation_gets_short(self):
        rec = recommend(ZoneSituation(uses_dns_ddos_mitigation=True))
        assert rec.address_ttl == SHORT_TTL

    def test_load_balancing_gets_agile(self):
        rec = recommend(ZoneSituation(uses_cdn_load_balancing=True))
        assert rec.address_ttl == AGILE_TTL

    def test_ddos_takes_priority_over_lb(self):
        rec = recommend(
            ZoneSituation(uses_cdn_load_balancing=True, uses_dns_ddos_mitigation=True)
        )
        assert rec.address_ttl == SHORT_TTL


class TestConstraints:
    def test_in_bailiwick_address_capped_at_ns(self):
        # §6.3: in-bailiwick A TTLs should not exceed the NS TTL.
        rec = recommend(ZoneSituation(servers_in_bailiwick=True))
        assert rec.address_ttl <= rec.ns_ttl

    def test_parent_control_note(self):
        rec = recommend(ZoneSituation(controls_parent_ttl=False))
        assert any("parent" in note.lower() for note in rec.notes)

    def test_no_parent_note_when_controlled(self):
        rec = recommend(
            ZoneSituation(kind=OperatorKind.TLD_REGISTRY, controls_parent_ttl=True)
        )
        assert not any("parent-centric" in note for note in rec.notes)

    def test_short_lead_time_note(self):
        rec = recommend(ZoneSituation(planned_changes_lead_time=60))
        assert any("just-before" in note for note in rec.notes)


class TestRendering:
    def test_describe(self):
        rec = Recommendation(ns_ttl=3600, address_ttl=900, notes=("because",))
        text = rec.describe()
        assert "3600 s" in text and "1h" in text and "- because" in text
