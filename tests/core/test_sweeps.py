"""Tests for repro.core.sweeps."""

import pytest

from repro.core.sweeps import (
    AvailabilityPoint,
    ddos_availability_sweep,
    ttl_latency_sweep,
)


class TestTtlLatencySweep:
    @pytest.fixture(scope="class")
    def points(self):
        return ttl_latency_sweep(ttls=(60, 3600, 86400), probes=80, seed=2)

    def test_one_point_per_ttl(self, points):
        assert [p.child_ns_ttl for p in points] == [60, 3600, 86400]

    def test_latency_decreases_with_ttl(self, points):
        medians = [p.median_ms for p in points]
        assert medians[0] > medians[-1]

    def test_long_ttl_reaches_cache_latency(self, points):
        # At TTL 86400 almost every query is a warm-cache hit: a few ms.
        assert points[-1].median_ms < 20.0

    def test_samples_recorded(self, points):
        assert all(p.samples > 0 for p in points)


class TestDdosAvailabilitySweep:
    @pytest.fixture(scope="class")
    def points(self):
        return ddos_availability_sweep(
            ttls=(60, 1800, 3600, 86400), attack_seconds=3600.0, seed=1
        )

    def test_availability_monotone_in_ttl(self, points):
        availability = [p.availability for p in points]
        assert availability == sorted(availability)

    def test_short_ttl_goes_dark(self, points):
        by_ttl = {p.ttl: p for p in points}
        assert by_ttl[60].availability < 0.1

    def test_ttl_longer_than_attack_survives(self, points):
        """Moura et al. / paper §6.1: caches outliving the attack keep
        answering throughout."""
        by_ttl = {p.ttl: p for p in points}
        assert by_ttl[86400].availability == 1.0

    def test_ttl_equal_to_attack_mostly_survives(self, points):
        by_ttl = {p.ttl: p for p in points}
        assert by_ttl[3600].availability > 0.9

    def test_serve_stale_rescues_short_ttls(self):
        plain = ddos_availability_sweep(ttls=(60,), attack_seconds=1800.0, seed=1)
        stale = ddos_availability_sweep(
            ttls=(60,), attack_seconds=1800.0, seed=1, serve_stale=True
        )
        assert stale[0].availability > plain[0].availability
        assert stale[0].availability == 1.0
        assert stale[0].served_stale_fraction > 0.5

    def test_point_shape(self, points):
        assert all(isinstance(p, AvailabilityPoint) for p in points)
        assert all(0.0 <= p.availability <= 1.0 for p in points)
