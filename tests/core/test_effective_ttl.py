"""Tests for repro.core.effective_ttl — the paper's analytical model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.effective_ttl import (
    DelegationConfig,
    effective_record_ttl,
    effective_switch_time,
    population_effective_ttls,
)
from repro.resolver.policy import ResolverPolicy

#: The §4 experiment configuration: NS 3600, A 7200, both sides equal.
PAPER_CONFIG_IN = DelegationConfig(
    parent_ns_ttl=3600, child_ns_ttl=3600,
    parent_glue_ttl=7200, child_address_ttl=7200, in_bailiwick=True,
)
PAPER_CONFIG_OUT = DelegationConfig(
    parent_ns_ttl=3600, child_ns_ttl=3600,
    parent_glue_ttl=None, child_address_ttl=7200, in_bailiwick=False,
)
#: The .uy configuration (§3.2).
UY_CONFIG = DelegationConfig(
    parent_ns_ttl=172800, child_ns_ttl=300,
    parent_glue_ttl=172800, child_address_ttl=120, in_bailiwick=True,
)


class TestValidation:
    def test_out_of_bailiwick_glue_rejected(self):
        with pytest.raises(ValueError):
            DelegationConfig(
                parent_ns_ttl=300, child_ns_ttl=300,
                parent_glue_ttl=300, in_bailiwick=False,
            )

    def test_bad_ttls_rejected(self):
        with pytest.raises(Exception):
            DelegationConfig(parent_ns_ttl=-1, child_ns_ttl=300)


class TestCentricity:
    def test_child_centric_uses_child_ttls(self):
        effective = effective_record_ttl(UY_CONFIG, ResolverPolicy.child_centric())
        assert effective.ns_ttl == 300
        assert effective.address_ttl == 120
        assert effective.controller == "child"

    def test_parent_centric_uses_parent_ttls(self):
        effective = effective_record_ttl(UY_CONFIG, ResolverPolicy.parent_centric())
        assert effective.ns_ttl == 172800
        assert effective.address_ttl == 172800
        assert effective.controller == "parent"

    def test_capping_applies(self):
        config = DelegationConfig(
            parent_ns_ttl=900, child_ns_ttl=345600,
            parent_glue_ttl=None, child_address_ttl=345600, in_bailiwick=False,
        )
        effective = effective_record_ttl(config, ResolverPolicy.capping(21599))
        assert effective.ns_ttl == 21599

    def test_floor_applies(self):
        policy = ResolverPolicy(ttl_floor=60)
        config = DelegationConfig(
            parent_ns_ttl=172800, child_ns_ttl=5,
            parent_glue_ttl=172800, child_address_ttl=5,
        )
        effective = effective_record_ttl(config, policy)
        assert effective.ns_ttl == 60

    def test_child_falls_back_to_glue_when_no_child_address(self):
        config = DelegationConfig(
            parent_ns_ttl=3600, child_ns_ttl=300, parent_glue_ttl=7200,
        )
        effective = effective_record_ttl(config, ResolverPolicy.child_centric())
        assert effective.address_ttl == 7200


class TestSwitchTime:
    """The §4 closed-form results."""

    def test_in_bailiwick_linked_switches_at_ns_expiry(self):
        # Figure 6: ~90 % switch at 60 minutes.
        assert effective_switch_time(PAPER_CONFIG_IN, ResolverPolicy.child_centric()) == 3600

    def test_in_bailiwick_unlinked_switches_at_address_expiry(self):
        # Figure 6's minority: old server used until 120 minutes.
        assert effective_switch_time(PAPER_CONFIG_IN, ResolverPolicy.unlinked()) == 7200

    def test_out_of_bailiwick_switches_at_address_expiry(self):
        # Figure 7: switch at 120 minutes.
        assert effective_switch_time(PAPER_CONFIG_OUT, ResolverPolicy.child_centric()) == 7200

    def test_sticky_never_switches(self):
        assert effective_switch_time(PAPER_CONFIG_IN, ResolverPolicy.sticky_resolver()) is None

    def test_parent_centric_holds_longest(self):
        config = DelegationConfig(
            parent_ns_ttl=172800, child_ns_ttl=3600,
            parent_glue_ttl=172800, child_address_ttl=7200,
        )
        # §4.4: OpenDNS holds the old address for the parent's 2 days.
        assert effective_switch_time(config, ResolverPolicy.parent_centric()) == 172800

    def test_switch_time_included_in_effective(self):
        effective = effective_record_ttl(PAPER_CONFIG_IN, ResolverPolicy.child_centric())
        assert effective.switch_time == 3600


class TestPopulation:
    def test_population_split(self):
        shares = {
            ResolverPolicy.child_centric(): 0.9,
            ResolverPolicy.parent_centric(): 0.1,
        }
        split = population_effective_ttls(UY_CONFIG, shares)
        assert split["child_controlled"] == pytest.approx(0.9)
        assert split["parent_controlled"] == pytest.approx(0.1)

    def test_empty_shares_rejected(self):
        with pytest.raises(ValueError):
            population_effective_ttls(UY_CONFIG, {})


ttl_values = st.integers(min_value=1, max_value=604800)


@given(ttl_values, ttl_values, ttl_values, ttl_values)
def test_effective_never_exceeds_any_configured_maximum(parent_ns, child_ns, glue, child_a):
    """Property: the effective TTL never exceeds the max of its inputs."""
    config = DelegationConfig(
        parent_ns_ttl=parent_ns, child_ns_ttl=child_ns,
        parent_glue_ttl=glue, child_address_ttl=child_a, in_bailiwick=True,
    )
    maximum = max(parent_ns, child_ns, glue, child_a)
    for policy in (
        ResolverPolicy.child_centric(),
        ResolverPolicy.parent_centric(),
        ResolverPolicy.capping(21599),
        ResolverPolicy.unlinked(),
    ):
        effective = effective_record_ttl(config, policy)
        assert effective.ns_ttl <= maximum
        if effective.address_ttl is not None:
            assert effective.address_ttl <= maximum
        if effective.switch_time is not None:
            assert effective.switch_time <= maximum


@given(ttl_values, ttl_values)
def test_linked_switch_never_later_than_unlinked(ns_ttl, a_ttl):
    config = DelegationConfig(
        parent_ns_ttl=ns_ttl, child_ns_ttl=ns_ttl,
        parent_glue_ttl=a_ttl, child_address_ttl=a_ttl, in_bailiwick=True,
    )
    linked = effective_switch_time(config, ResolverPolicy.child_centric())
    unlinked = effective_switch_time(config, ResolverPolicy.unlinked())
    assert linked <= unlinked
