"""Tests for repro.atlas.population."""

from repro.atlas.population import AtlasConfig, AtlasPopulation
from repro.net.topology import Region


def build(mini_world, probes=120, seed=0, **overrides):
    config = AtlasConfig(probes=probes, seed=seed, **overrides)
    return AtlasPopulation(
        config=config,
        topology=mini_world.topology,
        network=mini_world.network,
        root_hints=mini_world.hints,
        root_zone=mini_world.root_zone,
    )


class TestShape:
    def test_probe_count(self, mini_world):
        assert len(build(mini_world, probes=50).probes) == 50

    def test_more_vps_than_probes(self, mini_world):
        population = build(mini_world, probes=200)
        summary = population.summary()
        # Paper §3.2: ~15k VPs from ~9k probes → ratio ≈ 1.3–1.8.
        assert 1.1 < summary["vps"] / summary["probes"] < 2.0

    def test_fewer_ases_than_probes(self, mini_world):
        summary = build(mini_world, probes=200).summary()
        assert summary["ases"] < summary["probes"]

    def test_every_probe_has_a_stub(self, mini_world):
        population = build(mini_world, probes=60)
        assert all(probe.stubs for probe in population.probes)

    def test_europe_skew(self, mini_world):
        population = build(mini_world, probes=400)
        eu = sum(1 for p in population.probes if p.region is Region.EU)
        assert 0.4 < eu / len(population.probes) < 0.7

    def test_deterministic(self, mini_world):
        from tests.conftest import build_mini_world

        a = build(mini_world, probes=50, seed=3)
        b = build(build_mini_world(), probes=50, seed=3)
        assert [p.endpoint.address for p in a.probes] == [
            p.endpoint.address for p in b.probes
        ]


class TestResolverSharing:
    def test_public_backends_bounded(self, mini_world):
        population = build(mini_world, probes=300)
        labels = population.resolver_label
        google_instances = [a for a, l in labels.items() if l == "google-like"]
        assert len(google_instances) <= 6

    def test_as_resolver_sharing(self, mini_world):
        population = build(mini_world, probes=300)
        # VPs outnumber unique resolvers because probes in the same AS
        # share, and public services are shared globally.
        assert len(population.vantage_points()) > len(population.unique_resolvers())

    def test_behaviour_mix_represented(self, mini_world):
        population = build(mini_world, probes=500, seed=1)
        labels = set(population.resolver_label.values())
        assert "child" in labels
        assert "google-like" in labels
        assert "opendns-like" in labels

    def test_reset_caches(self, mini_world):
        from repro.dns.rdtypes import RdataType

        population = build(mini_world, probes=20)
        vp = population.vantage_points()[0]
        vp.stub.query("www.example.tld.", RdataType.A, now=0.0)
        assert len(vp.stub.resolver.cache) > 0
        population.reset_caches()
        assert len(vp.stub.resolver.cache) == 0


class TestVantagePoints:
    def test_vp_ids_unique(self, mini_world):
        population = build(mini_world, probes=150)
        vps = population.vantage_points()
        assert len({vp.vp_id for vp in vps}) == len(vps)

    def test_vp_links_probe_and_resolver(self, mini_world):
        population = build(mini_world, probes=10)
        vp = population.vantage_points()[0]
        assert vp.resolver_address == vp.stub.resolver.address
        assert vp.probe in population.probes
