"""Tests for repro.atlas.measurement."""

from repro.atlas.measurement import Measurement, MeasurementSpec, run_once
from repro.atlas.population import AtlasConfig, AtlasPopulation
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType


def vps(mini_world, probes=30, seed=0):
    population = AtlasPopulation(
        AtlasConfig(probes=probes, seed=seed),
        mini_world.topology,
        mini_world.network,
        mini_world.hints,
        mini_world.root_zone,
    )
    return population.vantage_points()


class TestSpec:
    def test_rounds(self):
        spec = MeasurementSpec("x.", RdataType.A, interval=600, duration=7200)
        assert spec.rounds() == 12

    def test_probeid_substitution(self):
        spec = MeasurementSpec("PROBEID.sub.example.", RdataType.AAAA)
        assert spec.qname_for(42) == Name("p42.sub.example.")

    def test_plain_qname(self):
        spec = MeasurementSpec("uy.", RdataType.NS)
        assert spec.qname_for(1) == Name("uy.")


class TestRun:
    def test_one_result_per_vp_per_round(self, mini_world):
        vantage = vps(mini_world)
        spec = MeasurementSpec("www.example.tld.", RdataType.A,
                               interval=600, duration=1800)
        results = Measurement(spec=spec, vantage_points=vantage).run()
        assert len(results) == 3 * len(vantage)

    def test_timestamps_within_round(self, mini_world):
        vantage = vps(mini_world)
        spec = MeasurementSpec("www.example.tld.", RdataType.A,
                               interval=600, duration=1200)
        results = Measurement(spec=spec, vantage_points=vantage).run()
        for result in results:
            low = result.round_index * 600
            assert low <= result.timestamp < low + 600

    def test_jitter_offsets_stable_per_vp(self, mini_world):
        vantage = vps(mini_world)
        spec = MeasurementSpec("www.example.tld.", RdataType.A,
                               interval=600, duration=1200)
        results = Measurement(spec=spec, vantage_points=vantage).run()
        by_vp = {}
        for result in results:
            by_vp.setdefault(result.vp_id, []).append(
                result.timestamp - result.round_index * 600
            )
        for offsets in by_vp.values():
            assert max(offsets) - min(offsets) < 1e-6

    def test_no_jitter_mode(self, mini_world):
        vantage = vps(mini_world)
        spec = MeasurementSpec("www.example.tld.", RdataType.A,
                               interval=600, duration=600, jitter=False)
        results = Measurement(spec=spec, vantage_points=vantage).run()
        assert all(result.timestamp == 0.0 for result in results)

    def test_events_fire_in_order(self, mini_world):
        vantage = vps(mini_world)
        spec = MeasurementSpec("www.example.tld.", RdataType.A,
                               interval=600, duration=1800)
        fired = []
        measurement = Measurement(spec=spec, vantage_points=vantage)
        measurement.schedule(540.0, lambda: fired.append(540))
        measurement.schedule(10.0, lambda: fired.append(10))
        measurement.run()
        assert fired == [10, 540]

    def test_event_effect_visible_after_time(self, mini_world):
        from repro.dns.rdtypes import A as Ard

        vantage = vps(mini_world)
        spec = MeasurementSpec("www.example.tld.", RdataType.A,
                               interval=600, duration=1800)
        measurement = Measurement(spec=spec, vantage_points=vantage)
        measurement.schedule(
            600.0,
            lambda: mini_world.child_zone.replace(
                "www.example.tld.", RdataType.A, Ard("198.51.100.99"), ttl=60
            ),
        )
        results = measurement.run()
        first_round = [r for r in results if r.round_index == 0 and r.answers]
        last_round = [r for r in results if r.round_index == 2 and r.answers]
        assert all("203.0.113.80" in r.answers for r in first_round)
        assert all("198.51.100.99" in r.answers for r in last_round)

    def test_deterministic_runs(self, mini_world):
        from tests.conftest import build_mini_world

        def run(world):
            spec = MeasurementSpec("www.example.tld.", RdataType.A,
                                   interval=600, duration=1200)
            return Measurement(
                spec=spec, vantage_points=vps(world, seed=2), seed=9
            ).run()

        a = run(mini_world)
        b = run(build_mini_world())
        assert [(r.vp_id, r.timestamp, r.ttl) for r in a] == [
            (r.vp_id, r.timestamp, r.ttl) for r in b
        ]

    def test_run_once(self, mini_world):
        vantage = vps(mini_world)
        results = run_once(vantage, "www.example.tld.", RdataType.A)
        assert len(results) == len(vantage)
