"""Tests for repro.atlas.results."""

from repro.atlas.results import MeasurementResult, ResultSet
from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region


def result(
    probe=1,
    resolver="10.0.0.1",
    round_index=0,
    timestamp=0.0,
    rcode=Rcode.NOERROR,
    ttl=300,
    answers=("192.0.2.1",),
    rtt=0.02,
    region=Region.EU,
    asn=64512,
):
    return MeasurementResult(
        probe_id=probe,
        vp_id=f"{probe}@{resolver}",
        resolver_address=resolver,
        region=region,
        asn=asn,
        round_index=round_index,
        timestamp=timestamp,
        qname=Name("uy."),
        qtype=RdataType.NS,
        rcode=rcode,
        ttl=ttl,
        answers=answers,
        rtt=rtt,
    )


class TestValidity:
    def test_valid_keeps_ok(self):
        results = ResultSet([result(), result(rcode=Rcode.SERVFAIL, ttl=None, answers=())])
        assert len(results.valid()) == 1

    def test_valid_with_expectation(self):
        results = ResultSet([result(answers=("hijacked",)), result()])
        valid = results.valid(lambda r: "192.0.2.1" in r.answers)
        assert len(valid) == 1

    def test_discarded_complements_valid(self):
        results = ResultSet([result(), result(rcode=Rcode.NXDOMAIN, answers=())])
        assert len(results.discarded()) == 1

    def test_empty_answers_invalid(self):
        results = ResultSet([result(answers=())])
        assert len(results.valid()) == 0


class TestExtraction:
    def test_ttls_skips_none(self):
        results = ResultSet([result(ttl=300), result(ttl=None)])
        assert results.ttls() == [300]

    def test_rtts_ms(self):
        results = ResultSet([result(rtt=0.05)])
        assert results.rtts_ms() == [50.0]

    def test_sets(self):
        results = ResultSet([result(probe=1), result(probe=2, resolver="10.0.0.2")])
        assert results.probe_ids() == {1, 2}
        assert results.vp_ids() == {"1@10.0.0.1", "2@10.0.0.2"}
        assert results.resolver_addresses() == {"10.0.0.1", "10.0.0.2"}


class TestGrouping:
    def test_by_vp_sorted(self):
        results = ResultSet([result(timestamp=10.0), result(timestamp=5.0)])
        rows = results.by_vp()["1@10.0.0.1"]
        assert [r.timestamp for r in rows] == [5.0, 10.0]

    def test_by_region(self):
        results = ResultSet([result(region=Region.EU), result(region=Region.SA)])
        grouped = results.by_region()
        assert len(grouped[Region.EU]) == 1
        assert len(grouped[Region.SA]) == 1

    def test_by_answer(self):
        results = ResultSet([result(), result(), result(answers=("198.51.100.2",))])
        counts = results.by_answer()
        assert counts[("192.0.2.1",)] == 2

    def test_answer_timeseries_bins(self):
        results = ResultSet(
            [result(timestamp=0.0), result(timestamp=650.0),
             result(timestamp=700.0, answers=("198.51.100.2",))]
        )
        series = results.answer_timeseries(600.0)
        assert series["192.0.2.1"] == {0: 1, 1: 1}
        assert series["198.51.100.2"] == {1: 1}

    def test_for_round(self):
        results = ResultSet([result(round_index=0), result(round_index=1)])
        assert len(results.for_round(1)) == 1


class TestSummary:
    def test_summary_counts(self):
        results = ResultSet([
            result(),
            result(probe=2, resolver="10.0.0.2", rcode=Rcode.SERVFAIL, answers=(), ttl=None),
        ])
        summary = results.summary()
        assert summary["probes"] == 2
        assert summary["queries"] == 2
        assert summary["timeouts"] == 1
        assert summary["responses_valid"] == 1
        assert summary["probes_valid"] == 1
        assert summary["probes_discarded"] == 1
