"""Tests for repro.atlas.datasets (JSON-lines round trips)."""

import json

import pytest

from repro.atlas.datasets import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.atlas.measurement import Measurement, MeasurementSpec
from repro.atlas.population import AtlasConfig, AtlasPopulation
from repro.dns.rdtypes import RdataType


@pytest.fixture
def results(mini_world):
    population = AtlasPopulation(
        AtlasConfig(probes=20, seed=1),
        mini_world.topology,
        mini_world.network,
        mini_world.hints,
        mini_world.root_zone,
    )
    spec = MeasurementSpec("www.example.tld.", RdataType.A, interval=600, duration=1200)
    return Measurement(spec=spec, vantage_points=population.vantage_points()).run()


class TestRoundTrip:
    def test_dict_round_trip(self, results):
        for result in results:
            assert result_from_dict(result_to_dict(result)) == result

    def test_file_round_trip(self, results, tmp_path):
        path = tmp_path / "dataset.jsonl"
        written = save_results(results, path)
        assert written == len(results)
        loaded = load_results(path)
        assert list(loaded) == list(results)

    def test_analysis_survives_round_trip(self, results, tmp_path):
        path = tmp_path / "dataset.jsonl"
        save_results(results, path)
        loaded = load_results(path)
        assert loaded.summary() == results.summary()
        assert loaded.ttls() == results.ttls()

    def test_lines_are_json(self, results, tmp_path):
        path = tmp_path / "dataset.jsonl"
        save_results(results, path)
        for line in path.read_text().splitlines():
            row = json.loads(line)
            assert row["v"] == 1

    def test_blank_lines_skipped(self, results, tmp_path):
        path = tmp_path / "dataset.jsonl"
        save_results(results, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_results(path)) == len(results)


class TestErrors:
    def test_bad_schema_version(self, results, tmp_path):
        row = result_to_dict(list(results)[0])
        row["v"] = 99
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(row) + "\n")
        with pytest.raises(ValueError, match="schema"):
            load_results(path)

    def test_missing_field(self, results, tmp_path):
        row = result_to_dict(list(results)[0])
        del row["qname"]
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(row) + "\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_results(path)
