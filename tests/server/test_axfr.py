"""Tests for repro.server.axfr (zone transfer + RFC 7706 mirror)."""

from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.zone import Zone
from repro.server.axfr import DEFAULT_REFRESH, LocalZoneMirror, zone_transfer


def make_zone(refresh=7200):
    zone = Zone("example.", default_ttl=3600)
    zone.add_soa("ns1.example.", serial=100, refresh=refresh)
    zone.add("example.", RdataType.NS, NS("ns1.example."), ttl=3600)
    zone.add("ns1.example.", RdataType.A, A("192.0.2.1"), ttl=3600)
    return zone


class TestZoneTransfer:
    def test_copy_has_same_contents(self):
        source = make_zone()
        copy = zone_transfer(source)
        assert {r.key() for r in copy.rrsets()} == {r.key() for r in source.rrsets()}
        assert copy.get("ns1.example.", RdataType.A).ttl == 3600

    def test_copy_is_independent(self):
        source = make_zone()
        copy = zone_transfer(source)
        source.replace("ns1.example.", RdataType.A, A("198.51.100.9"))
        assert str(copy.get("ns1.example.", RdataType.A).rdatas[0]) == "192.0.2.1"

    def test_copy_answers_queries(self):
        from repro.dns.message import Message, Rcode

        copy = zone_transfer(make_zone())
        response = copy.respond(Message.make_query("ns1.example.", RdataType.A))
        assert response.rcode == Rcode.NOERROR and response.flags.aa


class TestLocalZoneMirror:
    def test_serves_snapshot_until_refresh(self):
        source = make_zone(refresh=7200)
        mirror = LocalZoneMirror(source, transferred_at=0.0)
        source.replace("ns1.example.", RdataType.A, A("198.51.100.9"))
        # Before the refresh interval: stale data.
        zone = mirror.zone(now=7199.0)
        assert str(zone.get("ns1.example.", RdataType.A).rdatas[0]) == "192.0.2.1"
        # After: the change has transferred.
        zone = mirror.zone(now=7200.0)
        assert str(zone.get("ns1.example.", RdataType.A).rdatas[0]) == "198.51.100.9"
        assert mirror.transfers == 2

    def test_refresh_interval_from_soa(self):
        mirror = LocalZoneMirror(make_zone(refresh=1234))
        assert mirror.refresh_interval() == 1234.0

    def test_default_refresh_without_soa(self):
        zone = Zone("x.", default_ttl=60)
        zone.add("x.", RdataType.NS, NS("ns.x."))
        mirror = LocalZoneMirror(zone)
        assert mirror.refresh_interval() == DEFAULT_REFRESH

    def test_serial_exposed(self):
        assert LocalZoneMirror(make_zone()).serial() == 100

    def test_no_spurious_transfers(self):
        mirror = LocalZoneMirror(make_zone(refresh=7200), transferred_at=0.0)
        for t in (10.0, 100.0, 1000.0, 7000.0):
            mirror.zone(now=t)
        assert mirror.transfers == 1


class TestRfc7706Lag:
    def test_local_root_changes_propagate_with_transfer_lag(self, mini_world):
        """A TLD delegation change in the root becomes visible to an
        RFC 7706 resolver only after its next transfer."""
        from repro.dns.rdtypes import RdataType as RT
        from repro.net.topology import Region
        from repro.resolver.policy import ResolverPolicy
        from repro.resolver.recursive import RecursiveResolver

        resolver = RecursiveResolver(
            endpoint=mini_world.topology.endpoint_in_region(Region.EU),
            network=mini_world.network,
            root_hints=mini_world.hints,
            policy=ResolverPolicy.local_root(),
            root_zone=mini_world.root_zone,
        )
        before = resolver.resolve("tld.", RT.NS, now=0.0)
        assert before.answers[-1].ttl == 172800
        # The root operator changes the delegation TTL.
        mini_world.root_zone.set_ttl("tld.", RT.NS, 3600)
        # Well within the SOA refresh (7200 s in conftest): still old.
        during = resolver.resolve("tld.", RT.NS, now=300.0)
        assert during.cache_hit or during.answers[-1].ttl > 3600
        # After refresh (> SOA refresh) with an expired cache entry the
        # resolver re-reads the (fresh) mirror — use a long horizon.
        after = resolver.resolve("tld.", RT.NS, now=400000.0)
        assert after.answers[-1].ttl == 3600
