"""Tests for repro.server.querylog."""

from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.server.querylog import QueryLog, QueryLogEntry


def entry(ts=0.0, client="10.0.0.1", qname="ns1.dns.nl.", qtype=RdataType.A,
          server="ns1.dns.nl", asn=64512):
    return QueryLogEntry(
        timestamp=ts,
        client_address=client,
        client_asn=asn,
        qname=Name(qname),
        qtype=qtype,
        server=server,
    )


def make_log(entries):
    log = QueryLog()
    for e in entries:
        log.append(e)
    return log


class TestBasics:
    def test_append_and_len(self):
        log = make_log([entry(), entry(ts=1.0)])
        assert len(log) == 2

    def test_clear(self):
        log = make_log([entry()])
        log.clear()
        assert len(log) == 0

    def test_iteration_order_preserved(self):
        log = make_log([entry(ts=2.0), entry(ts=1.0)])
        assert [e.timestamp for e in log] == [2.0, 1.0]


class TestFilters:
    def test_between(self):
        log = make_log([entry(ts=t) for t in (0.0, 5.0, 10.0)])
        assert [e.timestamp for e in log.between(1.0, 10.0)] == [5.0]

    def test_for_qname(self):
        log = make_log([entry(qname="a.nl."), entry(qname="b.nl.")])
        assert len(log.for_qname(Name("a.nl."))) == 1

    def test_for_qtype(self):
        log = make_log([entry(qtype=RdataType.A), entry(qtype=RdataType.NS)])
        assert len(log.for_qtype(RdataType.NS)) == 1


class TestAggregation:
    def test_unique_clients(self):
        log = make_log([entry(client="10.0.0.1"), entry(client="10.0.0.2"),
                        entry(client="10.0.0.1")])
        assert log.unique_clients() == {"10.0.0.1", "10.0.0.2"}

    def test_unique_ases(self):
        log = make_log([entry(asn=1), entry(asn=2), entry(asn=1)])
        assert log.unique_client_ases() == {1, 2}

    def test_by_group_sorted_timestamps(self):
        log = make_log([
            entry(ts=5.0, client="10.0.0.1", qname="ns1.dns.nl."),
            entry(ts=1.0, client="10.0.0.1", qname="ns1.dns.nl."),
            entry(ts=3.0, client="10.0.0.2", qname="ns1.dns.nl."),
        ])
        groups = log.by_group()
        assert groups[("10.0.0.1", Name("ns1.dns.nl."))] == [1.0, 5.0]
        assert len(groups) == 2

    def test_query_count_by_server(self):
        log = make_log([entry(server="s1"), entry(server="s1"), entry(server="s2")])
        assert log.query_count_by_server() == {"s1": 2, "s2": 1}

    def test_timeseries_bins(self):
        log = make_log([entry(ts=t) for t in (0.0, 5.0, 650.0)])
        series = log.timeseries(600.0)
        assert series == {0: 2, 1: 1}

    def test_timeseries_with_window(self):
        log = make_log([entry(ts=t) for t in (0.0, 700.0, 1300.0)])
        series = log.timeseries(600.0, start=600.0, end=1200.0)
        assert series == {0: 1}

    def test_timeseries_invalid_bin(self):
        import pytest

        with pytest.raises(ValueError):
            make_log([entry()]).timeseries(0)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = make_log([entry(), entry(ts=1.5, qname="www.domain7.nl.")])
        assert log.write_jsonl(path) == 2
        back = QueryLog.read_jsonl(path)
        assert back.entries == log.entries

    def test_unknown_qtype_round_trips(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = make_log([entry(qtype=RdataType(999))])
        log.write_jsonl(path)
        back = QueryLog.read_jsonl(path)
        assert back.entries[0].qtype == 999
        assert back.entries[0].qtype.name == "TYPE999"

    def test_streaming_writer(self, tmp_path):
        from repro.server.querylog import QueryLogWriter

        path = tmp_path / "stream.jsonl"
        with QueryLogWriter(path) as writer:
            writer.append(entry())
            writer.extend([entry(ts=1.0), entry(ts=2.0)])
            assert writer.count == 3
        back = QueryLog.read_jsonl(path)
        assert len(back) == 3
        assert back.by_group()  # analysis-ready

    def test_writer_rejects_use_after_close(self, tmp_path):
        import pytest

        from repro.server.querylog import QueryLogWriter

        writer = QueryLogWriter(tmp_path / "x.jsonl")
        writer.close()
        with pytest.raises(ValueError):
            writer.append(entry())

    def test_entry_dict_codec(self):
        from repro.server.querylog import entry_from_dict, entry_to_dict

        original = entry(ts=3.25, client="192.0.2.9", asn=7)
        data = entry_to_dict(original)
        assert data["qtype"] == "A"
        assert entry_from_dict(data) == original
