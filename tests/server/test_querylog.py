"""Tests for repro.server.querylog."""

from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.server.querylog import QueryLog, QueryLogEntry


def entry(ts=0.0, client="10.0.0.1", qname="ns1.dns.nl.", qtype=RdataType.A,
          server="ns1.dns.nl", asn=64512):
    return QueryLogEntry(
        timestamp=ts,
        client_address=client,
        client_asn=asn,
        qname=Name(qname),
        qtype=qtype,
        server=server,
    )


def make_log(entries):
    log = QueryLog()
    for e in entries:
        log.append(e)
    return log


class TestBasics:
    def test_append_and_len(self):
        log = make_log([entry(), entry(ts=1.0)])
        assert len(log) == 2

    def test_clear(self):
        log = make_log([entry()])
        log.clear()
        assert len(log) == 0

    def test_iteration_order_preserved(self):
        log = make_log([entry(ts=2.0), entry(ts=1.0)])
        assert [e.timestamp for e in log] == [2.0, 1.0]


class TestFilters:
    def test_between(self):
        log = make_log([entry(ts=t) for t in (0.0, 5.0, 10.0)])
        assert [e.timestamp for e in log.between(1.0, 10.0)] == [5.0]

    def test_for_qname(self):
        log = make_log([entry(qname="a.nl."), entry(qname="b.nl.")])
        assert len(log.for_qname(Name("a.nl."))) == 1

    def test_for_qtype(self):
        log = make_log([entry(qtype=RdataType.A), entry(qtype=RdataType.NS)])
        assert len(log.for_qtype(RdataType.NS)) == 1


class TestAggregation:
    def test_unique_clients(self):
        log = make_log([entry(client="10.0.0.1"), entry(client="10.0.0.2"),
                        entry(client="10.0.0.1")])
        assert log.unique_clients() == {"10.0.0.1", "10.0.0.2"}

    def test_unique_ases(self):
        log = make_log([entry(asn=1), entry(asn=2), entry(asn=1)])
        assert log.unique_client_ases() == {1, 2}

    def test_by_group_sorted_timestamps(self):
        log = make_log([
            entry(ts=5.0, client="10.0.0.1", qname="ns1.dns.nl."),
            entry(ts=1.0, client="10.0.0.1", qname="ns1.dns.nl."),
            entry(ts=3.0, client="10.0.0.2", qname="ns1.dns.nl."),
        ])
        groups = log.by_group()
        assert groups[("10.0.0.1", Name("ns1.dns.nl."))] == [1.0, 5.0]
        assert len(groups) == 2

    def test_query_count_by_server(self):
        log = make_log([entry(server="s1"), entry(server="s1"), entry(server="s2")])
        assert log.query_count_by_server() == {"s1": 2, "s2": 1}

    def test_timeseries_bins(self):
        log = make_log([entry(ts=t) for t in (0.0, 5.0, 650.0)])
        series = log.timeseries(600.0)
        assert series == {0: 2, 1: 1}

    def test_timeseries_with_window(self):
        log = make_log([entry(ts=t) for t in (0.0, 700.0, 1300.0)])
        series = log.timeseries(600.0, start=600.0, end=1200.0)
        assert series == {0: 1}

    def test_timeseries_invalid_bin(self):
        import pytest

        with pytest.raises(ValueError):
            make_log([entry()]).timeseries(0)
