"""Response rate limiting: per-client buckets, slip, drop, reset."""

from repro.server.rrl import ResponseRateLimiter, RrlVerdict


def test_disabled_rrl_answers_everything():
    rrl = ResponseRateLimiter(rate=0)
    assert all(
        rrl.check("c", 0.0) is RrlVerdict.ANSWER for _ in range(100)
    )
    assert rrl.answered == 100


def test_budget_then_slip_then_drop():
    rrl = ResponseRateLimiter(rate=2, slip_factor=1)
    verdicts = [rrl.check("c", 0.5) for _ in range(6)]
    assert verdicts == [
        RrlVerdict.ANSWER,
        RrlVerdict.ANSWER,
        RrlVerdict.SLIP,
        RrlVerdict.SLIP,
        RrlVerdict.DROP,
        RrlVerdict.DROP,
    ]
    assert (rrl.answered, rrl.slipped, rrl.dropped) == (2, 2, 2)


def test_bucket_resets_each_second():
    rrl = ResponseRateLimiter(rate=1)
    assert rrl.check("c", 0.0) is RrlVerdict.ANSWER
    assert rrl.check("c", 0.9) is not RrlVerdict.ANSWER
    assert rrl.check("c", 1.0) is RrlVerdict.ANSWER  # new second, new budget
    assert rrl.check("c", 2.3) is RrlVerdict.ANSWER


def test_clients_are_limited_independently():
    rrl = ResponseRateLimiter(rate=1)
    assert rrl.check("alice", 0.0) is RrlVerdict.ANSWER
    assert rrl.check("bob", 0.0) is RrlVerdict.ANSWER
    assert rrl.check("alice", 0.1) is not RrlVerdict.ANSWER
    assert rrl.check("carol", 0.2) is RrlVerdict.ANSWER


def test_bucket_table_is_pruned_on_rollover():
    rrl = ResponseRateLimiter(rate=1)
    for index in range(1000):
        rrl.check(f"client-{index}", 0.0)
    assert len(rrl._counts) == 1000
    rrl.check("fresh", 1.0)
    assert len(rrl._counts) == 1  # old second's table dropped wholesale
