"""Tests for repro.server.anycast."""

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.zone import Zone
from repro.net.latency import LatencyModel
from repro.net.topology import Region, Topology
from repro.net.transport import Network
from repro.server.anycast import AnycastCluster


@pytest.fixture
def rig():
    topology = Topology(seed=0)
    latency = LatencyModel(seed=0)
    zone = Zone("test.co.", default_ttl=60)
    zone.add_soa("ns1.test.co.")
    zone.add("test.co.", RdataType.NS, NS("ns1.test.co."))
    zone.add("test.co.", RdataType.A, A("192.0.2.1"))
    sites = [
        topology.endpoint_in_region(region, f"site-{region.name}")
        for region in (Region.EU, Region.NA, Region.AS, Region.SA)
    ]
    cluster = AnycastCluster("198.51.100.53", sites, latency, [zone])
    return topology, latency, cluster


class TestCatchment:
    def test_nearest_site_selected(self, rig):
        topology, latency, cluster = rig
        client = topology.endpoint_in_region(Region.SA, "cli")
        site = cluster.endpoint_for(client, latency)
        assert site.region is Region.SA

    def test_catchment_stable(self, rig):
        topology, latency, cluster = rig
        client = topology.endpoint_in_region(Region.AS)
        first = cluster.endpoint_for(client, latency)
        assert all(
            cluster.endpoint_for(client, latency) is first for _ in range(5)
        )

    def test_empty_sites_rejected(self, rig):
        _, latency, _ = rig
        with pytest.raises(ValueError):
            AnycastCluster("198.51.100.1", [], latency)


class TestServing:
    def test_answers_with_aa(self, rig):
        topology, _, cluster = rig
        client = topology.endpoint_in_region(Region.EU)
        query = Message.make_query("test.co.", RdataType.A)
        response = cluster.handle_query(query, client, 0.0)
        assert response.flags.aa and response.answer

    def test_refuses_foreign_zone(self, rig):
        topology, _, cluster = rig
        client = topology.endpoint_in_region(Region.EU)
        query = Message.make_query("other.org.", RdataType.A)
        assert cluster.handle_query(query, client, 0.0).rcode == Rcode.REFUSED

    def test_log_records_site(self, rig):
        topology, latency, cluster = rig
        client = topology.endpoint_in_region(Region.NA)
        query = Message.make_query("test.co.", RdataType.A)
        cluster.handle_query(query, client, 0.0)
        (entry,) = list(cluster.query_log)
        assert entry.server == str(cluster.endpoint_for(client, latency))

    def test_registered_cluster_reduces_latency(self, rig):
        """End-to-end: anycast beats a far unicast site for remote clients."""
        topology, latency, cluster = rig
        network = Network(latency=latency, seed=0)
        network.register(cluster, cluster.service_address)
        client = topology.endpoint_in_region(Region.SA)
        query = Message.make_query("test.co.", RdataType.A)
        samples = [
            network.exchange(client, cluster.service_address, query, 0.0)[1]
            for _ in range(10)
        ]
        # The SA client lands on the SA site: intra-region RTTs, far below
        # the ~190 ms SA→EU unicast path even with jitter.
        assert sum(samples) / len(samples) < 0.150
