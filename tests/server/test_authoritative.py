"""Tests for repro.server.authoritative."""

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.zone import Zone
from repro.net.topology import Region, Topology
from repro.server.authoritative import AuthoritativeServer


@pytest.fixture
def topology():
    return Topology(seed=0)


def make_zone(origin, default_ttl=3600):
    zone = Zone(origin, default_ttl=default_ttl)
    zone.add_soa(f"ns1.{origin}")
    zone.add(origin, RdataType.NS, NS(f"ns1.{origin}"))
    zone.add(f"ns1.{origin}", RdataType.A, A("192.0.2.53"))
    return zone


class TestZoneSelection:
    def test_deepest_zone_wins(self, topology):
        parent = make_zone("example.com.")
        child = make_zone("sub.example.com.")
        server = AuthoritativeServer(
            topology.endpoint_in_region(Region.EU), [parent, child]
        )
        assert server.best_zone_for(Name("x.sub.example.com.")) is child
        assert server.best_zone_for(Name("www.example.com.")) is parent

    def test_unrelated_name_no_zone(self, topology):
        server = AuthoritativeServer(
            topology.endpoint_in_region(Region.EU), [make_zone("example.com.")]
        )
        assert server.best_zone_for(Name("other.org.")) is None

    def test_add_remove_zone(self, topology):
        server = AuthoritativeServer(topology.endpoint_in_region(Region.EU))
        zone = make_zone("example.com.")
        server.add_zone(zone)
        assert server.zone("example.com.") is zone
        server.remove_zone("example.com.")
        assert server.zone("example.com.") is None


class TestHandling:
    def test_refuses_unknown_zone(self, topology):
        server = AuthoritativeServer(
            topology.endpoint_in_region(Region.EU), [make_zone("example.com.")]
        )
        client = topology.endpoint_in_region(Region.EU)
        query = Message.make_query("other.org.", RdataType.A)
        assert server.handle_query(query, client, 0.0).rcode == Rcode.REFUSED

    def test_answers_from_zone(self, topology):
        server = AuthoritativeServer(
            topology.endpoint_in_region(Region.EU), [make_zone("example.com.")]
        )
        client = topology.endpoint_in_region(Region.EU)
        query = Message.make_query("ns1.example.com.", RdataType.A)
        response = server.handle_query(query, client, 0.0)
        assert response.flags.aa and response.answer

    def test_formerr_on_missing_question(self, topology):
        server = AuthoritativeServer(topology.endpoint_in_region(Region.EU))
        client = topology.endpoint_in_region(Region.EU)
        assert server.handle_query(Message(), client, 0.0).rcode == Rcode.FORMERR

    def test_queries_logged(self, topology):
        server = AuthoritativeServer(
            topology.endpoint_in_region(Region.EU), [make_zone("example.com.")]
        )
        client = topology.endpoint_in_region(Region.EU)
        query = Message.make_query("ns1.example.com.", RdataType.A)
        server.handle_query(query, client, 42.0)
        assert server.query_log is not None
        (entry,) = list(server.query_log)
        assert entry.timestamp == 42.0
        assert entry.client_address == client.address
        assert entry.qname == Name("ns1.example.com.")

    def test_logging_disabled(self, topology):
        server = AuthoritativeServer(
            topology.endpoint_in_region(Region.EU),
            [make_zone("example.com.")],
            log_queries=False,
        )
        client = topology.endpoint_in_region(Region.EU)
        server.handle_query(Message.make_query("example.com.", RdataType.NS), client, 0.0)
        assert server.query_log is None

    def test_endpoint_for_is_static(self, topology):
        from repro.net.latency import LatencyModel

        server = AuthoritativeServer(topology.endpoint_in_region(Region.EU))
        client = topology.endpoint_in_region(Region.AS)
        assert server.endpoint_for(client, LatencyModel()) is server.endpoint
