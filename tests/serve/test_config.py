"""ServeConfig validation and world registry."""

import pytest

from repro.serve.config import WORLD_BUILDERS, ServeConfig


def test_known_worlds():
    assert set(WORLD_BUILDERS) == {"cl", "uy", "googleco", "nl", "controlled"}


def test_unknown_world_rejected():
    with pytest.raises(ValueError, match="unknown world"):
        ServeConfig(world="narnia")


def test_multi_worker_requires_explicit_port():
    with pytest.raises(ValueError, match="SO_REUSEPORT"):
        ServeConfig(workers=2, port=0)
    ServeConfig(workers=2, port=5353)  # fine


def test_worker_and_budget_bounds():
    with pytest.raises(ValueError):
        ServeConfig(workers=0)
    with pytest.raises(ValueError):
        ServeConfig(max_inflight=0)


def test_cli_worlds_mirror_registry():
    from repro.cli import _SERVE_WORLDS

    assert set(_SERVE_WORLDS) == set(WORLD_BUILDERS)


def test_predict_flag_builds_predictive_resolver():
    from repro.serve.config import build_frontend

    frontend, _ = build_frontend(ServeConfig(world="nl", predict=True))
    assert frontend.resolver.policy.predict is not None
    assert frontend.pump() == 0  # empty cache: nothing due, nothing breaks


def test_default_config_has_no_predict_policy():
    from repro.serve.config import build_frontend

    frontend, _ = build_frontend(ServeConfig(world="nl"))
    assert frontend.resolver.policy.predict is None
    assert frontend.pump() == 0  # pump is a safe no-op without predict
