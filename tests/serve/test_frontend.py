"""DnsFrontend unit tests: decode policy, EDNS negotiation, truncation.

These drive the frontend synchronously with hand-built wire bytes — no
sockets — so every policy branch is cheap to pin down.
"""

import struct

import pytest

from repro.dns.message import Message, Opcode, Rcode
from repro.dns.rdtypes import RdataType
from repro.serve.bridge import WallClockBridge
from repro.serve.config import ServeConfig, build_frontend
from repro.serve.frontend import servfail_wire
from repro.server.rrl import ResponseRateLimiter


class FakeWall:
    def __init__(self, at: float = 0.0) -> None:
        self.at = at

    def __call__(self) -> float:
        return self.at


@pytest.fixture(scope="module")
def frontend_and_wall():
    wall = FakeWall()
    frontend, _registry = build_frontend(ServeConfig(world="nl"), wall_clock=wall)
    return frontend, wall


def query_wire(qname="www.domain1.nl.", qtype=RdataType.A, id=1, edns=False):
    query = Message.make_query(qname, qtype, id=id)
    if edns:
        query.use_edns()
    return query.to_wire()


def test_answers_a_plain_query(frontend_and_wall):
    frontend, _ = frontend_and_wall
    result = frontend.handle_wire(query_wire(id=11), client="10.0.0.1")
    assert result.outcome == "answered"
    response = Message.from_wire(result.wire)
    assert response.id == 11
    assert response.rcode == Rcode.NOERROR
    assert response.flags.qr and response.flags.ra
    assert response.answer


def test_nxdomain_for_missing_name(frontend_and_wall):
    frontend, _ = frontend_and_wall
    result = frontend.handle_wire(
        query_wire(qname="no-such-name.nl.", id=12), client="10.0.0.1"
    )
    response = Message.from_wire(result.wire)
    assert response.rcode == Rcode.NXDOMAIN


def test_edns_echoed_with_server_payload(frontend_and_wall):
    frontend, _ = frontend_and_wall
    result = frontend.handle_wire(query_wire(id=13, edns=True), client="10.0.0.1")
    response = Message.from_wire(result.wire)
    assert response.edns is not None
    assert response.edns.udp_payload == frontend.max_udp_payload


def test_no_edns_in_response_to_plain_query(frontend_and_wall):
    frontend, _ = frontend_and_wall
    result = frontend.handle_wire(query_wire(id=14), client="10.0.0.1")
    assert Message.from_wire(result.wire).edns is None


def test_garbage_gets_formerr_with_echoed_id(frontend_and_wall):
    frontend, _ = frontend_and_wall
    blob = struct.pack(">HHHHHH", 0xBEEF, 0x0100, 1, 0, 0, 0) + b"\xff\xff\xff"
    result = frontend.handle_wire(blob, client="10.0.0.1")
    assert result.outcome == "malformed"
    response = Message.from_wire(result.wire)
    assert response.id == 0xBEEF
    assert response.rcode == Rcode.FORMERR
    assert response.flags.qr


def test_short_garbage_is_dropped_silently(frontend_and_wall):
    frontend, _ = frontend_and_wall
    result = frontend.handle_wire(b"\x01\x02\x03", client="10.0.0.1")
    assert result.outcome == "malformed"
    assert result.wire is None


def test_responses_are_never_answered(frontend_and_wall):
    frontend, _ = frontend_and_wall
    query = Message.make_query("www.domain1.nl.", RdataType.A, id=15)
    response_wire = query.make_response().to_wire()
    result = frontend.handle_wire(response_wire, client="10.0.0.1")
    assert result.outcome == "dropped"
    assert result.wire is None


def test_non_query_opcode_gets_notimp(frontend_and_wall):
    frontend, _ = frontend_and_wall
    query = Message.make_query("www.domain1.nl.", RdataType.A, id=16)
    query.opcode = Opcode.STATUS
    result = frontend.handle_wire(query.to_wire(), client="10.0.0.1")
    response = Message.from_wire(result.wire)
    assert response.rcode == Rcode.NOTIMP


def test_oversize_udp_response_truncates_with_tc(frontend_and_wall):
    frontend, _ = frontend_and_wall
    original = frontend.max_udp_payload
    frontend.max_udp_payload = 100  # the 4-record NS set cannot fit
    try:
        result = frontend.handle_wire(
            query_wire(qname="nl.", qtype=RdataType.NS, id=17), client="10.0.0.1"
        )
        response = Message.from_wire(result.wire)
        assert response.flags.tc
        assert len(result.wire) <= 512  # client limit still respected
    finally:
        frontend.max_udp_payload = original


def test_tcp_never_truncates(frontend_and_wall):
    frontend, _ = frontend_and_wall
    original = frontend.max_udp_payload
    frontend.max_udp_payload = 100
    try:
        result = frontend.handle_wire(
            query_wire(qname="nl.", qtype=RdataType.NS, id=18),
            client="10.0.0.1",
            via_tcp=True,
        )
        response = Message.from_wire(result.wire)
        assert not response.flags.tc
        assert response.answer
    finally:
        frontend.max_udp_payload = original


def test_ttls_age_with_the_bridge(frontend_and_wall):
    frontend, wall = frontend_and_wall
    first = Message.from_wire(
        frontend.handle_wire(query_wire(id=19), client="10.9.9.9").wire
    )
    ttl_start = first.answer[0].ttl
    wall.at += 100.0
    second = Message.from_wire(
        frontend.handle_wire(query_wire(id=20), client="10.9.9.9").wire
    )
    assert second.answer[0].ttl <= ttl_start - 100 + 1  # aged in the cache


def test_rrl_slips_tc_over_budget():
    wall = FakeWall()
    frontend, _ = build_frontend(ServeConfig(world="nl", rrl_rate=2), wall_clock=wall)
    assert isinstance(frontend.rrl, ResponseRateLimiter)
    outcomes = [
        frontend.handle_wire(query_wire(id=30 + i), client="10.1.1.1").outcome
        for i in range(4)
    ]
    assert outcomes[:2] == ["answered", "answered"]
    assert "slipped" in outcomes[2:]


def test_metrics_count_queries(frontend_and_wall):
    frontend, _ = frontend_and_wall
    snapshot = frontend.registry.snapshot()
    assert snapshot.value("serve.queries") > 0
    assert snapshot.value("serve.malformed") >= 2


def test_servfail_wire_echoes_id():
    wire = servfail_wire(query_wire(id=0x0102))
    response = Message.from_wire(wire)
    assert response.id == 0x0102
    assert response.rcode == Rcode.SERVFAIL
    assert response.flags.qr


def test_servfail_wire_rejects_short_datagrams():
    assert servfail_wire(b"\x00\x01") is None
