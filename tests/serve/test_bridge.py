"""Wall-clock → sim-clock bridge semantics."""

import pytest

from repro.serve.bridge import WallClockBridge


class FakeWall:
    def __init__(self, at: float = 100.0) -> None:
        self.at = at

    def __call__(self) -> float:
        return self.at


def test_now_starts_at_sim_start():
    wall = FakeWall()
    bridge = WallClockBridge(sim_start=50.0, wall_clock=wall)
    assert bridge.now() == 50.0


def test_wall_elapsed_maps_one_to_one_by_default():
    wall = FakeWall()
    bridge = WallClockBridge(wall_clock=wall)
    wall.at += 12.5
    assert bridge.now() == pytest.approx(12.5)
    assert bridge.wall_elapsed() == pytest.approx(12.5)


def test_time_scale_accelerates_sim_time():
    wall = FakeWall()
    bridge = WallClockBridge(time_scale=100.0, wall_clock=wall)
    wall.at += 3.0  # 3 wall seconds
    assert bridge.now() == pytest.approx(300.0)  # a 300 s TTL just expired
    assert bridge.wall_elapsed() == pytest.approx(3.0)


def test_sim_time_never_regresses():
    wall = FakeWall()
    bridge = WallClockBridge(wall_clock=wall)
    wall.at += 10.0
    assert bridge.now() == pytest.approx(10.0)
    wall.at -= 5.0  # a misbehaving clock steps backwards
    assert bridge.now() == pytest.approx(10.0)  # high-water mark holds


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        WallClockBridge(time_scale=0.0)
    with pytest.raises(ValueError):
        WallClockBridge(time_scale=-1.0)
    with pytest.raises(ValueError):
        WallClockBridge(sim_start=-1.0)
