"""Loopback end-to-end: real sockets, real wire format, in-process.

Spins the asyncio server and the load generator inside one event loop on
an ephemeral port — the acceptance test for the whole serving stack:
every response parses, rcodes are sane, the cache warms up, TCP works.
(No pytest-asyncio in the environment, so each test drives its own loop
via asyncio.run.)
"""

import asyncio
import struct

from repro.dns.message import Message, Rcode
from repro.dns.rdtypes import RdataType
from repro.loadgen import LoadGenerator, LoadgenConfig
from repro.serve import ServeConfig, ServeServer, build_frontend


def make_server(**config_kwargs):
    frontend, registry = build_frontend(ServeConfig(world="nl", **config_kwargs))
    return ServeServer(frontend), registry


def test_loadgen_against_live_server():
    async def scenario():
        server, registry = make_server()
        port = await server.start()
        report = await LoadGenerator(
            LoadgenConfig(
                port=port, rate_qps=400, duration_s=1.5, population=50, seed=3
            )
        ).run()
        await server.stop()
        return report, registry.snapshot()

    report, snapshot = asyncio.run(scenario())
    assert report.sent > 100
    assert report.parse_errors == 0  # every response parsed
    assert report.lost == 0
    assert set(report.rcodes) == {int(Rcode.NOERROR)}  # rcodes sane
    # Zipf reuse must warm the cache: hit rate > 0 after warmup.
    assert snapshot.value("serve.cache_hits") > 0
    assert snapshot.value("serve.queries") == report.attempts
    assert snapshot.value("serve.malformed") == 0


def test_closed_loop_mode():
    async def scenario():
        server, _ = make_server()
        port = await server.start()
        report = await LoadGenerator(
            LoadgenConfig(
                port=port, mode="closed", concurrency=4, duration_s=0.5, seed=5
            )
        ).run()
        await server.stop()
        return report

    report = asyncio.run(scenario())
    assert report.received > 0
    assert report.parse_errors == 0


def test_tcp_round_trip():
    async def scenario():
        server, _ = make_server()
        port = await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        query = Message.make_query("www.domain2.nl.", RdataType.A, id=99)
        wire = query.to_wire()
        writer.write(struct.pack(">H", len(wire)) + wire)
        await writer.drain()
        (length,) = struct.unpack(">H", await reader.readexactly(2))
        response = Message.from_wire(await reader.readexactly(length))
        writer.close()
        await writer.wait_closed()
        await server.stop()
        return response

    response = asyncio.run(scenario())
    assert response.id == 99
    assert response.rcode == Rcode.NOERROR
    assert response.answer


def test_udp_truncation_then_tcp_retry():
    """The dig workflow: EDNS query, TC=1 over UDP, full answer over TCP."""

    async def scenario():
        server, _ = make_server(max_udp_payload=100)
        port = await server.start()
        loop = asyncio.get_running_loop()
        import socket

        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.connect(("127.0.0.1", port))
        query = Message.make_query("nl.", RdataType.NS, id=44).use_edns()
        await loop.sock_sendall(sock, query.to_wire())
        udp_response = Message.from_wire(
            await asyncio.wait_for(loop.sock_recv(sock, 4096), 5)
        )
        sock.close()

        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        wire = query.to_wire()
        writer.write(struct.pack(">H", len(wire)) + wire)
        await writer.drain()
        (length,) = struct.unpack(">H", await reader.readexactly(2))
        tcp_response = Message.from_wire(await reader.readexactly(length))
        writer.close()
        await writer.wait_closed()
        await server.stop()
        return udp_response, tcp_response

    udp_response, tcp_response = asyncio.run(scenario())
    assert udp_response.flags.tc
    assert not tcp_response.flags.tc
    assert len(tcp_response.answer) == 4  # the full .nl NS set


def test_predict_refreshes_hot_name_in_background():
    """The live refresh-ahead loop: a hot name is re-resolved before its
    TTL runs out with *no* query in flight, so the follow-up query after
    the original expiry is still a cache hit."""

    async def scenario():
        import socket

        frontend, registry = build_frontend(
            # 2000 sim s per wall s: the 3600 s TTL expires ~1.8 wall s in,
            # and the 360 s refresh window spans several 20 ms pump ticks.
            ServeConfig(world="nl", predict=True, time_scale=2000.0)
        )
        server = ServeServer(frontend, predict_interval=0.02)
        port = await server.start()
        loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.connect(("127.0.0.1", port))

        async def ask(id):
            query = Message.make_query("www.domain2.nl.", RdataType.A, id=id)
            await loop.sock_sendall(sock, query.to_wire())
            return Message.from_wire(
                await asyncio.wait_for(loop.sock_recv(sock, 4096), 5)
            )

        await ask(1)
        await ask(2)  # second arrival: the name is now hot
        await asyncio.sleep(2.2)  # idle past the original expiry
        late = await ask(3)
        await server.stop()
        sock.close()
        return late, registry.snapshot()

    late, snapshot = asyncio.run(scenario())
    assert late.rcode == Rcode.NOERROR
    assert snapshot.value("predict.refreshes") >= 1
    # The background refresh kept the entry warm: the late query never
    # paid a full recursive walk.
    assert snapshot.value("serve.cache_hits") >= 2


def test_querylog_records_live_traffic(tmp_path):
    log_path = tmp_path / "live.jsonl"

    async def scenario():
        server, _ = make_server(querylog_path=str(log_path))
        port = await server.start()
        report = await LoadGenerator(
            LoadgenConfig(port=port, rate_qps=200, duration_s=0.5, seed=9)
        ).run()
        await server.stop()
        return report

    report = asyncio.run(scenario())
    from repro.server.querylog import QueryLog

    log = QueryLog.read_jsonl(log_path)
    assert len(log) == report.attempts
    groups = log.by_group()
    assert groups  # consumable by repro.analysis.interarrival
    assert all(address == "127.0.0.1" for address, _ in groups)
