"""The batched-datagram contract: mmsg and fallback are interchangeable.

The serving loop treats :func:`make_batcher`'s result as an opaque
drain/flush pair, so the whole fast path rests on the two
implementations being byte-equivalent: same payloads, same peer
addresses, same partial-batch and would-block behavior.  These tests
pin that equivalence on real loopback sockets, then push a 100-query
burst through the full server to prove deep batches survive end to end.
"""

import asyncio
import socket

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.rdtypes import RdataType
from repro.serve import ServeConfig, ServeServer, build_frontend
from repro.serve.batchio import (
    DEFAULT_BATCH_SIZE,
    FallbackBatcher,
    MmsgBatcher,
    make_batcher,
    mmsg_available,
)

needs_mmsg = pytest.mark.skipif(
    not mmsg_available(), reason="recvmmsg/sendmmsg not available on this platform"
)

BATCHER_KINDS = [FallbackBatcher] + ([MmsgBatcher] if mmsg_available() else [])


def _socket_pair():
    """Two bound, connected-free, non-blocking UDP loopback sockets."""
    left = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    left.bind(("127.0.0.1", 0))
    left.setblocking(False)
    right = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    right.bind(("127.0.0.1", 0))
    right.setblocking(False)
    return left, right


def _drain(batcher, expect):
    """Collect exactly ``expect`` datagrams, polling through empty reads."""
    import time

    got = []
    deadline = time.monotonic() + 5.0
    while len(got) < expect and time.monotonic() < deadline:
        got.extend(batcher.recv_batch())
    return got


@pytest.mark.parametrize("cls", BATCHER_KINDS)
def test_empty_socket_returns_empty_batch(cls):
    left, right = _socket_pair()
    try:
        assert cls(left, 8).recv_batch() == []  # EAGAIN, not an exception
    finally:
        left.close()
        right.close()


@pytest.mark.parametrize("cls", BATCHER_KINDS)
def test_partial_batch_returns_what_is_queued(cls):
    """5 datagrams against a batch size of 8: one drain, five results."""
    left, right = _socket_pair()
    try:
        batcher = cls(left, 8)
        payloads = [bytes([index]) * (20 + index) for index in range(5)]
        for payload in payloads:
            right.sendto(payload, left.getsockname())
        got = _drain(batcher, 5)
        assert [payload for payload, _ in got] == payloads
        assert all(addr == right.getsockname() for _, addr in got)
        # The socket is dry again: the next drain hits would-block.
        assert batcher.recv_batch() == []
    finally:
        left.close()
        right.close()


@pytest.mark.parametrize("cls", BATCHER_KINDS)
def test_overfull_queue_drains_in_batches(cls):
    """More queued than one batch holds: successive drains chunk it."""
    left, right = _socket_pair()
    try:
        batcher = cls(left, 4)
        payloads = [bytes([index]) * 30 for index in range(10)]
        for payload in payloads:
            right.sendto(payload, left.getsockname())
        first = _drain(batcher, 4)
        assert len(first) == 4
        rest = _drain(batcher, 6)
        assert [payload for payload, _ in first + rest] == payloads
        assert batcher.recv_batch() == []  # EAGAIN mid-stream is clean
    finally:
        left.close()
        right.close()


@pytest.mark.parametrize("cls", BATCHER_KINDS)
def test_send_batch_chunks_beyond_batch_size(cls):
    left, right = _socket_pair()
    try:
        sender = cls(left, 4)
        receiver = FallbackBatcher(right, 32)
        items = [(bytes([index]) * 25, right.getsockname()) for index in range(11)]
        assert sender.send_batch(items) == 11
        got = _drain(receiver, 11)
        assert [payload for payload, _ in got] == [payload for payload, _ in items]
    finally:
        left.close()
        right.close()


@needs_mmsg
def test_mmsg_and_fallback_are_byte_equivalent():
    """The same traffic through both kinds produces identical datagrams —
    payload bytes, peer address tuples, and ordering all match."""
    for sender_cls, receiver_cls in [
        (MmsgBatcher, FallbackBatcher),
        (FallbackBatcher, MmsgBatcher),
        (MmsgBatcher, MmsgBatcher),
        (FallbackBatcher, FallbackBatcher),
    ]:
        left, right = _socket_pair()
        try:
            sender = sender_cls(left, 8)
            receiver = receiver_cls(right, 8)
            items = [
                (bytes([index, index ^ 0xFF]) * (index + 1), right.getsockname())
                for index in range(8)
            ]
            assert sender.send_batch(items) == len(items)
            got = _drain(receiver, len(items))
            assert got == [
                (payload, left.getsockname()) for payload, _ in items
            ], f"{sender_cls.__name__} -> {receiver_cls.__name__}"
        finally:
            left.close()
            right.close()


@needs_mmsg
def test_mmsg_reuses_slots_across_calls():
    """The rings are reused, not reallocated: interleaved send/recv over
    many rounds must never bleed bytes between slots or rounds."""
    left, right = _socket_pair()
    try:
        sender = MmsgBatcher(left, 4)
        receiver = MmsgBatcher(right, 4)
        for round_index in range(12):
            items = [
                (bytes([round_index, index]) * (5 + round_index), right.getsockname())
                for index in range(3)
            ]
            assert sender.send_batch(items) == 3
            got = _drain(receiver, 3)
            assert [payload for payload, _ in got] == [p for p, _ in items]
    finally:
        left.close()
        right.close()


def test_make_batcher_selection():
    left, _right = _socket_pair()
    try:
        assert make_batcher(left, 1).kind == "fallback"  # batch of 1: no point
        assert make_batcher(left, 8, prefer_mmsg=False).kind == "fallback"
        auto = make_batcher(left, 8)
        assert auto.kind == ("mmsg" if mmsg_available() else "fallback")
        assert auto.batch_size == 8
    finally:
        left.close()
        _right.close()


@pytest.mark.parametrize("batching", [True, False])
def test_hundred_query_burst_zero_loss(batching):
    """100 queries fired before the server runs once: the whole burst is
    drained in deep batches and every query gets exactly one answer."""
    burst = 100

    async def scenario():
        frontend, registry = build_frontend(ServeConfig(world="nl"))
        server = ServeServer(frontend, batching=batching)
        port = await server.start()
        loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.connect(("127.0.0.1", port))
        for index in range(burst):
            query = Message.make_query(
                f"www.domain{index % 10}.nl.", RdataType.A, id=index
            )
            sock.send(query.to_wire())
        responses = []
        while len(responses) < burst:
            responses.append(
                await asyncio.wait_for(loop.sock_recv(sock, 4096), timeout=5.0)
            )
        sock.close()
        kind = server.batcher.kind
        await server.stop()
        return responses, registry.snapshot(), kind

    responses, snapshot, kind = asyncio.run(scenario())
    assert kind == ("mmsg" if batching and mmsg_available() else "fallback")
    seen_ids = set()
    for wire in responses:
        message = Message.from_wire(wire)
        assert message.rcode == Rcode.NOERROR
        seen_ids.add(message.id)
    assert seen_ids == set(range(burst))  # zero loss, zero duplicates
    assert snapshot.value("serve.queries") == burst
    assert snapshot.value("serve.shed") == 0


def test_burst_responses_identical_with_and_without_batching():
    """The loop-level half of byte-equivalence: the same burst against a
    batched server and a plain sendto server produces the same answer
    bytes per query ID (modulo the ID itself, which is zeroed here)."""
    burst = 20

    async def scenario(batching):
        frontend, _ = build_frontend(ServeConfig(world="nl", seed=7))
        server = ServeServer(frontend, batching=batching)
        port = await server.start()
        loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.connect(("127.0.0.1", port))
        for index in range(burst):
            query = Message.make_query(
                f"www.domain{index % 5}.nl.", RdataType.A, id=index
            )
            sock.send(query.to_wire())
        by_id = {}
        while len(by_id) < burst:
            wire = await asyncio.wait_for(loop.sock_recv(sock, 4096), timeout=5.0)
            by_id[(wire[0] << 8) | wire[1]] = b"\x00\x00" + wire[2:]
        sock.close()
        await server.stop()
        return by_id

    batched = asyncio.run(scenario(True))
    plain = asyncio.run(scenario(False))
    assert batched == plain


def test_default_batch_size_is_sane():
    assert 1 < DEFAULT_BATCH_SIZE <= 1024
