"""Multi-worker serving over SO_REUSEPORT, observed end to end.

SO_REUSEPORT needs real processes sharing a real port, so this test
boots `repro serve --workers 2` as a subprocess and drives it with the
multi-socket load generator (one connected UDP socket is one kernel
flow — a single-socket client can only ever exercise one worker).  It
then checks the whole accounting chain: both workers actually served,
the parent's merged metrics snapshot equals the sum of the per-worker
querylogs, and nothing was lost on the way.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.loadgen import LoadgenConfig, run_loadgen
from repro.server.querylog import QueryLog

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT unavailable on this platform",
)

WORKERS = 2
#: Kernel flow-hashing over 2 workers: 16 distinct flows make an
#: all-on-one-worker split astronomically unlikely (2 * 2**-16).
SOCKETS = 16


def _start_server(tmp_path):
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "src",
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--world", "nl", "--port", str(port), "--workers", str(WORKERS),
            "--metrics", str(tmp_path / "metrics.json"),
            "--querylog", str(tmp_path / "querylog.jsonl"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    ready = 0
    deadline = time.monotonic() + 60.0
    while ready < WORKERS:
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("workers did not come up in 60 s")
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"serve exited early (rc={proc.poll()})")
        # count() not containment: worker ready lines share one pipe and
        # could arrive merged if a write ever tears.
        ready += line.count("listening on")
    return proc, port


def test_two_workers_both_serve_and_accounting_adds_up(tmp_path):
    proc, port = _start_server(tmp_path)
    try:
        report = run_loadgen(
            LoadgenConfig(
                port=port,
                mode="closed",
                concurrency=SOCKETS,
                sockets=SOCKETS,
                duration_s=1.5,
                population=50,
                seed=11,
            )
        )
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise

    assert report.lost == 0
    assert report.parse_errors == 0
    assert report.received > 100

    # Merged snapshot: written by the parent from per-worker files.
    with open(tmp_path / "metrics.json", "r", encoding="utf-8") as stream:
        merged = json.load(stream)["metrics"]
    assert merged["serve.queries"]["value"] == report.attempts

    # Both workers actually served: the labeled per-worker counter has
    # one label per worker, every one of them non-zero.
    worker_counts = merged["serve.worker_queries"]["values"]
    assert len(worker_counts) == WORKERS, worker_counts
    assert all(count > 0 for count in worker_counts.values()), worker_counts
    assert sum(worker_counts.values()) == report.attempts

    # Per-worker querylogs agree with the merged metrics, label by label.
    log_counts: dict[str, int] = {}
    total_lines = 0
    for index in range(WORKERS):
        path = tmp_path / f"querylog.jsonl.worker{index}"
        assert path.exists()
        log = QueryLog.read_jsonl(path)
        total_lines += len(log)
        for server, count in log.query_count_by_server().items():
            log_counts[server] = log_counts.get(server, 0) + count
    assert total_lines == report.attempts
    assert log_counts == worker_counts
