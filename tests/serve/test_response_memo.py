"""The response-memo contract: byte-identity, expiry, and invalidation.

The fast path is only admissible if a memo hit is *indistinguishable on
the wire* from running the full pipeline at the same instant.  The
property test here drives a memoized frontend and a memo-less twin over
the same query sequence with arbitrary fractional time advances and
requires byte equality on every response — which exercises exactly the
hard part, the TTL tick boundary.  The directed tests pin the lifecycle:
validity bounds, write invalidation through ``Cache.on_change`` (incl. a
``--predict`` refresh), FIFO eviction, and re-memoization afterwards.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import Message, Rcode, Section
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.serve import ServeConfig, build_frontend
from repro.serve.memo import ResponseMemo


class SimBridge:
    """A directly settable sim clock standing in for WallClockBridge."""

    def __init__(self, at: float = 0.0) -> None:
        self.at = at

    def now(self) -> float:
        return self.at

    def wall_elapsed(self) -> float:
        return self.at


def make_frontend(*, memo: bool = True, at: float = 0.0, **config_kwargs):
    frontend, registry = build_frontend(
        ServeConfig(world="nl", memo=memo, **config_kwargs)
    )
    frontend.bridge = SimBridge(at)
    return frontend, registry


def query_wire(name: str, qtype=RdataType.A, id: int = 0, edns: bool = False) -> bytes:
    query = Message.make_query(name, qtype, id=id)
    if edns:
        query.use_edns()
    return query.to_wire()


def serve(frontend, wire: bytes, client: str = "127.0.0.1"):
    """What the server loop does: try the memo, else the full pipeline."""
    fast = frontend.fast_answer(wire, client)
    if fast is not None:
        return fast, True
    return frontend.handle_wire(wire, client).wire, False


# -- the property: memoized == slow path, byte for byte --------------------

@settings(max_examples=40, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),  # qname rank
            st.integers(min_value=0, max_value=0xFFFF),  # DNS ID
            st.booleans(),  # EDNS
            st.floats(min_value=0.0, max_value=0.9),  # sim advance
        ),
        min_size=2,
        max_size=25,
    )
)
def test_memoized_responses_byte_identical_to_slow_path(steps):
    """Any query sequence, any fractional clock advances: whenever the
    memo answers, its bytes equal what the full pipeline produces for
    the same wire at the same instant.

    (The comparison is against the *same* frontend's slow path, not a
    twin server: a memo hit legitimately skips one simulated resolution,
    so a twin's stochastic resolution history — and with it the exact
    insert instants behind its TTL bytes — diverges from the hot
    frontend's.  The contract is equivalence at the serving instant.)
    """
    frontend, _ = make_frontend(memo=True, at=1000.0)
    for rank, message_id, edns, advance in steps:
        frontend.bridge.at += advance
        wire = query_wire(f"www.domain{rank}.nl.", id=message_id, edns=edns)
        fast = frontend.fast_answer(wire, "127.0.0.1")
        slow = frontend.handle_wire(wire, "127.0.0.1").wire
        if fast is not None:
            assert fast == slow, f"rank={rank} at={frontend.bridge.at}"
    # Same-instant repeats at the end: the memo must actually engage (and
    # still match) or this property is testing nothing.  Two slow passes
    # first — a *fresh* resolution's answer is aged by the simulated
    # resolution latency, so only the repeat (a cache hit, aged at the
    # serving instant) is guaranteed to memoize.
    wire = query_wire("www.domain0.nl.", id=0xBEEF)
    frontend.handle_wire(wire, "127.0.0.1")
    frontend.handle_wire(wire, "127.0.0.1")
    fast = frontend.fast_answer(wire, "127.0.0.1")
    assert fast is not None
    assert fast == frontend.handle_wire(wire, "127.0.0.1").wire


@settings(max_examples=20, deadline=None)
@given(
    ids=st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=2, max_size=8)
)
def test_memo_hit_differs_only_in_id(ids):
    frontend, _ = make_frontend(at=50.0)
    frontend.handle_wire(query_wire("www.domain2.nl.", id=ids[0]), "c")
    repeat = frontend.handle_wire(query_wire("www.domain2.nl.", id=ids[0]), "c").wire
    for message_id in ids[1:]:
        hit = frontend.fast_answer(query_wire("www.domain2.nl.", id=message_id), "c")
        assert hit is not None
        assert hit[:2] == message_id.to_bytes(2, "big")
        assert hit[2:] == repeat[2:]


# -- TTL ticks -------------------------------------------------------------

def test_no_memoized_ttl_outlives_a_tick():
    """The served TTL must read ``int(expires_at - now)`` at every probe
    instant — the memo may never serve yesterday's TTL byte."""
    frontend, _ = make_frontend(at=10.0)
    wire = query_wire("www.domain3.nl.", id=1)
    frontend.handle_wire(wire, "c")  # fresh resolution fills the cache
    repeat = frontend.handle_wire(wire, "c").wire  # cache hit: memoized
    ttl = Message.from_wire(repeat).rrsets(Section.ANSWER)[0].ttl
    entry = frontend.resolver.cache.peek(Name("www.domain3.nl."), RdataType.A)
    boundary = entry.expires_at - ttl  # the instant before the next tick

    frontend.bridge.at = boundary
    at_boundary = frontend.fast_answer(query_wire("www.domain3.nl.", id=2), "c")
    assert at_boundary is not None  # still exact: TTL has not ticked
    assert Message.from_wire(at_boundary).rrsets(Section.ANSWER)[0].ttl == ttl

    # One ulp past the bound the memo already declines (conservative),
    # even while float rounding may keep int(expires - now) at the old
    # value; a microsecond past it, the slow path's TTL has visibly
    # ticked and the memo must not resurrect the old byte.
    frontend.bridge.at = math.nextafter(boundary, math.inf)
    _, was_fast = serve(frontend, query_wire("www.domain3.nl.", id=3))
    assert not was_fast  # the stale entry was dropped on sight
    frontend.bridge.at = boundary + 1e-6
    after_tick, was_fast = serve(frontend, query_wire("www.domain3.nl.", id=4))
    assert not was_fast
    assert Message.from_wire(after_tick).rrsets(Section.ANSWER)[0].ttl == ttl - 1


def test_negative_answer_memoized_until_expiry():
    frontend, registry = make_frontend(at=0.0)
    wire = query_wire("www.doesnotexist.nl.", id=7)
    first = frontend.handle_wire(wire, "c").wire
    assert Message.from_wire(first).rcode == Rcode.NXDOMAIN
    negative = frontend.resolver.cache.peek_negative(
        Name("www.doesnotexist.nl."), RdataType.A
    )
    assert negative is not None

    frontend.bridge.at = math.nextafter(negative.expires_at, -math.inf)
    hit = frontend.fast_answer(query_wire("www.doesnotexist.nl.", id=8), "c")
    assert hit is not None  # reusable right up to the expiry instant
    assert hit[2:] == first[2:]

    frontend.bridge.at = negative.expires_at
    assert frontend.fast_answer(query_wire("www.doesnotexist.nl.", id=9), "c") is None
    assert registry.snapshot().value("serve.memo_hits") == 1


# -- invalidation ----------------------------------------------------------

def test_cache_write_invalidates_affected_entry_only():
    frontend, _ = make_frontend(at=5.0)
    for message_id, name in enumerate(("www.domain1.nl.", "www.domain2.nl.")):
        frontend.handle_wire(query_wire(name, id=message_id), "c")
        frontend.handle_wire(query_wire(name, id=message_id), "c")  # memoize
    memo = frontend.memo
    assert len(memo) == 2

    # Any cache mutation for the name lands in the memo via on_change;
    # forced expiry is the bluntest such write.
    cache = frontend.resolver.cache
    entry = cache.peek(Name("www.domain1.nl."), RdataType.A)
    cache.expire_now(entry.key(), now=frontend.bridge.at)

    assert len(memo) == 1
    assert frontend.fast_answer(query_wire("www.domain1.nl.", id=3), "c") is None
    assert frontend.fast_answer(query_wire("www.domain2.nl.", id=4), "c") is not None


def test_predict_refresh_invalidates_and_slow_path_rememoizes():
    """A ``--predict`` refresh rewrites the cache entry behind a hot
    name; the memoized bytes (older TTL feed) must die with it."""
    frontend, _ = make_frontend(at=0.0, predict=True)
    memo = frontend.memo
    # Two arrivals make the name hot for the popularity tracker (the
    # second, a cache hit, is also the one guaranteed to memoize).
    frontend.handle_wire(query_wire("www.domain4.nl.", id=1), "c")
    frontend.handle_wire(query_wire("www.domain4.nl.", id=2), "c")
    hit = frontend.fast_answer(query_wire("www.domain4.nl.", id=3), "c")
    assert hit is not None

    cache = frontend.resolver.cache
    entry = cache.peek(Name("www.domain4.nl."), RdataType.A)
    old_expiry = entry.expires_at
    # Jump to just inside the refresh lead window and run the background
    # pump — exactly what the server's predict loop does.
    frontend.bridge.at = old_expiry - 60.0
    invalidations_before = memo.invalidations
    assert frontend.pump() >= 1

    refreshed = cache.peek(Name("www.domain4.nl."), RdataType.A)
    assert refreshed.expires_at > old_expiry  # the refresh really landed
    assert memo.invalidations > invalidations_before
    # The old entry is gone; the next query pays one slow pass and then
    # the memo is hot again with the *new* expiry feed.
    served, was_fast = serve(frontend, query_wire("www.domain4.nl.", id=3))
    assert not was_fast
    rehit = frontend.fast_answer(query_wire("www.domain4.nl.", id=4), "c")
    assert rehit is not None
    assert rehit[2:] == served[2:]


def test_cache_clear_empties_memo():
    frontend, _ = make_frontend(at=5.0)
    for message_id in (1, 2):
        frontend.handle_wire(query_wire("www.domain1.nl.", id=message_id), "c")
    assert len(frontend.memo) > 0
    frontend.resolver.cache.clear()
    assert len(frontend.memo) == 0


# -- the memo object itself ------------------------------------------------

def test_capacity_evicts_oldest_first():
    memo = ResponseMemo(capacity=2)
    names = [Name(f"n{index}.example.") for index in range(3)]
    for index, name in enumerate(names):
        memo.put(
            bytes([index]), b"wire%d" % index, 100.0, name, RdataType.A, "NOERROR"
        )
    assert len(memo) == 2
    assert memo.get(bytes([0]), 0.0) is None  # oldest went first
    assert memo.get(bytes([1]), 0.0) is not None
    assert memo.get(bytes([2]), 0.0) is not None


def test_memo_counters_and_validity_window():
    memo = ResponseMemo(capacity=8)
    name = Name("x.example.")
    memo.put(b"k", b"w", valid_until=10.0, qname=name, qtype=RdataType.A,
             rcode_name="NOERROR")
    assert memo.get(b"k", 10.0) is not None  # inclusive bound
    assert memo.get(b"k", math.nextafter(10.0, math.inf)) is None  # dropped
    assert memo.get(b"k", 0.0) is None  # really gone
    assert (memo.hits, memo.misses) == (1, 2)
    assert memo.invalidations == 1


def test_invalidate_name_covers_answer_owners():
    """A CNAME-style response depends on every answer owner, not just
    the qname; invalidating either must drop it."""
    memo = ResponseMemo()
    qname = Name("alias.example.")
    target = Name("canonical.example.")
    memo.put(b"k", b"w", 100.0, qname, RdataType.A, "NOERROR",
             answer_names=(qname, target))
    assert memo.invalidate_name(target) == 1
    assert len(memo) == 0
    memo.put(b"k", b"w", 100.0, qname, RdataType.A, "NOERROR",
             answer_names=(qname, target))
    assert memo.invalidate_name(qname) == 1
    assert memo.invalidate_name(Name("other.example.")) == 0
