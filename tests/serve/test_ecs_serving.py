"""`repro serve --ecs`: the frontend's RFC 7871 client-subnet path.

An ECS-armed frontend accepts client-subnet options from stubs, passes
them through resolution, and echoes the subnet (with the resolved scope)
on the response; an unarmed frontend must ignore the option entirely —
same answer bytes as a query without it.
"""

import pytest

from repro.dns.ecs import ClientSubnet, extract_client_subnet
from repro.dns.message import Message, Rcode
from repro.dns.rdtypes import RdataType
from repro.serve.config import ServeConfig, build_frontend


def query_wire(qname="www.domain1.nl.", id=1, subnet=None, options=None):
    query = Message.make_query(qname, RdataType.A, id=id)
    if options is not None:
        query.use_edns(options=options)
    elif subnet is not None:
        query.use_edns(options=subnet.to_wire())
    return query.to_wire()


@pytest.fixture(scope="module")
def ecs_frontend():
    frontend, _registry = build_frontend(
        ServeConfig(world="nl", ecs=True), wall_clock=lambda: 0.0
    )
    return frontend


def test_config_default_is_off():
    assert ServeConfig(world="nl").ecs is False


def test_ecs_query_is_answered_and_echoed(ecs_frontend):
    subnet = ClientSubnet.from_ip("198.51.100.0", 24)
    result = ecs_frontend.handle_wire(
        query_wire(id=21, subnet=subnet), client="10.0.0.1"
    )
    assert result.outcome == "answered"
    response = Message.from_wire(result.wire)
    assert response.rcode == Rcode.NOERROR
    assert response.answer
    echoed = extract_client_subnet(response.edns.options)
    # The nl world's plain authoritatives never scope answers, so the
    # echo declares the answer global (scope 0) per RFC 7871 §7.3.1.
    assert echoed is not None
    assert echoed.address == subnet.address
    assert echoed.source_prefix == 24
    assert echoed.scope_prefix == 0


def test_malformed_ecs_is_formerr(ecs_frontend):
    truncated = ClientSubnet.from_ip("198.51.100.0", 24).to_wire()[:-1]
    result = ecs_frontend.handle_wire(
        query_wire(id=22, options=truncated), client="10.0.0.1"
    )
    response = Message.from_wire(result.wire)
    assert response.rcode == Rcode.FORMERR


def test_plain_edns_still_works(ecs_frontend):
    result = ecs_frontend.handle_wire(
        query_wire(id=23, options=b""), client="10.0.0.1"
    )
    response = Message.from_wire(result.wire)
    assert response.rcode == Rcode.NOERROR


def test_unarmed_frontend_ignores_the_option():
    """ECS off: a query carrying the option gets the same answer bytes
    as one without it (modulo the echoed OPT, which carries no options
    either way) — the byte-identity contract for disabled paths."""
    frontend, _registry = build_frontend(
        ServeConfig(world="nl"), wall_clock=lambda: 0.0
    )
    subnet = ClientSubnet.from_ip("198.51.100.0", 24)
    with_ecs = frontend.handle_wire(
        query_wire(id=31, subnet=subnet), client="10.0.0.1"
    )
    without = frontend.handle_wire(
        query_wire(id=31, options=b""), client="10.0.0.1"
    )
    assert with_ecs.wire == without.wire
    assert Message.from_wire(with_ecs.wire).edns.options == b""
