"""Overload behavior: bounded in-flight, early SERVFAIL, no queue growth.

The point of open-loop shedding is that an arrival burst beyond the
in-flight budget is refused *immediately* (bare SERVFAIL from the
receive callback) instead of queueing without bound — an overloaded
server must stay overloaded-but-responsive, not melt.
"""

import asyncio
import socket

from repro.dns.message import Message, Rcode
from repro.dns.rdtypes import RdataType
from repro.serve import ServeConfig, ServeServer, build_frontend


class SlowWall:
    """A controllable wall clock (the frontend never blocks on it)."""

    def __init__(self) -> None:
        self.at = 0.0

    def __call__(self) -> float:
        return self.at


def test_burst_beyond_budget_is_shed_with_servfail():
    budget = 4
    burst = 64

    async def scenario():
        frontend, registry = build_frontend(ServeConfig(world="nl"))
        server = ServeServer(frontend, max_inflight=budget)
        port = await server.start()
        loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.connect(("127.0.0.1", port))
        # Fire the whole burst before yielding to the drain task: the
        # datagrams all hit the protocol callback back-to-back, so at
        # most `budget` can be admitted; the rest must shed.
        for index in range(burst):
            query = Message.make_query("www.domain1.nl.", RdataType.A, id=index)
            sock.send(query.to_wire())
        responses = []
        try:
            while len(responses) < burst:
                responses.append(
                    await asyncio.wait_for(loop.sock_recv(sock, 4096), timeout=2.0)
                )
        except asyncio.TimeoutError:
            pass
        sock.close()
        await server.stop()
        return responses, registry.snapshot(), server

    responses, snapshot, server = asyncio.run(scenario())

    shed = snapshot.value("serve.shed")
    assert shed > 0, "burst larger than the budget must shed"
    # Everything sent was answered one way or the other: full responses
    # for admitted queries, bare SERVFAIL for shed ones.
    assert len(responses) == burst
    rcodes = [Message.from_wire(blob).rcode for blob in responses]
    assert rcodes.count(Rcode.SERVFAIL) == shed
    assert rcodes.count(Rcode.NOERROR) == burst - shed
    # The in-flight budget really bounded the queue.
    assert server._inflight_peak <= budget
    assert snapshot.value("serve.inflight_peak") <= budget


def test_shed_responses_echo_query_id():
    async def scenario():
        frontend, _ = build_frontend(ServeConfig(world="nl"))
        server = ServeServer(frontend, max_inflight=1)
        port = await server.start()
        loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.connect(("127.0.0.1", port))
        for index in range(32):
            query = Message.make_query("www.domain3.nl.", RdataType.A, id=1000 + index)
            sock.send(query.to_wire())
        responses = []
        try:
            while len(responses) < 32:
                responses.append(
                    await asyncio.wait_for(loop.sock_recv(sock, 4096), timeout=2.0)
                )
        except asyncio.TimeoutError:
            pass
        sock.close()
        await server.stop()
        return responses

    responses = asyncio.run(scenario())
    ids = {Message.from_wire(blob).id for blob in responses}
    assert ids <= set(range(1000, 1032))
    assert len(responses) == 32  # every query got *some* answer


def test_queue_drains_after_burst():
    """After an overload burst, a fresh query is answered normally."""

    async def scenario():
        frontend, _ = build_frontend(ServeConfig(world="nl"))
        server = ServeServer(frontend, max_inflight=2)
        port = await server.start()
        loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.connect(("127.0.0.1", port))
        for index in range(16):
            sock.send(
                Message.make_query("www.domain4.nl.", RdataType.A, id=index).to_wire()
            )
        await asyncio.sleep(0.3)  # let the burst fully drain
        while True:  # flush pending responses
            try:
                await asyncio.wait_for(loop.sock_recv(sock, 4096), timeout=0.05)
            except asyncio.TimeoutError:
                break
        sock.send(
            Message.make_query("www.domain5.nl.", RdataType.A, id=7777).to_wire()
        )
        blob = await asyncio.wait_for(loop.sock_recv(sock, 4096), timeout=2.0)
        sock.close()
        await server.stop()
        return Message.from_wire(blob)

    response = asyncio.run(scenario())
    assert response.id == 7777
    assert response.rcode == Rcode.NOERROR
