"""Mid-shard world-snapshot resume: kill a shard, resume, merge unchanged.

Shard-boundary checkpoints (test_checkpoint.py) resume completed shards;
these tests cover the finer-grained layer — a shard killed *mid-run*
resumes from its last world snapshot, and the merged campaign is
byte-identical to one that never crashed.
"""

import pickle

import pytest

from repro.core.scenarios import scenario_uy_ns
from repro.runner import worldcache
from repro.runner.campaigns import campaign_fingerprint, centricity_shard
from repro.runner.checkpoint import CheckpointMismatch, CheckpointStore
from repro.runner.codec import decode_shard_payload
from repro.runner.executor import RetryPolicy, ShardExecutor
from repro.runner.merge import merge_result_sets
from repro.runner.shard import plan_shards

UY_KWARGS = dict(
    builder="uy",
    world_kwargs={"child_ns_ttl": 300},
    spec_kwargs=dict(qname="uy.", interval=600.0, duration=1800.0, description="snap"),
    qtype_name="NS",
)


@pytest.fixture(autouse=True)
def fresh_cache():
    worldcache.clear()
    yield
    worldcache.clear()


def _fingerprint():
    return campaign_fingerprint("centricity", campaign="snap-test", seed=0)


def _snapshot(run_dir, every=20, **extra):
    return {"run_dir": str(run_dir), "fingerprint": _fingerprint(),
            "every": every, **extra}


# -- store-level record handling ---------------------------------------------


def test_store_round_trips_world_snapshots(tmp_path):
    store = CheckpointStore(tmp_path, {"c": 1})
    assert store.load_world_snapshot(0) is None
    assert not store.has_world_snapshot(0)
    store.save_world_snapshot(0, {"cursor": 42})
    assert store.has_world_snapshot(0)
    assert store.load_world_snapshot(0) == {"cursor": 42}
    store.discard_world_snapshot(0)
    assert store.load_world_snapshot(0) is None


def test_store_rejects_foreign_snapshot_records(tmp_path):
    store = CheckpointStore(tmp_path, {"c": 1})
    store.save_world_snapshot(1, {"cursor": 7})
    # A record copied under another shard's filename is a corruption,
    # not a silent miss.
    record = pickle.loads((tmp_path / "wsnap-0001.pkl").read_bytes())
    (tmp_path / "wsnap-0002.pkl").write_bytes(pickle.dumps(record))
    with pytest.raises(CheckpointMismatch):
        store.load_world_snapshot(2)
    record["version"] = 99
    (tmp_path / "wsnap-0001.pkl").write_bytes(pickle.dumps(record))
    with pytest.raises(CheckpointMismatch):
        store.load_world_snapshot(1)


def test_completed_shard_discards_its_snapshot(tmp_path):
    store = CheckpointStore(tmp_path, {"c": 1})
    store.save_world_snapshot(3, {"cursor": 1})
    store.save(3, {"done": True})
    assert not store.has_world_snapshot(3)
    assert store.has(3)


def test_clear_drops_snapshots_too(tmp_path):
    store = CheckpointStore(tmp_path, {"c": 1})
    store.save_world_snapshot(0, {"cursor": 1})
    store.save(1, {"done": True})
    store.clear()
    assert not store.has_world_snapshot(0)
    assert not store.has(1)


# -- shard-level crash and resume --------------------------------------------


def test_soft_crash_resumes_from_snapshot(tmp_path):
    shard = plan_shards(24, 3, 7)[1]
    clean = decode_shard_payload(centricity_shard(shard, **UY_KWARGS))

    snap = _snapshot(tmp_path, every=10, crash_after=15)
    worldcache.clear()
    with pytest.raises(RuntimeError, match="injected crash"):
        centricity_shard(shard, **UY_KWARGS, snapshot=snap)
    store = CheckpointStore(tmp_path, _fingerprint())
    assert store.has_world_snapshot(shard.index)

    resumed = decode_shard_payload(
        centricity_shard(shard, **UY_KWARGS, snapshot=snap)
    )
    assert resumed["results"].results == clean["results"].results
    assert resumed["metrics"] == clean["metrics"]


def test_serial_executor_retry_resumes_mid_shard(tmp_path):
    shards = plan_shards(24, 3, 7)
    baseline = [decode_shard_payload(centricity_shard(s, **UY_KWARGS)) for s in shards]

    worldcache.clear()
    kwargs = {**UY_KWARGS, "snapshot": _snapshot(tmp_path, every=10, crash_after=15)}
    executor = ShardExecutor(
        parallelism=1, retry=RetryPolicy(max_attempts=3, backoff=0.0),
        sleep=lambda _: None,
    )
    outcomes = executor.run(centricity_shard, shards, kwargs)
    merged = merge_result_sets(
        [decode_shard_payload(o.value)["results"] for o in outcomes]
    )
    expected = merge_result_sets([p["results"] for p in baseline])
    assert merged.results == expected.results
    # Every retried shard crashed once, then resumed.
    assert all(o.attempts == 2 for o in outcomes)
    store = CheckpointStore(tmp_path, _fingerprint())
    assert not any(store.has_world_snapshot(s.index) for s in shards)


def test_pool_worker_hard_kill_resumes_mid_shard(tmp_path):
    shards = plan_shards(24, 3, 7)
    baseline = [decode_shard_payload(centricity_shard(s, **UY_KWARGS)) for s in shards]

    # crash_hard kills the worker process outright (os._exit): the pool
    # breaks, is rebuilt, and the resubmitted shard resumes from its
    # world snapshot instead of restarting.
    kwargs = {
        **UY_KWARGS,
        "snapshot": _snapshot(
            tmp_path, every=10, crash_after=15, crash_hard=True
        ),
    }
    executor = ShardExecutor(
        parallelism=2, retry=RetryPolicy(max_attempts=4, backoff=0.0),
        sleep=lambda _: None,
    )
    outcomes = executor.run(centricity_shard, shards, kwargs)
    merged = merge_result_sets(
        [decode_shard_payload(o.value)["results"] for o in outcomes]
    )
    expected = merge_result_sets([p["results"] for p in baseline])
    assert merged.results == expected.results
    store = CheckpointStore(tmp_path, _fingerprint())
    assert not any(store.has_world_snapshot(s.index) for s in shards)


# -- campaign-level snapshot runs --------------------------------------------


def test_snapshot_campaign_matches_plain_run(tmp_path):
    plain = scenario_uy_ns(seed=5, probes=24, duration=1800.0, parallelism=1, shards=3)
    snapped = scenario_uy_ns(
        seed=5, probes=24, duration=1800.0, parallelism=1, shards=3,
        run_dir=str(tmp_path / "snap"), snapshot_every=25,
    )
    assert snapped.results.results == plain.results.results
    assert snapped.metrics.to_json() == plain.metrics.to_json()
    assert not list((tmp_path / "snap").glob("wsnap-*.pkl"))


def test_snapshot_cadence_is_not_part_of_the_fingerprint(tmp_path):
    run_dir = tmp_path / "t2"
    first = scenario_uy_ns(
        seed=5, probes=24, duration=1800.0, parallelism=1, shards=3,
        run_dir=str(run_dir), snapshot_every=25,
    )
    # Same campaign, different cadence: resumes (all shards cached)
    # instead of raising CheckpointMismatch.
    second = scenario_uy_ns(
        seed=5, probes=24, duration=1800.0, parallelism=1, shards=3,
        run_dir=str(run_dir), snapshot_every=100,
    )
    assert second.results.results == first.results.results
