"""Merge invariants: order independence and duplicate/ordering checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atlas.results import MeasurementResult, ResultSet
from repro.crawler.crawl import CrawlRecord, CrawlResult
from repro.crawler.toplists import GeneratedDomain
from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region
from repro.runner.merge import (
    MergeError,
    merge_counts,
    merge_crawl_results,
    merge_result_sets,
)


def _result(probe_id: int, round_index: int, timestamp: float) -> MeasurementResult:
    return MeasurementResult(
        probe_id=probe_id,
        vp_id=f"{probe_id}#0",
        resolver_address=f"10.0.0.{probe_id % 250}",
        region=Region.EU,
        asn=probe_id % 50,
        round_index=round_index,
        timestamp=timestamp,
        qname=Name("uy."),
        qtype=RdataType.NS,
        rcode=Rcode.NOERROR,
        ttl=300,
        answers=("ns1.uy.",),
        rtt=0.03,
    )


def _shard_sets(probe_counts: list[int], rounds: int = 3) -> list[ResultSet]:
    """Synthetic per-shard ResultSets over disjoint probe ranges."""
    sets = []
    base = 0
    for count in probe_counts:
        rows = [
            _result(base + p, r, timestamp=600.0 * r + (base + p) * 0.5)
            for r in range(rounds)
            for p in range(count)
        ]
        sets.append(ResultSet(rows))
        base += count
    return sets


@settings(max_examples=25, deadline=None)
@given(
    probe_counts=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=5),
    data=st.data(),
)
def test_merging_any_permutation_equals_the_serial_order(probe_counts, data):
    parts = _shard_sets(probe_counts)
    serial = merge_result_sets(parts)
    permutation = data.draw(st.permutations(parts))
    assert merge_result_sets(permutation).results == serial.results


def test_merge_preserves_every_result():
    parts = _shard_sets([3, 2, 4])
    merged = merge_result_sets(parts)
    assert len(merged) == sum(len(part) for part in parts)
    assert merged.probe_ids() == set(range(9))


def test_merge_orders_by_virtual_time():
    merged = merge_result_sets(_shard_sets([2, 2])[::-1])
    stamps = [result.timestamp for result in merged]
    assert stamps == sorted(stamps)


def test_duplicate_probe_ids_rejected():
    part = _shard_sets([2])[0]
    with pytest.raises(MergeError, match="disjoint"):
        merge_result_sets([part, part])


def test_duplicate_round_within_shard_rejected():
    rows = [_result(1, 0, 0.0), _result(1, 0, 10.0)]
    with pytest.raises(MergeError, match="two results for round"):
        merge_result_sets([ResultSet(rows)])


def test_backwards_timestamps_rejected():
    rows = [_result(1, 1, 600.0), _result(1, 0, 0.0)]
    with pytest.raises(MergeError, match="backwards"):
        merge_result_sets([ResultSet(rows)])


def test_merge_empty_is_empty():
    assert len(merge_result_sets([])) == 0


def test_merge_keeps_spec():
    parts = _shard_sets([1, 1])
    parts[0].spec = "spec-sentinel"
    assert merge_result_sets(parts).spec == "spec-sentinel"


# -- crawl results -----------------------------------------------------------


def _crawl_record(name: str) -> CrawlRecord:
    domain = GeneratedDomain(
        name=Name(name),
        list_name="Alexa",
        format="2LD",
        responsive=True,
        kind="apex",
        bailiwick="out",
        parent=Name("com."),
    )
    return CrawlRecord(domain=domain, responsive=True, ns_response="ns")


def test_crawl_merge_concatenates_in_shard_order():
    parts = [
        CrawlResult([_crawl_record("a.com."), _crawl_record("b.com.")]),
        CrawlResult([_crawl_record("c.com.")]),
    ]
    merged, queries = merge_crawl_results(parts, queries=[10, 5])
    assert [str(r.domain.name) for r in merged] == ["a.com.", "b.com.", "c.com."]
    assert queries == 15


def test_crawl_merge_rejects_duplicate_domains():
    part = CrawlResult([_crawl_record("a.com.")])
    with pytest.raises(MergeError, match="crawled twice"):
        merge_crawl_results([part, part])


def test_merge_counts_sums_keys():
    assert merge_counts([{"a": 1, "b": 2}, {"b": 3, "c": 4}]) == {
        "a": 1,
        "b": 5,
        "c": 4,
    }
