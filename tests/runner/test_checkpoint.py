"""Checkpoint store: spill, resume, fingerprint guarding, atomicity."""

import pytest

from repro.runner.checkpoint import CheckpointMismatch, CheckpointStore


def test_save_load_roundtrip(tmp_path):
    store = CheckpointStore(tmp_path / "run", {"kind": "test", "seed": 1})
    payload = {"numbers": [1, 2, 3], "nested": {"deep": True}}
    store.save(0, payload)
    assert store.load(0) == payload
    assert store.has(0)
    assert not store.has(1)


def test_completed_indices(tmp_path):
    store = CheckpointStore(tmp_path, {"seed": 0})
    for index in (0, 2, 7):
        store.save(index, index * 10)
    assert store.completed_indices() == {0, 2, 7}


def test_reopen_same_fingerprint_resumes(tmp_path):
    CheckpointStore(tmp_path, {"seed": 5}).save(1, "payload")
    reopened = CheckpointStore(tmp_path, {"seed": 5})
    assert reopened.completed_indices() == {1}
    assert reopened.load(1) == "payload"


def test_reopen_different_fingerprint_rejected(tmp_path):
    CheckpointStore(tmp_path, {"seed": 5})
    with pytest.raises(CheckpointMismatch, match="different campaign"):
        CheckpointStore(tmp_path, {"seed": 6})


def test_fingerprint_key_order_is_irrelevant(tmp_path):
    CheckpointStore(tmp_path, {"a": 1, "b": 2})
    CheckpointStore(tmp_path, {"b": 2, "a": 1})  # must not raise


def test_unserializable_fingerprint_rejected(tmp_path):
    with pytest.raises(TypeError, match="JSON-serializable"):
        CheckpointStore(tmp_path, {"bad": object()})


def test_discard_and_clear(tmp_path):
    store = CheckpointStore(tmp_path, {})
    store.save(0, "a")
    store.save(1, "b")
    store.discard(0)
    assert store.completed_indices() == {1}
    store.clear()
    assert store.completed_indices() == set()
    # The manifest survives a clear: the run dir still belongs to this
    # campaign and can be reused.
    CheckpointStore(tmp_path, {})


def test_no_temp_files_left_behind(tmp_path):
    store = CheckpointStore(tmp_path, {"seed": 0})
    store.save(3, list(range(1000)))
    leftovers = list(tmp_path.glob("*.tmp"))
    assert leftovers == []
