"""The per-process world cache: seeded reset must equal a fresh build."""

import pytest

from repro.runner import worldcache
from repro.runner.campaigns import centricity_shard, crawl_shard
from repro.runner.codec import decode_shard_payload
from repro.runner.shard import plan_shards


@pytest.fixture(autouse=True)
def fresh_cache():
    worldcache.clear()
    yield
    worldcache.clear()


UY_KWARGS = dict(
    builder="uy",
    world_kwargs={"child_ns_ttl": 300},
    spec_kwargs=dict(qname="uy.", interval=600.0, duration=1800.0, description="wc"),
    qtype_name="NS",
)


def _run(shard, **overrides):
    return decode_shard_payload(centricity_shard(shard, **{**UY_KWARGS, **overrides}))


def test_reused_world_reproduces_fresh_build_exactly():
    shards = plan_shards(24, 3, 17)
    # One process, one cached world: shards 1 and 2 run on shard 0's world.
    reused = [_run(shard) for shard in shards]
    stats = worldcache.stats()
    assert stats["builds"] == 1
    assert stats["reuses"] == len(shards) - 1

    # Fresh build per shard: what a cold worker process would compute.
    fresh = []
    for shard in shards:
        worldcache.clear()
        fresh.append(_run(shard))

    for a, b in zip(reused, fresh):
        assert a["results"].results == b["results"].results
        assert a["metrics"] == b["metrics"]


def test_reset_is_seed_exact_not_just_structural():
    shard_a, shard_b = plan_shards(16, 2, 5)
    first = _run(shard_a)
    _run(shard_b)  # drains the cached world's RNG streams under seed B
    again = _run(shard_a)  # reset must rewind them to seed A exactly
    assert again["results"].results == first["results"].results
    assert again["metrics"] == first["metrics"]


def test_reused_world_reproduces_faulted_run():
    plan = {
        "schema": "repro.faults/v1", "name": "wc", "seed": 2,
        "faults": [{"kind": "loss", "start": 0.0, "duration": 900.0, "rate": 0.4}],
    }
    from repro.faults import FaultPlan

    payload = FaultPlan.from_json(__import__("json").dumps(plan)).to_payload()
    shards = plan_shards(16, 2, 9)
    reused = [_run(shard, fault_plan=payload) for shard in shards]
    worldcache.clear()
    fresh = []
    for shard in shards:
        worldcache.clear()
        fresh.append(_run(shard, fault_plan=payload))
    for a, b in zip(reused, fresh):
        assert a["results"].results == b["results"].results
        assert a["metrics"] == b["metrics"]


def test_reused_world_reproduces_predict_run():
    shards = plan_shards(16, 2, 13)
    reused = [_run(shard, predict=True) for shard in shards]
    fresh = []
    for shard in shards:
        worldcache.clear()
        fresh.append(_run(shard, predict=True))
    for a, b in zip(reused, fresh):
        assert a["results"].results == b["results"].results
        assert a["metrics"] == b["metrics"]


def test_crawl_universe_reuse_matches_fresh_build():
    kwargs = dict(scale=0.0001, seed=4, lists=None)
    shards = plan_shards(12, 2, 4)
    reused = [decode_shard_payload(crawl_shard(shard, **kwargs)) for shard in shards]
    assert worldcache.stats()["builds"] == 1
    fresh = []
    for shard in shards:
        worldcache.clear()
        fresh.append(decode_shard_payload(crawl_shard(shard, **kwargs)))
    for a, b in zip(reused, fresh):
        assert a["results"].records == b["results"].records
        assert a["queries"] == b["queries"]
        assert a["metrics"] == b["metrics"]


def test_distinct_world_kwargs_get_distinct_cache_entries():
    shard = plan_shards(8, 1, 3)[0]
    _run(shard)
    _run(shard, world_kwargs={"child_ns_ttl": 86400})
    assert worldcache.stats()["builds"] == 2


def test_cache_is_bounded_lru():
    shard = plan_shards(8, 1, 3)[0]
    for ttl in range(60, 60 + (worldcache.MAX_WORLDS + 2) * 10, 10):
        _run(shard, world_kwargs={"child_ns_ttl": ttl})
    assert len(worldcache._cache) == worldcache.MAX_WORLDS


def test_prewarm_builds_once_and_lease_reuses():
    worldcache.prewarm("uy", {"child_ns_ttl": 300})
    assert worldcache.stats()["builds"] == 1
    shard = plan_shards(8, 1, 3)[0]
    _run(shard)
    stats = worldcache.stats()
    assert stats["builds"] == 1
    assert stats["reuses"] >= 1


def test_prewarm_ignores_unknown_builder():
    worldcache.prewarm("no-such-builder", {})
    assert worldcache.stats()["builds"] == 0
