"""End-to-end campaign determinism: the runner's acceptance criteria.

The load-bearing guarantee (ISSUE 1): the T2 centricity scenario run
with ``parallelism=4`` produces a merged ResultSet *equal* to the
serial run, and a campaign killed mid-run resumes from checkpoints
without recomputing completed shards.
"""

import pytest

from repro.core.scenarios import (
    scenario_controlled_ttl,
    scenario_uy_ns,
)
from repro.crawler.crawl import Crawler, crawl_parallel
from repro.crawler.toplists import build_crawl_universe, planned_list_sizes
from repro.runner.checkpoint import CheckpointStore

SEED = 20191021
PROBES = 32
DURATION = 1200.0  # two 600 s rounds — enough for cache-sharing effects


@pytest.fixture(scope="module")
def serial_uy_run():
    return scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION, parallelism=1, shards=4
    )


def test_t2_centricity_parallel_equals_serial(serial_uy_run):
    parallel = scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION, parallelism=4, shards=4
    )
    assert parallel.results.results == serial_uy_run.results.results
    assert parallel.summary == serial_uy_run.summary
    assert parallel.breakdown == serial_uy_run.breakdown


def test_t2_centricity_is_shard_plan_deterministic(serial_uy_run):
    # Two workers, same 4-shard plan: still identical — results depend on
    # the plan, never on the worker count.
    two_workers = scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION, parallelism=2, shards=4
    )
    assert two_workers.results.results == serial_uy_run.results.results


def test_t2_default_shard_plan_ignores_worker_count(serial_uy_run):
    # shards unset: the plan falls back to the fixed DEFAULT_SHARDS (4),
    # never to the worker count — so an odd parallelism still reproduces
    # the pinned-plan run exactly.
    defaulted = scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION, parallelism=3
    )
    assert defaulted.results.results == serial_uy_run.results.results


def test_t2_probe_ids_unique_across_shards(serial_uy_run):
    assert len(serial_uy_run.results.probe_ids()) <= PROBES
    assert all(0 <= pid < PROBES for pid in serial_uy_run.results.probe_ids())


def test_t2_campaign_resumes_without_recompute(tmp_path, serial_uy_run):
    run_dir = tmp_path / "t2"
    first = scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION,
        parallelism=1, shards=4, run_dir=str(run_dir),
    )
    # Simulate a mid-run kill: one shard's spill is missing.
    spills = sorted(run_dir.glob("shard-*.pkl"))
    assert len(spills) == 4
    spills[2].unlink()

    events = []
    resumed = scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION,
        parallelism=1, shards=4, run_dir=str(run_dir),
        progress=events.append,
    )
    cached = [e.shard_index for e in events if e.status == "shard-done" and e.cached]
    fresh = [e.shard_index for e in events if e.status == "shard-done" and not e.cached]
    assert sorted(cached) == [0, 1, 3]
    assert fresh == [2]
    assert resumed.results.results == first.results.results
    assert resumed.results.results == serial_uy_run.results.results


def test_t2_run_dir_rejects_other_campaign(tmp_path):
    run_dir = tmp_path / "t2"
    scenario_uy_ns(
        seed=SEED, probes=PROBES, duration=DURATION,
        parallelism=1, shards=4, run_dir=str(run_dir),
    )
    from repro.runner.checkpoint import CheckpointMismatch

    with pytest.raises(CheckpointMismatch):
        scenario_uy_ns(
            seed=SEED + 1, probes=PROBES, duration=DURATION,
            parallelism=1, shards=4, run_dir=str(run_dir),
        )


def test_controlled_ttl_parallel_equals_legacy_serial():
    # The five §6.2 runs shard one-per-run, so the parallel campaign
    # reproduces the legacy serial scenario verbatim.
    legacy = scenario_controlled_ttl(seed=3, probes=16, duration=DURATION)
    sharded = scenario_controlled_ttl(
        seed=3, probes=16, duration=DURATION, parallelism=2
    )
    assert list(sharded) == list(legacy)
    for label in legacy:
        assert sharded[label].results.results == legacy[label].results.results
        assert sharded[label].auth_queries == legacy[label].auth_queries
        assert sharded[label].client_summary == legacy[label].client_summary


CRAWL_SCALE = 0.0001


def test_crawl_parallel_equals_plain_serial_crawl():
    universe = build_crawl_universe(scale=CRAWL_SCALE, seed=5)
    serial = Crawler(universe).crawl()
    merged, queries, _ = crawl_parallel(
        scale=CRAWL_SCALE, seed=5, parallelism=3, shards=5
    )
    assert merged.records == serial.records
    assert queries > 0
    assert sum(planned_list_sizes(CRAWL_SCALE).values()) == len(merged)


def test_crawl_default_shards_ignore_worker_count():
    one, _, _ = crawl_parallel(scale=CRAWL_SCALE, seed=5, parallelism=1)
    two, _, _ = crawl_parallel(scale=CRAWL_SCALE, seed=5, parallelism=2)
    assert one.records == two.records


def test_crawl_checkpoint_resume(tmp_path):
    run_dir = tmp_path / "crawl"
    first, _, _ = crawl_parallel(
        scale=CRAWL_SCALE, seed=5, parallelism=1, shards=3, run_dir=str(run_dir)
    )
    events = []
    second, _, _ = crawl_parallel(
        scale=CRAWL_SCALE, seed=5, parallelism=1, shards=3,
        run_dir=str(run_dir), progress=events.append,
    )
    assert second.records == first.records
    done = [e for e in events if e.status == "shard-done"]
    assert all(e.cached for e in done)
