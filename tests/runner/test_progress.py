"""Progress telemetry: event stream shape and rendering."""

from repro.runner.progress import ProgressEvent, ProgressTracker, render_event


def _manual_clock(values):
    it = iter(values)
    last = [0.0]

    def clock():
        try:
            last[0] = next(it)
        except StopIteration:
            pass
        return last[0]

    return clock


def test_tracker_accumulates_queries_and_shards():
    tracker = ProgressTracker(campaign="t", shards_total=3)
    tracker.start()
    tracker.shard_done(0, queries=100)
    tracker.shard_done(2, queries=50)
    event = tracker.shard_done(1, queries=25)
    assert event.shards_done == 3
    assert event.queries == 175
    assert event.fraction_done == 1.0


def test_queries_per_second_uses_wall_clock():
    clock = _manual_clock([0.0, 2.0])
    tracker = ProgressTracker(campaign="t", shards_total=1, clock=clock)
    event = tracker.shard_done(0, queries=500)
    assert event.elapsed == 2.0
    assert event.queries_per_second == 250.0


def test_callback_receives_every_event():
    seen = []
    tracker = ProgressTracker(campaign="t", shards_total=2, callback=seen.append)
    tracker.start()
    tracker.shard_done(0, queries=1)
    tracker.shard_retry(1, attempt=1)
    tracker.shard_done(1, queries=1)
    tracker.done()
    assert [event.status for event in seen] == [
        "start", "shard-done", "shard-retry", "shard-done", "done",
    ]
    assert seen == tracker.events


def test_render_event_variants():
    base = dict(campaign="uy-NS", shards_done=2, shards_total=4,
                queries=1200, elapsed=2.0)
    start = ProgressEvent(status="start", **base)
    assert "starting" in render_event(start)
    done = ProgressEvent(status="shard-done", shard_index=1, **base)
    line = render_event(done)
    assert "2/4 shards" in line and "1,200 queries" in line and "600 q/s" in line
    cached = ProgressEvent(status="shard-done", shard_index=1, cached=True, **base)
    assert "(checkpoint)" in render_event(cached)
    retry = ProgressEvent(status="shard-retry", shard_index=3, attempt=2, **base)
    assert "retrying" in render_event(retry)
    failed = ProgressEvent(status="shard-failed", shard_index=3, attempt=3, **base)
    assert "permanently" in render_event(failed)
    finished = ProgressEvent(status="done", **base)
    assert render_event(finished).endswith("done")


def test_zero_elapsed_has_zero_qps():
    event = ProgressEvent(
        campaign="t", status="done", shards_done=0, shards_total=0,
        queries=10, elapsed=0.0,
    )
    assert event.queries_per_second == 0.0
    assert event.fraction_done == 1.0


def test_resumed_run_excludes_cached_queries_from_throughput():
    # A resumed campaign restores most shards from checkpoints in near-zero
    # wall time; their queries must not inflate q/s.  Three cached shards
    # land instantly, one fresh shard takes 2 s of wall clock.
    clock = _manual_clock([0.0, 0.1, 0.1, 0.1, 2.0])
    tracker = ProgressTracker(campaign="t", shards_total=4, clock=clock)
    tracker.shard_done(0, queries=1000, cached=True)
    tracker.shard_done(1, queries=1000, cached=True)
    tracker.shard_done(3, queries=1000, cached=True)
    event = tracker.shard_done(2, queries=500)
    assert event.queries == 3500
    assert event.cached_queries == 3000
    assert tracker.cached_queries == 3000
    # Only the 500 fresh queries count against the 2 s elapsed.
    assert event.queries_per_second == 250.0


def test_fully_cached_resume_reports_zero_qps():
    clock = _manual_clock([0.0, 0.05, 0.05])
    tracker = ProgressTracker(campaign="t", shards_total=2, clock=clock)
    tracker.shard_done(0, queries=800, cached=True)
    event = tracker.shard_done(1, queries=200, cached=True)
    assert event.queries == 1000
    assert event.queries_per_second == 0.0


def test_render_notes_checkpoint_queries():
    event = ProgressEvent(
        campaign="uy-NS", status="shard-done", shards_done=2, shards_total=4,
        queries=1200, elapsed=2.0, shard_index=1, cached=True,
        cached_queries=1000,
    )
    line = render_event(event)
    assert "(1,000 from checkpoints)" in line
    assert "100 q/s" in line  # (1200-1000)/2, not 1200/2
