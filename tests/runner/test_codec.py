"""The versioned shard-payload codec: round-trips, errors, helpers."""

import pickle

import pytest

from repro.core.scenarios import scenario_uy_ns
from repro.runner.codec import (
    PAYLOAD_VERSION,
    PayloadError,
    decode_shard_payload,
    encode_shard_payload,
    metrics_payload,
    query_count,
)


@pytest.fixture(scope="module")
def result_set():
    """A real campaign ResultSet: every field the codec must carry."""
    run = scenario_uy_ns(seed=9, probes=24, duration=1800.0, parallelism=1, shards=1)
    return run.results


def test_result_set_round_trips_exactly(result_set):
    payload = encode_shard_payload(
        results=result_set, queries=len(result_set.results), metrics={"m": 1}
    )
    assert payload["v"] == PAYLOAD_VERSION
    assert payload["kind"] == "resultset"
    decoded = decode_shard_payload(payload)
    assert decoded["results"].results == result_set.results
    assert decoded["results"].spec == result_set.spec
    assert decoded["queries"] == len(result_set.results)
    assert decoded["metrics"] == {"m": 1}


def test_round_trip_is_bit_exact_for_floats(result_set):
    decoded = decode_shard_payload(
        encode_shard_payload(results=result_set, queries=1, metrics=None)
    )
    for before, after in zip(result_set.results, decoded["results"].results):
        # array('d') must preserve IEEE-754 bits, not approximate values.
        assert before.timestamp.hex() == after.timestamp.hex()
        assert before.rtt.hex() == after.rtt.hex()


def test_round_trip_survives_pickle(result_set):
    payload = encode_shard_payload(
        results=result_set, queries=len(result_set.results), metrics=None
    )
    revived = pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    assert decode_shard_payload(revived)["results"].results == result_set.results


def test_columnar_payload_is_smaller_than_object_pickle(result_set):
    columnar = pickle.dumps(
        encode_shard_payload(results=result_set, queries=1, metrics=None),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    objects = pickle.dumps(result_set, protocol=pickle.HIGHEST_PROTOCOL)
    assert len(columnar) < len(objects)


def test_non_result_payloads_pass_through():
    payload = encode_shard_payload(results=[1, 2, 3], queries=3, metrics=None)
    assert payload["kind"] == "pickle"
    decoded = decode_shard_payload(payload)
    assert decoded == {"results": [1, 2, 3], "queries": 3, "metrics": None}


def test_already_decoded_dict_passes_through():
    legacy = {"results": [1], "queries": 1, "metrics": None}
    assert decode_shard_payload(legacy) is legacy


def test_unknown_version_raises():
    payload = encode_shard_payload(results=[1], queries=1, metrics=None)
    payload["v"] = PAYLOAD_VERSION + 1
    with pytest.raises(PayloadError):
        decode_shard_payload(payload)


def test_unknown_kind_raises():
    payload = encode_shard_payload(results=[1], queries=1, metrics=None)
    payload["kind"] = "parquet"
    with pytest.raises(PayloadError):
        decode_shard_payload(payload)


def test_query_count_reads_envelopes_and_legacy_values():
    envelope = encode_shard_payload(results=[1, 2], queries=2, metrics=None)
    assert query_count(envelope) == 2
    assert query_count({"results": [], "queries": 7}) == 7
    assert query_count([1, 2, 3]) == 3
    assert query_count(object()) == 0


def test_metrics_payload_reads_envelopes_and_legacy_values():
    envelope = encode_shard_payload(results=[1], queries=1, metrics={"x": 2})
    assert metrics_payload(envelope) == {"x": 2}
    assert metrics_payload({"results": [], "metrics": {"y": 3}}) == {"y": 3}
    assert metrics_payload([1, 2]) is None
