"""Executor engine: serial/parallel parity, crash retry, checkpoints."""

import time

import pytest

from repro.runner.checkpoint import CheckpointStore
from repro.runner.executor import RetryPolicy, ShardError, ShardExecutor
from repro.runner.progress import ProgressTracker
from repro.runner.shard import plan_shards


# Shard functions live at module level so worker processes can import them.


def unit_list(shard):
    return list(shard.unit_range())


def seed_echo(shard):
    return {"index": shard.index, "seed": shard.seed}


def flaky(shard, *, marker_dir, fail_index, fail_times):
    """Fails ``fail_times`` times on one shard, then succeeds.

    Attempt counting uses marker files so it also works across worker
    processes (each retry may land in a different worker).
    """
    import pathlib

    if shard.index == fail_index:
        markers = pathlib.Path(marker_dir)
        attempt = len(list(markers.glob(f"attempt-{shard.index}-*"))) + 1
        (markers / f"attempt-{shard.index}-{attempt}").touch()
        if attempt <= fail_times:
            raise RuntimeError(f"injected crash (attempt {attempt})")
    return list(shard.unit_range())


def always_fails(shard):
    raise RuntimeError("this shard never succeeds")


def record_execution(shard, *, marker_dir):
    import pathlib

    (pathlib.Path(marker_dir) / f"ran-{shard.index}").touch()
    return shard.index


def sleepy(shard, *, seconds):
    time.sleep(seconds)
    return shard.index


def hard_crash_once(shard, *, marker_dir, fail_index):
    """Kills its worker process outright on the first attempt.

    ``os._exit`` skips all cleanup, so the pool sees a dead worker and
    breaks with BrokenProcessPool — the closest in-test stand-in for a
    segfault or OOM kill.
    """
    import os
    import pathlib

    if shard.index == fail_index:
        markers = pathlib.Path(marker_dir)
        attempt = len(list(markers.glob(f"hard-{shard.index}-*"))) + 1
        (markers / f"hard-{shard.index}-{attempt}").touch()
        if attempt == 1:
            os._exit(1)
    return list(shard.unit_range())


def mark_initialized(marker_dir):
    """Initializer hook: leaves one marker per process it ran in."""
    import os
    import pathlib

    (pathlib.Path(marker_dir) / f"init-{os.getpid()}").touch()


def _values(outcomes):
    return [outcome.value for outcome in outcomes]


def test_serial_executes_in_index_order():
    plan = plan_shards(10, 4, campaign_seed=0)
    outcomes = ShardExecutor(parallelism=1).run(unit_list, plan)
    assert [o.shard.index for o in outcomes] == [0, 1, 2, 3]
    assert [unit for value in _values(outcomes) for unit in value] == list(range(10))


def test_parallel_equals_serial():
    plan = plan_shards(12, 4, campaign_seed=3)
    serial = ShardExecutor(parallelism=1).run(seed_echo, plan)
    parallel = ShardExecutor(parallelism=4).run(seed_echo, plan)
    assert _values(serial) == _values(parallel)


def test_serial_retries_transient_crash(tmp_path):
    plan = plan_shards(6, 3, campaign_seed=1)
    executor = ShardExecutor(
        parallelism=1,
        retry=RetryPolicy(max_attempts=3, backoff=0.0),
        sleep=lambda _: None,
    )
    outcomes = executor.run(
        flaky,
        plan,
        {"marker_dir": str(tmp_path), "fail_index": 1, "fail_times": 2},
    )
    assert [unit for value in _values(outcomes) for unit in value] == list(range(6))
    assert outcomes[1].attempts == 3
    assert outcomes[0].attempts == 1


def test_parallel_retries_transient_crash(tmp_path):
    plan = plan_shards(8, 4, campaign_seed=2)
    executor = ShardExecutor(
        parallelism=2,
        retry=RetryPolicy(max_attempts=2, backoff=0.0),
        sleep=lambda _: None,
    )
    outcomes = executor.run(
        flaky,
        plan,
        {"marker_dir": str(tmp_path), "fail_index": 2, "fail_times": 1},
    )
    assert [unit for value in _values(outcomes) for unit in value] == list(range(8))
    assert outcomes[2].attempts == 2


def test_retry_budget_exhausted_raises_shard_error():
    plan = plan_shards(4, 2, campaign_seed=0)
    executor = ShardExecutor(
        parallelism=1,
        retry=RetryPolicy(max_attempts=2, backoff=0.0),
        sleep=lambda _: None,
    )
    with pytest.raises(ShardError, match="after 2 attempt"):
        executor.run(always_fails, plan)


def test_backoff_delays_grow_exponentially():
    policy = RetryPolicy(max_attempts=4, backoff=0.1, backoff_factor=2.0)
    assert [policy.delay(a) for a in (1, 2, 3)] == pytest.approx([0.1, 0.2, 0.4])


def test_checkpointed_shards_are_not_recomputed(tmp_path):
    plan = plan_shards(6, 3, campaign_seed=4)
    store = CheckpointStore(tmp_path / "run", {"campaign": "exec-test"})
    markers = tmp_path / "markers"
    markers.mkdir()

    first = ShardExecutor(parallelism=1, checkpoint=store).run(
        record_execution, plan, {"marker_dir": str(markers)}
    )
    assert len(list(markers.glob("ran-*"))) == 3

    for marker in markers.glob("ran-*"):
        marker.unlink()
    second = ShardExecutor(parallelism=1, checkpoint=store).run(
        record_execution, plan, {"marker_dir": str(markers)}
    )
    # Nothing re-ran: every outcome came from the spill directory.
    assert list(markers.glob("ran-*")) == []
    assert all(outcome.cached for outcome in second)
    assert _values(second) == _values(first)


def test_interrupted_campaign_resumes_from_checkpoints(tmp_path):
    """The acceptance scenario: a campaign dies mid-run, the rerun only
    computes the missing shards."""
    plan = plan_shards(8, 4, campaign_seed=5)
    store = CheckpointStore(tmp_path / "run", {"campaign": "resume-test"})
    markers = tmp_path / "markers"
    markers.mkdir()

    crashing = ShardExecutor(
        parallelism=1,
        checkpoint=store,
        retry=RetryPolicy(max_attempts=1),
        sleep=lambda _: None,
    )
    with pytest.raises(ShardError):
        crashing.run(
            flaky,
            plan,
            {"marker_dir": str(tmp_path), "fail_index": 3, "fail_times": 99},
        )
    assert store.completed_indices() == {0, 1, 2}

    resumed = ShardExecutor(parallelism=1, checkpoint=store).run(
        record_execution, plan, {"marker_dir": str(markers)}
    )
    # Only the crashed shard executed on resume.
    assert [m.name for m in markers.glob("ran-*")] == ["ran-3"]
    assert [o.cached for o in resumed] == [True, True, True, False]


def test_per_shard_timeout_counts_as_failure():
    plan = plan_shards(2, 2, campaign_seed=6)
    executor = ShardExecutor(
        parallelism=2,
        timeout=0.1,
        retry=RetryPolicy(max_attempts=1),
        sleep=lambda _: None,
    )
    # Keep the nap short: the abandoned workers linger until it ends.
    with pytest.raises(ShardError):
        executor.run(sleepy, plan, {"seconds": 1.5})


def test_serial_timeout_counts_as_failure():
    # The serial fallback enforces the same per-attempt budget as the
    # pool (checked after the attempt, since it can't be interrupted).
    plan = plan_shards(2, 2, campaign_seed=6)
    executor = ShardExecutor(
        parallelism=1,
        timeout=0.05,
        retry=RetryPolicy(max_attempts=1),
        sleep=lambda _: None,
    )
    with pytest.raises(ShardError) as excinfo:
        executor.run(sleepy, plan, {"seconds": 0.2})
    assert isinstance(excinfo.value.cause, TimeoutError)


def test_pool_rebuilt_after_hard_worker_crash(tmp_path):
    """A worker death breaks the whole ProcessPoolExecutor; the engine
    must rebuild the pool and retry instead of surfacing the raw
    BrokenProcessPool."""
    plan = plan_shards(8, 4, campaign_seed=8)
    executor = ShardExecutor(
        parallelism=2,
        retry=RetryPolicy(max_attempts=3, backoff=0.0),
        sleep=lambda _: None,
    )
    outcomes = executor.run(
        hard_crash_once, plan, {"marker_dir": str(tmp_path), "fail_index": 1}
    )
    assert [unit for value in _values(outcomes) for unit in value] == list(range(8))
    # The crashing shard really ran twice: once killing its worker, once
    # to completion on the rebuilt pool.
    assert len(list(tmp_path.glob("hard-1-*"))) == 2


def test_initializer_runs_once_in_serial_mode(tmp_path):
    plan = plan_shards(6, 3, campaign_seed=9)
    executor = ShardExecutor(
        parallelism=1, initializer=mark_initialized, initargs=(str(tmp_path),)
    )
    executor.run(unit_list, plan)
    # One process, one init call — not one per shard.
    assert len(list(tmp_path.glob("init-*"))) == 1


def test_initializer_runs_once_per_pool_worker(tmp_path):
    plan = plan_shards(8, 4, campaign_seed=9)
    executor = ShardExecutor(
        parallelism=2, initializer=mark_initialized, initargs=(str(tmp_path),)
    )
    executor.run(unit_list, plan)
    markers = list(tmp_path.glob("init-*"))
    assert 1 <= len(markers) <= 2
    assert all(m.name != f"init-{__import__('os').getpid()}" for m in markers)


def test_initializer_skipped_when_nothing_to_run(tmp_path):
    executor = ShardExecutor(
        parallelism=1, initializer=mark_initialized, initargs=(str(tmp_path),)
    )
    executor.run(unit_list, [])
    assert list(tmp_path.glob("init-*")) == []


def test_profile_path_writes_per_shard_stats(tmp_path):
    import pstats

    plan = plan_shards(6, 3, campaign_seed=10)
    base = tmp_path / "campaign.pstats"
    for parallelism in (1, 2):
        executor = ShardExecutor(parallelism=parallelism, profile_path=str(base))
        executor.run(unit_list, plan)
        for shard in plan:
            path = tmp_path / f"campaign.pstats.shard-{shard.index:04d}"
            assert path.exists()
            # The dump must be loadable profile data, not an empty file.
            assert pstats.Stats(str(path)).total_calls > 0
            path.unlink()


def test_profile_written_even_when_shard_crashes(tmp_path):
    plan = plan_shards(2, 2, campaign_seed=10)
    base = tmp_path / "crash.pstats"
    executor = ShardExecutor(
        parallelism=1,
        profile_path=str(base),
        retry=RetryPolicy(max_attempts=1),
        sleep=lambda _: None,
    )
    with pytest.raises(ShardError):
        executor.run(always_fails, plan)
    assert (tmp_path / "crash.pstats.shard-0000").exists()


def test_tracker_sees_lifecycle_events(tmp_path):
    plan = plan_shards(4, 2, campaign_seed=7)
    tracker = ProgressTracker(campaign="exec-test")
    executor = ShardExecutor(
        parallelism=1,
        tracker=tracker,
        retry=RetryPolicy(max_attempts=2, backoff=0.0),
        sleep=lambda _: None,
    )
    executor.run(
        flaky, plan, {"marker_dir": str(tmp_path), "fail_index": 0, "fail_times": 1}
    )
    statuses = [event.status for event in tracker.events]
    assert statuses[0] == "start"
    assert statuses[-1] == "done"
    assert statuses.count("shard-done") == 2
    assert "shard-retry" in statuses
    # Progress telemetry accumulated the simulated query counts (here,
    # the per-shard unit-list lengths).
    assert tracker.events[-1].queries == 4
