"""Shard planning: determinism, coverage, seed stability."""

import pytest
from hypothesis import given, strategies as st

from repro.runner.shard import Shard, derive_seed, plan_shards


def test_derive_seed_is_stable():
    assert derive_seed(0, 0) == derive_seed(0, 0)
    assert derive_seed(42, 3) == derive_seed(42, 3)


def test_derive_seed_separates_campaigns_and_shards():
    seeds = {derive_seed(c, s) for c in range(20) for s in range(20)}
    assert len(seeds) == 400  # no collisions among nearby (campaign, shard)


def test_derive_seed_fits_in_63_bits():
    assert 0 <= derive_seed(123456789, 999) < 2**63


@given(
    total=st.integers(min_value=0, max_value=500),
    num=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_plan_covers_every_unit_exactly_once(total, num, seed):
    plan = plan_shards(total, num, seed)
    covered = [unit for shard in plan for unit in shard.unit_range()]
    assert covered == list(range(total))
    # Balanced: sizes differ by at most one, and no empty shards.
    sizes = [shard.count for shard in plan]
    assert all(size > 0 for size in sizes)
    if sizes:
        assert max(sizes) - min(sizes) <= 1


def test_plan_is_independent_of_worker_count():
    # The plan is a pure function of (total, shards, seed): nothing about
    # execution enters it, so two identical calls are identical objects.
    assert plan_shards(100, 8, 7) == plan_shards(100, 8, 7)


def test_shard_seeds_come_from_campaign_seed_and_index():
    plan = plan_shards(40, 4, campaign_seed=9)
    assert [shard.seed for shard in plan] == [derive_seed(9, i) for i in range(4)]


def test_plan_drops_empty_shards():
    plan = plan_shards(3, 8, 0)
    assert len(plan) == 3
    assert [shard.count for shard in plan] == [1, 1, 1]


def test_plan_rejects_bad_arguments():
    with pytest.raises(ValueError):
        plan_shards(-1, 4, 0)
    with pytest.raises(ValueError):
        plan_shards(10, 0, 0)


def test_shard_stop_and_range():
    shard = Shard(index=1, seed=5, start=10, count=4)
    assert shard.stop == 14
    assert list(shard.unit_range()) == [10, 11, 12, 13]
