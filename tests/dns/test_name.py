"""Tests for repro.dns.name."""

import pytest

from repro.dns.name import MAX_LABEL_LENGTH, Name, NameError_, root


class TestConstruction:
    def test_from_text(self):
        name = Name("www.example.com")
        assert name.labels == ("www", "example", "com")

    def test_trailing_dot_ignored(self):
        assert Name("example.com.") == Name("example.com")

    def test_case_folded(self):
        assert Name("WWW.Example.COM") == Name("www.example.com")
        assert str(Name("WWW.Example.COM")) == "www.example.com."

    def test_root_from_empty(self):
        assert Name("") is not None
        assert Name("").is_root
        assert Name(".").is_root

    def test_from_labels(self):
        assert Name(["www", "example", "com"]) == Name("www.example.com")

    def test_from_name_is_copy(self):
        original = Name("a.b")
        assert Name(original) == original

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            Name("a..b")

    def test_too_long_label_rejected(self):
        with pytest.raises(NameError_):
            Name("x" * (MAX_LABEL_LENGTH + 1) + ".com")

    def test_max_length_label_accepted(self):
        Name("x" * MAX_LABEL_LENGTH + ".com")

    def test_non_ascii_rejected(self):
        with pytest.raises(NameError_):
            Name("exämple.com")

    def test_name_too_long_rejected(self):
        label = "a" * 63
        with pytest.raises(NameError_):
            Name(".".join([label] * 5))

    def test_immutability(self):
        name = Name("example.com")
        with pytest.raises(AttributeError):
            name.labels = ()


class TestPresentation:
    def test_str_absolute(self):
        assert str(Name("example.com")) == "example.com."

    def test_root_str(self):
        assert str(root) == "."

    def test_repr(self):
        assert repr(Name("a.b")) == "Name('a.b.')"

    def test_to_text(self):
        assert Name("a.b").to_text() == "a.b."


class TestEquality:
    def test_equal_to_string(self):
        assert Name("example.com") == "Example.COM."

    def test_not_equal_to_garbage_string(self):
        assert Name("example.com") != "not..valid"

    def test_hashable(self):
        assert hash(Name("a.b")) == hash(Name("A.B."))

    def test_usable_as_dict_key(self):
        d = {Name("x.y"): 1}
        assert d[Name("X.Y.")] == 1


class TestOrdering:
    def test_canonical_order_right_to_left(self):
        # RFC 4034 §6.1 example ordering.
        names = [Name("example"), Name("a.example"), Name("yljkjljk.a.example"),
                 Name("z.example")]
        assert sorted(names) == names

    def test_root_sorts_first(self):
        assert root < Name("aaa")


class TestStructure:
    def test_len_counts_labels(self):
        assert len(Name("a.b.c")) == 3
        assert len(root) == 0

    def test_iter(self):
        assert list(Name("a.b")) == ["a", "b"]

    def test_parent(self):
        assert Name("www.example.com").parent() == Name("example.com")

    def test_root_has_no_parent(self):
        with pytest.raises(NameError_):
            root.parent()

    def test_ancestors(self):
        assert [str(a) for a in Name("a.b.c").ancestors()] == ["b.c.", "c.", "."]

    def test_prepend(self):
        assert Name("example.com").prepend("www") == Name("www.example.com")

    def test_concatenate(self):
        assert Name("www").concatenate(Name("example.com")) == Name("www.example.com")

    def test_split(self):
        prefix, suffix = Name("www.example.com").split(2)
        assert prefix == Name("www")
        assert suffix == Name("example.com")

    def test_split_bad_depth(self):
        with pytest.raises(NameError_):
            Name("a.b").split(5)

    def test_relativize(self):
        assert Name("www.example.com").relativize(Name("com")) == ("www", "example")

    def test_relativize_of_self_is_empty(self):
        assert Name("a.b").relativize(Name("a.b")) == ()

    def test_relativize_unrelated_raises(self):
        with pytest.raises(NameError_):
            Name("a.org").relativize(Name("com"))


class TestRelationships:
    def test_subdomain_of_self(self):
        assert Name("a.b").is_subdomain_of(Name("a.b"))

    def test_subdomain_of_parent(self):
        assert Name("www.example.com").is_subdomain_of(Name("example.com"))

    def test_everything_under_root(self):
        assert Name("deep.name.example").is_subdomain_of(root)

    def test_not_subdomain_of_sibling(self):
        assert not Name("a.com").is_subdomain_of(Name("b.com"))

    def test_label_boundary_respected(self):
        # notexample.com is NOT under example.com despite the suffix match.
        assert not Name("notexample.com").is_subdomain_of(Name("example.com"))

    def test_proper_subdomain_excludes_self(self):
        assert not Name("a.b").is_proper_subdomain_of(Name("a.b"))
        assert Name("x.a.b").is_proper_subdomain_of(Name("a.b"))

    def test_superdomain(self):
        assert Name("com").is_superdomain_of(Name("example.com"))

    def test_bailiwick_paper_example(self):
        # RFC 8499 / paper §2: ns.example.org is in bailiwick of
        # example.org; ns.example.com is not.
        zone = Name("example.org")
        assert Name("ns.example.org").in_bailiwick_of(zone)
        assert not Name("ns.example.com").in_bailiwick_of(zone)

    def test_common_ancestor(self):
        a = Name("x.sub.example.com")
        b = Name("y.example.com")
        assert a.common_ancestor(b) == Name("example.com")

    def test_common_ancestor_disjoint_is_root(self):
        assert Name("a.com").common_ancestor(Name("b.org")) == root
