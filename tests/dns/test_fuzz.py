"""Fuzz tests: malformed wire input must fail cleanly, never crash.

A resolver parses untrusted bytes; the only acceptable failure mode is
:class:`WireError` (or a clean parse).  Random mutation of valid messages
additionally checks that near-valid input cannot corrupt state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import Message, Section
from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.record import ResourceRecord
from repro.dns.wire import WireError


def valid_message() -> Message:
    query = Message.make_query("www.example.com", RdataType.A, id=0x1234)
    response = query.make_response(authoritative=True)
    response.add(
        Section.ANSWER,
        ResourceRecord(Name("www.example.com"), RdataType.A, 300, A("192.0.2.1")),
    )
    response.add(
        Section.AUTHORITY,
        ResourceRecord(Name("example.com"), RdataType.NS, 3600, NS(Name("ns1.example.com"))),
    )
    return response


@given(st.binary(max_size=200))
def test_random_bytes_never_crash(blob):
    try:
        Message.from_wire(blob)
    except WireError:
        pass
    except ValueError:
        # Unknown enum values surface as ValueError from IntEnum; also a
        # clean, expected failure mode.
        pass


@settings(max_examples=200)
@given(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=255),
)
def test_single_byte_mutations_fail_cleanly(position, value):
    blob = bytearray(valid_message().to_wire())
    if position >= len(blob):
        position = position % len(blob)
    blob[position] = value
    try:
        decoded = Message.from_wire(bytes(blob))
    except (WireError, ValueError):
        return
    # If it still parses, it must re-serialize without crashing.
    decoded.to_wire()


@given(st.integers(min_value=0, max_value=100))
def test_truncations_fail_cleanly(cut):
    blob = valid_message().to_wire()
    truncated = blob[: min(cut, len(blob) - 1)]
    with pytest.raises((WireError, ValueError)):
        Message.from_wire(truncated)


def test_pointer_loop_rejected():
    # Two pointers referring to each other after the header + question.
    header = bytes.fromhex("123480000001000000000000")
    # qname: pointer forward (invalid) — crafted malicious compression.
    body = b"\xc0\x0e\x00\x01\x00\x01" + b"\xc0\x0c"
    with pytest.raises(WireError):
        Message.from_wire(header + body)
