"""Fuzz tests: malformed wire input must fail cleanly, never crash.

A resolver parses untrusted bytes; the only acceptable failure mode is
:class:`WireError` (or a clean parse).  Random mutation of valid messages
additionally checks that near-valid input cannot corrupt state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import Message, Section
from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.record import ResourceRecord
from repro.dns.wire import WireError


def valid_message() -> Message:
    query = Message.make_query("www.example.com", RdataType.A, id=0x1234)
    response = query.make_response(authoritative=True)
    response.add(
        Section.ANSWER,
        ResourceRecord(Name("www.example.com"), RdataType.A, 300, A("192.0.2.1")),
    )
    response.add(
        Section.AUTHORITY,
        ResourceRecord(Name("example.com"), RdataType.NS, 3600, NS(Name("ns1.example.com"))),
    )
    return response


@given(st.binary(max_size=200))
def test_random_bytes_never_crash(blob):
    try:
        Message.from_wire(blob)
    except WireError:
        pass
    except ValueError:
        # Unknown enum values surface as ValueError from IntEnum; also a
        # clean, expected failure mode.
        pass


@settings(max_examples=200)
@given(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=255),
)
def test_single_byte_mutations_fail_cleanly(position, value):
    blob = bytearray(valid_message().to_wire())
    if position >= len(blob):
        position = position % len(blob)
    blob[position] = value
    try:
        decoded = Message.from_wire(bytes(blob))
    except (WireError, ValueError):
        return
    # If it still parses, it must re-serialize without crashing.
    decoded.to_wire()


@given(st.integers(min_value=0, max_value=100))
def test_truncations_fail_cleanly(cut):
    blob = valid_message().to_wire()
    truncated = blob[: min(cut, len(blob) - 1)]
    with pytest.raises((WireError, ValueError)):
        Message.from_wire(truncated)


def test_pointer_loop_rejected():
    # Two pointers referring to each other after the header + question.
    header = bytes.fromhex("123480000001000000000000")
    # qname: pointer forward (invalid) — crafted malicious compression.
    body = b"\xc0\x0e\x00\x01\x00\x01" + b"\xc0\x0c"
    with pytest.raises(WireError):
        Message.from_wire(header + body)


def valid_edns_message() -> Message:
    message = valid_message()
    message.use_edns(udp_payload=1232, dnssec_ok=True)
    return message


@settings(max_examples=200)
@given(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=255),
)
def test_mutated_opt_messages_fail_cleanly(position, value):
    blob = bytearray(valid_edns_message().to_wire())
    position %= len(blob)
    blob[position] = value
    try:
        decoded = Message.from_wire(bytes(blob))
    except (WireError, ValueError):
        return
    decoded.to_wire()


@settings(max_examples=200)
@given(
    st.integers(min_value=0, max_value=0xFFFF),
    st.binary(max_size=64),
)
def test_unknown_rdtype_rdata_never_crashes(type_code, rdata):
    """Any 16-bit type with arbitrary rdata must parse opaquely or fail
    cleanly — a live server sees every code point eventually."""
    import struct

    from repro.dns.rdtypes import RdataType

    header = struct.pack(">HHHHHH", 0x1234, 0x8000, 0, 1, 0, 0)
    record = (
        b"\x03foo\x00"
        + struct.pack(">HHIH", type_code, 1, 300, len(rdata))
        + rdata
    )
    try:
        decoded = Message.from_wire(header + record)
    except (WireError, ValueError):
        return
    rdtype = decoded.answer[0].rdtype if decoded.answer else None
    if rdtype is not None:
        assert int(rdtype) == type_code
        assert isinstance(rdtype, RdataType)
    decoded.to_wire()


@given(st.binary(max_size=32))
def test_opt_with_garbage_options_round_trips_or_fails(options):
    import struct

    header = struct.pack(">HHHHHH", 7, 0x8000, 0, 0, 0, 1)
    opt = b"\x00" + struct.pack(">HHIH", 41, 1232, 0, len(options)) + options
    decoded = Message.from_wire(header + opt)
    assert decoded.edns is not None
    assert decoded.edns.options == options
    assert Message.from_wire(decoded.to_wire()).edns == decoded.edns
