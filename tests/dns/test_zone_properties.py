"""Property-based tests for Zone lookup semantics (hypothesis).

Random zones are generated under one origin with optional delegations and
wildcards; lookups must classify every name consistently and never crash.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import Message, Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.zone import LookupStatus, Zone

labels = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)

relative_names = st.lists(labels, min_size=1, max_size=3)


@st.composite
def zones_and_probes(draw):
    origin = Name("zone.test.")
    zone = Zone(origin, default_ttl=3600)
    zone.add_soa("ns.zone.test.")
    zone.add(origin, RdataType.NS, NS("ns.zone.test."))
    zone.add("ns.zone.test.", RdataType.A, A("192.0.2.53"))

    hosts = draw(st.lists(relative_names, min_size=0, max_size=5))
    for index, rel in enumerate(hosts):
        owner = Name(rel).concatenate(origin)
        zone.add(owner, RdataType.A, A(f"192.0.2.{(index + 10) % 250}"))

    cuts = draw(st.lists(relative_names, min_size=0, max_size=2))
    cut_names = []
    for rel in cuts:
        owner = Name(rel).concatenate(origin)
        if owner == origin:
            continue
        zone.add(owner, RdataType.NS, NS("ns.elsewhere.example."))
        cut_names.append(owner)

    probes = draw(st.lists(relative_names, min_size=1, max_size=5))
    probe_names = [Name(rel).concatenate(origin) for rel in probes]
    # Also probe the exact owners we created.
    probe_names.extend(Name(rel).concatenate(origin) for rel in hosts[:2])
    return zone, cut_names, probe_names


@settings(max_examples=150)
@given(zones_and_probes())
def test_lookup_classification_consistent(data):
    zone, cuts, probes = data
    for name in probes:
        result = zone.lookup(name, RdataType.A)
        under_cut = any(
            name.is_subdomain_of(cut) for cut in cuts
        )
        if result.status is LookupStatus.DELEGATION:
            # Only names at/below a configured cut may be referred, and the
            # referral owner must be one of the cuts enclosing the name.
            assert under_cut
            assert result.rrsets[0].name in cuts
            assert name.is_subdomain_of(result.rrsets[0].name)
        elif result.status is LookupStatus.ANSWER:
            assert not under_cut
            assert result.rrsets[0].name == name
        elif result.status is LookupStatus.NODATA:
            assert zone.name_exists(name)
        elif result.status is LookupStatus.NXDOMAIN:
            assert not zone.name_exists(name)


@settings(max_examples=100)
@given(zones_and_probes())
def test_respond_never_crashes_and_rcode_matches(data):
    zone, _, probes = data
    for name in probes:
        for qtype in (RdataType.A, RdataType.NS, RdataType.MX):
            response = zone.respond(Message.make_query(name, qtype))
            assert response.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN)
            if response.rcode == Rcode.NXDOMAIN:
                assert not response.answer


@settings(max_examples=100)
@given(zones_and_probes())
def test_respond_wire_round_trips(data):
    zone, _, probes = data
    for name in probes[:2]:
        response = zone.respond(Message.make_query(name, RdataType.A))
        decoded = Message.from_wire(response.to_wire())
        assert decoded.rcode == response.rcode
        assert len(decoded.answer) == len(response.answer)
