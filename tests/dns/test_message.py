"""Tests for repro.dns.message."""

import pytest

from repro.dns.message import Flags, Message, Opcode, Question, Rcode, Section
from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.record import ResourceRecord


def answer_record(name="example.com", ttl=300):
    return ResourceRecord(Name(name), RdataType.A, ttl, A("192.0.2.1"))


def ns_record(owner="com", target="a.gtld-servers.net", ttl=172800):
    return ResourceRecord(Name(owner), RdataType.NS, ttl, NS(Name(target)))


class TestFlags:
    def test_bit_round_trip(self):
        flags = Flags(qr=True, aa=True, rd=True, ra=True)
        bits = flags.to_wire_bits(Opcode.QUERY, Rcode.NXDOMAIN)
        decoded, opcode, rcode = Flags.from_wire_bits(bits)
        assert decoded == flags
        assert opcode == Opcode.QUERY
        assert rcode == Rcode.NXDOMAIN

    def test_aa_bit_position(self):
        bits = Flags(aa=True, rd=False).to_wire_bits(Opcode.QUERY, Rcode.NOERROR)
        assert bits & 0x0400


class TestConstruction:
    def test_make_query(self):
        query = Message.make_query("example.com", RdataType.A, id=7)
        assert query.id == 7
        assert not query.flags.qr
        assert query.question == Question(Name("example.com"), RdataType.A)

    def test_make_response_echoes_question(self):
        query = Message.make_query("example.com", RdataType.A, id=9)
        response = query.make_response(authoritative=True)
        assert response.id == 9
        assert response.flags.qr and response.flags.aa
        assert response.question == query.question

    def test_response_preserves_rd(self):
        query = Message.make_query("x", RdataType.A, recursion_desired=False)
        assert not query.make_response().flags.rd


class TestSections:
    def test_add_and_section(self):
        message = Message()
        message.add(Section.ANSWER, answer_record())
        message.add(Section.AUTHORITY, ns_record())
        assert len(message.answer) == 1
        assert len(message.authority) == 1
        assert len(message.additional) == 0

    def test_all_records_tagged(self):
        message = Message()
        message.add(Section.ADDITIONAL, answer_record())
        tagged = list(message.all_records())
        assert tagged == [(Section.ADDITIONAL, answer_record())]

    def test_find_rrset(self):
        message = Message()
        message.add(Section.ANSWER, answer_record(), answer_record())
        rrset = message.find_rrset(Section.ANSWER, Name("example.com"), RdataType.A)
        assert rrset is not None and rrset.ttl == 300

    def test_find_rrset_missing(self):
        assert Message().find_rrset(Section.ANSWER, Name("x"), RdataType.A) is None

    def test_answer_rrset_matches_question(self):
        query = Message.make_query("example.com", RdataType.A)
        response = query.make_response()
        response.add(Section.ANSWER, answer_record())
        assert response.answer_rrset() is not None


class TestClassification:
    def test_referral_shape(self):
        message = Message(flags=Flags(qr=True))
        message.add(Section.AUTHORITY, ns_record())
        assert message.is_referral()

    def test_answer_is_not_referral(self):
        message = Message(flags=Flags(qr=True))
        message.add(Section.ANSWER, answer_record())
        message.add(Section.AUTHORITY, ns_record())
        assert not message.is_referral()

    def test_nxdomain_is_not_referral(self):
        message = Message(flags=Flags(qr=True), rcode=Rcode.NXDOMAIN)
        message.add(Section.AUTHORITY, ns_record())
        assert not message.is_referral()


class TestAging:
    def test_aged_decrements_all_sections(self):
        message = Message()
        message.add(Section.ANSWER, answer_record(ttl=300))
        message.add(Section.ADDITIONAL, answer_record(ttl=100))
        aged = message.aged(100)
        assert aged.answer[0].ttl == 200
        assert aged.additional[0].ttl == 0

    def test_aged_does_not_mutate(self):
        message = Message()
        message.add(Section.ANSWER, answer_record(ttl=300))
        message.aged(100)
        assert message.answer[0].ttl == 300


class TestWire:
    def full_message(self):
        query = Message.make_query("www.example.com", RdataType.A, id=0x1234)
        response = query.make_response(authoritative=True, recursion_available=True)
        response.add(Section.ANSWER, answer_record("www.example.com"))
        response.add(Section.AUTHORITY, ns_record("example.com", "ns1.example.com"))
        response.add(
            Section.ADDITIONAL,
            ResourceRecord(Name("ns1.example.com"), RdataType.A, 7200, A("192.0.2.53")),
        )
        return response

    def test_round_trip(self):
        message = self.full_message()
        decoded = Message.from_wire(message.to_wire())
        assert decoded.to_text() == message.to_text()

    def test_compression_reduces_size(self):
        message = self.full_message()
        assert len(message.to_wire()) < 120  # far below the uncompressed size

    def test_query_round_trip(self):
        query = Message.make_query("example.com", RdataType.NS, id=1)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.question == query.question
        assert not decoded.is_response

    def test_trailing_bytes_rejected(self):
        from repro.dns.wire import WireError

        blob = Message.make_query("x", RdataType.A).to_wire() + b"\x00"
        with pytest.raises(WireError):
            Message.from_wire(blob)

    def test_multi_question_rejected(self):
        from repro.dns.wire import WireError

        blob = bytearray(Message.make_query("x", RdataType.A).to_wire())
        blob[5] = 2  # QDCOUNT
        with pytest.raises(WireError):
            Message.from_wire(bytes(blob))


class TestText:
    def test_to_text_sections(self):
        message = self.make()
        text = message.to_text()
        assert ";; QUESTION" in text
        assert ";; ANSWER" in text

    def make(self):
        query = Message.make_query("example.com", RdataType.A)
        response = query.make_response()
        response.add(Section.ANSWER, answer_record())
        return response
