"""Property-based tests for the DNS substrate (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import Flags, Message, Opcode, Question, Rcode, Section
from repro.dns.name import Name
from repro.dns.rdtypes import AAAA, A, CNAME, MX, NS, TXT, RdataType
from repro.dns.record import ResourceRecord
from repro.dns.ttl import TTL_MAX, format_ttl, parse_ttl
from repro.dns.wire import WireReader, WireWriter

label_alphabet = string.ascii_lowercase + string.digits + "-"

labels = st.text(alphabet=label_alphabet, min_size=1, max_size=12)
names = st.lists(labels, min_size=0, max_size=5).map(Name)
ttls = st.integers(min_value=0, max_value=TTL_MAX)

ipv4s = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda n: ".".join(str((n >> shift) & 0xFF) for shift in (24, 16, 8, 0))
)
ipv6s = st.integers(min_value=0, max_value=2**128 - 1).map(
    lambda n: f"2001:db8::{n & 0xFFFF:x}"
)

rdatas = st.one_of(
    ipv4s.map(A),
    ipv6s.map(AAAA),
    names.map(NS),
    names.map(CNAME),
    st.tuples(st.integers(min_value=0, max_value=65535), names).map(
        lambda t: MX(t[0], t[1])
    ),
    st.lists(
        st.text(alphabet=string.ascii_letters, max_size=40), min_size=0, max_size=3
    ).map(lambda chunks: TXT(tuple(chunks))),
)

records = st.builds(
    lambda name, ttl, rdata: ResourceRecord(name, rdata.rdtype, ttl, rdata),
    names,
    ttls,
    rdatas,
)


@given(names)
def test_name_text_round_trip(name):
    assert Name(str(name)) == name


@given(names)
def test_name_wire_round_trip(name):
    writer = WireWriter()
    writer.write_name(name)
    assert WireReader(writer.getvalue()).read_name() == name


@given(st.lists(names, min_size=1, max_size=6))
def test_many_names_wire_round_trip_with_compression(name_list):
    writer = WireWriter()
    for name in name_list:
        writer.write_name(name)
    reader = WireReader(writer.getvalue())
    assert [reader.read_name() for _ in name_list] == name_list


@given(st.lists(names, min_size=2, max_size=6))
def test_compression_never_grows(name_list):
    compressed = WireWriter()
    plain = WireWriter()
    for name in name_list:
        compressed.write_name(name)
        plain.write_name(name, compress=False)
    assert len(compressed.getvalue()) <= len(plain.getvalue())


@given(names, names)
def test_subdomain_antisymmetry(a, b):
    if a.is_proper_subdomain_of(b):
        assert not b.is_subdomain_of(a)


@given(names, names)
def test_common_ancestor_is_shared_suffix(a, b):
    ancestor = a.common_ancestor(b)
    assert a.is_subdomain_of(ancestor)
    assert b.is_subdomain_of(ancestor)


@given(names)
def test_ancestors_chain_is_strictly_shorter(name):
    previous = len(name)
    for ancestor in name.ancestors():
        assert len(ancestor) == previous - 1
        previous = len(ancestor)


@given(records)
def test_record_wire_round_trip(record):
    writer = WireWriter()
    record.to_wire(writer)
    assert ResourceRecord.from_wire(WireReader(writer.getvalue())) == record


@given(records, st.integers(min_value=0, max_value=10**6))
def test_aging_never_negative_never_raises_ttl(record, age):
    aged = record.aged(age)
    assert 0 <= aged.ttl <= record.ttl


@settings(max_examples=50)
@given(
    st.integers(min_value=0, max_value=65535),
    st.sampled_from(list(Rcode)),
    st.booleans(),
    st.booleans(),
    names,
    st.lists(records, max_size=4),
    st.lists(records, max_size=3),
    st.lists(records, max_size=3),
)
def test_message_wire_round_trip(
    message_id, rcode, aa, rd, qname, answer, authority, additional
):
    message = Message(
        id=message_id,
        rcode=rcode,
        flags=Flags(qr=True, aa=aa, rd=rd),
        question=Question(qname, RdataType.A),
    )
    message.answer.extend(answer)
    message.authority.extend(authority)
    message.additional.extend(additional)
    decoded = Message.from_wire(message.to_wire())
    assert decoded.id == message.id
    assert decoded.rcode == message.rcode
    assert decoded.flags == message.flags
    assert decoded.question == message.question
    for section in Section:
        assert decoded.section(section) == message.section(section)


@given(ttls)
def test_format_parse_ttl_round_trip(ttl):
    assert parse_ttl(format_ttl(ttl)) == ttl
