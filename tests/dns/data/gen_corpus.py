"""Regenerate the wire-format regression corpus.

Run from the repo root::

    PYTHONPATH=src python tests/dns/data/gen_corpus.py

Each blob is a complete DNS message (12-byte header + body).  Files named
``valid_*.bin`` must decode cleanly and re-encode; files named
``reject_*.bin`` must raise ``WireError``/``ValueError`` — and, crucially,
must *terminate*: the ``reject_pointer_*`` blobs pin the fix for the
compression-pointer loop (pointers must point strictly backwards and
successive targets must strictly decrease), which a naive decoder chases
forever.  ``tests/dns/test_wire_roundtrip.py`` replays every blob.
"""

import pathlib

HERE = pathlib.Path(__file__).parent

#: Standard query header: id 0x1234, RD, one question, no records.
QUERY_HEADER = bytes.fromhex("123401000001000000000000")
#: Response header used by the historical pointer-loop reproducer.
LOOP_HEADER = bytes.fromhex("123480000001000000000000")
QTYPE_QCLASS = b"\x00\x01\x00\x01"  # A, IN


def valid_response() -> bytes:
    from repro.dns.message import Message, Section
    from repro.dns.name import Name
    from repro.dns.rdtypes import A, NS, RdataType
    from repro.dns.record import ResourceRecord

    query = Message.make_query("www.example.com", RdataType.A, id=0x1234)
    response = query.make_response(authoritative=True)
    response.add(
        Section.ANSWER,
        ResourceRecord(Name("www.example.com"), RdataType.A, 300, A("192.0.2.1")),
    )
    response.add(
        Section.AUTHORITY,
        ResourceRecord(
            Name("example.com"), RdataType.NS, 3600, NS(Name("ns1.example.com"))
        ),
    )
    return response.to_wire()


def valid_compressed() -> bytes:
    """Many records sharing suffixes: compression pointers all legal."""
    from repro.dns.message import Message, Section
    from repro.dns.name import Name
    from repro.dns.rdtypes import A, NS, RdataType
    from repro.dns.record import ResourceRecord

    query = Message.make_query("a.b.c.example.com", RdataType.NS, id=0x0042)
    response = query.make_response(authoritative=True)
    for index, owner in enumerate(
        ("a.b.c.example.com", "b.c.example.com", "c.example.com", "example.com")
    ):
        response.add(
            Section.AUTHORITY,
            ResourceRecord(
                Name(owner), RdataType.NS, 3600, NS(Name(f"ns{index}.example.com"))
            ),
        )
        response.add(
            Section.ADDITIONAL,
            ResourceRecord(
                Name(f"ns{index}.example.com"), RdataType.A, 300,
                A(f"192.0.2.{index + 1}"),
            ),
        )
    return response.to_wire()


def valid_ecs_query() -> bytes:
    """A query carrying an RFC 7871 ECS option (192.0.2.0/24, scope 0)."""
    from repro.dns.ecs import ClientSubnet
    from repro.dns.message import Message
    from repro.dns.rdtypes import RdataType

    query = Message.make_query("www.cdn.example", RdataType.A, id=0x7871)
    query.use_edns(options=ClientSubnet.from_ip("192.0.2.0", 24).to_wire())
    return query.to_wire()


def valid_ecs_v6_scoped() -> bytes:
    """A response echoing a v6 ECS option with a non-zero scope."""
    from repro.dns.ecs import ClientSubnet
    from repro.dns.message import Message, Section
    from repro.dns.name import Name
    from repro.dns.rdtypes import A, RdataType
    from repro.dns.record import ResourceRecord

    query = Message.make_query("www.cdn.example", RdataType.A, id=0x7872)
    response = query.make_response(authoritative=True)
    response.add(
        Section.ANSWER,
        ResourceRecord(Name("www.cdn.example"), RdataType.A, 60, A("203.0.113.1")),
    )
    subnet = ClientSubnet.from_ip("2001:db8::", 56, scope=48)
    response.use_edns(options=subnet.to_wire())
    return response.to_wire()


def reject_ecs_opt_overrun() -> bytes:
    """OPT rdlength promises 12 octets of ECS data; the message ends at 5."""
    header = bytes.fromhex("787101000001000000000001")
    question = b"\x03www\x07example\x03com\x00" + QTYPE_QCLASS
    # Root owner, type OPT (41), class 4096, TTL 0, rdlength 12 — then
    # only 5 octets of option data before the message ends.
    opt = b"\x00" + b"\x00\x29" + b"\x10\x00" + b"\x00" * 4 + b"\x00\x0c"
    return header + question + opt + b"\x00\x08\x00\x01\x00"


CORPUS = {
    # -- must decode ---------------------------------------------------------
    "valid_response.bin": valid_response,
    "valid_compressed_names.bin": valid_compressed,
    "valid_ecs_query.bin": valid_ecs_query,
    "valid_ecs_v6_scoped.bin": valid_ecs_v6_scoped,
    # OPT rdlength overruns the message: must fail at the message codec.
    "reject_ecs_opt_overrun.bin": reject_ecs_opt_overrun,
    # -- must be rejected (and must terminate) ------------------------------
    # The historical reproducer: question name at offset 12 points to
    # offset 14, where parsing runs into a pointer back to offset 12 — a
    # mutual loop a naive decoder chases forever.
    "reject_pointer_loop_mutual.bin": lambda: (
        LOOP_HEADER + b"\xc0\x0e\x00\x01\x00\x01" + b"\xc0\x0c"
    ),
    # Question name is a pointer to itself (offset 12 -> 12).
    "reject_pointer_self.bin": lambda: (
        QUERY_HEADER + b"\xc0\x0c" + QTYPE_QCLASS
    ),
    # Pointer to a *later* offset (12 -> 32): forward references are
    # illegal even when the target exists.
    "reject_pointer_forward.bin": lambda: (
        QUERY_HEADER + b"\xc0\x20" + QTYPE_QCLASS + b"\x00" * 32
    ),
    # A label followed by a pointer back to the label's own start: each
    # traversal re-reads the label and hits the same pointer again —
    # terminates only because successive pointer targets must strictly
    # decrease.
    "reject_pointer_stall.bin": lambda: (
        QUERY_HEADER + b"\x01a\xc0\x0c" + QTYPE_QCLASS
    ),
    # Message ends in the middle of a two-octet compression pointer.
    "reject_truncated_pointer.bin": lambda: QUERY_HEADER + b"\x01a\xc0",
    # Question section cut off after the name.
    "reject_truncated_question.bin": lambda: (
        QUERY_HEADER + b"\x03www\x07example\x03com\x00\x00"
    ),
    # Four 63-octet labels: 256 encoded octets, over the 255-octet limit.
    "reject_name_too_long.bin": lambda: (
        QUERY_HEADER + (b"\x3f" + b"a" * 63) * 4 + b"\x00" + QTYPE_QCLASS
    ),
    # Label length with the reserved 0x80 type bits set.
    "reject_reserved_label_type.bin": lambda: (
        QUERY_HEADER + b"\x80a\x00" + QTYPE_QCLASS
    ),
    # Header promises a question that never appears.
    "reject_empty_body.bin": lambda: QUERY_HEADER,
}


def main() -> None:
    for filename, build in CORPUS.items():
        path = HERE / filename
        path.write_bytes(build())
        print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
