"""Tests for repro.dns.zone: lookups, delegations, glue, wildcards."""

import pytest

from repro.dns.message import Message, Rcode, Section
from repro.dns.name import Name
from repro.dns.rdtypes import AAAA, A, CNAME, NS, RdataType
from repro.dns.zone import LookupStatus, Zone, ZoneError


@pytest.fixture
def zone():
    z = Zone("example.com.", default_ttl=3600)
    z.add_soa("ns1.example.com.", minimum=900)
    z.add("example.com.", RdataType.NS, NS("ns1.example.com."), ttl=3600)
    z.add("ns1.example.com.", RdataType.A, A("192.0.2.53"), ttl=7200)
    z.add("www.example.com.", RdataType.A, A("192.0.2.80"), ttl=300)
    z.add("alias.example.com.", RdataType.CNAME, CNAME("www.example.com."), ttl=600)
    # A delegated subzone with in-bailiwick glue.
    z.add("sub.example.com.", RdataType.NS, NS("ns1.sub.example.com."), ttl=1800)
    z.add("ns1.sub.example.com.", RdataType.A, A("192.0.2.99"), ttl=1800)
    return z


class TestMutation:
    def test_add_out_of_zone_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add("other.org.", RdataType.A, A("192.0.2.1"))

    def test_add_merges_rdatas(self, zone):
        zone.add("www.example.com.", RdataType.A, A("192.0.2.81"))
        assert len(zone.get("www.example.com.", RdataType.A)) == 2

    def test_add_merge_keeps_existing_ttl(self, zone):
        zone.add("www.example.com.", RdataType.A, A("192.0.2.81"), ttl=999)
        assert zone.get("www.example.com.", RdataType.A).ttl == 300

    def test_add_dedupes_identical_rdata(self, zone):
        zone.add("www.example.com.", RdataType.A, A("192.0.2.80"))
        assert len(zone.get("www.example.com.", RdataType.A)) == 1

    def test_replace_swaps_rdata(self, zone):
        zone.replace("www.example.com.", RdataType.A, A("198.51.100.1"), ttl=60)
        rrset = zone.get("www.example.com.", RdataType.A)
        assert rrset.ttl == 60
        assert str(rrset.rdatas[0]) == "198.51.100.1"

    def test_remove(self, zone):
        zone.remove("www.example.com.", RdataType.A)
        assert zone.get("www.example.com.", RdataType.A) is None

    def test_set_ttl(self, zone):
        zone.set_ttl("example.com.", RdataType.NS, 86400)
        assert zone.get("example.com.", RdataType.NS).ttl == 86400

    def test_set_ttl_missing_raises(self, zone):
        with pytest.raises(ZoneError):
            zone.set_ttl("nope.example.com.", RdataType.NS, 60)


class TestLookup:
    def test_exact_answer(self, zone):
        result = zone.lookup("www.example.com.", RdataType.A)
        assert result.status is LookupStatus.ANSWER
        assert result.rrsets[0].ttl == 300

    def test_apex_ns_answer(self, zone):
        result = zone.lookup("example.com.", RdataType.NS)
        assert result.status is LookupStatus.ANSWER

    def test_nodata(self, zone):
        result = zone.lookup("www.example.com.", RdataType.AAAA)
        assert result.status is LookupStatus.NODATA
        assert result.soa is not None

    def test_nxdomain(self, zone):
        result = zone.lookup("missing.example.com.", RdataType.A)
        assert result.status is LookupStatus.NXDOMAIN

    def test_empty_non_terminal_is_nodata(self, zone):
        zone.add("a.b.example.com.", RdataType.A, A("192.0.2.7"))
        result = zone.lookup("b.example.com.", RdataType.A)
        assert result.status is LookupStatus.NODATA

    def test_out_of_zone_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.lookup("other.org.", RdataType.A)

    def test_cname_followed_in_zone(self, zone):
        result = zone.lookup("alias.example.com.", RdataType.A)
        assert result.status is LookupStatus.CNAME
        assert len(result.rrsets) == 2  # CNAME + target A

    def test_cname_query_returns_cname_directly(self, zone):
        result = zone.lookup("alias.example.com.", RdataType.CNAME)
        assert result.status is LookupStatus.ANSWER

    def test_cname_dangling_out_of_zone(self, zone):
        zone.add("ext.example.com.", RdataType.CNAME, CNAME("target.other.org."))
        result = zone.lookup("ext.example.com.", RdataType.A)
        assert result.status is LookupStatus.CNAME
        assert len(result.rrsets) == 1


class TestDelegation:
    def test_names_below_cut_are_referred(self, zone):
        result = zone.lookup("host.sub.example.com.", RdataType.A)
        assert result.status is LookupStatus.DELEGATION
        assert result.rrsets[0].name == Name("sub.example.com.")

    def test_cut_itself_is_referred(self, zone):
        result = zone.lookup("sub.example.com.", RdataType.A)
        assert result.status is LookupStatus.DELEGATION

    def test_glue_attached(self, zone):
        result = zone.lookup("host.sub.example.com.", RdataType.A)
        glue_names = {str(g.name) for g in result.glue}
        assert glue_names == {"ns1.sub.example.com."}

    def test_out_of_bailiwick_delegation_has_no_glue(self, zone):
        zone.add("ext.example.com.", RdataType.NS, NS("ns.provider.net."), ttl=1800)
        result = zone.lookup("www.ext.example.com.", RdataType.A)
        assert result.status is LookupStatus.DELEGATION
        assert result.glue == []

    def test_shallowest_cut_wins(self, zone):
        # A (bogus) deeper NS below the cut must not shadow the first cut.
        result = zone.lookup("a.b.sub.example.com.", RdataType.A)
        assert result.rrsets[0].name == Name("sub.example.com.")

    def test_delegations_iterator(self, zone):
        assert {str(d.name) for d in zone.delegations()} == {"sub.example.com."}

    def test_removing_ns_removes_cut(self, zone):
        zone.remove("sub.example.com.", RdataType.NS)
        result = zone.lookup("host.sub.example.com.", RdataType.A)
        assert result.status is LookupStatus.NXDOMAIN


class TestWildcard:
    def test_wildcard_synthesis(self, zone):
        zone.add("*.dyn.example.com.", RdataType.AAAA, AAAA("2001:db8::1"), ttl=60)
        result = zone.lookup("p123.dyn.example.com.", RdataType.AAAA)
        assert result.status is LookupStatus.ANSWER
        assert result.rrsets[0].name == Name("p123.dyn.example.com.")
        assert result.rrsets[0].ttl == 60

    def test_wildcard_does_not_cover_existing_name(self, zone):
        zone.add("*.dyn.example.com.", RdataType.AAAA, AAAA("2001:db8::1"), ttl=60)
        zone.add("real.dyn.example.com.", RdataType.A, A("192.0.2.5"))
        result = zone.lookup("real.dyn.example.com.", RdataType.AAAA)
        assert result.status is LookupStatus.NODATA

    def test_wildcard_wrong_type_is_nxdomain(self, zone):
        zone.add("*.dyn.example.com.", RdataType.AAAA, AAAA("2001:db8::1"), ttl=60)
        result = zone.lookup("p9.dyn.example.com.", RdataType.MX)
        assert result.status is LookupStatus.NXDOMAIN


class TestRespond:
    def test_authoritative_answer_sets_aa(self, zone):
        query = Message.make_query("www.example.com.", RdataType.A)
        response = zone.respond(query)
        assert response.flags.aa
        assert response.rcode == Rcode.NOERROR
        assert response.answer[0].ttl == 300

    def test_answer_carries_apex_ns_and_glue(self, zone):
        query = Message.make_query("www.example.com.", RdataType.A)
        response = zone.respond(query)
        assert any(r.rdtype == RdataType.NS for r in response.authority)
        assert any(r.name == Name("ns1.example.com.") for r in response.additional)

    def test_referral_clears_aa(self, zone):
        query = Message.make_query("x.sub.example.com.", RdataType.A)
        response = zone.respond(query)
        assert not response.flags.aa
        assert response.is_referral()

    def test_referral_glue_in_additional(self, zone):
        query = Message.make_query("x.sub.example.com.", RdataType.A)
        response = zone.respond(query)
        assert any(
            r.name == Name("ns1.sub.example.com.") for r in response.additional
        )

    def test_nxdomain_response(self, zone):
        query = Message.make_query("gone.example.com.", RdataType.A)
        response = zone.respond(query)
        assert response.rcode == Rcode.NXDOMAIN
        assert any(r.rdtype == RdataType.SOA for r in response.authority)

    def test_nodata_response(self, zone):
        query = Message.make_query("www.example.com.", RdataType.MX)
        response = zone.respond(query)
        assert response.rcode == Rcode.NOERROR
        assert not response.answer
        assert any(r.rdtype == RdataType.SOA for r in response.authority)

    def test_out_of_zone_refused(self, zone):
        query = Message.make_query("other.org.", RdataType.A)
        assert zone.respond(query).rcode == Rcode.REFUSED

    def test_no_question_formerr(self, zone):
        assert zone.respond(Message()).rcode == Rcode.FORMERR

    def test_parent_and_child_ttls_differ_across_cut(self, zone):
        """The paper's core setup: same NS record, different TTLs, depending
        on which side of the delegation answers (§3.1, Table 1)."""
        child = Zone("sub.example.com.", default_ttl=300)
        child.add_soa("ns1.sub.example.com.")
        child.add("sub.example.com.", RdataType.NS, NS("ns1.sub.example.com."), ttl=300)
        parent_view = zone.respond(
            Message.make_query("sub.example.com.", RdataType.NS)
        )
        child_view = child.respond(
            Message.make_query("sub.example.com.", RdataType.NS)
        )
        parent_ttl = parent_view.authority[0].ttl
        child_ttl = child_view.answer[0].ttl
        assert (parent_ttl, child_ttl) == (1800, 300)
        assert not parent_view.flags.aa and child_view.flags.aa


class TestToText:
    def test_renders_sorted(self, zone):
        text = zone.to_text()
        assert text.startswith("; zone example.com.")
        assert "www.example.com. 300 IN A 192.0.2.80" in text
