"""EDNS0 (RFC 6891) and RFC 3597 unknown-type handling.

A live server faces real stub resolvers: nearly every modern query
carries an OPT record, and any 16-bit type code can appear on the wire.
Neither may crash the codec, and the OPT's payload negotiation must
round-trip exactly.
"""

import struct

import pytest

from repro.dns.message import (
    CLASSIC_UDP_PAYLOAD,
    DEFAULT_EDNS_PAYLOAD,
    Edns,
    Message,
    Section,
)
from repro.dns.name import Name
from repro.dns.rdtypes import A, OpaqueRdata, RdataClass, RdataType
from repro.dns.record import ResourceRecord
from repro.dns.wire import WireError


def test_opt_round_trip():
    query = Message.make_query("www.example.com.", RdataType.A, id=7)
    query.use_edns(udp_payload=1232, dnssec_ok=True)
    back = Message.from_wire(query.to_wire())
    assert back.edns == Edns(udp_payload=1232, dnssec_ok=True)
    assert back.udp_payload_limit == 1232
    assert back.additional == []  # OPT is a sidecar, not a record


def test_opt_arcount_includes_pseudo_record():
    query = Message.make_query("example.com.", RdataType.A).use_edns()
    wire = query.to_wire()
    arcount = struct.unpack_from(">H", wire, 10)[0]
    assert arcount == 1


def test_no_edns_means_classic_512_limit():
    query = Message.make_query("example.com.", RdataType.A)
    back = Message.from_wire(query.to_wire())
    assert back.edns is None
    assert back.udp_payload_limit == CLASSIC_UDP_PAYLOAD


def test_tiny_advertised_payload_is_floored_at_512():
    assert Edns(udp_payload=100).effective_payload == CLASSIC_UDP_PAYLOAD
    assert Edns(udp_payload=4096).effective_payload == 4096


def test_use_edns_default_payload():
    query = Message.make_query("example.com.", RdataType.A).use_edns()
    assert query.edns is not None
    assert query.edns.udp_payload == DEFAULT_EDNS_PAYLOAD


def test_duplicate_opt_rejected():
    query = Message.make_query("example.com.", RdataType.A).use_edns()
    wire = bytearray(query.to_wire())
    opt = wire[-11:]  # root label + fixed OPT fields, empty rdata
    wire += opt
    struct.pack_into(">H", wire, 10, 2)  # arcount = 2
    with pytest.raises(WireError):
        Message.from_wire(bytes(wire))


def test_opt_with_nonroot_owner_rejected():
    query = Message.make_query("example.com.", RdataType.A)
    wire = bytearray(query.to_wire())
    # Hand-craft an OPT owned by "x." instead of the root.
    wire += b"\x01x\x00" + struct.pack(">HHIH", 41, 1232, 0, 0)
    struct.pack_into(">H", wire, 10, 1)
    with pytest.raises(WireError):
        Message.from_wire(bytes(wire))


def test_unsupported_edns_version_rejected():
    query = Message.make_query("example.com.", RdataType.A)
    wire = bytearray(query.to_wire())
    ttl = 1 << 16  # version 1
    wire += b"\x00" + struct.pack(">HHIH", 41, 1232, ttl, 0)
    struct.pack_into(">H", wire, 10, 1)
    with pytest.raises(WireError):
        Message.from_wire(bytes(wire))


def test_opt_options_preserved():
    options = struct.pack(">HH", 10, 0)  # bare COOKIE option header
    edns = Edns(udp_payload=1400, options=options)
    query = Message.make_query("example.com.", RdataType.A)
    query.edns = edns
    back = Message.from_wire(query.to_wire())
    assert back.edns is not None
    assert back.edns.options == options
    assert back.edns.udp_payload == 1400


# -- RFC 3597 unknown types -------------------------------------------------
def test_unknown_rdtype_becomes_pseudo_member():
    unknown = RdataType(999)
    assert int(unknown) == 999
    assert unknown.name == "TYPE999"
    assert RdataType(999) is unknown  # memoized
    assert RdataType.from_text("TYPE999") == unknown


def test_unknown_rdclass_becomes_pseudo_member():
    unknown = RdataClass(42)
    assert int(unknown) == 42
    assert unknown.name == "CLASS42"


def test_unknown_rdtype_record_round_trips_opaquely():
    record = ResourceRecord(
        Name("blob.example.com."),
        RdataType(4096),
        ttl=60,
        rdata=OpaqueRdata(RdataType(4096), b"\xde\xad\xbe\xef"),
    )
    response = Message.make_query("blob.example.com.", RdataType(4096)).make_response()
    response.add(Section.ANSWER, record)
    back = Message.from_wire(response.to_wire())
    decoded = back.answer[0]
    assert decoded.rdtype == 4096
    assert isinstance(decoded.rdata, OpaqueRdata)
    assert decoded.rdata.data == b"\xde\xad\xbe\xef"
    assert decoded.rdata.to_text() == "\\# 4 deadbeef"


def test_opaque_rdata_text_for_empty_payload():
    assert OpaqueRdata(RdataType(1000)).to_text() == "\\# 0"


def test_known_types_still_decode_normally():
    response = Message.make_query("a.example.com.", RdataType.A).make_response()
    response.add(
        Section.ANSWER,
        ResourceRecord(Name("a.example.com."), RdataType.A, 300, A("192.0.2.1")),
    )
    back = Message.from_wire(response.to_wire())
    assert isinstance(back.answer[0].rdata, A)
    assert back.answer[0].rdata.address == "192.0.2.1"
