"""Tests for repro.dns.ttl."""

import pytest

from repro.dns.ttl import (
    TTL_MAX,
    TTLError,
    clamp_ttl,
    format_ttl,
    parse_ttl,
    validate_ttl,
)


class TestValidate:
    def test_zero_valid(self):
        assert validate_ttl(0) == 0

    def test_max_valid(self):
        assert validate_ttl(TTL_MAX) == TTL_MAX

    def test_negative_rejected(self):
        with pytest.raises(TTLError):
            validate_ttl(-1)

    def test_beyond_max_rejected(self):
        with pytest.raises(TTLError):
            validate_ttl(TTL_MAX + 1)

    def test_bool_rejected(self):
        with pytest.raises(TTLError):
            validate_ttl(True)

    def test_float_rejected(self):
        with pytest.raises(TTLError):
            validate_ttl(3.5)


class TestClamp:
    def test_noop_within_range(self):
        assert clamp_ttl(300, 0, 3600) == 300

    def test_google_style_cap(self):
        # §3.3: Google Public DNS caps at 21599 s.
        assert clamp_ttl(345600, maximum=21599) == 21599

    def test_floor(self):
        assert clamp_ttl(5, minimum=30) == 30

    def test_invalid_range(self):
        with pytest.raises(TTLError):
            clamp_ttl(10, minimum=100, maximum=50)


class TestParse:
    def test_plain_int(self):
        assert parse_ttl(300) == 300

    def test_digit_string(self):
        assert parse_ttl("172800") == 172800

    def test_units(self):
        assert parse_ttl("2d") == 172800
        assert parse_ttl("1h") == 3600
        assert parse_ttl("10m") == 600
        assert parse_ttl("30s") == 30
        assert parse_ttl("1w") == 604800

    def test_compound(self):
        assert parse_ttl("1h30m") == 5400

    def test_case_insensitive(self):
        assert parse_ttl("2D") == 172800

    def test_garbage_rejected(self):
        with pytest.raises(TTLError):
            parse_ttl("soon")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(TTLError):
            parse_ttl("1hX")

    def test_empty_rejected(self):
        with pytest.raises(TTLError):
            parse_ttl("")


class TestFormat:
    def test_zero(self):
        assert format_ttl(0) == "0s"

    def test_two_days(self):
        assert format_ttl(172800) == "2d"

    def test_compound(self):
        assert format_ttl(5400) == "1h30m"

    def test_seconds_remainder(self):
        assert format_ttl(61) == "1m1s"

    def test_round_trip(self):
        for ttl in (0, 1, 60, 300, 3600, 7200, 86400, 172800, 604800, 90061):
            assert parse_ttl(format_ttl(ttl)) == ttl
