"""Tests for repro.dns.record."""

import pytest

from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RdataClass, RdataType
from repro.dns.record import ResourceRecord, RRset, group_rrsets
from repro.dns.wire import WireReader, WireWriter


def rr(name="example.com", ttl=300, address="192.0.2.1"):
    return ResourceRecord(Name(name), RdataType.A, ttl, A(address))


class TestResourceRecord:
    def test_name_coerced(self):
        record = ResourceRecord("example.com", RdataType.A, 300, A("192.0.2.1"))
        assert record.name == Name("example.com")

    def test_type_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord(Name("x"), RdataType.NS, 300, A("192.0.2.1"))

    def test_invalid_ttl_rejected(self):
        with pytest.raises(Exception):
            rr(ttl=-5)

    def test_with_ttl(self):
        assert rr(ttl=300).with_ttl(60).ttl == 60

    def test_aged(self):
        assert rr(ttl=300).aged(100).ttl == 200

    def test_aged_floors_at_zero(self):
        assert rr(ttl=300).aged(1000).ttl == 0

    def test_aged_negative_rejected(self):
        with pytest.raises(ValueError):
            rr().aged(-1)

    def test_to_text(self):
        assert rr().to_text() == "example.com. 300 IN A 192.0.2.1"

    def test_wire_round_trip(self):
        writer = WireWriter()
        rr().to_wire(writer)
        decoded = ResourceRecord.from_wire(WireReader(writer.getvalue()))
        assert decoded == rr()

    def test_key(self):
        assert rr().key() == (Name("example.com"), RdataType.A, RdataClass.IN)


class TestRRset:
    def test_from_records(self):
        rrset = RRset.from_records([rr(), rr(address="192.0.2.2")])
        assert len(rrset) == 2

    def test_from_records_empty_rejected(self):
        with pytest.raises(ValueError):
            RRset.from_records([])

    def test_mixed_keys_rejected(self):
        with pytest.raises(ValueError):
            RRset.from_records([rr(), rr(name="other.com")])

    def test_rfc2181_mixed_ttls_rejected(self):
        with pytest.raises(ValueError):
            RRset.from_records([rr(ttl=300), rr(ttl=600, address="192.0.2.2")])

    def test_type_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RRset(Name("x"), RdataType.NS, 300, [A("192.0.2.1")])

    def test_records_round_trip(self):
        rrset = RRset.from_records([rr(), rr(address="192.0.2.2")])
        assert RRset.from_records(list(rrset.records())) == rrset

    def test_with_ttl(self):
        rrset = RRset(Name("x"), RdataType.A, 300, [A("192.0.2.1")])
        assert rrset.with_ttl(60).ttl == 60
        assert rrset.with_ttl(60).rdatas == rrset.rdatas

    def test_aged(self):
        rrset = RRset(Name("x"), RdataType.A, 300, [A("192.0.2.1")])
        assert rrset.aged(100).ttl == 200
        assert rrset.aged(500).ttl == 0

    def test_iter_yields_rdatas(self):
        rrset = RRset(Name("x"), RdataType.A, 300, [A("192.0.2.1")])
        assert list(rrset) == [A("192.0.2.1")]

    def test_to_text_lines(self):
        rrset = RRset.from_records([rr(), rr(address="192.0.2.2")])
        assert len(rrset.to_text().splitlines()) == 2


class TestGroupRRsets:
    def test_groups_by_key(self):
        records = [rr(), rr(address="192.0.2.2"), rr(name="other.com")]
        rrsets = group_rrsets(records)
        assert len(rrsets) == 2

    def test_mixed_ttls_take_minimum(self):
        # The conservative RFC 2181 §5.2 reading real resolvers apply.
        records = [rr(ttl=300), rr(ttl=100, address="192.0.2.2")]
        (rrset,) = group_rrsets(records)
        assert rrset.ttl == 100

    def test_preserves_first_seen_order(self):
        records = [rr(name="b.com"), rr(name="a.com")]
        rrsets = group_rrsets(records)
        assert [str(r.name) for r in rrsets] == ["b.com.", "a.com."]

    def test_ns_grouping(self):
        records = [
            ResourceRecord(Name("z"), RdataType.NS, 60, NS(Name("ns1.z"))),
            ResourceRecord(Name("z"), RdataType.NS, 60, NS(Name("ns2.z"))),
        ]
        (rrset,) = group_rrsets(records)
        assert len(rrset) == 2
