"""Wire-format regression corpus + encode/decode round-trip fuzz.

The corpus under ``tests/dns/data/`` pins the compression-pointer-loop
fix: every blob — valid or hostile — must make ``Message.from_wire``
*terminate*, either with a clean parse or with ``WireError`` /
``ValueError``.  The ``reject_pointer_*`` blobs are exactly the inputs a
decoder without the strictly-decreasing-pointer rule chases forever, so
running this file at all is the regression test.  Regenerate blobs with
``PYTHONPATH=src python tests/dns/data/gen_corpus.py``.
"""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import Message, Section
from repro.dns.wire import WireError

DATA_DIR = pathlib.Path(__file__).parent / "data"
CORPUS = sorted(DATA_DIR.glob("*.bin"))


def test_corpus_is_present():
    names = {path.name for path in CORPUS}
    # The historical reproducer must never silently vanish from the set.
    assert "reject_pointer_loop_mutual.bin" in names
    assert any(name.startswith("valid_") for name in names)
    assert len(CORPUS) >= 8


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_every_corpus_blob_terminates(path):
    """Decode must terminate on every blob: parse cleanly or fail cleanly."""
    blob = path.read_bytes()
    try:
        decoded = Message.from_wire(blob)
    except (WireError, ValueError):
        assert path.name.startswith("reject_"), (
            f"{path.name}: a valid_* blob failed to decode"
        )
        return
    assert path.name.startswith("valid_"), (
        f"{path.name}: a reject_* blob decoded without error"
    )
    decoded.to_wire()  # whatever decodes must re-encode without crashing


@pytest.mark.parametrize(
    "path",
    [p for p in CORPUS if p.name.startswith("valid_")],
    ids=lambda p: p.name,
)
def test_valid_blobs_round_trip(path):
    """Decode → encode → decode is a fixed point for the valid blobs."""
    first = Message.from_wire(path.read_bytes())
    second = Message.from_wire(first.to_wire())
    assert second.id == first.id
    assert second.rcode == first.rcode
    assert second.question == first.question
    for section in (Section.ANSWER, Section.AUTHORITY, Section.ADDITIONAL):
        assert second.section(section) == first.section(section)


@settings(max_examples=200)
@given(
    st.sampled_from([p for p in CORPUS if p.name.startswith("reject_")]),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=300),
)
def test_mutated_hostile_blobs_still_terminate(path, value, position):
    """Single-byte mutations of the hostile corpus cannot re-open a loop."""
    blob = bytearray(path.read_bytes())
    blob[position % len(blob)] = value
    try:
        Message.from_wire(bytes(blob))
    except (WireError, ValueError):
        pass


@settings(max_examples=100)
@given(st.binary(min_size=12, max_size=64))
def test_pointer_heavy_random_bodies_terminate(body):
    """Random bodies salted with pointer octets: the worst case for a
    decoder without the backwards-only rule."""
    salted = bytes(
        0xC0 if index % 3 == 0 else byte for index, byte in enumerate(body)
    )
    blob = bytes.fromhex("123401000001000000000000") + salted
    try:
        Message.from_wire(blob)
    except (WireError, ValueError):
        pass
