"""Edge-case tests across the DNS substrate."""

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import A, CNAME, NS, RdataType
from repro.dns.ttl import format_ttl, parse_ttl
from repro.dns.zone import LookupStatus, Zone


class TestCnameLoops:
    def test_two_node_loop_terminates(self):
        zone = Zone("loop.example.", default_ttl=300)
        zone.add_soa("ns.loop.example.")
        zone.add("a.loop.example.", RdataType.CNAME, CNAME("b.loop.example."))
        zone.add("b.loop.example.", RdataType.CNAME, CNAME("a.loop.example."))
        result = zone.lookup("a.loop.example.", RdataType.A)
        assert result.status is LookupStatus.CNAME
        assert len(result.rrsets) <= 3  # chain reported, loop not chased forever

    def test_self_loop_terminates(self):
        zone = Zone("loop.example.", default_ttl=300)
        zone.add_soa("ns.loop.example.")
        zone.add("self.loop.example.", RdataType.CNAME, CNAME("self.loop.example."))
        result = zone.lookup("self.loop.example.", RdataType.A)
        assert result.status is LookupStatus.CNAME

    def test_resolver_bounded_on_cross_zone_loop(self, mini_world):
        from repro.net.topology import Region
        from repro.resolver.recursive import RecursiveResolver

        mini_world.child_zone.add(
            "x.example.tld.", RdataType.CNAME, CNAME("y.example.tld."), ttl=300
        )
        mini_world.child_zone.add(
            "y.example.tld.", RdataType.CNAME, CNAME("x.example.tld."), ttl=300
        )
        resolver = RecursiveResolver(
            endpoint=mini_world.topology.endpoint_in_region(Region.EU),
            network=mini_world.network,
            root_hints=mini_world.hints,
        )
        out = resolver.resolve("x.example.tld.", RdataType.A, now=0.0)
        # Either a SERVFAIL (loop detected) or a NOERROR carrying the
        # chain without a final answer; never a hang or crash.
        assert out.rcode in (Rcode.NOERROR, Rcode.SERVFAIL)


class TestTtlFormats:
    def test_weeks(self):
        assert format_ttl(604800) == "1w"
        assert parse_ttl("1w") == 604800

    def test_week_compound(self):
        assert format_ttl(604800 + 86400 + 3600) == "1w1d1h"

    def test_zero_padding_absent(self):
        assert format_ttl(3601) == "1h1s"


class TestZoneApexEdge:
    def test_apex_wildcard(self):
        zone = Zone("w.example.", default_ttl=60)
        zone.add_soa("ns.w.example.")
        zone.add("*.w.example.", RdataType.A, A("192.0.2.7"), ttl=60)
        result = zone.lookup("anything.w.example.", RdataType.A)
        assert result.status is LookupStatus.ANSWER

    def test_wildcard_does_not_match_apex(self):
        zone = Zone("w.example.", default_ttl=60)
        zone.add_soa("ns.w.example.")
        zone.add("*.w.example.", RdataType.A, A("192.0.2.7"), ttl=60)
        result = zone.lookup("w.example.", RdataType.A)
        assert result.status is LookupStatus.NODATA

    def test_multi_label_below_wildcard(self):
        zone = Zone("w.example.", default_ttl=60)
        zone.add_soa("ns.w.example.")
        zone.add("*.w.example.", RdataType.A, A("192.0.2.7"), ttl=60)
        result = zone.lookup("a.b.w.example.", RdataType.A)
        # RFC 1034: the wildcard covers any descendant of the encloser.
        assert result.status is LookupStatus.ANSWER


class TestMessageEdge:
    def test_empty_response_round_trips(self):
        query = Message.make_query("x.example.", RdataType.A)
        response = query.make_response(rcode=Rcode.SERVFAIL)
        assert Message.from_wire(response.to_wire()).rcode == Rcode.SERVFAIL

    def test_message_without_question_round_trips(self):
        message = Message(id=5)
        decoded = Message.from_wire(message.to_wire())
        assert decoded.question is None and decoded.id == 5

    def test_max_id_round_trips(self):
        message = Message.make_query("x.", RdataType.A, id=0xFFFF)
        assert Message.from_wire(message.to_wire()).id == 0xFFFF


class TestDelegationEdge:
    def test_ns_query_at_cut_is_referral_not_answer(self):
        """A parent asked for the NS of a delegated child must refer, not
        answer — this non-AA referral is exactly the parent-side data of
        §3 (Table 1's root response for .cl)."""
        parent = Zone("tld.", default_ttl=86400)
        parent.add_soa("ns.tld.")
        parent.add("tld.", RdataType.NS, NS("ns.tld."))
        parent.add("child.tld.", RdataType.NS, NS("ns.child.tld."), ttl=86400)
        parent.add("ns.child.tld.", RdataType.A, A("192.0.2.9"), ttl=86400)
        response = parent.respond(Message.make_query("child.tld.", RdataType.NS))
        assert response.is_referral()
        assert not response.flags.aa
        assert not response.answer
