"""RFC 7871 ECS option codec: round-trips, §6 canonical form, rejects.

The property tests sweep both families and every legal prefix length;
the reject tests pin each validation clause in
:class:`repro.dns.ecs.ClientSubnet`.  The differential test at the end
is the byte-identity contract: scope-0 (global) answers must leave a
resolver's cache and metrics indistinguishable from an ECS-disabled run.
"""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.ecs import (
    FAMILY_IPV4,
    FAMILY_IPV6,
    OPTION_CLIENT_SUBNET,
    ClientSubnet,
    extract_client_subnet,
    replace_client_subnet,
)
from repro.dns.message import Message
from repro.dns.rdtypes import RdataType
from repro.dns.wire import WireError

v4_addresses = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda n: str(ipaddress.IPv4Address(n))
)
v6_addresses = st.integers(min_value=0, max_value=2**128 - 1).map(
    lambda n: str(ipaddress.IPv6Address(n))
)


# -- round-trips -------------------------------------------------------------
@settings(max_examples=200)
@given(v4_addresses, st.integers(min_value=0, max_value=32))
def test_v4_round_trip(ip, prefix):
    subnet = ClientSubnet.from_ip(ip, prefix)
    assert subnet.family == FAMILY_IPV4
    assert subnet.source_prefix == prefix
    assert len(subnet.address) == (prefix + 7) // 8
    parsed = ClientSubnet.parse_option_data(subnet.to_option_data())
    assert parsed == subnet
    assert extract_client_subnet(subnet.to_wire()) == subnet


@settings(max_examples=200)
@given(v6_addresses, st.integers(min_value=0, max_value=128))
def test_v6_round_trip(ip, prefix):
    subnet = ClientSubnet.from_ip(ip, prefix)
    assert subnet.family == FAMILY_IPV6
    assert len(subnet.address) == (prefix + 7) // 8
    assert ClientSubnet.parse_option_data(subnet.to_option_data()) == subnet


@settings(max_examples=200)
@given(v4_addresses, st.integers(min_value=0, max_value=32),
       st.integers(min_value=0, max_value=32))
def test_v4_scope_survives_the_wire(ip, prefix, scope):
    subnet = ClientSubnet.from_ip(ip, prefix, scope=scope)
    assert extract_client_subnet(subnet.to_wire()).scope_prefix == scope


@settings(max_examples=200)
@given(v4_addresses, st.integers(min_value=0, max_value=32))
def test_truncation_is_canonical(ip, prefix):
    """§6: address bits past the source prefix are zero on the wire."""
    subnet = ClientSubnet.from_ip(ip, prefix)
    network = ipaddress.ip_network(f"{ip}/{prefix}", strict=False)
    assert subnet.address_text() == str(network.network_address) + f"/{prefix}"
    # Re-validating the canonical bytes must never raise.
    ClientSubnet(FAMILY_IPV4, prefix, subnet.address)


@settings(max_examples=100)
@given(v4_addresses, st.integers(min_value=0, max_value=32),
       st.integers(min_value=0, max_value=32))
def test_truncate_narrows_and_is_idempotent(ip, prefix, narrower):
    subnet = ClientSubnet.from_ip(ip, prefix)
    cut = subnet.truncate(narrower)
    assert cut.source_prefix == min(prefix, narrower)
    assert cut.truncate(narrower) == cut
    # The narrowed subnet covers the original at its own width.
    assert cut.covers(subnet, cut.source_prefix) or prefix < cut.source_prefix


@settings(max_examples=100)
@given(v4_addresses, st.integers(min_value=0, max_value=32))
def test_option_rides_a_real_message(ip, prefix):
    query = Message.make_query("www.cdn.example", RdataType.A, id=0x7871)
    query.use_edns(options=ClientSubnet.from_ip(ip, prefix).to_wire())
    decoded = Message.from_wire(query.to_wire())
    assert extract_client_subnet(decoded.edns.options) == ClientSubnet.from_ip(
        ip, prefix
    )


# -- rejects -----------------------------------------------------------------
def test_rejects_unknown_family():
    with pytest.raises(WireError):
        ClientSubnet(family=3, source_prefix=0, address=b"")


def test_rejects_prefix_out_of_range():
    with pytest.raises(WireError):
        ClientSubnet(FAMILY_IPV4, 33, b"\x00" * 5)
    with pytest.raises(WireError):
        ClientSubnet(FAMILY_IPV6, 129, b"\x00" * 17)
    with pytest.raises(WireError):
        ClientSubnet(FAMILY_IPV4, 24, b"\xc0\x00\x02", scope_prefix=33)


def test_rejects_wrong_address_length():
    with pytest.raises(WireError):
        ClientSubnet(FAMILY_IPV4, 24, b"\xc0\x00")  # /24 needs 3 octets
    with pytest.raises(WireError):
        ClientSubnet(FAMILY_IPV4, 24, b"\xc0\x00\x02\x01")  # one too many


def test_rejects_nonzero_trailing_bits():
    # /20 with a nonzero low nibble in the third octet violates §6.
    with pytest.raises(WireError):
        ClientSubnet(FAMILY_IPV4, 20, b"\xc0\x00\x0f")
    ClientSubnet(FAMILY_IPV4, 20, b"\xc0\x00\xf0")  # high nibble is fine


def test_rejects_truncated_option_body():
    with pytest.raises(WireError):
        ClientSubnet.parse_option_data(b"\x00\x01\x18")


def test_rejects_truncated_tlv():
    subnet = ClientSubnet.from_ip("192.0.2.0", 24)
    with pytest.raises(WireError):
        extract_client_subnet(subnet.to_wire()[:-1])


@given(st.binary(max_size=64))
def test_random_option_blobs_never_crash(blob):
    try:
        extract_client_subnet(blob)
    except WireError:
        pass


# -- blob surgery ------------------------------------------------------------
def test_extract_skips_unknown_options():
    cookie = b"\x00\x0a\x00\x08" + b"\x01" * 8  # EDNS cookie (code 10)
    subnet = ClientSubnet.from_ip("198.18.0.0", 24)
    assert extract_client_subnet(cookie + subnet.to_wire()) == subnet
    assert extract_client_subnet(cookie) is None
    assert extract_client_subnet(b"") is None


def test_replace_preserves_other_options():
    cookie = b"\x00\x0a\x00\x08" + b"\x01" * 8
    old = ClientSubnet.from_ip("198.18.0.0", 24)
    new = ClientSubnet.from_ip("203.0.113.0", 24)
    blob = replace_client_subnet(cookie + old.to_wire(), new)
    assert blob.startswith(cookie)
    assert extract_client_subnet(blob) == new
    assert replace_client_subnet(blob, None) == cookie


def test_covers_matches_leading_bits():
    answer = ClientSubnet.from_ip("198.18.0.0", 24)
    sibling = ClientSubnet.from_ip("198.18.0.0", 24)
    cousin = ClientSubnet.from_ip("198.18.1.0", 24)
    assert answer.covers(sibling, 24)
    assert not answer.covers(cousin, 24)
    assert answer.covers(cousin, 16)  # /16 scope spans both
    assert answer.covers(cousin, 0)   # scope 0 is global
    # A query less specific than the scope cannot be covered.
    wide = ClientSubnet.from_ip("198.18.0.0", 16)
    assert not answer.covers(wide, 24)


# -- differential: scope 0 must equal ECS-off --------------------------------
def test_scope_zero_cache_is_byte_identical_to_ecs_disabled():
    """A world whose authoritatives never echo ECS: resolving with ECS
    armed must leave cache contents and the metrics JSON byte-identical
    to a resolver with ECS disabled (the acceptance contract)."""
    from repro.core.worlds import build_hotset_world
    from repro.metrics import MetricsRegistry
    from repro.net.topology import Region
    from repro.resolver.policy import EcsPolicy, ResolverPolicy
    from repro.resolver.recursive import RecursiveResolver

    def run(ecs: bool):
        registry = MetricsRegistry()
        hotset = build_hotset_world(300, seed=7, names=4)
        hotset.world.network.attach_metrics(registry)
        policy = ResolverPolicy.child_centric()
        if ecs:
            policy = policy.with_(ecs=EcsPolicy())
        resolver = RecursiveResolver(
            endpoint=hotset.world.topology.endpoint_in_region(Region.EU, "res"),
            network=hotset.world.network,
            root_hints=hotset.world.hints,
            policy=policy,
        )
        subnet = ClientSubnet.from_ip("198.18.0.0", 24)
        results = []
        for step, qname in enumerate(hotset.qnames * 2):
            out = resolver.resolve(
                qname, RdataType.A, now=float(step),
                client_subnet=subnet if ecs else None,
            )
            results.append((str(qname), out.rcode, out.cache_hit, out.ecs_scope))
            assert out.ecs_scope in (None, 0)
        cache = resolver.cache
        dump = sorted(
            (str(key), entry.rrset, entry.expires_at)
            for key, entry in cache._entries.items()
        )
        assert cache.ecs_scoped_len() == 0
        return results, dump, registry.snapshot().to_json(include_host=False)

    plain_results, plain_dump, plain_json = run(ecs=False)
    ecs_results, ecs_dump, ecs_json = run(ecs=True)
    assert [r[:3] for r in ecs_results] == [r[:3] for r in plain_results]
    assert ecs_dump == plain_dump
    assert ecs_json == plain_json
