"""Tests for repro.dns.dnssec — the TTL-enclosure mechanics of §2."""

import pytest

from repro.dns.dnssec import (
    clamp_to_signed_ttl,
    covering_rrsig,
    make_rrsig,
    sign_zone,
)
from repro.dns.message import Message, Section
from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RRSIG, RdataType
from repro.dns.record import RRset
from repro.dns.zone import Zone


@pytest.fixture
def zone():
    z = Zone("example.org.", default_ttl=3600)
    z.add_soa("ns1.example.org.")
    z.add("example.org.", RdataType.NS, NS("ns1.example.org."), ttl=3600)
    z.add("ns1.example.org.", RdataType.A, A("192.0.2.53"), ttl=3600)
    z.add("www.example.org.", RdataType.A, A("192.0.2.80"), ttl=300)
    # A delegation with glue: must stay unsigned.
    z.add("sub.example.org.", RdataType.NS, NS("ns.sub.example.org."), ttl=1800)
    z.add("ns.sub.example.org.", RdataType.A, A("192.0.2.99"), ttl=1800)
    return z


class TestSigning:
    def test_sign_zone_counts(self, zone):
        signed = sign_zone(zone)
        assert signed > 0

    def test_adds_apex_dnskey(self, zone):
        sign_zone(zone)
        assert zone.get("example.org.", RdataType.DNSKEY) is not None

    def test_original_ttl_enclosed(self, zone):
        sign_zone(zone)
        sig_set = zone.get("www.example.org.", RdataType.RRSIG)
        assert sig_set is not None
        (rrsig,) = [r for r in sig_set.rdatas if r.type_covered == RdataType.A]
        assert rrsig.original_ttl == 300

    def test_delegation_ns_not_signed(self, zone):
        sign_zone(zone)
        assert zone.get("sub.example.org.", RdataType.RRSIG) is None

    def test_glue_not_signed(self, zone):
        sign_zone(zone)
        assert zone.get("ns.sub.example.org.", RdataType.RRSIG) is None

    def test_apex_ns_signed(self, zone):
        sign_zone(zone)
        sig_set = zone.get("example.org.", RdataType.RRSIG)
        assert any(r.type_covered == RdataType.NS for r in sig_set.rdatas)


class TestResponses:
    def test_answer_carries_covering_rrsig(self, zone):
        sign_zone(zone)
        response = zone.respond(Message.make_query("www.example.org.", RdataType.A))
        sigs = [r for r in response.answer if r.rdtype == RdataType.RRSIG]
        assert len(sigs) == 1
        assert sigs[0].rdata.type_covered == RdataType.A

    def test_referral_carries_no_rrsig(self, zone):
        sign_zone(zone)
        response = zone.respond(Message.make_query("x.sub.example.org.", RdataType.A))
        assert not any(
            r.rdtype == RdataType.RRSIG for _, r in response.all_records()
        )

    def test_unsigned_zone_unchanged(self, zone):
        response = zone.respond(Message.make_query("www.example.org.", RdataType.A))
        assert not any(r.rdtype == RdataType.RRSIG for r in response.answer)


class TestValidationHelpers:
    def test_covering_rrsig_found(self, zone):
        sign_zone(zone)
        response = zone.respond(Message.make_query("www.example.org.", RdataType.A))
        rrset = response.find_rrset(Section.ANSWER, Name("www.example.org."), RdataType.A)
        assert covering_rrsig(response.answer, rrset) is not None

    def test_covering_rrsig_type_specific(self):
        rrset = RRset(Name("x.example."), RdataType.A, 300, [A("192.0.2.1")])
        wrong = make_rrsig(
            RRset(Name("x.example."), RdataType.AAAA, 300, []), Name("example.")
        )
        record = next(
            iter(
                RRset(Name("x.example."), RdataType.RRSIG, 300, [wrong]).records()
            )
        )
        assert covering_rrsig([record], rrset) is None

    def test_clamp_reduces_inflated_ttl(self):
        rrset = RRset(Name("x."), RdataType.A, 999999, [A("192.0.2.1")])
        rrsig = make_rrsig(RRset(Name("x."), RdataType.A, 300, []), Name("."))
        assert clamp_to_signed_ttl(rrset, rrsig).ttl == 300

    def test_clamp_keeps_lower_ttl(self):
        rrset = RRset(Name("x."), RdataType.A, 100, [A("192.0.2.1")])
        rrsig = make_rrsig(RRset(Name("x."), RdataType.A, 300, []), Name("."))
        assert clamp_to_signed_ttl(rrset, rrsig).ttl == 100


class TestValidatingResolver:
    def test_validating_resolver_clamps_to_signed_ttl(self, mini_world):
        """A zone operator inflates the served TTL above the signed value;
        a validating resolver caches only the signed (child) TTL."""
        from repro.resolver.policy import ResolverPolicy
        from repro.resolver.recursive import RecursiveResolver
        from repro.net.topology import Region

        sign_zone(mini_world.child_zone)
        # Inflate the served A TTL without re-signing.
        mini_world.child_zone.set_ttl("www.example.tld.", RdataType.A, 7200)
        resolver = RecursiveResolver(
            endpoint=mini_world.topology.endpoint_in_region(Region.EU),
            network=mini_world.network,
            root_hints=mini_world.hints,
            policy=ResolverPolicy.validating(),
        )
        out = resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.answers[-1].ttl == 60  # the signed original, not 7200

    def test_plain_resolver_accepts_inflated_ttl(self, mini_world):
        from repro.resolver.recursive import RecursiveResolver
        from repro.net.topology import Region

        sign_zone(mini_world.child_zone)
        mini_world.child_zone.set_ttl("www.example.tld.", RdataType.A, 7200)
        resolver = RecursiveResolver(
            endpoint=mini_world.topology.endpoint_in_region(Region.EU),
            network=mini_world.network,
            root_hints=mini_world.hints,
        )
        out = resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.answers[-1].ttl == 7200
