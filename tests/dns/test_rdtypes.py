"""Tests for repro.dns.rdtypes."""

import pytest

from repro.dns.name import Name
from repro.dns.rdtypes import (
    AAAA,
    A,
    CNAME,
    DNSKEY,
    MX,
    NS,
    OPT,
    RRSIG,
    SOA,
    TXT,
    RdataType,
    rdata_class_for,
    read_rdata,
)
from repro.dns.wire import WireReader, WireWriter


def wire_round_trip(rdata):
    writer = WireWriter()
    rdata.to_wire(writer)
    blob = writer.getvalue()
    reader = WireReader(blob)
    return read_rdata(rdata.rdtype, reader, len(blob))


class TestRdataType:
    def test_values_match_iana(self):
        assert RdataType.A == 1
        assert RdataType.NS == 2
        assert RdataType.CNAME == 5
        assert RdataType.SOA == 6
        assert RdataType.MX == 15
        assert RdataType.TXT == 16
        assert RdataType.AAAA == 28
        assert RdataType.RRSIG == 46
        assert RdataType.DNSKEY == 48

    def test_from_text(self):
        assert RdataType.from_text("aaaa") == RdataType.AAAA

    def test_from_text_unknown(self):
        with pytest.raises(ValueError):
            RdataType.from_text("NOPE")

    def test_registry_covers_all(self):
        for rdtype in RdataType:
            assert rdata_class_for(rdtype).rdtype == rdtype


class TestA:
    def test_round_trips_text(self):
        assert A("192.0.2.1").address == "192.0.2.1"

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            A("999.1.1.1")

    def test_wire_round_trip(self):
        assert wire_round_trip(A("192.0.2.1")) == A("192.0.2.1")

    def test_to_text(self):
        assert A("192.0.2.1").to_text() == "192.0.2.1"

    def test_wrong_rdlength(self):
        from repro.dns.wire import WireError

        with pytest.raises(WireError):
            read_rdata(RdataType.A, WireReader(b"\x01\x02\x03"), 3)


class TestAAAA:
    def test_normalizes(self):
        assert AAAA("2001:0db8::0001").address == "2001:db8::1"

    def test_wire_round_trip(self):
        assert wire_round_trip(AAAA("2001:db8::60")) == AAAA("2001:db8::60")


class TestNameBearing:
    def test_ns_accepts_string(self):
        assert NS("ns1.example.com.").target == Name("ns1.example.com")

    def test_ns_round_trip(self):
        assert wire_round_trip(NS(Name("a.b.c"))) == NS(Name("a.b.c"))

    def test_cname_round_trip(self):
        assert wire_round_trip(CNAME(Name("target.example"))) == CNAME(
            Name("target.example")
        )

    def test_mx_round_trip(self):
        assert wire_round_trip(MX(10, Name("mail.example"))) == MX(
            10, Name("mail.example")
        )

    def test_mx_text(self):
        assert MX(10, Name("mail.example")).to_text() == "10 mail.example."


class TestSOA:
    def make(self):
        return SOA(
            Name("ns.example"), Name("admin.example"), 2019021301,
            7200, 3600, 1209600, 300,
        )

    def test_round_trip(self):
        assert wire_round_trip(self.make()) == self.make()

    def test_text_fields(self):
        text = self.make().to_text()
        assert "2019021301" in text
        assert text.startswith("ns.example.")

    def test_minimum_field(self):
        assert self.make().minimum == 300


class TestTXT:
    def test_single_string_coerced(self):
        assert TXT("hello").strings == ("hello",)

    def test_round_trip_multi(self):
        rdata = TXT(("one", "two"))
        assert wire_round_trip(rdata) == rdata

    def test_too_long_chunk_rejected(self):
        with pytest.raises(ValueError):
            TXT("x" * 256)

    def test_empty_string_ok(self):
        assert wire_round_trip(TXT("")) == TXT("")


class TestDNSKEY:
    def test_round_trip(self):
        rdata = DNSKEY(257, 3, 13, b"\x01\x02\x03\x04")
        assert wire_round_trip(rdata) == rdata

    def test_text_contains_flags(self):
        assert DNSKEY(256, 3, 8, b"k").to_text().startswith("256 3 8")

    def test_short_rdata_rejected(self):
        from repro.dns.wire import WireError

        with pytest.raises(WireError):
            read_rdata(RdataType.DNSKEY, WireReader(b"\x01\x00"), 2)


class TestRRSIG:
    def make(self):
        return RRSIG(
            type_covered=RdataType.NS,
            algorithm=13,
            labels=2,
            original_ttl=3600,
            expiration=1600000000,
            inception=1590000000,
            key_tag=12345,
            signer=Name("example.com"),
            signature=b"\xde\xad\xbe\xef",
        )

    def test_round_trip(self):
        assert wire_round_trip(self.make()) == self.make()

    def test_original_ttl_preserved(self):
        # DNSSEC encloses the child's TTL in the signature (§2).
        assert wire_round_trip(self.make()).original_ttl == 3600


class TestOPT:
    def test_round_trip(self):
        assert wire_round_trip(OPT(b"\x00\x01")) == OPT(b"\x00\x01")

    def test_empty(self):
        assert wire_round_trip(OPT()) == OPT(b"")
