"""Interning invariants for :class:`repro.dns.name.Name`.

The interned constructor is a pure optimisation: semantics (equality,
hashing, ordering, pickling) must be indistinguishable from the previous
build-a-fresh-object implementation.  These tests pin that contract, plus
the identity guarantees the fast paths rely on.
"""

import pickle
import string
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns import name as name_module
from repro.dns.name import Name, NameError_, root

labels = st.text(
    alphabet=string.ascii_lowercase + string.digits + "-",
    min_size=1,
    max_size=12,
)
label_tuples = st.lists(labels, min_size=0, max_size=6).map(tuple)


@pytest.fixture(autouse=True)
def _keep_root_canonical():
    """Tests here deliberately reset the intern tables; re-seed the module
    ``root`` singleton afterwards so later tests still see it as canonical."""
    yield
    name_module._INTERN.setdefault((), root)


# -- identity: the property the ``==`` and dict-probe fast paths rest on ----

# Identity tests use names unique to this module: a name first parsed by an
# *earlier* test can be left aliased in the text memo across an intern-table
# reset (the two tables clear independently), which would make these checks
# order-dependent.

def test_same_text_is_same_object():
    assert Name("host.interning.example") is Name("host.interning.example")


def test_equivalent_spellings_share_one_instance():
    canonical = Name("spell.interning.example")
    assert Name("spell.interning.example.") is canonical
    assert Name("SPELL.Interning.EXAMPLE") is canonical
    assert Name(("spell", "interning", "example")) is canonical
    assert Name.from_labels(("spell", "interning", "example")) is canonical


def test_root_is_interned():
    # The module-level ``root`` singleton may have lost canonical status to
    # an intern-table reset earlier in the session; identity is only
    # guaranteed among *current* constructions, equality always.
    name_module._TEXT_INTERN.pop("", None)  # drop any stale alias
    name_module._TEXT_INTERN.pop(".", None)
    canonical = Name.from_labels(())
    assert Name("") is canonical
    assert Name(".") is canonical
    assert canonical == root and canonical.is_root


def test_derived_names_are_interned():
    parent = Name("www.derived.interning.example").parent()
    assert parent is Name("derived.interning.example")
    assert Name("a.derived.interning.example").common_ancestor(
        Name("b.derived.interning.example")
    ) is Name("derived.interning.example")
    prefix, suffix = Name("www.derived.interning.example").split(3)
    assert prefix is Name.from_labels(("www",))
    assert suffix is Name("derived.interning.example")


def test_name_constructor_passes_through_name():
    name = Name("passthrough.interning.example")
    assert Name(name) is name


def test_copy_and_deepcopy_return_self():
    import copy

    name = Name("copy.interning.example")
    assert copy.copy(name) is name
    assert copy.deepcopy(name) is name


# -- semantics unchanged: equality, hashing, ordering ------------------------

def test_eq_hash_ordering_match_label_semantics():
    a = Name("a.example")
    b = Name("b.example")
    assert a == a and a != b
    assert a == "a.example." and a == "A.Example"
    assert hash(a) == hash(Name("A.EXAMPLE."))
    # RFC 4034 §6.1 canonical ordering: right-to-left label comparison.
    assert root < a < b
    assert Name("z.a.example") < Name("b.example")


def test_eq_survives_intern_table_reset():
    """An instance that outlives a table reset stays equal to the new
    canonical instance for its labels — identity is lost, semantics are not."""
    survivor = Name("long-lived.example")
    name_module._INTERN.clear()
    name_module._TEXT_INTERN.clear()
    fresh = Name("long-lived.example")
    assert survivor is not fresh
    assert survivor == fresh
    assert hash(survivor) == hash(fresh)
    assert not survivor < fresh and not fresh < survivor
    assert len({survivor, fresh}) == 1


def test_intern_tables_stay_bounded():
    for index in range(name_module._INTERN_MAX + 10):
        Name(f"bulk-{index}.example")
    assert len(name_module._INTERN) <= name_module._INTERN_MAX
    assert len(name_module._TEXT_INTERN) <= name_module._INTERN_MAX


def test_validation_still_enforced():
    with pytest.raises(NameError_):
        Name("bad..example")
    with pytest.raises(NameError_):
        Name("x" * 64 + ".example")
    with pytest.raises(NameError_):
        Name(".".join("y" * 63 for _ in range(5)))  # > 255 wire octets
    with pytest.raises(AttributeError):
        Name("example.com")._labels = ("mutated",)


# -- pickling: across both the in-process and cross-process boundary ---------

def test_pickle_round_trip_restores_canonical_instance():
    name = Name("shard.interning.example")
    clone = pickle.loads(pickle.dumps(name))
    assert clone is name  # resolved through the intern table on load


def _worker_echo(name: Name) -> tuple[Name, str, int]:
    """Runs in a separate process: the intern table there starts empty."""
    return name, str(name), len(name)


def test_pickle_round_trip_across_process_pool():
    """Names survive the runner's shard boundary: a worker process pickles
    them back and the parent resolves them to its canonical instances."""
    names = [
        Name("probe-7.pool.interning.example"),
        Name("pool.interning.example"),
        Name.from_labels(()),
    ]
    with ProcessPoolExecutor(max_workers=1) as pool:
        for original in names:
            echoed, text, depth = pool.submit(_worker_echo, original).result()
            assert echoed is original
            assert text == str(original)
            assert depth == len(original)


# -- property: the trusted constructor agrees with the parsing one -----------

@given(label_tuples)
def test_from_labels_equals_parsed_name(parts):
    text = ".".join(parts) + "." if parts else "."
    name_module._TEXT_INTERN.pop(text, None)  # no stale alias from earlier tests
    try:
        parsed = Name(text)
    except NameError_:
        return  # over the 255-octet wire limit: from_labels is out of contract
    built = Name.from_labels(parts)
    assert built is parsed
    assert built == parsed
    assert hash(built) == hash(parsed)
    assert built.labels == parts
    assert str(built) == text


@given(label_tuples, label_tuples)
def test_interning_preserves_ordering(parts_a, parts_b):
    a, b = Name.from_labels(parts_a), Name.from_labels(parts_b)
    # Ordering must match the canonical right-to-left label comparison,
    # independently of interning.
    expected = tuple(reversed(parts_a)) < tuple(reversed(parts_b))
    assert (a < b) == expected
    assert (a == b) == (parts_a == parts_b)
