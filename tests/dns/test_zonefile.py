"""Tests for repro.dns.zonefile."""

import pytest

from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.dns.zonefile import ZoneFileError, parse_zone

EXAMPLE = """\
$ORIGIN example.com.
$TTL 3600
@        IN SOA  ns1 hostmaster 2019021301 7200 3600 1209600 300
@        IN NS   ns1
@        IN NS   ns.provider.net.
ns1 7200 IN A    192.0.2.53
www  300 IN A    192.0.2.80
         IN AAAA 2001:db8::80            ; same owner as previous line
mail     IN MX   10 mx.provider.net.
txt      IN TXT  "hello" "world"
sub  1d  IN NS   ns1.sub
ns1.sub  IN A    192.0.2.99
"""


class TestParsing:
    @pytest.fixture
    def zone(self):
        return parse_zone(EXAMPLE)

    def test_origin_from_directive(self, zone):
        assert zone.origin == Name("example.com.")

    def test_soa_parsed(self, zone):
        soa = zone.soa
        assert soa is not None
        assert soa.rdatas[0].serial == 2019021301
        assert soa.rdatas[0].minimum == 300

    def test_relative_names_qualified(self, zone):
        assert zone.get("ns1.example.com.", RdataType.A) is not None

    def test_absolute_names_kept(self, zone):
        ns = zone.get("example.com.", RdataType.NS)
        targets = {str(rdata.target) for rdata in ns.rdatas}
        assert "ns.provider.net." in targets

    def test_explicit_ttl(self, zone):
        assert zone.get("ns1.example.com.", RdataType.A).ttl == 7200
        assert zone.get("www.example.com.", RdataType.A).ttl == 300

    def test_default_ttl_from_directive(self, zone):
        assert zone.get("mail.example.com.", RdataType.MX).ttl == 3600

    def test_duration_ttl(self, zone):
        assert zone.get("sub.example.com.", RdataType.NS).ttl == 86400

    def test_owner_continuation(self, zone):
        assert zone.get("www.example.com.", RdataType.AAAA) is not None

    def test_txt_chunks(self, zone):
        txt = zone.get("txt.example.com.", RdataType.TXT)
        assert txt.rdatas[0].strings == ("hello", "world")

    def test_delegation_recognized(self, zone):
        assert zone.is_delegated(Name("x.sub.example.com.")) == Name("sub.example.com.")

    def test_parsed_zone_answers_queries(self, zone):
        from repro.dns.message import Message, Rcode

        response = zone.respond(Message.make_query("www.example.com.", RdataType.A))
        assert response.rcode == Rcode.NOERROR and response.flags.aa

    def test_origin_argument(self):
        zone = parse_zone("@ IN A 192.0.2.1", origin="test.example.")
        assert zone.get("test.example.", RdataType.A) is not None

    def test_round_trip_through_to_text(self, zone):
        reparsed = parse_zone(zone.to_text().replace("; zone example.com.", ""),
                              origin="example.com.")
        assert {r.key() for r in reparsed.rrsets()} == {r.key() for r in zone.rrsets()}


class TestErrors:
    def test_no_origin(self):
        with pytest.raises(ZoneFileError):
            parse_zone("www IN A 192.0.2.1")

    def test_empty_file(self):
        with pytest.raises(ZoneFileError):
            parse_zone("; just a comment\n", origin="x.")

    def test_unknown_type(self):
        with pytest.raises(ZoneFileError) as exc:
            parse_zone("www IN WKS 192.0.2.1", origin="x.")
        assert exc.value.line_number == 1

    def test_bad_rdata(self):
        with pytest.raises(ZoneFileError):
            parse_zone("www IN A not-an-address", origin="x.")

    def test_continuation_without_owner(self):
        with pytest.raises(ZoneFileError):
            parse_zone("  IN A 192.0.2.1", origin="x.")

    def test_unsupported_directive(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$INCLUDE other.zone", origin="x.")

    def test_bad_ttl_directive(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$TTL soon\nwww IN A 192.0.2.1", origin="x.")

    def test_out_of_zone_record(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN a.example.\nwww.other.example. IN A 192.0.2.1")
