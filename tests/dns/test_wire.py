"""Tests for repro.dns.wire (buffers, compression, malformed input)."""

import pytest

from repro.dns.name import Name
from repro.dns.wire import WireError, WireReader, WireWriter


class TestIntegers:
    def test_u8_round_trip(self):
        writer = WireWriter()
        writer.write_u8(0xAB)
        assert WireReader(writer.getvalue()).read_u8() == 0xAB

    def test_u16_round_trip(self):
        writer = WireWriter()
        writer.write_u16(0xBEEF)
        assert WireReader(writer.getvalue()).read_u16() == 0xBEEF

    def test_u32_round_trip(self):
        writer = WireWriter()
        writer.write_u32(0xDEADBEEF)
        assert WireReader(writer.getvalue()).read_u32() == 0xDEADBEEF

    def test_network_byte_order(self):
        writer = WireWriter()
        writer.write_u16(0x0102)
        assert writer.getvalue() == b"\x01\x02"

    def test_patch_u16(self):
        writer = WireWriter()
        writer.write_u16(0)
        writer.patch_u16(0, 42)
        assert WireReader(writer.getvalue()).read_u16() == 42

    def test_short_read_raises(self):
        with pytest.raises(WireError):
            WireReader(b"\x01").read_u16()


class TestNames:
    def round_trip(self, *names, compress=True):
        writer = WireWriter()
        for name in names:
            writer.write_name(Name(name), compress=compress)
        reader = WireReader(writer.getvalue())
        return [reader.read_name() for _ in names], writer.getvalue()

    def test_simple_round_trip(self):
        decoded, _ = self.round_trip("www.example.com")
        assert decoded == [Name("www.example.com")]

    def test_root_is_single_null(self):
        writer = WireWriter()
        writer.write_name(Name(""))
        assert writer.getvalue() == b"\x00"

    def test_compression_shrinks_repeats(self):
        _, compressed = self.round_trip("www.example.com", "example.com")
        _, uncompressed = self.round_trip(
            "www.example.com", "example.com", compress=False
        )
        assert len(compressed) < len(uncompressed)

    def test_compressed_names_decode(self):
        decoded, _ = self.round_trip(
            "www.example.com", "example.com", "mail.example.com"
        )
        assert decoded == [
            Name("www.example.com"), Name("example.com"), Name("mail.example.com")
        ]

    def test_partial_suffix_compression(self):
        decoded, _ = self.round_trip("a.b.c.d", "x.c.d")
        assert decoded == [Name("a.b.c.d"), Name("x.c.d")]

    def test_cursor_past_pointer(self):
        writer = WireWriter()
        writer.write_name(Name("example.com"))
        writer.write_name(Name("example.com"))
        writer.write_u16(0x1234)
        reader = WireReader(writer.getvalue())
        reader.read_name()
        reader.read_name()
        assert reader.read_u16() == 0x1234

    def test_forward_pointer_rejected(self):
        # A pointer at offset 0 pointing to offset 10 (forwards).
        blob = b"\xc0\x0a" + b"\x00" * 12
        with pytest.raises(WireError):
            WireReader(blob).read_name()

    def test_self_pointer_rejected(self):
        blob = b"\xc0\x00"
        with pytest.raises(WireError):
            WireReader(blob).read_name()

    def test_truncated_pointer_rejected(self):
        with pytest.raises(WireError):
            WireReader(b"\xc0").read_name()

    def test_truncated_label_rejected(self):
        with pytest.raises(WireError):
            WireReader(b"\x05ab").read_name()

    def test_unterminated_name_rejected(self):
        with pytest.raises(WireError):
            WireReader(b"\x01a").read_name()

    def test_reserved_label_type_rejected(self):
        with pytest.raises(WireError):
            WireReader(b"\x40a").read_name()

    def test_label_pointer_loop_rejected(self):
        # Label "a" followed by a pointer back to that same label.  Each
        # hop moves the cursor forward through the label and then
        # "backwards" to it again, so a backwards-only check loops
        # forever; successive pointer targets must strictly decrease.
        blob = b"\x01a\xc0\x00"
        with pytest.raises(WireError):
            WireReader(blob).read_name()

    def test_mutual_pointer_loop_rejected(self):
        # Reading from the second label walks b -> pointer -> a -> b ->
        # pointer -> ... — every hop backwards relative to the cursor,
        # yet circular.
        blob = b"\x01a\x01b\xc0\x00"
        with pytest.raises(WireError):
            WireReader(blob, 2).read_name()

    def test_legitimate_pointer_chain_still_decodes(self):
        # A chain of names each ending in a pointer to an earlier one —
        # exactly what WireWriter emits — must keep decoding.
        writer = WireWriter()
        writer.write_name(Name("example.com"))
        offset_b = len(writer)
        writer.write_name(Name("www.example.com"))
        offset_c = len(writer)
        writer.write_name(Name("deep.www.example.com"))
        blob = writer.getvalue()
        assert WireReader(blob, offset_b).read_name() == Name("www.example.com")
        assert WireReader(blob, offset_c).read_name() == Name("deep.www.example.com")

    def test_name_over_255_octets_rejected(self):
        # Four 63-octet labels = 256 octets of label data: over the RFC
        # 1035 §2.3.4 cap, and rejected while reading (the cap is what
        # bounds decompression work on hostile input).
        blob = (b"\x3f" + b"a" * 63) * 4 + b"\x00"
        with pytest.raises(WireError):
            WireReader(blob).read_name()


class TestReaderCursor:
    def test_seek_and_offset(self):
        reader = WireReader(b"\x01\x02\x03")
        reader.seek(2)
        assert reader.offset == 2
        assert reader.read_u8() == 3

    def test_seek_out_of_range(self):
        with pytest.raises(WireError):
            WireReader(b"ab").seek(5)

    def test_remaining(self):
        reader = WireReader(b"abcd", offset=1)
        assert reader.remaining == 3
