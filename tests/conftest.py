"""Shared fixtures: a small simulated DNS hierarchy for resolver tests.

The hierarchy mirrors the paper's recurring configuration:

- root zone (2-day delegation TTLs) delegating ``tld.``;
- ``tld.`` (parent) delegating ``example.tld.`` with a *different* TTL than
  the child uses, plus in-bailiwick glue;
- ``example.tld.`` (child) with its own NS/A TTLs and content records.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.dns.name import Name
from repro.dns.rdtypes import AAAA, A, NS, RdataType
from repro.dns.zone import Zone
from repro.net.topology import Region, Topology
from repro.net.transport import LossModel, Network
from repro.server.authoritative import AuthoritativeServer


@dataclass
class MiniWorld:
    topology: Topology
    network: Network
    hints: dict[Name, str]
    root_zone: Zone
    tld_zone: Zone
    child_zone: Zone
    root_server: AuthoritativeServer
    tld_server: AuthoritativeServer
    child_server: AuthoritativeServer

    #: The deliberately different TTLs at each level.
    PARENT_NS_TTL = 172800
    TLD_DELEG_NS_TTL = 7200
    TLD_GLUE_A_TTL = 7200
    CHILD_NS_TTL = 300
    CHILD_A_TTL = 120

    def make_resolver(self, policy=None, root_zone_copy=False):
        from repro.resolver.recursive import RecursiveResolver

        endpoint = self.topology.endpoint_in_region(Region.EU)
        return RecursiveResolver(
            endpoint=endpoint,
            network=self.network,
            root_hints=self.hints,
            policy=policy,
            root_zone=self.root_zone if root_zone_copy or policy is None else self.root_zone,
        )


def build_mini_world(seed: int = 0, loss_rate: float = 0.0) -> MiniWorld:
    topology = Topology(seed=seed)
    network = Network(loss=LossModel(rate=loss_rate, seed=seed), seed=seed)

    root_zone = Zone("", default_ttl=172800)
    root_zone.add_soa("a.rootsrv.net.")
    root_zone.add("", RdataType.NS, NS("a.rootsrv.net."), ttl=518400)

    tld_zone = Zone("tld.", default_ttl=7200)
    tld_zone.add_soa("a.nic.tld.")
    tld_zone.add("tld.", RdataType.NS, NS("a.nic.tld."), ttl=7200)

    child_zone = Zone("example.tld.", default_ttl=MiniWorld.CHILD_NS_TTL)
    child_zone.add_soa("ns1.example.tld.")
    child_zone.add(
        "example.tld.", RdataType.NS, NS("ns1.example.tld."),
        ttl=MiniWorld.CHILD_NS_TTL,
    )

    root_server = AuthoritativeServer(
        topology.endpoint_in_region(Region.NA, "a.rootsrv.net"), [root_zone]
    )
    tld_server = AuthoritativeServer(
        topology.endpoint_in_region(Region.SA, "a.nic.tld"), [tld_zone]
    )
    child_server = AuthoritativeServer(
        topology.endpoint_in_region(Region.EU, "ns1.example.tld"), [child_zone]
    )
    for server in (root_server, tld_server, child_server):
        network.register(server)

    root_zone.add("a.rootsrv.net.", RdataType.A, A(root_server.endpoint.address),
                  ttl=518400)
    root_zone.add("tld.", RdataType.NS, NS("a.nic.tld."), ttl=MiniWorld.PARENT_NS_TTL)
    root_zone.add("a.nic.tld.", RdataType.A, A(tld_server.endpoint.address),
                  ttl=MiniWorld.PARENT_NS_TTL)

    tld_zone.add("a.nic.tld.", RdataType.A, A(tld_server.endpoint.address), ttl=43200)
    tld_zone.add("example.tld.", RdataType.NS, NS("ns1.example.tld."),
                 ttl=MiniWorld.TLD_DELEG_NS_TTL)
    tld_zone.add("ns1.example.tld.", RdataType.A, A(child_server.endpoint.address),
                 ttl=MiniWorld.TLD_GLUE_A_TTL)

    child_zone.add("ns1.example.tld.", RdataType.A, A(child_server.endpoint.address),
                   ttl=MiniWorld.CHILD_A_TTL)
    child_zone.add("www.example.tld.", RdataType.A, A("203.0.113.80"), ttl=60)
    child_zone.add("www.example.tld.", RdataType.AAAA, AAAA("2001:db8::80"), ttl=60)

    return MiniWorld(
        topology=topology,
        network=network,
        hints={Name("a.rootsrv.net."): root_server.endpoint.address},
        root_zone=root_zone,
        tld_zone=tld_zone,
        child_zone=child_zone,
        root_server=root_server,
        tld_server=tld_server,
        child_server=child_server,
    )


@pytest.fixture
def mini_world() -> MiniWorld:
    return build_mini_world()
