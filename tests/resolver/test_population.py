"""Tests for repro.resolver.population."""

from repro.resolver.population import (
    PolicyShare,
    PopulationConfig,
    ResolverPopulation,
    default_mix,
)
from repro.resolver.policy import ResolverPolicy


def build(mini_world, count=60, mix=None, seed=0):
    config = PopulationConfig(count=count, seed=seed)
    if mix is not None:
        config.mix = mix
    return ResolverPopulation(
        config=config,
        topology=mini_world.topology,
        network=mini_world.network,
        root_hints=mini_world.hints,
        root_zone=mini_world.root_zone,
    )


class TestDefaultMix:
    def test_weights_sum_to_one(self):
        assert abs(sum(share.weight for share in default_mix()) - 1.0) < 1e-9

    def test_majority_child_centric(self):
        child_like = sum(
            share.weight
            for share in default_mix()
            if share.label in ("child", "capping", "unlinked")
        )
        assert child_like > 0.8  # §3.2: ~90 % child-centric answers


class TestBuild:
    def test_count(self, mini_world):
        population = build(mini_world, count=40)
        assert len(population) == 40

    def test_deterministic(self, mini_world):
        from tests.conftest import build_mini_world

        a = build(mini_world, seed=5)
        b = build(build_mini_world(), seed=5)
        assert [a.label_of[r.address] for r in a.resolvers] == [
            b.label_of[r.address] for r in b.resolvers
        ]

    def test_public_backends_shared(self, mini_world):
        mix = [PolicyShare("parent", ResolverPolicy.parent_centric(), 1.0, public=True)]
        config = PopulationConfig(count=50, public_backends=4)
        config.mix = mix
        population = ResolverPopulation(
            config,
            mini_world.topology,
            mini_world.network,
            mini_world.hints,
        )
        assert len(population.unique_resolvers()) == 4

    def test_private_resolvers_unique(self, mini_world):
        mix = [PolicyShare("child", ResolverPolicy.child_centric(), 1.0)]
        config = PopulationConfig(count=30)
        config.mix = mix
        population = ResolverPopulation(
            config, mini_world.topology, mini_world.network, mini_world.hints
        )
        assert len(population.unique_resolvers()) == 30

    def test_labels_accounting(self, mini_world):
        population = build(mini_world, count=80)
        labels = population.labels()
        assert sum(labels.values()) == len(population.unique_resolvers())

    def test_resolvers_actually_resolve(self, mini_world):
        from repro.dns.message import Rcode
        from repro.dns.rdtypes import RdataType

        population = build(mini_world, count=10)
        for resolver in population.unique_resolvers():
            out = resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
            assert out.rcode == Rcode.NOERROR
