"""Resolver-level invariants, property-tested against the mini world.

Whatever the policy and timing, certain things must always hold:

- an answered TTL never exceeds the largest TTL configured anywhere for
  that record (paper: the effective TTL is a *choice among* configured
  values, never an invention);
- repeated queries never see the remaining TTL increase without an
  intervening refetch;
- resolution always terminates with a definite rcode.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import Rcode
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver

from tests.conftest import MiniWorld, build_mini_world

POLICIES = [
    ResolverPolicy.child_centric(),
    ResolverPolicy.parent_centric(),
    ResolverPolicy.capping(21599),
    ResolverPolicy.sticky_resolver(),
    ResolverPolicy.unlinked(),
    ResolverPolicy.validating(),
    ResolverPolicy.prefetching(),
]

QUERIES = [
    ("example.tld.", RdataType.NS),
    ("ns1.example.tld.", RdataType.A),
    ("www.example.tld.", RdataType.A),
    ("tld.", RdataType.NS),
]

#: Any TTL the mini world configures anywhere (conftest constants).
MAX_CONFIGURED_TTL = 518400


@settings(max_examples=40, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    query=st.sampled_from(QUERIES),
    times=st.lists(
        st.floats(min_value=0, max_value=200000), min_size=1, max_size=6
    ),
)
def test_answered_ttl_never_invented(policy, query, times):
    world = build_mini_world()
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU),
        network=world.network,
        root_hints=world.hints,
        policy=policy,
        root_zone=world.root_zone,
    )
    qname, qtype = query
    for now in sorted(times):
        result = resolver.resolve(qname, qtype, now=now)
        assert result.rcode in (Rcode.NOERROR, Rcode.SERVFAIL)
        for rrset in result.answers:
            assert 0 <= rrset.ttl <= MAX_CONFIGURED_TTL
            if policy.ttl_cap is not None:
                assert rrset.ttl <= policy.ttl_cap


@settings(max_examples=30, deadline=None)
@given(
    policy=st.sampled_from(POLICIES[:5]),
    gaps=st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=6),
)
def test_cached_ttl_monotone_between_fetches(policy, gaps):
    """Between two cache hits with no refetch, remaining TTL must not grow."""
    world = build_mini_world()
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU),
        network=world.network,
        root_hints=world.hints,
        policy=policy,
    )
    now = 0.0
    previous_ttl = None
    resolver.resolve("www.example.tld.", RdataType.A, now=now)
    for gap in gaps:
        now += gap
        result = resolver.resolve("www.example.tld.", RdataType.A, now=now)
        if result.rcode != Rcode.NOERROR or not result.answers:
            break
        ttl = result.answers[-1].ttl
        if result.cache_hit and previous_ttl is not None:
            assert ttl <= previous_ttl
        previous_ttl = ttl if result.cache_hit else None


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_resolution_terminates_under_loss(seed):
    world = build_mini_world(loss_rate=0.5)
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU),
        network=world.network,
        root_hints=world.hints,
    )
    result = resolver.resolve("www.example.tld.", RdataType.A, now=float(seed))
    assert result.rcode in (Rcode.NOERROR, Rcode.SERVFAIL)
    assert result.elapsed < 120.0  # bounded by retry/timeout budgets
