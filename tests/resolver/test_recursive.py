"""Tests for the iterative resolution engine.

These exercise the behaviours the paper measures: centricity (§3),
bailiwick-linked expiry (§4.2/4.3), stickiness and parent-centric address
holds (§4.4), serve-stale, RFC 7706, TTL capping, and failure handling.
"""

import pytest

from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import A, CNAME, RdataType
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver

from tests.conftest import MiniWorld, build_mini_world


def resolver_for(world, policy=None, root_zone=None):
    from repro.net.topology import Region

    return RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU),
        network=world.network,
        root_hints=world.hints,
        policy=policy,
        root_zone=root_zone,
    )


class TestBasicResolution:
    def test_full_walk(self, mini_world):
        r = resolver_for(mini_world)
        out = r.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert str(out.answers[-1].rdatas[0]) == "203.0.113.80"
        assert not out.cache_hit
        assert len(out.servers_contacted) >= 3  # root, tld, child

    def test_latency_accumulates(self, mini_world):
        r = resolver_for(mini_world)
        out = r.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.elapsed > 0.05  # three exchanges across continents

    def test_cache_hit_is_free_and_aged(self, mini_world):
        r = resolver_for(mini_world)
        r.resolve("www.example.tld.", RdataType.A, now=0.0)
        out = r.resolve("www.example.tld.", RdataType.A, now=10.0)
        assert out.cache_hit
        assert out.elapsed == 0.0
        assert out.answers[-1].ttl <= 60 - 9

    def test_answer_expires_and_refetches(self, mini_world):
        r = resolver_for(mini_world)
        r.resolve("www.example.tld.", RdataType.A, now=0.0)
        out = r.resolve("www.example.tld.", RdataType.A, now=120.0)
        assert not out.cache_hit
        # Infrastructure still cached: only the child is re-queried.
        assert len(out.servers_contacted) == 1

    def test_aaaa(self, mini_world):
        r = resolver_for(mini_world)
        out = r.resolve("www.example.tld.", RdataType.AAAA, now=0.0)
        assert str(out.answers[-1].rdatas[0]) == "2001:db8::80"

    def test_nxdomain_and_negative_cache(self, mini_world):
        r = resolver_for(mini_world)
        out = r.resolve("missing.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NXDOMAIN
        cached = r.resolve("missing.example.tld.", RdataType.A, now=1.0)
        assert cached.rcode == Rcode.NXDOMAIN and cached.cache_hit

    def test_nodata_negative_cached(self, mini_world):
        mini_world.child_zone.add("text.example.tld.", RdataType.A, A("203.0.113.9"))
        r = resolver_for(mini_world)
        out = r.resolve("text.example.tld.", RdataType.AAAA, now=0.0)
        assert out.rcode == Rcode.NOERROR and not out.answers
        again = r.resolve("text.example.tld.", RdataType.AAAA, now=1.0)
        assert again.cache_hit

    def test_queries_counted(self, mini_world):
        r = resolver_for(mini_world)
        r.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert r.queries_sent >= 3
        assert r.client_queries == 1

    def test_needs_root_hints(self, mini_world):
        with pytest.raises(ValueError):
            RecursiveResolver(
                endpoint=mini_world.topology.endpoints[0],
                network=mini_world.network,
                root_hints={},
            )


class TestCnames:
    def test_in_zone_chain(self, mini_world):
        mini_world.child_zone.add(
            "alias.example.tld.", RdataType.CNAME, CNAME("www.example.tld."), ttl=600
        )
        r = resolver_for(mini_world)
        out = r.resolve("alias.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert out.answers[0].rdtype == RdataType.CNAME
        assert str(out.answers[-1].rdatas[0]) == "203.0.113.80"

    def test_cached_chain(self, mini_world):
        mini_world.child_zone.add(
            "alias.example.tld.", RdataType.CNAME, CNAME("www.example.tld."), ttl=600
        )
        r = resolver_for(mini_world)
        r.resolve("alias.example.tld.", RdataType.A, now=0.0)
        out = r.resolve("alias.example.tld.", RdataType.A, now=5.0)
        assert out.cache_hit and len(out.answers) == 2

    def test_cross_zone_chain(self, mini_world):
        mini_world.child_zone.add(
            "ext.example.tld.", RdataType.CNAME, CNAME("www.other.tld."), ttl=600
        )
        other = mini_world.tld_zone
        # Host the target directly in the TLD zone for simplicity.
        other.add("www.other.tld.", RdataType.A, A("198.51.100.7"), ttl=300)
        r = resolver_for(mini_world)
        out = r.resolve("ext.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert str(out.answers[-1].rdatas[0]) == "198.51.100.7"

    def test_cname_query_not_chased(self, mini_world):
        mini_world.child_zone.add(
            "alias.example.tld.", RdataType.CNAME, CNAME("www.example.tld."), ttl=600
        )
        r = resolver_for(mini_world)
        out = r.resolve("alias.example.tld.", RdataType.CNAME, now=0.0)
        assert len(out.answers) == 1
        assert out.answers[0].rdtype == RdataType.CNAME


class TestCentricity:
    def test_child_centric_ns_ttl(self, mini_world):
        r = resolver_for(mini_world, ResolverPolicy.child_centric())
        out = r.resolve("example.tld.", RdataType.NS, now=0.0)
        assert out.answers[-1].ttl == MiniWorld.CHILD_NS_TTL

    def test_parent_centric_ns_ttl(self, mini_world):
        r = resolver_for(mini_world, ResolverPolicy.parent_centric())
        out = r.resolve("example.tld.", RdataType.NS, now=0.0)
        assert out.answers[-1].ttl == MiniWorld.TLD_DELEG_NS_TTL

    def test_child_centric_address_ttl(self, mini_world):
        r = resolver_for(mini_world, ResolverPolicy.child_centric())
        out = r.resolve("ns1.example.tld.", RdataType.A, now=0.0)
        assert out.answers[-1].ttl == MiniWorld.CHILD_A_TTL

    def test_parent_centric_address_from_glue(self, mini_world):
        r = resolver_for(mini_world, ResolverPolicy.parent_centric())
        r.resolve("www.example.tld.", RdataType.A, now=0.0)  # warm the glue
        out = r.resolve("ns1.example.tld.", RdataType.A, now=10.0)
        assert out.cache_hit
        assert out.answers[-1].ttl > MiniWorld.CHILD_A_TTL

    def test_parent_centric_never_asks_child_for_ns(self, mini_world):
        r = resolver_for(mini_world, ResolverPolicy.parent_centric())
        r.resolve("example.tld.", RdataType.NS, now=0.0)
        log = mini_world.child_server.query_log
        assert not any(e.qtype == RdataType.NS for e in log)

    def test_capping_policy(self, mini_world):
        # Cap below the child NS TTL: observed TTL equals the cap.
        r = resolver_for(mini_world, ResolverPolicy.capping(100))
        out = r.resolve("example.tld.", RdataType.NS, now=0.0)
        assert out.answers[-1].ttl == 100


class TestRfc7706:
    def test_no_root_queries(self, mini_world):
        r = resolver_for(
            mini_world, ResolverPolicy.local_root(), root_zone=mini_world.root_zone
        )
        out = r.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert len(mini_world.root_server.query_log) == 0

    def test_tld_ns_answered_locally_with_parent_ttl(self, mini_world):
        r = resolver_for(
            mini_world, ResolverPolicy.local_root(), root_zone=mini_world.root_zone
        )
        out = r.resolve("tld.", RdataType.NS, now=0.0)
        assert out.answers[-1].ttl == MiniWorld.PARENT_NS_TTL
        assert len(mini_world.root_server.query_log) == 0


class TestFailures:
    def test_all_servers_down_servfail(self):
        world = build_mini_world()
        world.network.loss.take_down(world.child_server.endpoint.address)
        r = resolver_for(world)
        out = r.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.SERVFAIL
        assert out.elapsed > 0  # burned timeouts

    def test_serve_stale(self):
        world = build_mini_world()
        policy = ResolverPolicy.child_centric().with_(serve_stale=True)
        r = resolver_for(world, policy)
        r.resolve("www.example.tld.", RdataType.A, now=0.0)
        world.network.loss.take_down(world.child_server.endpoint.address)
        # Well past every TTL: the answer (and infrastructure) is stale.
        out = r.resolve("www.example.tld.", RdataType.A, now=90000.0)
        assert out.rcode == Rcode.NOERROR
        assert out.served_stale
        assert str(out.answers[-1].rdatas[0]) == "203.0.113.80"

    def test_no_stale_without_policy(self):
        world = build_mini_world()
        r = resolver_for(world)
        r.resolve("www.example.tld.", RdataType.A, now=0.0)
        world.network.loss.take_down(world.child_server.endpoint.address)
        out = r.resolve("www.example.tld.", RdataType.A, now=90000.0)
        assert out.rcode == Rcode.SERVFAIL

    def test_loss_recovery_with_retries(self):
        world = build_mini_world(loss_rate=0.2)
        r = resolver_for(world)
        successes = sum(
            r.resolve(f"www.example.tld.", RdataType.A, now=float(i * 200)).rcode
            == Rcode.NOERROR
            for i in range(20)
        )
        assert successes >= 18


class TestStickiness:
    def test_sticky_keeps_expired_infrastructure(self, mini_world):
        r = resolver_for(mini_world, ResolverPolicy.sticky_resolver())
        r.resolve("www.example.tld.", RdataType.A, now=0.0)
        queries_before = len(mini_world.tld_server.query_log)
        # Far past the TLD delegation TTL: a sticky resolver still must not
        # walk back up to the TLD.
        out = r.resolve("www.example.tld.", RdataType.A, now=50000.0)
        assert out.rcode == Rcode.NOERROR
        assert len(mini_world.tld_server.query_log) == queries_before
