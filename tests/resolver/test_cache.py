"""Tests for repro.resolver.cache: expiry, credibility, links, pinning."""

import pytest

from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RdataClass, RdataType, SOA
from repro.dns.record import RRset
from repro.resolver.cache import Cache, Credibility


def a_rrset(name="srv.example.com", ttl=300, address="192.0.2.1"):
    return RRset(Name(name), RdataType.A, ttl, [A(address)])


def ns_rrset(name="example.com", ttl=3600, target="srv.example.com"):
    return RRset(Name(name), RdataType.NS, ttl, [NS(Name(target))])


def soa_rrset(name="example.com", ttl=3600, minimum=900):
    rdata = SOA(Name(f"ns.{name}"), Name("h.e"), 1, 7200, 3600, 86400, minimum)
    return RRset(Name(name), RdataType.SOA, ttl, [rdata])


class TestBasicLifecycle:
    def test_get_returns_inserted(self):
        cache = Cache()
        cache.put(a_rrset(), Credibility.AUTH_ANSWER, now=0.0)
        entry = cache.get(Name("srv.example.com"), RdataType.A, now=10.0)
        assert entry is not None

    def test_expiry(self):
        cache = Cache()
        cache.put(a_rrset(ttl=300), Credibility.AUTH_ANSWER, now=0.0)
        assert cache.get(Name("srv.example.com"), RdataType.A, now=299.9) is not None
        assert cache.get(Name("srv.example.com"), RdataType.A, now=300.0) is None

    def test_remaining_ttl_decreases(self):
        cache = Cache()
        cache.put(a_rrset(ttl=300), Credibility.AUTH_ANSWER, now=0.0)
        entry = cache.get(Name("srv.example.com"), RdataType.A, now=100.0)
        assert entry.remaining_ttl(100.0) == 200
        assert entry.aged_rrset(100.0).ttl == 200

    def test_miss_on_absent(self):
        assert Cache().get(Name("x"), RdataType.A, now=0.0) is None

    def test_stats_hit_miss(self):
        cache = Cache()
        cache.put(a_rrset(), Credibility.AUTH_ANSWER, now=0.0)
        cache.get(Name("srv.example.com"), RdataType.A, now=1.0)
        cache.get(Name("other"), RdataType.A, now=1.0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_clear(self):
        cache = Cache()
        cache.put(a_rrset(), Credibility.AUTH_ANSWER, now=0.0)
        cache.clear()
        assert len(cache) == 0

    def test_purge_expired(self):
        cache = Cache()
        cache.put(a_rrset(ttl=10), Credibility.AUTH_ANSWER, now=0.0)
        cache.put(a_rrset(name="keep.example.com", ttl=1000), Credibility.AUTH_ANSWER, now=0.0)
        assert cache.purge_expired(now=100.0) == 1
        assert len(cache) == 1


class TestClamping:
    def test_max_ttl_caps(self):
        cache = Cache(max_ttl=21599)
        cache.put(a_rrset(ttl=345600), Credibility.AUTH_ANSWER, now=0.0)
        entry = cache.get(Name("srv.example.com"), RdataType.A, now=0.0)
        assert entry.remaining_ttl(0.0) == 21599

    def test_min_ttl_floors(self):
        cache = Cache(min_ttl=30)
        cache.put(a_rrset(ttl=1), Credibility.AUTH_ANSWER, now=0.0)
        entry = cache.get(Name("srv.example.com"), RdataType.A, now=0.0)
        assert entry.remaining_ttl(0.0) == 30

    def test_effective_ttl(self):
        cache = Cache(max_ttl=100, min_ttl=10)
        assert cache.effective_ttl(500) == 100
        assert cache.effective_ttl(5) == 10
        assert cache.effective_ttl(50) == 50


class TestCredibility:
    def test_higher_replaces_lower(self):
        cache = Cache()
        cache.put(a_rrset(address="192.0.2.1"), Credibility.ADDITIONAL, now=0.0)
        assert cache.put(a_rrset(address="192.0.2.2"), Credibility.AUTH_ANSWER, now=0.0)
        entry = cache.get(Name("srv.example.com"), RdataType.A, now=0.0)
        assert str(entry.rrset.rdatas[0]) == "192.0.2.2"

    def test_lower_does_not_replace_live_higher(self):
        cache = Cache()
        cache.put(a_rrset(address="192.0.2.2"), Credibility.AUTH_ANSWER, now=0.0)
        assert not cache.put(a_rrset(address="192.0.2.1"), Credibility.ADDITIONAL, now=0.0)
        entry = cache.get(Name("srv.example.com"), RdataType.A, now=0.0)
        assert str(entry.rrset.rdatas[0]) == "192.0.2.2"
        assert cache.stats.refused_downgrades == 1

    def test_lower_replaces_expired_higher(self):
        cache = Cache()
        cache.put(a_rrset(ttl=10, address="192.0.2.2"), Credibility.AUTH_ANSWER, now=0.0)
        assert cache.put(a_rrset(address="192.0.2.1"), Credibility.ADDITIONAL, now=20.0)

    def test_equal_glue_does_not_refresh(self):
        # BIND-like: repeated referrals do not refresh live glue (§4.2).
        cache = Cache()
        cache.put(a_rrset(ttl=100, address="192.0.2.1"), Credibility.ADDITIONAL, now=0.0)
        assert not cache.put(a_rrset(ttl=100, address="192.0.2.9"), Credibility.ADDITIONAL, now=50.0)
        entry = cache.get(Name("srv.example.com"), RdataType.A, now=60.0)
        assert str(entry.rrset.rdatas[0]) == "192.0.2.1"

    def test_equal_auth_answer_refreshes(self):
        cache = Cache()
        cache.put(a_rrset(ttl=100), Credibility.AUTH_ANSWER, now=0.0)
        assert cache.put(a_rrset(ttl=100), Credibility.AUTH_ANSWER, now=50.0)
        entry = cache.get(Name("srv.example.com"), RdataType.A, now=100.0)
        assert entry.remaining_ttl(100.0) == 50

    def test_min_credibility_filter(self):
        cache = Cache()
        cache.put(a_rrset(), Credibility.ADDITIONAL, now=0.0)
        assert cache.get(
            Name("srv.example.com"), RdataType.A, now=0.0,
            min_credibility=Credibility.NONAUTH_ANSWER,
        ) is None
        assert cache.get(Name("srv.example.com"), RdataType.A, now=0.0) is not None


class TestPinning:
    def test_pinned_survives_higher_credibility(self):
        # Parent-centric hold (§4.4): child data never displaces the pin.
        cache = Cache()
        cache.put(a_rrset(ttl=172800, address="192.0.2.1"),
                  Credibility.ADDITIONAL, now=0.0, pin=True)
        assert not cache.put(a_rrset(ttl=7200, address="192.0.2.9"),
                             Credibility.AUTH_ANSWER, now=100.0)
        entry = cache.get(Name("srv.example.com"), RdataType.A, now=200.0)
        assert str(entry.rrset.rdatas[0]) == "192.0.2.1"

    def test_pinned_replaced_after_expiry(self):
        cache = Cache()
        cache.put(a_rrset(ttl=10), Credibility.ADDITIONAL, now=0.0, pin=True)
        assert cache.put(a_rrset(address="192.0.2.9"), Credibility.ADDITIONAL, now=20.0)


class TestLinkedExpiry:
    def setup_linked(self, cache, ns_ttl=3600, a_ttl=7200):
        cache.put(ns_rrset(ttl=ns_ttl), Credibility.AUTHORITY, now=0.0)
        cache.put(
            a_rrset(ttl=a_ttl),
            Credibility.ADDITIONAL,
            now=0.0,
            linked_to=(Name("example.com"), RdataType.NS, RdataClass.IN),
        )

    def test_linked_entry_lives_while_target_lives(self):
        cache = Cache()
        self.setup_linked(cache)
        assert cache.get(Name("srv.example.com"), RdataType.A, now=3599.0) is not None

    def test_linked_entry_dies_with_target(self):
        # §4.2: in-bailiwick A dies when the covering NS expires, even
        # though its own TTL (7200) is still valid.
        cache = Cache()
        self.setup_linked(cache)
        assert cache.get(Name("srv.example.com"), RdataType.A, now=3600.5) is None

    def test_follow_links_false_sees_own_ttl(self):
        cache = Cache()
        self.setup_linked(cache)
        assert cache.get(
            Name("srv.example.com"), RdataType.A, now=3600.5, follow_links=False
        ) is not None

    def test_replaced_target_breaks_link(self):
        # New NS generation must not resurrect old glue.
        cache = Cache()
        self.setup_linked(cache, ns_ttl=100)
        cache.put(ns_rrset(ttl=3600), Credibility.AUTHORITY, now=200.0)
        assert cache.get(Name("srv.example.com"), RdataType.A, now=201.0) is None

    def test_dead_link_allows_equal_credibility_replacement(self):
        cache = Cache()
        self.setup_linked(cache, ns_ttl=100)
        # At t=200 the NS is dead, so the (still in-TTL) glue is dead too
        # and fresh glue may take its place.
        assert cache.put(
            a_rrset(address="192.0.2.9"), Credibility.ADDITIONAL, now=200.0
        )

    def test_link_to_missing_target_ignored(self):
        cache = Cache()
        cache.put(
            a_rrset(), Credibility.ADDITIONAL, now=0.0,
            linked_to=(Name("ghost.example"), RdataType.NS, RdataClass.IN),
        )
        # No target existed at insertion: entry stands alone.
        assert cache.get(Name("srv.example.com"), RdataType.A, now=1.0) is not None


class TestStale:
    def test_get_stale_returns_expired(self):
        cache = Cache()
        cache.put(a_rrset(ttl=10), Credibility.AUTH_ANSWER, now=0.0)
        assert cache.get_stale(Name("srv.example.com"), RdataType.A) is not None
        assert cache.stats.stale_hits == 1

    def test_refresh_expiry(self):
        cache = Cache()
        cache.put(a_rrset(ttl=100), Credibility.AUTH_ANSWER, now=0.0)
        cache.refresh_expiry((Name("srv.example.com"), RdataType.A, RdataClass.IN), now=500.0)
        assert cache.get(Name("srv.example.com"), RdataType.A, now=550.0) is not None

    def test_expire_now(self):
        cache = Cache()
        cache.put(a_rrset(ttl=100), Credibility.AUTH_ANSWER, now=0.0)
        cache.expire_now((Name("srv.example.com"), RdataType.A, RdataClass.IN), now=10.0)
        assert cache.get(Name("srv.example.com"), RdataType.A, now=10.0) is None


class TestNegative:
    def test_negative_roundtrip(self):
        cache = Cache()
        cache.put_negative(Name("gone.example"), RdataType.A, True, now=0.0,
                           soa=soa_rrset(minimum=900))
        entry = cache.get_negative(Name("gone.example"), RdataType.A, now=100.0)
        assert entry is not None and entry.nxdomain

    def test_negative_ttl_is_min_of_soa_ttl_and_minimum(self):
        cache = Cache()
        cache.put_negative(Name("gone.example"), RdataType.A, False, now=0.0,
                           soa=soa_rrset(ttl=3600, minimum=900))
        assert cache.get_negative(Name("gone.example"), RdataType.A, now=899.0)
        assert cache.get_negative(Name("gone.example"), RdataType.A, now=901.0) is None

    def test_negative_without_soa_uses_default(self):
        cache = Cache()
        cache.put_negative(Name("gone.example"), RdataType.A, True, now=0.0)
        assert cache.get_negative(Name("gone.example"), RdataType.A, now=299.0)
        assert cache.get_negative(Name("gone.example"), RdataType.A, now=301.0) is None
