"""Tests for server selection: rotation, lame delegations, failover."""

import pytest

from repro.dns.message import Rcode
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.zone import Zone
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy, ServerSelection
from repro.resolver.recursive import RecursiveResolver
from repro.server.authoritative import AuthoritativeServer

from tests.conftest import build_mini_world


def add_second_child_server(world):
    """Give example.tld a second authoritative server."""
    endpoint = world.topology.endpoint_in_region(Region.NA, "ns2.example.tld")
    server = AuthoritativeServer(endpoint, [world.child_zone])
    world.network.register(server)
    world.child_zone.add(
        "example.tld.", RdataType.NS, NS("ns2.example.tld."), ttl=300
    )
    world.child_zone.add(
        "ns2.example.tld.", RdataType.A, A(endpoint.address), ttl=120
    )
    world.tld_zone.add("example.tld.", RdataType.NS, NS("ns2.example.tld."), ttl=7200)
    world.tld_zone.add("ns2.example.tld.", RdataType.A, A(endpoint.address), ttl=7200)
    return server


class TestRotation:
    def test_rotating_resolver_uses_both_servers(self):
        """Paper §3.4 ([37]): resolvers rotate between authoritatives."""
        world = build_mini_world()
        second = add_second_child_server(world)
        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU),
            network=world.network,
            root_hints=world.hints,
            policy=ResolverPolicy(server_selection=ServerSelection.ROTATE),
        )
        # The answer TTL is 60 s; query every 120 s so every round misses.
        for i in range(8):
            resolver.resolve("www.example.tld.", RdataType.A, now=float(i * 120))
        first_log = world.child_server.query_log
        second_log = second.query_log
        assert len(first_log) > 0 and len(second_log) > 0

    def test_first_selection_pins_one_server(self):
        world = build_mini_world()
        second = add_second_child_server(world)
        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU),
            network=world.network,
            root_hints=world.hints,
            policy=ResolverPolicy(server_selection=ServerSelection.FIRST),
        )
        for i in range(6):
            resolver.resolve("www.example.tld.", RdataType.A, now=float(i * 120))
        logs = sorted(
            [len(world.child_server.query_log), len(second.query_log)]
        )
        assert logs[0] == 0  # one server never contacted


class TestLameDelegation:
    def test_lame_server_skipped(self):
        """One of two NS targets does not serve the zone; resolution must
        succeed via the healthy one."""
        world = build_mini_world()
        # Register a lame server: answers REFUSED for example.tld.
        lame_endpoint = world.topology.endpoint_in_region(Region.NA, "lame.example.tld")
        lame = AuthoritativeServer(lame_endpoint, [])  # serves nothing
        world.network.register(lame)
        world.child_zone.add(
            "example.tld.", RdataType.NS, NS("lame.example.tld."), ttl=300
        )
        world.child_zone.add(
            "lame.example.tld.", RdataType.A, A(lame_endpoint.address), ttl=120
        )
        world.tld_zone.add("example.tld.", RdataType.NS, NS("lame.example.tld."), ttl=7200)
        world.tld_zone.add("lame.example.tld.", RdataType.A, A(lame_endpoint.address), ttl=7200)

        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU),
            network=world.network,
            root_hints=world.hints,
            policy=ResolverPolicy(server_selection=ServerSelection.FIRST),
        )
        # Run several rounds: whichever order servers are tried, answers
        # must always come back.
        for i in range(6):
            out = resolver.resolve("www.example.tld.", RdataType.A, now=float(i * 120))
            assert out.rcode == Rcode.NOERROR

    def test_all_lame_servfail(self):
        world = build_mini_world()
        world.child_server.remove_zone("example.tld.")
        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU),
            network=world.network,
            root_hints=world.hints,
        )
        out = resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.SERVFAIL


class TestFailover:
    def test_failover_to_second_server(self):
        world = build_mini_world()
        second = add_second_child_server(world)
        world.network.loss.take_down(world.child_server.endpoint.address)
        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU),
            network=world.network,
            root_hints=world.hints,
        )
        out = resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert len(second.query_log) > 0

    def test_failover_latency_includes_timeouts(self):
        world = build_mini_world()
        add_second_child_server(world)
        world.network.loss.take_down(world.child_server.endpoint.address)
        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU),
            network=world.network,
            root_hints=world.hints,
            policy=ResolverPolicy(server_selection=ServerSelection.FIRST),
        )
        latencies = []
        for i in range(6):
            out = resolver.resolve("www.example.tld.", RdataType.A, now=float(i * 120))
            if out.rcode == Rcode.NOERROR:
                latencies.append(out.elapsed)
        # At least one resolution burned a timeout on the dead server.
        assert latencies and max(latencies) >= 2.0
