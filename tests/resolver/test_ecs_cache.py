"""The subnet-scoped cache overlay (RFC 7871 §7.3).

Scoped entries coexist beside the global cache under the same (name,
type, class) key; these tests pin the matching rules — longest scope
wins, families never mix, a query less specific than the scope misses —
and the two ECS instruments: the entries gauge and the scope-merge
counter, both created lazily so ECS-off runs stay byte-identical.
"""

import pytest

from repro.dns.ecs import ClientSubnet
from repro.dns.name import Name
from repro.dns.rdtypes import A, RdataType
from repro.dns.record import RRset
from repro.metrics import MetricsRegistry
from repro.resolver.cache import Cache, Credibility

NAME = Name("www.cdn.example.")


def rrset(address: str = "203.0.113.1", ttl: int = 300) -> RRset:
    return RRset(NAME, RdataType.A, ttl, [A(address)])


def subnet(ip: str, prefix: int = 24) -> ClientSubnet:
    return ClientSubnet.from_ip(ip, prefix)


class TestScopedPutGet:
    def test_scoped_answer_serves_only_its_subnet(self):
        cache = Cache()
        cache.put_scoped(rrset("203.0.113.1"), subnet("198.18.0.0"), 24, now=0.0)
        hit = cache.get_scoped(NAME, RdataType.A, subnet("198.18.0.0"), now=1.0)
        assert hit is not None
        assert hit.scope == 24
        assert cache.get_scoped(NAME, RdataType.A, subnet("198.18.1.0"), now=1.0) is None
        assert cache.ecs_scoped_len() == 1

    def test_global_cache_is_untouched(self):
        cache = Cache()
        cache.put_scoped(rrset(), subnet("198.18.0.0"), 24, now=0.0)
        assert cache.get(NAME, RdataType.A, now=1.0) is None
        assert len(cache) == 0

    def test_wider_scope_covers_sibling_subnets(self):
        cache = Cache()
        cache.put_scoped(rrset(), subnet("198.18.0.0"), 16, now=0.0)
        for ip in ("198.18.0.0", "198.18.1.0", "198.18.255.0"):
            assert cache.get_scoped(NAME, RdataType.A, subnet(ip), now=1.0)
        assert cache.get_scoped(NAME, RdataType.A, subnet("198.19.0.0"), now=1.0) is None

    def test_longest_scope_wins(self):
        cache = Cache()
        cache.put_scoped(rrset("203.0.113.1"), subnet("198.18.0.0"), 16, now=0.0)
        cache.put_scoped(rrset("203.0.113.2"), subnet("198.18.0.0"), 24, now=0.0)
        hit = cache.get_scoped(NAME, RdataType.A, subnet("198.18.0.0"), now=1.0)
        assert hit.scope == 24
        assert hit.rrset.rdatas[0].address == "203.0.113.2"
        # The sibling /24 only matches the /16 entry.
        other = cache.get_scoped(NAME, RdataType.A, subnet("198.18.9.0"), now=1.0)
        assert other.scope == 16

    def test_less_specific_query_cannot_use_narrower_scope(self):
        cache = Cache()
        cache.put_scoped(rrset(), subnet("198.18.0.0"), 24, now=0.0)
        assert cache.get_scoped(NAME, RdataType.A, subnet("198.18.0.0", 16), now=1.0) is None

    def test_families_never_mix(self):
        cache = Cache()
        cache.put_scoped(rrset(), subnet("198.18.0.0"), 24, now=0.0)
        v6 = ClientSubnet.from_ip("2001:db8::", 56)
        assert cache.get_scoped(NAME, RdataType.A, v6, now=1.0) is None

    def test_same_scope_same_network_replaces(self):
        cache = Cache()
        cache.put_scoped(rrset("203.0.113.1"), subnet("198.18.0.0"), 24, now=0.0)
        cache.put_scoped(rrset("203.0.113.9"), subnet("198.18.0.0"), 24, now=0.0)
        assert cache.ecs_scoped_len() == 1
        hit = cache.get_scoped(NAME, RdataType.A, subnet("198.18.0.0"), now=1.0)
        assert hit.rrset.rdatas[0].address == "203.0.113.9"

    def test_entries_expire_with_their_ttl(self):
        cache = Cache()
        cache.put_scoped(rrset(ttl=60), subnet("198.18.0.0"), 24, now=0.0)
        assert cache.get_scoped(NAME, RdataType.A, subnet("198.18.0.0"), now=59.0)
        assert cache.get_scoped(NAME, RdataType.A, subnet("198.18.0.0"), now=60.0) is None

    def test_aged_rrset_decrements_ttl(self):
        cache = Cache()
        cache.put_scoped(rrset(ttl=300), subnet("198.18.0.0"), 24, now=0.0)
        hit = cache.get_scoped(NAME, RdataType.A, subnet("198.18.0.0"), now=120.0)
        assert hit.aged_rrset(120.0).ttl == 180

    def test_scope_zero_rejected(self):
        cache = Cache()
        with pytest.raises(ValueError, match="scope-0 answers belong in put"):
            cache.put_scoped(rrset(), subnet("198.18.0.0"), 0, now=0.0)
        with pytest.raises(ValueError):
            cache.put_scoped(rrset(), subnet("198.18.0.0", 16), 24, now=0.0)

    def test_clear_drops_the_overlay(self):
        cache = Cache()
        cache.put_scoped(rrset(), subnet("198.18.0.0"), 24, now=0.0)
        cache.clear()
        assert cache.ecs_scoped_len() == 0


class TestEcsMetrics:
    def test_instruments_appear_only_on_first_scoped_insert(self):
        registry = MetricsRegistry()
        cache = Cache(metrics=registry)
        cache.put(rrset(), Credibility.AUTH_ANSWER, now=0.0)
        cache.get(NAME, RdataType.A, now=1.0)
        present = set(registry.snapshot().metrics)
        assert "cache.ecs_scoped_entries" not in present
        assert "ecs.scope_merges" not in present
        cache.put_scoped(rrset(), subnet("198.18.0.0"), 24, now=0.0)
        present = set(registry.snapshot().metrics)
        assert "cache.ecs_scoped_entries" in present
        assert "ecs.scope_merges" in present

    def test_scope_merge_counts_cross_subnet_hits(self):
        registry = MetricsRegistry()
        cache = Cache(metrics=registry)
        # A /16-scoped answer fetched by 198.18.0.0/24 …
        cache.put_scoped(rrset(), subnet("198.18.0.0"), 16, now=0.0)
        cache.get_scoped(NAME, RdataType.A, subnet("198.18.0.0"), now=1.0)
        assert registry.snapshot().value("ecs.scope_merges") == 0
        # … served to a different covered /24 is one merge.
        cache.get_scoped(NAME, RdataType.A, subnet("198.18.7.0"), now=1.0)
        assert registry.snapshot().value("ecs.scope_merges") == 1

    def test_entries_gauge_tracks_high_watermark(self):
        registry = MetricsRegistry()
        cache = Cache(metrics=registry)
        for third in range(5):
            cache.put_scoped(
                rrset(), subnet(f"198.18.{third}.0"), 24, now=0.0
            )
        assert registry.snapshot().value("cache.ecs_scoped_entries") == 5
