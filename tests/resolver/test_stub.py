"""Tests for repro.resolver.stub."""

from repro.dns.message import Rcode
from repro.dns.rdtypes import RdataType
from repro.net.latency import LatencyModel
from repro.net.topology import Region
from repro.resolver.recursive import RecursiveResolver
from repro.resolver.stub import StubResolver


def make_stub(world, same_as=True):
    autonomous_system = world.topology.create_as(Region.EU)
    client = world.topology.create_endpoint(autonomous_system, name="client")
    if same_as:
        resolver_endpoint = world.topology.create_endpoint(autonomous_system, name="res")
    else:
        resolver_endpoint = world.topology.endpoint_in_region(Region.NA, name="res")
    resolver = RecursiveResolver(
        endpoint=resolver_endpoint, network=world.network, root_hints=world.hints
    )
    return StubResolver(client, resolver, world.network.latency, seed=1)


class TestQuery:
    def test_answer_and_rtt(self, mini_world):
        stub = make_stub(mini_world)
        answer = stub.query("www.example.tld.", RdataType.A, now=0.0)
        assert answer.rcode == Rcode.NOERROR
        assert answer.ttl() == 60
        assert answer.rtt > 0
        assert answer.resolver_address == stub.resolver.address

    def test_cache_hit_is_last_mile_only(self, mini_world):
        stub = make_stub(mini_world)
        first = stub.query("www.example.tld.", RdataType.A, now=0.0)
        second = stub.query("www.example.tld.", RdataType.A, now=5.0)
        assert second.cache_hit
        assert second.rtt < first.rtt
        assert second.rtt < 0.05  # a few ms to the on-network resolver

    def test_public_resolver_leg_is_slower(self, mini_world):
        local = make_stub(mini_world, same_as=True)
        public = make_stub(mini_world, same_as=False)
        local.query("www.example.tld.", RdataType.A, now=0.0)
        public.query("www.example.tld.", RdataType.A, now=0.0)
        local_hit = local.query("www.example.tld.", RdataType.A, now=5.0)
        public_hit = public.query("www.example.tld.", RdataType.A, now=5.0)
        assert public_hit.rtt > local_hit.rtt

    def test_ttl_none_on_failure(self, mini_world):
        mini_world.network.loss.take_down(mini_world.child_server.endpoint.address)
        stub = make_stub(mini_world)
        answer = stub.query("www.example.tld.", RdataType.A, now=0.0)
        assert answer.rcode == Rcode.SERVFAIL
        assert answer.ttl() is None
