"""Property-based tests for the resolver cache (hypothesis)."""

import string

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.dns.name import Name
from repro.dns.rdtypes import A, RdataType
from repro.dns.record import RRset
from repro.resolver.cache import Cache, Credibility

names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    min_size=1,
    max_size=3,
).map(Name)

ttls = st.integers(min_value=0, max_value=10**6)
credibilities = st.sampled_from(list(Credibility))
times = st.floats(min_value=0.0, max_value=10**7, allow_nan=False)


def rrset_for(name, ttl, octet):
    return RRset(name, RdataType.A, ttl, [A(f"192.0.2.{octet % 256}")])


@given(names, ttls, credibilities, times, times)
def test_never_returns_expired(name, ttl, credibility, insert_at, query_at):
    cache = Cache()
    cache.put(rrset_for(name, ttl, 1), credibility, now=insert_at)
    entry = cache.get(name, RdataType.A, now=query_at)
    if entry is not None:
        assert query_at < insert_at + ttl


@given(names, ttls, times, st.floats(min_value=0, max_value=10**6))
def test_remaining_ttl_never_exceeds_original(name, ttl, insert_at, delta):
    cache = Cache()
    cache.put(rrset_for(name, ttl, 1), Credibility.AUTH_ANSWER, now=insert_at)
    entry = cache.get(name, RdataType.A, now=insert_at + delta)
    if entry is not None:
        remaining = entry.remaining_ttl(insert_at + delta)
        assert 0 <= remaining <= ttl


@given(names, ttls, st.integers(min_value=0, max_value=3600))
def test_cap_always_honoured(name, ttl, cap):
    cache = Cache(max_ttl=cap)
    cache.put(rrset_for(name, ttl, 1), Credibility.AUTH_ANSWER, now=0.0)
    entry = cache.get(name, RdataType.A, now=0.0)
    assert entry is None or entry.remaining_ttl(0.0) <= cap


@given(
    st.lists(
        st.tuples(credibilities, ttls, st.integers(min_value=1, max_value=5)),
        min_size=1,
        max_size=8,
    )
)
def test_credibility_never_decreases_while_live(operations):
    """Whatever the sequence of puts at time 0, the surviving entry's
    credibility is the maximum of the accepted ones."""
    cache = Cache()
    name = Name("srv.example")
    best_accepted = None
    for credibility, ttl, octet in operations:
        accepted = cache.put(rrset_for(name, max(ttl, 1), octet), credibility, now=0.0)
        if accepted:
            best_accepted = credibility
        entry = cache.peek(name, RdataType.A)
        assert entry is not None
        if best_accepted is not None:
            assert entry.credibility >= best_accepted or entry.is_expired(0.0)


@given(st.integers(min_value=1, max_value=10**5), st.integers(min_value=1, max_value=10**5))
def test_linked_entry_never_outlives_target(ns_ttl, a_ttl):
    from repro.dns.rdtypes import NS, RdataClass

    cache = Cache()
    ns = RRset(Name("zone.example"), RdataType.NS, ns_ttl, [NS(Name("srv.zone.example"))])
    cache.put(ns, Credibility.AUTHORITY, now=0.0)
    cache.put(
        rrset_for(Name("srv.zone.example"), a_ttl, 1),
        Credibility.ADDITIONAL,
        now=0.0,
        linked_to=(Name("zone.example"), RdataType.NS, RdataClass.IN),
    )
    effective_death = min(ns_ttl, a_ttl)
    assert cache.get(Name("srv.zone.example"), RdataType.A, now=effective_death - 0.5) is not None
    assert cache.get(Name("srv.zone.example"), RdataType.A, now=effective_death + 0.5) is None


@given(
    names,
    st.integers(min_value=1, max_value=10**6),
    credibilities,
    credibilities,
    times,
)
def test_live_entry_survives_lower_credibility_arrival(
    name, ttl, cred_old, cred_new, fraction
):
    """An arriving RRset never displaces a live entry of strictly higher
    credibility — the single rule that makes resolvers child-centric
    (RFC 2181 §5.4.1; paper §4.1)."""
    assume(cred_new < cred_old)
    cache = Cache()
    cache.put(rrset_for(name, ttl, 1), cred_old, now=0.0)
    later = (fraction % 1.0) * (ttl - 0.5)  # any instant while still live
    accepted = cache.put(rrset_for(name, ttl, 2), cred_new, now=later)
    assert not accepted
    entry = cache.peek(name, RdataType.A)
    assert entry is not None
    assert entry.credibility == cred_old
    assert str(entry.rrset.rdatas[0]) == "192.0.2.1"  # original data intact
    assert cache.stats.refused_downgrades == 1


@given(
    st.integers(min_value=2, max_value=10**5),
    st.integers(min_value=2, max_value=10**5),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_linked_entry_dies_when_target_is_replaced(ns_ttl, a_ttl, fraction):
    """Glue is tied to the *generation* of the NS set it arrived with: a
    replacement of the NS entry (not just its expiry) kills the old glue,
    so a later refresh never resurrects stale addresses (§4.2)."""
    from repro.dns.rdtypes import NS, RdataClass

    cache = Cache()
    zone = Name("zone.example")
    server = Name("srv.zone.example")
    ns_key = (zone, RdataType.NS, RdataClass.IN)
    ns = RRset(zone, RdataType.NS, ns_ttl, [NS(server)])
    cache.put(ns, Credibility.AUTHORITY, now=0.0)
    cache.put(
        rrset_for(server, a_ttl, 1),
        Credibility.ADDITIONAL,
        now=0.0,
        linked_to=ns_key,
    )
    # Replace the NS set while everything is still live: an authoritative
    # answer outranks the referral's authority data, so the put succeeds
    # and bumps the key's generation.
    replace_at = fraction * (min(ns_ttl, a_ttl) - 1.0)
    replaced = cache.put(
        RRset(zone, RdataType.NS, ns_ttl, [NS(server)]),
        Credibility.AUTH_ANSWER,
        now=replace_at,
    )
    assert replaced
    # The new NS entry is live, the glue's own TTL has not passed — yet
    # the glue is dead, because its link names the previous generation.
    probe_at = replace_at + 0.5
    assert cache.get(zone, RdataType.NS, now=probe_at) is not None
    assert cache.get(server, RdataType.A, now=probe_at) is None
    # Only the generation link killed it: ignoring links it is still live.
    assert (
        cache.get(server, RdataType.A, now=probe_at, follow_links=False)
        is not None
    )


@given(
    st.lists(st.booleans(), min_size=2, max_size=12),
    st.integers(min_value=1, max_value=8),
)
def test_lru_eviction_prefers_dead_entries(liveness, fresh_inserts):
    """A bounded cache under pressure evicts dead entries (expired or
    link-broken) before sacrificing any live one."""
    assume(any(liveness))  # at least one live original, else trivial
    cache = Cache(max_entries=len(liveness))
    originals = []
    for index, lives in enumerate(liveness):
        name = Name(f"orig-{index}.example")
        ttl = 10**6 if lives else 1  # dead entries expire at t=1
        cache.put(rrset_for(name, ttl, index), Credibility.AUTH_ANSWER, now=0.0)
        originals.append((name, lives))
    now = 100.0  # every short-TTL entry is dead, every long one live
    for index in range(fresh_inserts):
        cache.put(
            rrset_for(Name(f"fresh-{index}.example"), 10**6, index),
            Credibility.AUTH_ANSWER,
            now=now,
        )
        dead_remaining = [
            name for name, lives in originals
            if not lives and cache.peek(name, RdataType.A) is not None
        ]
        live_evicted = [
            name for name, lives in originals
            if lives and cache.peek(name, RdataType.A) is None
        ]
        # Invariant after every overflow: no live entry goes while a dead
        # one stays.
        assert not (dead_remaining and live_evicted)
        assert len(cache) <= len(liveness)
    assert cache.stats.evictions == fresh_inserts
