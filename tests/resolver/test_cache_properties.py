"""Property-based tests for the resolver cache (hypothesis)."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.dns.name import Name
from repro.dns.rdtypes import A, RdataType
from repro.dns.record import RRset
from repro.resolver.cache import Cache, Credibility

names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    min_size=1,
    max_size=3,
).map(Name)

ttls = st.integers(min_value=0, max_value=10**6)
credibilities = st.sampled_from(list(Credibility))
times = st.floats(min_value=0.0, max_value=10**7, allow_nan=False)


def rrset_for(name, ttl, octet):
    return RRset(name, RdataType.A, ttl, [A(f"192.0.2.{octet % 256}")])


@given(names, ttls, credibilities, times, times)
def test_never_returns_expired(name, ttl, credibility, insert_at, query_at):
    cache = Cache()
    cache.put(rrset_for(name, ttl, 1), credibility, now=insert_at)
    entry = cache.get(name, RdataType.A, now=query_at)
    if entry is not None:
        assert query_at < insert_at + ttl


@given(names, ttls, times, st.floats(min_value=0, max_value=10**6))
def test_remaining_ttl_never_exceeds_original(name, ttl, insert_at, delta):
    cache = Cache()
    cache.put(rrset_for(name, ttl, 1), Credibility.AUTH_ANSWER, now=insert_at)
    entry = cache.get(name, RdataType.A, now=insert_at + delta)
    if entry is not None:
        remaining = entry.remaining_ttl(insert_at + delta)
        assert 0 <= remaining <= ttl


@given(names, ttls, st.integers(min_value=0, max_value=3600))
def test_cap_always_honoured(name, ttl, cap):
    cache = Cache(max_ttl=cap)
    cache.put(rrset_for(name, ttl, 1), Credibility.AUTH_ANSWER, now=0.0)
    entry = cache.get(name, RdataType.A, now=0.0)
    assert entry is None or entry.remaining_ttl(0.0) <= cap


@given(
    st.lists(
        st.tuples(credibilities, ttls, st.integers(min_value=1, max_value=5)),
        min_size=1,
        max_size=8,
    )
)
def test_credibility_never_decreases_while_live(operations):
    """Whatever the sequence of puts at time 0, the surviving entry's
    credibility is the maximum of the accepted ones."""
    cache = Cache()
    name = Name("srv.example")
    best_accepted = None
    for credibility, ttl, octet in operations:
        accepted = cache.put(rrset_for(name, max(ttl, 1), octet), credibility, now=0.0)
        if accepted:
            best_accepted = credibility
        entry = cache.peek(name, RdataType.A)
        assert entry is not None
        if best_accepted is not None:
            assert entry.credibility >= best_accepted or entry.is_expired(0.0)


@given(st.integers(min_value=1, max_value=10**5), st.integers(min_value=1, max_value=10**5))
def test_linked_entry_never_outlives_target(ns_ttl, a_ttl):
    from repro.dns.rdtypes import NS, RdataClass

    cache = Cache()
    ns = RRset(Name("zone.example"), RdataType.NS, ns_ttl, [NS(Name("srv.zone.example"))])
    cache.put(ns, Credibility.AUTHORITY, now=0.0)
    cache.put(
        rrset_for(Name("srv.zone.example"), a_ttl, 1),
        Credibility.ADDITIONAL,
        now=0.0,
        linked_to=(Name("zone.example"), RdataType.NS, RdataClass.IN),
    )
    effective_death = min(ns_ttl, a_ttl)
    assert cache.get(Name("srv.zone.example"), RdataType.A, now=effective_death - 0.5) is not None
    assert cache.get(Name("srv.zone.example"), RdataType.A, now=effective_death + 0.5) is None
