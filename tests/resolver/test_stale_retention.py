"""Serve-stale retention under eviction pressure.

RFC 8767 only works if expired entries actually survive in the cache
until something needs them.  These tests pin the contract between the
dead-first LRU eviction machinery and ``get_stale``: eviction removes
exactly as many dead entries as the overflow requires (not all of
them), link-death *marks* alone never remove anything, and a stale
entry consumed by a revalidation is replaced atomically.
"""

from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RdataClass, RdataType
from repro.dns.record import RRset
from repro.resolver.cache import Cache, Credibility


def a_rrset(name, ttl=300, address="192.0.2.1"):
    return RRset(Name(name), RdataType.A, ttl, [A(address)])


def ns_rrset(name, ttl=3600, target="srv.example.com."):
    return RRset(Name(name), RdataType.NS, ttl, [NS(Name(target))])


class TestDeadFirstEvictionRetention:
    def test_unevicted_expired_entries_stay_stale_servable(self):
        """Overflow evicts only as many dead entries as needed; the rest
        of the expired population remains available to get_stale."""
        cache = Cache(max_entries=3)
        cache.put(a_rrset("a.example.", ttl=10), Credibility.AUTH_ANSWER, now=0.0)
        cache.put(a_rrset("b.example.", ttl=10), Credibility.AUTH_ANSWER, now=0.0)
        cache.put(a_rrset("c.example.", ttl=1000), Credibility.AUTH_ANSWER, now=0.0)
        # t=20: a and b are both expired.  Inserting d overflows by one;
        # dead-first eviction takes exactly one victim (a, oldest mark).
        cache.put(a_rrset("d.example.", ttl=1000), Credibility.AUTH_ANSWER, now=20.0)
        assert len(cache) == 3
        assert cache.get_stale(Name("a.example."), RdataType.A) is None
        survivor = cache.get_stale(Name("b.example."), RdataType.A)
        assert survivor is not None
        assert survivor.is_expired(20.0)  # stale, and still servable

    def test_expired_entry_survives_until_pressure_arrives(self):
        cache = Cache(max_entries=8)
        cache.put(a_rrset("a.example.", ttl=10), Credibility.AUTH_ANSWER, now=0.0)
        # Far past expiry, with room to spare: retention is indefinite.
        for index in range(7):
            cache.put(
                a_rrset(f"fill{index}.example.", ttl=1000),
                Credibility.AUTH_ANSWER,
                now=5000.0,
            )
        assert cache.get_stale(Name("a.example."), RdataType.A) is not None

    def test_live_entries_survive_while_dead_ones_are_taken(self):
        cache = Cache(max_entries=2)
        cache.put(a_rrset("dead.example.", ttl=10), Credibility.AUTH_ANSWER, now=0.0)
        cache.put(a_rrset("live.example.", ttl=1000), Credibility.AUTH_ANSWER, now=0.0)
        cache.put(a_rrset("new.example.", ttl=1000), Credibility.AUTH_ANSWER, now=20.0)
        # The expired entry was evicted in preference to the live LRU one.
        assert cache.get_stale(Name("dead.example."), RdataType.A) is None
        assert cache.get(Name("live.example."), RdataType.A, now=20.0) is not None


class TestLinkDeathRetention:
    def test_link_dead_entry_still_stale_servable(self):
        """A link-death *mark* is an eviction preference, not a removal:
        glue whose NS set was replaced must remain stale-servable."""
        cache = Cache(max_entries=8)
        cache.put(ns_rrset("example.com."), Credibility.AUTHORITY, now=0.0)
        ns_key = (Name("example.com."), RdataType.NS, RdataClass.IN)
        cache.put(
            a_rrset("srv.example.com.", ttl=3600),
            Credibility.ADDITIONAL,
            now=0.0,
            linked_to=ns_key,
        )
        # Replacing the NS set breaks the glue's link (marks it dead)...
        cache.put(
            ns_rrset("example.com.", target="other.example.net."),
            Credibility.AUTH_ANSWER,
            now=10.0,
        )
        assert cache.get(Name("srv.example.com."), RdataType.A, now=10.0) is None
        # ...but the bytes are still there for serve-stale.
        stale = cache.get_stale(Name("srv.example.com."), RdataType.A)
        assert stale is not None
        assert stale.rrset.rdatas  # the original glue address survives

    def test_link_dead_entries_preferred_victims_but_only_under_pressure(self):
        cache = Cache(max_entries=3)
        cache.put(ns_rrset("example.com.", ttl=3600), Credibility.AUTHORITY, now=0.0)
        ns_key = (Name("example.com."), RdataType.NS, RdataClass.IN)
        cache.put(
            a_rrset("srv.example.com.", ttl=3600),
            Credibility.ADDITIONAL,
            now=0.0,
            linked_to=ns_key,
        )
        cache.put(
            ns_rrset("example.com.", target="other.example.net."),
            Credibility.AUTH_ANSWER,
            now=10.0,
        )
        # Still under capacity: the link-dead glue is retained.
        assert cache.get_stale(Name("srv.example.com."), RdataType.A) is not None
        cache.put(a_rrset("x.example.", ttl=100), Credibility.AUTH_ANSWER, now=20.0)
        cache.put(a_rrset("y.example.", ttl=100), Credibility.AUTH_ANSWER, now=20.0)
        # Overflow: the link-dead glue goes first, live entries stay.
        assert cache.get_stale(Name("srv.example.com."), RdataType.A) is None
        assert cache.get(Name("x.example."), RdataType.A, now=20.0) is not None


class TestRevalidationReplacement:
    def test_stale_entry_replaced_atomically_by_revalidation(self):
        """A revalidation's put must atomically supersede the stale entry:
        new generation, new bytes, full lifetime — and the stale view is
        gone in the same step."""
        cache = Cache()
        cache.put(
            a_rrset("w.example.", ttl=60, address="192.0.2.1"),
            Credibility.AUTH_ANSWER,
            now=0.0,
        )
        old = cache.get_stale(Name("w.example."), RdataType.A)
        assert old is not None and old.is_expired(100.0)
        old_generation = old.generation
        # The revalidation lands (dead entries always lose to fresh data,
        # even at equal credibility).
        assert cache.put(
            a_rrset("w.example.", ttl=60, address="198.51.100.7"),
            Credibility.AUTH_ANSWER,
            now=100.0,
        )
        fresh = cache.get(Name("w.example."), RdataType.A, now=100.0)
        assert fresh is not None
        assert fresh.generation == old_generation + 1
        assert str(fresh.rrset.rdatas[0]) == "198.51.100.7"
        assert fresh.remaining_ttl(100.0) == 60
        # get_stale now sees only the fresh entry — no window where the
        # key dangles between the two.
        assert cache.get_stale(Name("w.example."), RdataType.A) is fresh

    def test_revalidation_of_link_dead_entry_replaces_it(self):
        cache = Cache()
        cache.put(ns_rrset("example.com."), Credibility.AUTHORITY, now=0.0)
        ns_key = (Name("example.com."), RdataType.NS, RdataClass.IN)
        cache.put(
            a_rrset("srv.example.com.", ttl=3600),
            Credibility.ADDITIONAL,
            now=0.0,
            linked_to=ns_key,
        )
        cache.put(
            ns_rrset("example.com.", target="other.example.net."),
            Credibility.AUTH_ANSWER,
            now=10.0,
        )
        # Link-dead glue is dead for replacement purposes too: a fresh
        # authoritative answer takes the slot outright.
        assert cache.put(
            a_rrset("srv.example.com.", ttl=120, address="203.0.113.9"),
            Credibility.AUTH_ANSWER,
            now=10.0,
        )
        entry = cache.get(Name("srv.example.com."), RdataType.A, now=10.0)
        assert entry is not None
        assert entry.linked_to is None  # the new entry stands alone
