"""Differential tests: the heap-based cache vs an O(n)-scan reference.

The production :class:`~repro.resolver.cache.Cache` keeps its maintenance
O(log n) with a lazy expiry heap and link-death marks.  That machinery is
an optimisation only: observable behaviour must match the specification,
which this module states in its simplest possible form — an eager
O(n)-scan reference model with no heap, no marks, no generation index
beyond a counter.  Hypothesis drives both implementations through the
same operation sequences and every return value, statistic, and membership
snapshot must agree.

Eviction under ``max_entries`` has intentionally unspecified victim
*order* among equally-dead entries, so the bounded-cache test compares
aggregates (size, eviction count, dead-before-live preference) rather
than exact membership; the unbounded tests compare everything.
"""

from __future__ import annotations

from typing import Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.name import Name
from repro.dns.rdtypes import A, RdataClass, RdataType
from repro.dns.record import RRset
from repro.resolver.cache import Cache, CacheEntry, CacheStats, Credibility

# A small closed world keeps collisions (refreshes, link chains, downgrades)
# frequent enough for hypothesis to exercise every replacement rule.
NAMES = [Name(f"n{i}.example") for i in range(5)]
QTYPE = RdataType.A


class ScanReferenceCache:
    """The cache specification, implemented the obvious slow way.

    Every lookup re-derives liveness by direct inspection and every purge
    or eviction walks all entries.  No auxiliary structure exists that
    could drift out of sync — which is exactly what makes it a trustworthy
    oracle for the heap-based implementation.
    """

    def __init__(self, max_ttl=None, min_ttl=0, max_entries=None):
        self._entries: dict[tuple, CacheEntry] = {}
        self._negatives: dict[tuple, object] = {}
        self._generations: dict[tuple, int] = {}
        self.max_ttl = max_ttl
        self.min_ttl = min_ttl
        self.max_entries = max_entries
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def effective_ttl(self, ttl: int) -> int:
        effective = ttl
        if self.max_ttl is not None:
            effective = min(effective, self.max_ttl)
        return max(effective, self.min_ttl)

    def _is_dead(self, entry: CacheEntry, now: float) -> bool:
        if now >= entry.expires_at:
            return True
        if entry.linked_to is not None:
            target_key, generation = entry.linked_to
            target = self._entries.get(target_key)
            if (
                target is None
                or target.generation != generation
                or now >= target.expires_at
            ):
                return True
        return False

    def put(self, rrset, credibility, now, linked_to=None, pin=False) -> bool:
        key = (rrset.name, rrset.rdtype, rrset.rdclass)
        existing = self._entries.get(key)
        if existing is not None and not self._is_dead(existing, now):
            refreshable = credibility > existing.credibility or (
                credibility == existing.credibility
                and credibility >= Credibility.AUTH_ANSWER
            )
            if existing.pinned or not refreshable:
                self.stats.refused_downgrades += 1
                return False
        generation = self._generations.get(key, 0) + 1
        self._generations[key] = generation
        link = None
        if linked_to is not None:
            target = self._entries.get(linked_to)
            if target is not None:
                link = (linked_to, target.generation)
        ttl = self.effective_ttl(rrset.ttl)
        if existing is not None:
            del self._entries[key]
        self._entries[key] = CacheEntry(
            rrset=rrset,
            credibility=credibility,
            inserted_at=now,
            expires_at=now + ttl,
            generation=generation,
            linked_to=link,
            pinned=pin,
        )
        self.stats.inserts += 1
        self._evict_if_full(now)
        return True

    def _evict_if_full(self, now: float) -> None:
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            victim = None
            for key, entry in self._entries.items():  # dead first, any order
                if self._is_dead(entry, now):
                    victim = key
                    break
            if victim is None:
                for key, entry in self._entries.items():  # then LRU unpinned
                    if not entry.pinned:
                        victim = key
                        break
            if victim is None:
                victim = next(iter(self._entries))  # all pinned
            del self._entries[victim]
            self.stats.evictions += 1

    def peek(self, name, rdtype, rdclass=RdataClass.IN):
        return self._entries.get((name, rdtype, rdclass))

    def get(
        self,
        name,
        rdtype,
        now,
        rdclass=RdataClass.IN,
        min_credibility=Credibility.ADDITIONAL,
        follow_links=True,
    ):
        key = (name, rdtype, rdclass)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        dead = self._is_dead(entry, now) if follow_links else now >= entry.expires_at
        if dead or entry.credibility < min_credibility:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if self.max_entries is not None and next(reversed(self._entries)) != key:
            del self._entries[key]
            self._entries[key] = entry
        return entry

    def get_stale(self, name, rdtype, rdclass=RdataClass.IN):
        entry = self._entries.get((name, rdtype, rdclass))
        if entry is not None:
            self.stats.stale_hits += 1
        return entry

    def put_negative(self, qname, qtype, nxdomain, now, ttl=300) -> None:
        self._negatives[(qname, qtype)] = (nxdomain, now + self.effective_ttl(ttl))

    def get_negative(self, qname, qtype, now):
        cached = self._negatives.get((qname, qtype))
        if cached is None or now >= cached[1]:
            self.stats.negative_misses += 1
            return None
        self.stats.negative_hits += 1
        return cached

    def refresh_expiry(self, key, now) -> None:
        entry = self._entries.get(key)
        if entry is None:
            return
        lifetime = entry.expires_at - entry.inserted_at
        entry.inserted_at = now
        entry.expires_at = now + lifetime

    def expire_now(self, key, now) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            entry.expires_at = now

    def purge_expired(self, now: float) -> int:
        removed = 0
        for key in [k for k, e in self._entries.items() if e.is_expired(now)]:
            del self._entries[key]
            self.stats.evictions += 1
            removed += 1
        for key in [k for k, (_, dies) in self._negatives.items() if now >= dies]:
            del self._negatives[key]
            removed += 1
        return removed


# -- operation language -------------------------------------------------------

name_ix = st.integers(min_value=0, max_value=len(NAMES) - 1)
ttls = st.integers(min_value=0, max_value=500)
credibilities = st.sampled_from(list(Credibility))
deltas = st.floats(min_value=0.0, max_value=400.0, allow_nan=False)

operations = st.one_of(
    st.tuples(
        st.just("put"), name_ix, ttls, credibilities, st.booleans(),
        st.one_of(st.none(), name_ix),  # linked_to target
    ),
    st.tuples(st.just("get"), name_ix, credibilities, st.booleans()),
    st.tuples(st.just("peek"), name_ix),
    st.tuples(st.just("stale"), name_ix),
    st.tuples(st.just("put_neg"), name_ix, st.booleans(), ttls),
    st.tuples(st.just("get_neg"), name_ix),
    st.tuples(st.just("refresh"), name_ix),
    st.tuples(st.just("expire"), name_ix),
    st.tuples(st.just("purge"),),
    st.tuples(st.just("advance"), deltas),
)


def _snapshot(entry: Optional[CacheEntry]):
    """The observable projection of an entry (internal bookkeeping omitted)."""
    if entry is None:
        return None
    return (
        entry.rrset.name,
        entry.rrset.rdtype,
        entry.rrset.ttl,
        tuple(str(r) for r in entry.rrset.rdatas),
        entry.credibility,
        entry.inserted_at,
        entry.expires_at,
        entry.pinned,
    )


def _stats_tuple(stats: CacheStats):
    return (
        stats.hits,
        stats.misses,
        stats.stale_hits,
        stats.inserts,
        stats.refused_downgrades,
        stats.evictions,
        stats.negative_hits,
        stats.negative_misses,
    )


def _key(ix):
    return (NAMES[ix], QTYPE, RdataClass.IN)


def _drive(real: Cache, reference: ScanReferenceCache, ops, *, compare_membership):
    now = 0.0
    octet = 0
    for op in ops:
        kind = op[0]
        if kind == "put":
            _, ix, ttl, cred, pin, link_ix = op
            octet += 1
            rrset = RRset(NAMES[ix], QTYPE, ttl, [A(f"192.0.2.{octet % 256}")])
            linked = _key(link_ix) if link_ix is not None else None
            assert real.put(rrset, cred, now=now, linked_to=linked, pin=pin) == \
                reference.put(rrset, cred, now=now, linked_to=linked, pin=pin)
        elif kind == "get":
            _, ix, min_cred, follow = op
            assert _snapshot(
                real.get(NAMES[ix], QTYPE, now=now, min_credibility=min_cred,
                         follow_links=follow)
            ) == _snapshot(
                reference.get(NAMES[ix], QTYPE, now=now, min_credibility=min_cred,
                              follow_links=follow)
            )
        elif kind == "peek":
            if compare_membership:
                assert _snapshot(real.peek(NAMES[op[1]], QTYPE)) == _snapshot(
                    reference.peek(NAMES[op[1]], QTYPE)
                )
        elif kind == "stale":
            if compare_membership:
                assert _snapshot(real.get_stale(NAMES[op[1]], QTYPE)) == _snapshot(
                    reference.get_stale(NAMES[op[1]], QTYPE)
                )
        elif kind == "put_neg":
            _, ix, nxdomain, ttl = op
            soa = None  # default 300 s negative TTL path
            real.put_negative(NAMES[ix], QTYPE, nxdomain, now=now, soa=soa)
            reference.put_negative(NAMES[ix], QTYPE, nxdomain, now=now)
        elif kind == "get_neg":
            got = real.get_negative(NAMES[op[1]], QTYPE, now=now)
            expected = reference.get_negative(NAMES[op[1]], QTYPE, now=now)
            assert (got is None) == (expected is None)
            if got is not None:
                assert (got.nxdomain, got.expires_at) == expected
        elif kind == "refresh":
            real.refresh_expiry(_key(op[1]), now=now)
            reference.refresh_expiry(_key(op[1]), now=now)
        elif kind == "expire":
            real.expire_now(_key(op[1]), now=now)
            reference.expire_now(_key(op[1]), now=now)
        elif kind == "purge":
            assert real.purge_expired(now) == reference.purge_expired(now)
        elif kind == "advance":
            now += op[1]
        if compare_membership:
            assert len(real) == len(reference)
            assert _stats_tuple(real.stats) == _stats_tuple(reference.stats)
    return now


@settings(max_examples=200, deadline=None)
@given(st.lists(operations, max_size=40))
def test_unbounded_cache_matches_scan_reference(ops):
    """With no size bound, every observable — return values, membership,
    statistics — is identical between the heap cache and the eager scans."""
    _drive(Cache(), ScanReferenceCache(), ops, compare_membership=True)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(operations, max_size=40),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=30),
)
def test_clamped_cache_matches_scan_reference(ops, max_ttl, min_ttl):
    """TTL clamping composes identically with every other rule."""
    _drive(
        Cache(max_ttl=max_ttl, min_ttl=min_ttl),
        ScanReferenceCache(max_ttl=max_ttl, min_ttl=min_ttl),
        ops,
        compare_membership=True,
    )


@settings(max_examples=100, deadline=None)
@given(st.lists(operations, max_size=40), st.integers(min_value=1, max_value=4))
def test_bounded_cache_matches_scan_reference_aggregates(ops, max_entries):
    """Under LRU pressure the victim order among dead entries is
    unspecified, so membership may legally differ — but the size bound,
    the insert/eviction totals, and the dead-before-live preference must
    still agree with the reference."""
    real = Cache(max_entries=max_entries)
    reference = ScanReferenceCache(max_entries=max_entries)
    now = _drive(real, reference, ops, compare_membership=False)
    assert len(real) <= max_entries and len(reference) <= max_entries
    assert len(real) == len(reference)
    assert real.stats.inserts == reference.stats.inserts
    assert real.stats.refused_downgrades == reference.stats.refused_downgrades
    # Dead-preference: the reference always evicts a dead entry when one
    # exists, so it retains at least as many live entries as possible; the
    # real cache must match that count (its victim *identity* may differ,
    # its dead/live split may not).
    live_real = sum(1 for e in real._entries.values() if not real._is_dead(e, now))
    live_ref = sum(
        1 for e in reference._entries.values() if not reference._is_dead(e, now)
    )
    assert live_real == live_ref


@settings(max_examples=100, deadline=None)
@given(st.lists(operations, max_size=40), st.integers(min_value=1, max_value=4))
def test_bounded_cache_eviction_counts_match(ops, max_entries):
    """Both implementations evict exactly the overflow per put, so the
    running eviction count (before any purge) is identical."""
    real = Cache(max_entries=max_entries)
    reference = ScanReferenceCache(max_entries=max_entries)
    purged = {"real": 0, "ref": 0}
    now = 0.0
    octet = 0
    for op in ops:
        if op[0] == "put":
            _, ix, ttl, cred, pin, link_ix = op
            octet += 1
            rrset = RRset(NAMES[ix], QTYPE, ttl, [A(f"192.0.2.{octet % 256}")])
            linked = _key(link_ix) if link_ix is not None else None
            real.put(rrset, cred, now=now, linked_to=linked, pin=pin)
            reference.put(rrset, cred, now=now, linked_to=linked, pin=pin)
            assert real.stats.evictions - purged["real"] == (
                reference.stats.evictions - purged["ref"]
            )
            assert len(real) == len(reference)
        elif op[0] == "advance":
            now += op[1]
        elif op[0] == "purge":
            purged["real"] += real.purge_expired(now)
            purged["ref"] += reference.purge_expired(now)
