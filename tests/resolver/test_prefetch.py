"""Tests for the prefetch extension (Pappas et al. renewal, paper §7).

Prefetch is routed through the repro.predict refresh scheduler: a hit
inside the prefetch window *schedules* a refresh due immediately, and
the refresh executes on the next pump — the start of the next
``resolve()`` call, or an explicit ``pump()``.  The triggering client is
never charged for the refresh.
"""

from repro.dns.rdtypes import RdataType
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver


def make_resolver(world, policy):
    return RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU),
        network=world.network,
        root_hints=world.hints,
        policy=policy,
    )


class TestPrefetch:
    def test_hit_near_expiry_triggers_refresh(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        sent_before = resolver.queries_sent
        # TTL 60: a hit at t=55 is inside the last 10% of lifetime.
        out = resolver.resolve("www.example.tld.", RdataType.A, now=55.0)
        assert out.cache_hit  # the client still gets the cached answer
        assert resolver.queries_sent == sent_before  # nothing ran inline
        assert resolver.pump(55.0) == 1
        assert resolver.queries_sent > sent_before  # refresh happened

    def test_refresh_extends_lifetime(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        resolver.resolve("www.example.tld.", RdataType.A, now=55.0)  # schedules
        # The next call pumps first (refresh runs back-dated to t=55),
        # so past the original expiry the answer is a refreshed hit.
        out = resolver.resolve("www.example.tld.", RdataType.A, now=90.0)
        assert out.cache_hit

    def test_hit_far_from_expiry_does_not_refresh(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        sent_before = resolver.queries_sent
        out = resolver.resolve("www.example.tld.", RdataType.A, now=10.0)
        assert out.cache_hit
        assert resolver.pump(10.0) == 0  # nothing was scheduled
        assert resolver.queries_sent == sent_before

    def test_prefetch_is_free_for_the_client(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        out = resolver.resolve("www.example.tld.", RdataType.A, now=55.0)
        assert out.elapsed == 0.0
        # ...and stays free on the call that actually runs the refresh.
        out = resolver.resolve("www.example.tld.", RdataType.A, now=56.0)
        assert out.elapsed == 0.0
        assert out.cache_hit

    def test_disabled_by_default(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.child_centric())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        sent_before = resolver.queries_sent
        resolver.resolve("www.example.tld.", RdataType.A, now=55.0)
        assert resolver.pump(55.0) == 0
        assert resolver.queries_sent == sent_before

    def test_prefetch_survives_server_outage(self, mini_world):
        """A failed refresh must not break the client-facing hit."""
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        mini_world.network.loss.take_down(
            mini_world.child_server.endpoint.address
        )
        out = resolver.resolve("www.example.tld.", RdataType.A, now=55.0)
        assert out.cache_hit
        resolver.pump(55.0)  # the refresh fails; must not raise
        out = resolver.resolve("www.example.tld.", RdataType.A, now=58.0)
        assert out.cache_hit  # original entry still live and served

    def test_custom_window(self, mini_world):
        policy = ResolverPolicy(prefetch=True, prefetch_window=0.5)
        resolver = make_resolver(mini_world, policy)
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        sent_before = resolver.queries_sent
        resolver.resolve("www.example.tld.", RdataType.A, now=35.0)  # 42% left
        assert resolver.pump(35.0) == 1
        assert resolver.queries_sent > sent_before

    def test_refresh_deduplicated_across_hits(self, mini_world):
        """Many hits in the window schedule exactly one refresh."""
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        sent_before = resolver.queries_sent
        for at in (55.0, 55.5, 56.0, 56.5):
            resolver.resolve("www.example.tld.", RdataType.A, now=at)
        # The t=55.5 call pumped the job scheduled at t=55; later hits
        # re-arm at most one further job for the refreshed entry.
        assert resolver.queries_sent - sent_before <= 2
