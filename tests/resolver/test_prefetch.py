"""Tests for the prefetch extension (Pappas et al. renewal, paper §7)."""

from repro.dns.rdtypes import RdataType
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver


def make_resolver(world, policy):
    return RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU),
        network=world.network,
        root_hints=world.hints,
        policy=policy,
    )


class TestPrefetch:
    def test_hit_near_expiry_triggers_refresh(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        sent_before = resolver.queries_sent
        # TTL 60: a hit at t=55 is inside the last 10% of lifetime.
        out = resolver.resolve("www.example.tld.", RdataType.A, now=55.0)
        assert out.cache_hit  # the client still gets the cached answer
        assert resolver.queries_sent > sent_before  # refresh happened

    def test_refresh_extends_lifetime(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        resolver.resolve("www.example.tld.", RdataType.A, now=55.0)  # prefetch
        # Past the original expiry, the answer is still a (refreshed) hit.
        out = resolver.resolve("www.example.tld.", RdataType.A, now=90.0)
        assert out.cache_hit

    def test_hit_far_from_expiry_does_not_refresh(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        sent_before = resolver.queries_sent
        out = resolver.resolve("www.example.tld.", RdataType.A, now=10.0)
        assert out.cache_hit
        assert resolver.queries_sent == sent_before

    def test_prefetch_is_free_for_the_client(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        out = resolver.resolve("www.example.tld.", RdataType.A, now=55.0)
        assert out.elapsed == 0.0

    def test_disabled_by_default(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.child_centric())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        sent_before = resolver.queries_sent
        resolver.resolve("www.example.tld.", RdataType.A, now=55.0)
        assert resolver.queries_sent == sent_before

    def test_prefetch_survives_server_outage(self, mini_world):
        """A failed refresh must not break the client-facing hit."""
        resolver = make_resolver(mini_world, ResolverPolicy.prefetching())
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        mini_world.network.loss.take_down(
            mini_world.child_server.endpoint.address
        )
        out = resolver.resolve("www.example.tld.", RdataType.A, now=55.0)
        assert out.cache_hit

    def test_custom_window(self, mini_world):
        policy = ResolverPolicy(prefetch=True, prefetch_window=0.5)
        resolver = make_resolver(mini_world, policy)
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)
        sent_before = resolver.queries_sent
        resolver.resolve("www.example.tld.", RdataType.A, now=35.0)  # 42% left
        assert resolver.queries_sent > sent_before
