"""Tests for repro.resolver.policy."""

import pytest

from repro.resolver.policy import Centricity, ResolverPolicy, ServerSelection


class TestArchetypes:
    def test_child_centric_defaults(self):
        policy = ResolverPolicy.child_centric()
        assert policy.centricity is Centricity.CHILD
        assert policy.ttl_cap is None
        assert policy.link_inbailiwick_glue
        assert policy.target_fetch
        assert not policy.answer_from_referral

    def test_parent_centric(self):
        policy = ResolverPolicy.parent_centric()
        assert policy.centricity is Centricity.PARENT
        assert policy.answer_from_referral
        assert not policy.target_fetch

    def test_capping_default_is_google_value(self):
        assert ResolverPolicy.capping().ttl_cap == 21599

    def test_sticky(self):
        policy = ResolverPolicy.sticky_resolver()
        assert policy.sticky and not policy.target_fetch

    def test_local_root(self):
        policy = ResolverPolicy.local_root()
        assert policy.rfc7706_local_root
        assert policy.centricity is Centricity.PARENT

    def test_unlinked(self):
        assert not ResolverPolicy.unlinked().link_inbailiwick_glue


class TestValidation:
    def test_cap_below_floor_rejected(self):
        with pytest.raises(ValueError):
            ResolverPolicy(ttl_cap=10, ttl_floor=60)

    def test_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            ResolverPolicy().sticky = True  # type: ignore[misc]


class TestWith:
    def test_with_overrides(self):
        policy = ResolverPolicy.child_centric().with_(serve_stale=True)
        assert policy.serve_stale
        assert policy.centricity is Centricity.CHILD

    def test_with_does_not_mutate(self):
        base = ResolverPolicy.child_centric()
        base.with_(serve_stale=True)
        assert not base.serve_stale


class TestDescribe:
    def test_plain_child(self):
        assert ResolverPolicy.child_centric().describe() == "child"

    def test_composite(self):
        policy = ResolverPolicy.capping(21599).with_(serve_stale=True)
        label = policy.describe()
        assert "cap21599" in label and "serve-stale" in label and "child" in label

    def test_sticky_label(self):
        assert "sticky" in ResolverPolicy.sticky_resolver().describe()

    def test_unlinked_label(self):
        assert "unlinked" in ResolverPolicy.unlinked().describe()

    def test_rfc7706_label(self):
        assert "rfc7706" in ResolverPolicy.local_root().describe()


class TestServerSelection:
    def test_default_is_rotate(self):
        # Paper §3.4: resolvers rotate between authoritative servers.
        assert ResolverPolicy().server_selection is ServerSelection.ROTATE
