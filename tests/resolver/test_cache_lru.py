"""Tests for the bounded-cache (LRU) behaviour."""

import pytest

from repro.dns.name import Name
from repro.dns.rdtypes import A, RdataType
from repro.dns.record import RRset
from repro.resolver.cache import Cache, Credibility


def rrset(index: int, ttl: int = 3600) -> RRset:
    return RRset(Name(f"h{index}.example."), RdataType.A, ttl,
                 [A(f"192.0.2.{index % 250}")])


def fill(cache: Cache, count: int, now: float = 0.0, **put_kwargs) -> None:
    for index in range(count):
        cache.put(rrset(index), Credibility.AUTH_ANSWER, now=now, **put_kwargs)


class TestBounds:
    def test_unbounded_by_default(self):
        cache = Cache()
        fill(cache, 500)
        assert len(cache) == 500

    def test_bound_enforced(self):
        cache = Cache(max_entries=10)
        fill(cache, 50)
        assert len(cache) == 10
        assert cache.stats.evictions == 40

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            Cache(max_entries=0)


class TestEvictionOrder:
    def test_least_recently_used_evicted_first(self):
        cache = Cache(max_entries=3)
        fill(cache, 3)
        # Touch h0 so h1 becomes the LRU victim.
        assert cache.get(Name("h0.example."), RdataType.A, now=1.0) is not None
        cache.put(rrset(99), Credibility.AUTH_ANSWER, now=2.0)
        assert cache.peek(Name("h1.example."), RdataType.A) is None
        assert cache.peek(Name("h0.example."), RdataType.A) is not None

    def test_dead_entries_evicted_before_live(self):
        cache = Cache(max_entries=3)
        cache.put(rrset(0, ttl=1), Credibility.AUTH_ANSWER, now=0.0)  # dies at t=1
        cache.put(rrset(1), Credibility.AUTH_ANSWER, now=0.0)
        cache.put(rrset(2), Credibility.AUTH_ANSWER, now=0.0)
        cache.put(rrset(3), Credibility.AUTH_ANSWER, now=10.0)  # h0 is dead now
        assert cache.peek(Name("h0.example."), RdataType.A) is None
        assert cache.peek(Name("h1.example."), RdataType.A) is not None

    def test_pinned_entries_evicted_last(self):
        cache = Cache(max_entries=2)
        cache.put(rrset(0), Credibility.ADDITIONAL, now=0.0, pin=True)
        cache.put(rrset(1), Credibility.AUTH_ANSWER, now=0.0)
        cache.put(rrset(2), Credibility.AUTH_ANSWER, now=0.0)
        assert cache.peek(Name("h0.example."), RdataType.A) is not None  # pinned kept
        assert len(cache) == 2


class TestBoundedResolverStillWorks:
    def test_resolution_with_tiny_cache(self, mini_world):
        """A resolver with a pathologically small cache must still resolve
        (it just re-fetches infrastructure constantly)."""
        from repro.dns.message import Rcode
        from repro.net.topology import Region
        from repro.resolver.recursive import RecursiveResolver

        resolver = RecursiveResolver(
            endpoint=mini_world.topology.endpoint_in_region(Region.EU),
            network=mini_world.network,
            root_hints=mini_world.hints,
        )
        resolver.cache.max_entries = 2
        for i in range(4):
            out = resolver.resolve("www.example.tld.", RdataType.A, now=float(i * 10))
            assert out.rcode == Rcode.NOERROR
        assert resolver.cache.stats.evictions > 0
