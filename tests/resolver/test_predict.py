"""Integration tests for repro.predict wired into the resolver.

Covers RFC 8767 stale-while-revalidate, popularity-gated refresh-ahead,
the expiry feed, restart hygiene, and the refresh-hit metric.
"""

import pytest

from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.metrics import MetricsRegistry
from repro.net.topology import Region
from repro.predict import PredictPolicy
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver

WWW = "www.example.tld."


def make_resolver(world, policy, registry=None):
    if registry is not None:
        world.network.attach_metrics(registry)
    return RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU),
        network=world.network,
        root_hints=world.hints,
        policy=policy,
    )


class TestStaleWhileRevalidate:
    def test_expired_entry_answers_immediately(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.predictive())
        resolver.resolve(WWW, RdataType.A, now=0.0)
        # TTL 60: by t=100 the entry is expired.  Upstream is down, but
        # RFC 8767 never even tries it on this query.
        mini_world.network.loss.take_down(mini_world.child_server.endpoint.address)
        out = resolver.resolve(WWW, RdataType.A, now=100.0)
        assert out.rcode == Rcode.NOERROR
        assert out.served_stale
        assert out.elapsed == 0.0  # no failed walk charged to the client
        assert not out.cache_hit

    def test_stale_answer_ttl_is_capped(self, mini_world):
        policy = ResolverPolicy.predictive(PredictPolicy(stale_answer_ttl=17))
        resolver = make_resolver(mini_world, policy)
        resolver.resolve(WWW, RdataType.A, now=0.0)
        out = resolver.resolve(WWW, RdataType.A, now=100.0)
        assert out.served_stale
        assert out.first_ttl() == 17

    def test_revalidation_repopulates_cache(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.predictive())
        resolver.resolve(WWW, RdataType.A, now=0.0)
        out = resolver.resolve(WWW, RdataType.A, now=100.0)
        assert out.served_stale  # revalidation queued, not yet run
        out = resolver.resolve(WWW, RdataType.A, now=101.0)  # pump runs it
        assert out.cache_hit
        assert not out.served_stale
        assert out.first_ttl() == 59  # refreshed at t=100, aged 1 s

    def test_stale_beyond_max_stale_is_not_served(self, mini_world):
        policy = ResolverPolicy.predictive(PredictPolicy(max_stale_s=30.0))
        resolver = make_resolver(mini_world, policy)
        resolver.resolve(WWW, RdataType.A, now=0.0)
        # Expired at 60; t=200 is 140 s stale, far past the 30 s bound.
        out = resolver.resolve(WWW, RdataType.A, now=200.0)
        assert not out.served_stale
        assert out.cache_hit is False  # resolved fresh upstream
        assert out.rcode == Rcode.NOERROR

    def test_swr_can_be_disabled(self, mini_world):
        policy = ResolverPolicy.predictive(
            PredictPolicy(serve_stale_while_revalidate=False)
        )
        resolver = make_resolver(mini_world, policy)
        resolver.resolve(WWW, RdataType.A, now=0.0)
        mini_world.network.loss.take_down(mini_world.child_server.endpoint.address)
        out = resolver.resolve(WWW, RdataType.A, now=100.0)
        assert out.rcode == Rcode.SERVFAIL  # the old fallback semantics

    def test_no_stale_data_still_resolves(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.predictive())
        out = resolver.resolve(WWW, RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert not out.served_stale


class TestRefreshAhead:
    def test_hot_name_is_refreshed_before_expiry(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.predictive())
        resolver.resolve(WWW, RdataType.A, now=0.0)
        resolver.resolve(WWW, RdataType.A, now=1.0)  # second arrival: hot
        sent_before = resolver.queries_sent
        # Inside the refresh window (lead = 10% of 60 s) the pump at the
        # start of this call runs the refresh — off the client path.
        out = resolver.resolve(WWW, RdataType.A, now=55.0)
        assert out.cache_hit
        assert out.elapsed == 0.0
        assert resolver.queries_sent > sent_before  # the refresh ran
        out = resolver.resolve(WWW, RdataType.A, now=90.0)  # past old expiry
        assert out.cache_hit

    def test_cold_name_is_not_refreshed(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.predictive())
        resolver.resolve(WWW, RdataType.A, now=0.0)  # one arrival: cold
        sent_before = resolver.queries_sent
        # The feed sees the entry expiring at t=60, but one arrival is
        # below min_hits: nothing is scheduled or sent.
        assert resolver.pump(59.0) == 0
        assert resolver.queries_sent == sent_before

    def test_expiry_feed_refreshes_without_a_triggering_hit(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.predictive())
        resolver.resolve(WWW, RdataType.A, now=0.0)
        resolver.resolve(WWW, RdataType.A, now=1.0)  # hot
        # No client hit near expiry — the expiry feed alone must arm the
        # refresh (entry expires at 60, due at 54, horizon 60 s).
        assert resolver.pump(55.0) == 1
        out = resolver.resolve(WWW, RdataType.A, now=90.0)
        assert out.cache_hit

    def test_refresh_hits_counted(self, mini_world):
        registry = MetricsRegistry()
        resolver = make_resolver(
            mini_world, ResolverPolicy.predictive(), registry=registry
        )
        resolver.resolve(WWW, RdataType.A, now=0.0)
        resolver.resolve(WWW, RdataType.A, now=1.0)
        resolver.pump(55.0)  # expiry feed + refresh
        resolver.resolve(WWW, RdataType.A, now=90.0)  # hit on refreshed gen
        snapshot = registry.snapshot()
        assert snapshot.value("predict.refreshes") == 1
        assert snapshot.value("predict.refresh_hits") == 1

    def test_stale_answered_counted(self, mini_world):
        registry = MetricsRegistry()
        resolver = make_resolver(
            mini_world, ResolverPolicy.predictive(), registry=registry
        )
        resolver.resolve(WWW, RdataType.A, now=0.0)
        resolver.resolve(WWW, RdataType.A, now=100.0)
        resolver.resolve(WWW, RdataType.A, now=101.0)  # pump: revalidation
        snapshot = registry.snapshot()
        assert snapshot.value("predict.stale_answered") == 1
        assert snapshot.value("predict.revalidations") == 1


class TestStormSafety:
    def test_refresh_budget_bounds_upstream_volume(self, mini_world):
        policy = ResolverPolicy.predictive(
            PredictPolicy(max_refresh_per_s=0.001, refresh_burst=1)
        )
        resolver = make_resolver(mini_world, policy)
        resolver.resolve(WWW, RdataType.A, now=0.0)
        resolver.resolve(WWW, RdataType.A, now=1.0)
        resolver.resolve(WWW, RdataType.AAAA, now=2.0)
        resolver.resolve(WWW, RdataType.AAAA, now=3.0)
        # Both records are hot and both expire at once — the bucket only
        # lets one refresh through.
        assert resolver.pump(59.0) == 1

    def test_failed_refresh_backs_off(self, mini_world):
        policy = ResolverPolicy.predictive(PredictPolicy(failure_backoff_s=100.0))
        resolver = make_resolver(mini_world, policy)
        resolver.resolve(WWW, RdataType.A, now=0.0)
        resolver.resolve(WWW, RdataType.A, now=1.0)
        mini_world.network.loss.take_down(mini_world.child_server.endpoint.address)
        assert resolver.pump(55.0) == 1  # refresh attempt fails
        sent_after_failure = resolver.queries_sent
        # The feed re-arms the key, but backoff holds it until t=155.
        assert resolver.pump(60.0) == 0
        assert resolver.queries_sent == sent_after_failure


class TestHygiene:
    def test_restart_clears_predict_state(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.predictive())
        resolver.resolve(WWW, RdataType.A, now=0.0)
        resolver.resolve(WWW, RdataType.A, now=55.0)
        resolver.restart()
        assert resolver.pump(56.0) == 0  # no jobs survive the restart
        out = resolver.resolve(WWW, RdataType.A, now=100.0)
        assert not out.served_stale  # no stale data survives either
        assert not out.cache_hit

    def test_describe_mentions_predict(self):
        policy = ResolverPolicy.predictive()
        assert "predict(" in policy.describe()

    def test_payload_round_trip(self):
        policy = PredictPolicy(track_top_k=7, max_refresh_per_s=3.5)
        assert PredictPolicy.from_payload(policy.to_payload()) == policy
        with pytest.raises(ValueError):
            PredictPolicy.from_payload({"nope": 1})

    def test_plain_policies_unaffected(self, mini_world):
        resolver = make_resolver(mini_world, ResolverPolicy.child_centric())
        assert resolver.pump(0.0) == 0
        out = resolver.resolve(WWW, RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
