"""Tests for repro.resolver.forwarder (multi-layer infrastructure, §4.4)."""

import pytest

from repro.dns.message import Rcode
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region
from repro.resolver.forwarder import ForwardingResolver
from repro.resolver.recursive import RecursiveResolver


def make_recursive(world, region=Region.EU):
    return RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(region),
        network=world.network,
        root_hints=world.hints,
    )


def make_forwarder(world, upstreams):
    return ForwardingResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU, "fwd"),
        upstreams=upstreams,
        latency=world.network.latency,
    )


class TestForwarding:
    def test_resolves_through_upstream(self, mini_world):
        forwarder = make_forwarder(mini_world, [make_recursive(mini_world)])
        out = forwarder.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert str(out.answers[-1].rdatas[0]) == "203.0.113.80"
        assert out.servers_contacted[0] == forwarder.upstreams[0].address

    def test_needs_upstreams(self, mini_world):
        with pytest.raises(ValueError):
            make_forwarder(mini_world, [])

    def test_local_cache_hit(self, mini_world):
        forwarder = make_forwarder(mini_world, [make_recursive(mini_world)])
        forwarder.resolve("www.example.tld.", RdataType.A, now=0.0)
        hit = forwarder.resolve("www.example.tld.", RdataType.A, now=5.0)
        assert hit.cache_hit
        assert forwarder.forwarded_queries == 1

    def test_forwarder_ttl_decays_through_layers(self, mini_world):
        upstream = make_recursive(mini_world)
        forwarder = make_forwarder(mini_world, [upstream])
        forwarder.resolve("www.example.tld.", RdataType.A, now=0.0)
        # Warm upstream + forwarder; 20 s later the forwarder's own cache
        # serves the remaining TTL.
        hit = forwarder.resolve("www.example.tld.", RdataType.A, now=20.0)
        assert hit.answers[-1].ttl <= 40

    def test_negative_answers_cached(self, mini_world):
        forwarder = make_forwarder(mini_world, [make_recursive(mini_world)])
        first = forwarder.resolve("missing.example.tld.", RdataType.A, now=0.0)
        assert first.rcode == Rcode.NXDOMAIN
        second = forwarder.resolve("missing.example.tld.", RdataType.A, now=1.0)
        assert second.cache_hit
        assert forwarder.forwarded_queries == 1

    def test_round_robin_fragments_caches(self, mini_world):
        """§4.4: different upstream backends hold different remaining TTLs,
        so a forwarder alternating between them sees a TTL mix."""
        up_a = make_recursive(mini_world)
        up_b = make_recursive(mini_world)
        forwarder = make_forwarder(mini_world, [up_a, up_b])
        # Warm backend A at t=0 via the forwarder, then query again at
        # t=30: round-robin sends the second query to cold backend B,
        # whose fresh answer has a *larger* TTL than A's aged copy.
        forwarder.resolve("www.example.tld.", RdataType.AAAA, now=0.0)
        forwarder.cache.clear()  # isolate upstream fragmentation
        second = forwarder.resolve("www.example.tld.", RdataType.AAAA, now=30.0)
        assert second.answers[-1].ttl >= 59  # fresh from backend B, not ~30
        assert up_a.client_queries == 1 and up_b.client_queries == 1

    def test_chained_forwarders(self, mini_world):
        upstream = make_recursive(mini_world)
        middle = make_forwarder(mini_world, [upstream])
        edge = ForwardingResolver(
            endpoint=mini_world.topology.endpoint_in_region(Region.EU, "edge"),
            upstreams=[middle],
            latency=mini_world.network.latency,
        )
        out = edge.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.NOERROR
        assert len(out.servers_contacted) >= 2

    def test_upstream_failure_propagates(self, mini_world):
        mini_world.network.loss.take_down(mini_world.child_server.endpoint.address)
        forwarder = make_forwarder(mini_world, [make_recursive(mini_world)])
        out = forwarder.resolve("www.example.tld.", RdataType.A, now=0.0)
        assert out.rcode == Rcode.SERVFAIL

    def test_forwarder_cap_applies(self, mini_world):
        forwarder = ForwardingResolver(
            endpoint=mini_world.topology.endpoint_in_region(Region.EU),
            upstreams=[make_recursive(mini_world)],
            latency=mini_world.network.latency,
            max_ttl=30,
        )
        forwarder.resolve("www.example.tld.", RdataType.A, now=0.0)
        hit = forwarder.resolve("www.example.tld.", RdataType.A, now=1.0)
        assert hit.answers[-1].ttl <= 30
