#!/usr/bin/env python3
"""The renumbering pitfall: how long does an old server keep your traffic?

Reproduces the paper's §4 controlled experiments at example scale.  A zone
operator renumbers their authoritative server (new machine, new address,
parent glue updated within seconds).  How long do resolvers keep sending
queries to the *old* machine?

- in-bailiwick server (glue): most resolvers drop the still-valid address
  when the NS set expires -> switch at the NS TTL (60 min);
- out-of-bailiwick server: the address record lives out its own TTL ->
  switch at the A TTL (120 min);
- sticky / parent-centric resolvers: much later, or never.

Run:  python examples/renumbering_pitfall.py
"""

from repro.core.effective_ttl import DelegationConfig, effective_switch_time
from repro.core.scenarios import scenario_bailiwick
from repro.resolver.policy import ResolverPolicy


def show_timeseries(run, label: str) -> None:
    print(f"\n{label}: fraction of answers from the NEW server, per 10-min round")
    rounds = sorted(run.switched_by_round)
    for round_index in rounds:
        fraction = run.switched_by_round[round_index]
        bar = "#" * int(fraction * 40)
        print(f"  t={round_index * 10:4d}m |{bar:<40s}| {fraction * 100:5.1f}%")


def main() -> None:
    print("== Analytical prediction (repro.core.effective_ttl) ==")
    config_in = DelegationConfig(
        parent_ns_ttl=3600, child_ns_ttl=3600,
        parent_glue_ttl=7200, child_address_ttl=7200, in_bailiwick=True,
    )
    config_out = DelegationConfig(
        parent_ns_ttl=3600, child_ns_ttl=3600,
        parent_glue_ttl=None, child_address_ttl=7200, in_bailiwick=False,
    )
    for config, label in ((config_in, "in-bailiwick"), (config_out, "out-of-bailiwick")):
        for policy, policy_label in (
            (ResolverPolicy.child_centric(), "typical resolver"),
            (ResolverPolicy.unlinked(), "unlinked resolver"),
            (ResolverPolicy.sticky_resolver(), "sticky resolver"),
        ):
            switch = effective_switch_time(config, policy)
            rendered = f"{switch // 60} min" if switch is not None else "never"
            print(f"  {label:17s} + {policy_label:17s}: switches after {rendered}")

    print("\n== Simulated measurement (paper Figures 6 and 7) ==")
    print("NS TTL 3600 s, server A TTL 7200 s, renumber at t=9 min.")
    in_run = scenario_bailiwick(seed=3, in_bailiwick=True, probes=120)
    out_run = scenario_bailiwick(seed=3, in_bailiwick=False, probes=120)
    show_timeseries(in_run, "IN-BAILIWICK (glue ties A to NS: switch at 60m)")
    show_timeseries(out_run, "OUT-OF-BAILIWICK (A trusted fully: switch at 120m)")

    sticky_share = len(out_run.sticky_vp_ids) / max(1, len(out_run.results.vp_ids()))
    print(f"\nsticky VPs out-of-bailiwick: {sticky_share * 100:.1f}% "
          "(parent-centric resolvers pinned the 2-day .com glue — paper §4.4)")
    print("\nOperational takeaway (paper §6.3): for in-bailiwick servers, set the")
    print("A/AAAA TTL at or below the NS TTL — that is how resolvers treat it anyway.")


if __name__ == "__main__":
    main()
