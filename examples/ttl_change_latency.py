#!/usr/bin/env python3
"""The .uy natural experiment: how a TTL change moves user latency.

Reproduces the paper's §5.3 result at example scale: Uruguay's ccTLD
raised its child NS TTL from 300 s to one day after seeing the authors'
data, and median query latency collapsed because the record stopped
falling out of resolver caches.

Run:  python examples/ttl_change_latency.py
"""

from repro.analysis.cdf import ECDF
from repro.analysis.latencystats import improvement_factor, regional_summaries
from repro.core.scenarios import scenario_uy_natural


def main() -> None:
    print("Measuring NS .uy from an Atlas-like population, every 10 minutes")
    print("for 2 hours, before (TTL 300 s) and after (TTL 86400 s)...\n")
    run = scenario_uy_natural(seed=7, probes=200, duration=7200)

    before = ECDF(run.before.rtts_ms())
    after = ECDF(run.after.rtts_ms())
    print(f"{'':12s} {'median':>9s} {'p75':>9s} {'p95':>9s} {'p99':>9s}")
    for label, cdf in (("TTL 300s", before), ("TTL 86400s", after)):
        print(
            f"{label:12s} {cdf.median:8.1f}ms {cdf.quantile(0.75):8.1f}ms "
            f"{cdf.quantile(0.95):8.1f}ms {cdf.quantile(0.99):8.1f}ms"
        )
    print(f"\nmedian improvement factor: "
          f"{improvement_factor(before.values, after.values):.1f}x")
    print("(paper: 28.7 ms -> 8 ms at the median; 183 -> 21 ms at p75)")

    print("\nPer region (paper Figure 10b — every region improves):")
    reg_before = regional_summaries(run.rtts_by_region("before"))
    reg_after = regional_summaries(run.rtts_by_region("after"))
    for region in sorted(reg_before, key=lambda r: r.name):
        if region not in reg_after:
            continue
        print(
            f"  {region.name}: {reg_before[region].median:7.1f} ms -> "
            f"{reg_after[region].median:6.1f} ms"
        )


if __name__ == "__main__":
    main()
