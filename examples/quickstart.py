#!/usr/bin/env python3
"""Quickstart: build a tiny DNS world, resolve through it, inspect TTLs.

Builds the paper's Table 1 world (Chile's .cl), runs a recursive resolver
against it with two different policies, and shows how the *same* record
yields different effective TTLs depending on the resolver's centricity —
the paper's core observation.

Run:  python examples/quickstart.py
"""

from repro.core.effective_ttl import DelegationConfig, effective_record_ttl
from repro.core.recommendations import OperatorKind, ZoneSituation, recommend
from repro.core.worlds import build_cl_world
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver


def main() -> None:
    world = build_cl_world(seed=42)

    print("== 1. Iterative resolution through root -> .cl -> example.cl ==")
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU, "quickstart-resolver"),
        network=world.network,
        root_hints=world.hints,
        policy=ResolverPolicy.child_centric(),
    )
    result = resolver.resolve("www.example.cl.", RdataType.A, now=0.0)
    print(f"rcode={result.rcode.name}  elapsed={result.elapsed * 1000:.1f} ms")
    for rrset in result.answers:
        print(f"  {rrset.to_text()}")
    print(f"servers contacted: {result.servers_contacted}")

    hit = resolver.resolve("www.example.cl.", RdataType.A, now=5.0)
    print(f"\nsame query 5 s later: cache_hit={hit.cache_hit}, "
          f"remaining TTL={hit.answers[-1].ttl} s, elapsed={hit.elapsed * 1000:.1f} ms")

    print("\n== 2. Which TTL wins? Parent vs child centricity (paper S3) ==")
    for policy, label in (
        (ResolverPolicy.child_centric(), "child-centric (RFC 2181 majority)"),
        (ResolverPolicy.parent_centric(), "parent-centric (OpenDNS-like)"),
    ):
        probe = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU),
            network=world.network,
            root_hints=world.hints,
            policy=policy,
        )
        answer = probe.resolve("cl.", RdataType.NS, now=0.0)
        print(f"  NS .cl via {label:36s} -> TTL {answer.answers[-1].ttl} s")

    print("\n== 3. The analytical model (repro.core.effective_ttl) ==")
    config = DelegationConfig(
        parent_ns_ttl=172800, child_ns_ttl=3600,
        parent_glue_ttl=172800, child_address_ttl=43200, in_bailiwick=True,
    )
    for policy, label in (
        (ResolverPolicy.child_centric(), "child-centric"),
        (ResolverPolicy.parent_centric(), "parent-centric"),
        (ResolverPolicy.capping(21599), "Google-like capping"),
    ):
        effective = effective_record_ttl(config, policy)
        print(f"  {label:22s}: NS {effective.ns_ttl:>6} s, "
              f"A {effective.address_ttl:>6} s, controlled by {effective.controller}")

    print("\n== 4. What should an operator configure? (paper S6.3) ==")
    situation = ZoneSituation(kind=OperatorKind.TLD_REGISTRY, controls_parent_ttl=False)
    print(recommend(situation).describe())


if __name__ == "__main__":
    main()
