#!/usr/bin/env python3
"""Audit a zone configuration against the paper's §6.3 guidance.

Parses a (built-in demo) master file for a zone resembling 2019's .uy —
short child TTLs, a 2-day parent delegation, an in-bailiwick server whose
A record outlives its NS set — and reports every issue the paper warns
about, then shows the fixed configuration passing clean.

Run:  python examples/operator_audit.py
"""

from repro.core.audit import audit_zone, render_report
from repro.dns.rdtypes import RdataType
from repro.dns.zonefile import parse_zone

CHILD_ZONE = """\
$ORIGIN uy.
$TTL 300
@         IN SOA a.nic.uy. hostmaster.nic.uy. 2019021401 7200 3600 1209600 300
@     300 IN NS  a.nic.uy.
a.nic 120 IN A   192.0.2.10
a.nic 7200 IN AAAA 2001:db8::10
www.nic   0 IN A 192.0.2.80        ; TTL 0: caching disabled
"""

PARENT_VIEW = """\
$ORIGIN .
$TTL 172800
uy.        172800 IN NS a.nic.uy.
a.nic.uy.  172800 IN A  192.0.2.10
"""


def main() -> None:
    print("== Auditing the 2019-style .uy configuration ==\n")
    child = parse_zone(CHILD_ZONE)
    parent = parse_zone(PARENT_VIEW)
    findings = audit_zone(child, parent)
    print(render_report(findings))

    print("\n== Applying the paper's recommendations ==")
    print("raising child NS TTL to 1 day (the operator's actual 2019-03-04")
    print("change), matching the A TTLs to the NS set, removing the TTL 0:\n")
    child.set_ttl("uy.", RdataType.NS, 86400)
    child.set_ttl("a.nic.uy.", RdataType.A, 86400)
    child.set_ttl("a.nic.uy.", RdataType.AAAA, 86400)
    child.set_ttl("www.nic.uy.", RdataType.A, 3600)
    parent.set_ttl("uy.", RdataType.NS, 86400)
    parent.set_ttl("a.nic.uy.", RdataType.A, 86400)
    print(render_report(audit_zone(child, parent)))
    print("\n(Measured effect of that TTL change: see "
          "examples/ttl_change_latency.py and benchmarks/bench_fig10_uy_latency.py.)")


if __name__ == "__main__":
    main()
