#!/usr/bin/env python3
"""Crawl TTLs in a synthetic wild: the paper's §5.1 pipeline, small scale.

Generates scaled-down Alexa/Majestic/Umbrella/.nl/root populations, hosts
them on simulated authoritatives, crawls parent and child TTLs for six
record types, and prints the headline observations (Figure 9 / Table 9).

Run:  python examples/crawl_ttls.py
"""

from repro.crawler import Crawler, build_crawl_universe
from repro.crawler.report import bailiwick_census, record_counts, ttl_cdf_by_type


def main() -> None:
    print("Generating five synthetic top lists and hosting them...")
    universe = build_crawl_universe(scale=0.001, seed=11)
    print(f"  {len(universe.domains)} domains across {len(universe.lists)} lists")

    crawler = Crawler(universe)
    result = crawler.crawl()
    print(f"  crawled with {crawler.queries_sent} direct queries "
          "(parent + child, no shared recursives)\n")

    print("== Response ratios and record counts (paper Table 5) ==")
    for name, block in record_counts(result).items():
        ns_ratio = block.unique_ratio("NS")
        shared = f", NS shared-hosting ratio {ns_ratio:.1f}" if ns_ratio else ""
        print(f"  {name:9s}: {block.responsive}/{block.domains} responsive "
              f"({block.ratio:.2f}){shared}")

    print("\n== TTL distributions (paper Figure 9) ==")
    cdfs = ttl_cdf_by_type(result)
    for name in ("Alexa", "Umbrella", "Root"):
        per_type = cdfs[name]
        parts = [
            f"{rtype} median {int(per_type[rtype].median)}s"
            for rtype in ("NS", "A") if rtype in per_type
        ]
        print(f"  {name:9s}: " + ", ".join(parts))
    print("  (NS and DNSKEY live longest; A/AAAA shortest; Umbrella shortest of all)")

    print("\n== Bailiwick configuration (paper Table 9) ==")
    for name, census in bailiwick_census(result).items():
        print(f"  {name:9s}: {census.percent_out:5.1f}% out-of-bailiwick-only "
              f"({census.respond_ns} NS responders, {census.cname} CNAME, "
              f"{census.soa} SOA)")
    print("\nPopular domains are overwhelmingly out-of-bailiwick; the root is an")
    print("even split — which is why §4's two experiments both matter in practice.")


if __name__ == "__main__":
    main()
