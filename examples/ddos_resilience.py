#!/usr/bin/env python3
"""Caching as DDoS insulation: long TTLs keep answers flowing (paper §6.1).

A zone's authoritative servers go down for an hour (a DDoS, as in the
2016 Dyn attack the paper cites).  Clients behind resolvers that cached
the records *before* the attack keep getting answers as long as the TTL
outlives the outage; short-TTL zones go dark almost immediately.
Serve-stale resolvers (RFC 8767) keep answering even past expiry.

The outage is driven through ``repro.faults`` — a declarative, seeded
:class:`FaultPlan` the scenario schedules against the virtual clock —
so the same failure is reproducible, parallelizable, and observable in
the metrics stream.  See docs/resilience.md for the fault-plan schema.

Run:  python examples/ddos_resilience.py
"""

from repro.analysis.tables import Table
from repro.core.scenarios import scenario_ddos_resilience

TTLS = (60, 300, 1800, 3600, 86400)
ATTACK_SECONDS = 3600.0


def main() -> None:
    print("Probing warmed resolvers through a one-hour authoritative outage")
    print("(one probe per 5-minute slot; the attack is a scheduled fault).\n")

    run = scenario_ddos_resilience(ttls=TTLS, attack_seconds=ATTACK_SECONDS)

    table = Table(
        ["TTL", "availability", "with serve-stale", "served stale"],
        title="§6.1: answer availability during the attack",
    )
    for ttl in TTLS:
        plain = run.tier(ttl, serve_stale=False)
        rescued = run.tier(ttl, serve_stale=True)
        table.add_row(
            f"{ttl}s",
            f"{plain.availability * 100:.0f}%",
            f"{rescued.availability * 100:.0f}%",
            f"{rescued.served_stale_fraction * 100:.0f}%",
        )
    print(table.render())

    metrics = run.metrics.to_payload()["metrics"]
    dropped = metrics["faults.injected"]["values"]["server_outage"]
    healed = metrics["faults.recovered"]["values"]["server_outage"]
    print(f"\nFault ledger: {dropped} transmissions dropped, "
          f"{healed} outage windows healed after the attack lifted.")
    print("Long TTLs ride out the outage (paper §6.1: 'caching is a key")
    print("component of DNS resilience... TTLs must be longer than the attack').")

    # The headline §6.1 shape, asserted so this example doubles as a check.
    profile = run.availability_profile(serve_stale=False)
    assert profile[60] == 0.0, profile
    assert profile[3600] == 1.0 and profile[86400] == 1.0, profile
    assert all(
        value == 1.0
        for value in run.availability_profile(serve_stale=True).values()
    ), "serve-stale should rescue every tier"


if __name__ == "__main__":
    main()
