#!/usr/bin/env python3
"""Caching as DDoS insulation: long TTLs keep answers flowing (paper §6.1).

A zone's authoritative servers go down for an hour (a DDoS, as in the
2016 Dyn attack the paper cites).  Clients behind resolvers that cached
the records *before* the attack keep getting answers as long as the TTL
outlives the outage; short-TTL zones go dark almost immediately.
Serve-stale resolvers (draft-ietf-dnsop-serve-stale) keep answering even
past expiry.

Run:  python examples/ddos_resilience.py
"""

from repro.dns.message import Rcode
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.zone import Zone
from repro.net.topology import Region, Topology
from repro.net.transport import Network
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver
from repro.server.authoritative import AuthoritativeServer

ATTACK_START = 600.0
ATTACK_END = ATTACK_START + 3600.0  # one hour of darkness


def build_world(answer_ttl: int):
    topology = Topology(seed=1)
    network = Network(seed=1)

    root_zone = Zone("", default_ttl=172800)
    root_zone.add_soa("a.rootsrv.net.")
    root_zone.add("", RdataType.NS, NS("a.rootsrv.net."), ttl=518400)
    root_server = AuthoritativeServer(
        topology.endpoint_in_region(Region.NA, "a.rootsrv.net"), [root_zone]
    )
    network.register(root_server)
    root_zone.add("a.rootsrv.net.", RdataType.A, A(root_server.endpoint.address))

    zone = Zone("shop.example.", default_ttl=answer_ttl)
    zone.add_soa("ns1.shop.example.")
    zone.add("shop.example.", RdataType.NS, NS("ns1.shop.example."), ttl=answer_ttl)
    server = AuthoritativeServer(
        topology.endpoint_in_region(Region.EU, "ns1.shop.example"), [zone]
    )
    network.register(server)
    zone.add("ns1.shop.example.", RdataType.A, A(server.endpoint.address), ttl=answer_ttl)
    zone.add("www.shop.example.", RdataType.A, A("203.0.113.10"), ttl=answer_ttl)
    root_zone.add("shop.example.", RdataType.NS, NS("ns1.shop.example."), ttl=172800)
    root_zone.add("ns1.shop.example.", RdataType.A, A(server.endpoint.address), ttl=172800)

    hints = {"a.rootsrv.net.": root_server.endpoint.address}
    from repro.dns.name import Name

    return topology, network, {Name(k): v for k, v in hints.items()}, server


def run(answer_ttl: int, policy: ResolverPolicy, label: str) -> None:
    topology, network, hints, server = build_world(answer_ttl)
    resolver = RecursiveResolver(
        endpoint=topology.endpoint_in_region(Region.EU, "res"),
        network=network,
        root_hints=hints,
        policy=policy,
    )
    # Warm the cache before the attack, then probe every 10 minutes.
    outcomes = []
    for t in range(0, int(ATTACK_END + 1200), 600):
        if t == ATTACK_START:
            network.loss.take_down(server.endpoint.address)
        if t == ATTACK_END:
            network.loss.bring_up(server.endpoint.address)
        result = resolver.resolve("www.shop.example.", RdataType.A, now=float(t))
        ok = result.rcode == Rcode.NOERROR and result.answers
        stale = "~" if result.served_stale else ("+" if ok else "-")
        outcomes.append(stale)
    print(f"  {label:34s} |{''.join(outcomes)}|")


def main() -> None:
    print("One query per 10-minute slot; attack from t=10m to t=70m.")
    print("'+' answered from cache/authoritative, '~' served stale, '-' SERVFAIL\n")
    print(f"  {'configuration':34s} |{'0123456789'[:9]}| (slots)")
    run(60, ResolverPolicy.child_centric(), "TTL 60s (CDN-style)")
    run(3600, ResolverPolicy.child_centric(), "TTL 3600s (paper's floor)")
    run(86400, ResolverPolicy.child_centric(), "TTL 86400s (paper's preference)")
    run(60, ResolverPolicy.child_centric().with_(serve_stale=True),
        "TTL 60s + serve-stale resolver")
    print("\nLong TTLs ride out the outage (paper §6.1: 'caching is a key")
    print("component of DNS resilience... TTLs must be longer than the attack').")


if __name__ == "__main__":
    main()
