# Convenience targets for the reproduction harness.

.PHONY: install test bench examples audit-demo reports clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# The full deliverable run: logs captured alongside the repo.
reports:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	python examples/quickstart.py
	python examples/ttl_change_latency.py
	python examples/renumbering_pitfall.py
	python examples/crawl_ttls.py
	python examples/ddos_resilience.py
	python examples/operator_audit.py

clean:
	rm -rf .pytest_cache benchmarks/output build src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
