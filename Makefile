# Convenience targets for the reproduction harness.
#
# Every pytest invocation runs with PYTHONPATH=src so the targets work
# from a clean checkout, no `make install` required.

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: install test bench bench-perf perf-check docs-check examples audit-demo reports clean

install:
	python setup.py develop

# Mirrors the tier-1 verify command in ROADMAP.md.
test:
	$(PYTEST) -x -q

bench:
	$(PYTEST) benchmarks/ --benchmark-only

# Substrate micro-benches only; merges results into
# benchmarks/output/BENCH_perf.json, the machine-readable perf trajectory
# PRs are compared against (git_rev + timestamp stamped per flush).
bench-perf:
	$(PYTEST) benchmarks/bench_perf_substrate.py benchmarks/bench_serve_throughput.py benchmarks/bench_serve_worker_scaling.py benchmarks/bench_ecs_cache_cardinality.py benchmarks/bench_push_vs_poll.py --benchmark-only

# The CI perf-smoke gate: fresh bench-perf numbers must stay within 25%
# of the checked-in baseline_perf.json floors.  campaign_large also runs
# the cpu-aware campaign gate (single-worker uplift vs the
# campaign_throughput baseline; 4-worker speedup or bounded overhead).
perf-check:
	PYTHONPATH=src python benchmarks/check_perf.py warm_resolution campaign_throughput campaign_large serve_throughput_w1 --max-regression 0.25

# Docs stay honest: every repro.* package documented in README + API.md,
# every intra-repo markdown link resolves.  CI runs this as the docs job.
docs-check:
	python tools/check_docs.py

# The full deliverable run: logs captured alongside the repo.
reports:
	$(PYTEST) tests/ 2>&1 | tee test_output.txt
	$(PYTEST) benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	PYTHONPATH=src python examples/quickstart.py
	PYTHONPATH=src python examples/ttl_change_latency.py
	PYTHONPATH=src python examples/renumbering_pitfall.py
	PYTHONPATH=src python examples/crawl_ttls.py
	PYTHONPATH=src python examples/ddos_resilience.py
	PYTHONPATH=src python examples/operator_audit.py

clean:
	rm -rf .pytest_cache benchmarks/output build src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
