"""Table 10 — the controlled TTL experiments: client and authoritative view.

Paper: five experiments (TTL60/TTL86400 × unique/shared QNAMEs, plus a
45-site anycast at TTL60).  The long TTL cuts authoritative query volume
by ~77 % (127k→43k unique, 92.5k→20k shared).
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table, paper_vs_measured


def bench_table10(benchmark, controlled_runs):
    def summarize():
        rows = {}
        for label, run in controlled_runs.items():
            rows[label] = {
                "probes": run.client_summary["probes"],
                "vps": run.client_summary["vps"],
                "queries": run.client_summary["queries"],
                "valid": run.client_summary["responses_valid"],
                "auth_ips": run.auth_unique_ips,
                "auth_queries": run.auth_queries,
            }
        return rows

    rows = benchmark(summarize)
    labels = list(rows)
    table = Table(["metric", *labels], title="Table 10: TTL experiments")
    for metric in ("probes", "vps", "queries", "valid", "auth_ips", "auth_queries"):
        table.add_row(metric, *[rows[label][metric] for label in labels])
    reduction_u = 1 - rows["TTL86400-u"]["auth_queries"] / rows["TTL60-u"]["auth_queries"]
    reduction_s = 1 - rows["TTL86400-s"]["auth_queries"] / rows["TTL60-s"]["auth_queries"]
    report = table.render()
    report += "\n\n" + paper_vs_measured(
        "Table 10 calibration",
        [
            ("authoritative query reduction, unique QNAMEs", "66% (127k->43k)",
             f"{reduction_u * 100:.0f}%"),
            ("authoritative query reduction, shared QNAMEs", "78% (92.5k->20k)",
             f"{reduction_s * 100:.0f}%"),
        ],
    )
    write_report("table10_controlled", report)

    assert reduction_u > 0.5
    assert reduction_s > 0.5
