"""Figure 4 — CDF of minimum interarrival of A queries per group at .nl.

Paper: most resolvers re-query well before the parent's 2-day TTL
(child-centric), with "bumps" at multiples of one hour — resolvers
returning when the child's 3600 s TTL expires.
"""

from benchmarks.conftest import write_report
from repro.analysis.interarrival import hourly_bumps
from repro.analysis.tables import Table, paper_vs_measured, render_cdf


def bench_fig4(benchmark, nl_passive_run):
    run = nl_passive_run
    minima, bumps = benchmark(
        lambda: (run.min_interarrivals, hourly_bumps(run.min_interarrivals))
    )
    report = render_cdf(
        {"min interarrival": minima},
        title="Figure 4: CDF of minimum interarrival time per group (seconds)",
        unit="s",
    )
    bump_table = Table(["hour multiple", "groups"], title="Hourly bumps")
    for multiple in sorted(bumps):
        bump_table.add_row(multiple, bumps[multiple])
    report += "\n\n" + bump_table.render()
    under_parent = sum(1 for m in minima if m < 172800) / len(minima) if minima else 0
    report += "\n\n" + paper_vs_measured(
        "Figure 4 calibration",
        [
            ("multi-query groups re-querying inside the 2-day parent TTL",
             "most", f"{under_parent * 100:.1f}%"),
            ("bumps at 1-hour multiples (child A TTL 3600s)", "visible",
             f"{sum(bumps.values())} groups at multiples"),
        ],
    )
    write_report("fig4_nl_interarrival", report)

    assert bumps.get(1, 0) >= 1
