"""Table 3 — bailiwick experiment bookkeeping.

Paper: two 4-hour campaigns (in- and out-of-bailiwick) at 600 s frequency;
probes/VPs/queries/responses/valid/discarded, plus resolvers and ASes seen
from the client and authoritative sides.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table


def bench_table3(benchmark, bailiwick_runs):
    def summarize():
        rows = {}
        for label, run in bailiwick_runs.items():
            summary = dict(run.summary)
            auth_clients = set()
            auth_ases = set()
            for server in (run.world.old_server, run.world.new_server):
                log = server.query_log
                if log is not None:
                    auth_clients |= log.unique_clients()
                    auth_ases |= log.unique_client_ases()
            summary["auth_resolvers"] = len(auth_clients)
            summary["auth_ases"] = len(auth_ases)
            rows[label] = summary
        return rows

    rows = benchmark(summarize)
    table = Table(
        ["metric", "in-bailiwick", "out-of-bailiwick"],
        title="Table 3: bailiwick experiments",
    )
    for metric in (
        "probes", "probes_valid", "probes_discarded", "vps", "queries",
        "timeouts", "responses", "responses_valid", "responses_discarded",
        "resolvers", "ases", "auth_resolvers", "auth_ases",
    ):
        table.add_row(metric, rows["in"].get(metric, "-"), rows["out"].get(metric, "-"))
    report = table.render()
    report += (
        "\n\npaper: ~9.1k probes, ~15.6-16.1k VPs, 367k/387k queries; "
        "client-side resolvers 6.3k/6.6k, authoritative-side 13.1k/14.8k "
        "(ours is a scaled population; ratios are what matters)."
    )
    write_report("table3_bailiwick", report)

    assert rows["in"]["responses_valid"] > 0
    assert rows["out"]["responses_valid"] > 0
