"""CI perf-regression gate.

Compares ``output/BENCH_perf.json`` (fresh ``make bench-perf`` results)
against the checked-in ``baseline_perf.json`` and exits non-zero when a
named bench's ``ops_per_s`` fell more than the allowed fraction below its
baseline.  Faster-than-baseline is always a pass — the gate only guards
against regressions, the baseline is a floor, not a pin.

When the fresh records include the ``serve_worker_scaling_w{N}`` series
the gate also checks the *shape* of the worker curve: adding workers
must never cost throughput.  Where the host has at least as many CPUs
as the larger worker count the curve must be strictly increasing;
on smaller hosts (the 1-core CI container included) extra workers are
pure context-switch overhead and loopback numbers are noisy, so the
requirement relaxes to "no collapse": each step may cost at most the
scaling tolerance.

Usage::

    python benchmarks/check_perf.py warm_resolution [campaign_throughput ...] \
        [--max-regression 0.25] [--scaling-tolerance 0.5]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.perf_records import RECORDS_PATH, load_baseline  # noqa: E402

SCALING_PREFIX = "serve_worker_scaling_w"
CAMPAIGN_BENCH = "campaign_large"


def check_campaign_gate(
    current: dict,
    baseline: dict,
    *,
    min_uplift: float,
    speedup_floor: float,
    overhead_cap: float,
) -> bool:
    """Validate the large-campaign numbers recorded by bench_perf_campaign_large.

    Two checks, both skipped when the record is absent (partial bench
    runs):

    - single-worker throughput must reach ``min_uplift`` times the
      checked-in ``campaign_throughput`` baseline — the flattened-kernel
      dividend, judged against the *pre-optimization* floor;
    - the 4-worker run is judged by host class (the record's ``cpus``):
      with >= 4 CPUs the speedup must reach ``speedup_floor``; on
      smaller hosts (1-core CI) parallel workers cannot help, so the
      requirement relaxes to bounded overhead — parallel-4 wall within
      ``overhead_cap`` of serial wall.
    """
    record = current.get(CAMPAIGN_BENCH)
    if record is None:
        return True
    ok = True

    base = baseline.get("campaign_throughput", {}).get("ops_per_s")
    ops = record.get("ops_per_s")
    if base is None or ops is None:
        print(f"FAIL {CAMPAIGN_BENCH}: missing ops_per_s or campaign_throughput baseline")
        ok = False
    else:
        floor = base * min_uplift
        good = ops >= floor
        print(
            f"{'ok' if good else 'FAIL':>4} {CAMPAIGN_BENCH} single-worker: "
            f"{ops:,.1f} q/s vs {min_uplift:.2f}x campaign_throughput "
            f"baseline {base:,.1f} (floor {floor:,.1f}, {ops / base:.2f}x)"
        )
        ok = ok and good

    cpus = record.get("cpus") or 1
    speedup = record.get("speedup")
    serial = record.get("serial_wall_s")
    parallel = record.get("parallel4_wall_s")
    if cpus >= 4:
        good = speedup is not None and speedup >= speedup_floor
        print(
            f"{'ok' if good else 'FAIL':>4} {CAMPAIGN_BENCH} 4-worker: "
            f"speedup {speedup}x vs required {speedup_floor}x ({cpus} cpus)"
        )
    elif serial is None or parallel is None:
        print(f"FAIL {CAMPAIGN_BENCH}: missing serial/parallel wall times")
        good = False
    else:
        # CPU-starved host: workers can't speed anything up, but the
        # pool must not cost more than bounded overhead either.
        cap = serial * overhead_cap
        good = parallel <= cap
        print(
            f"{'ok' if good else 'FAIL':>4} {CAMPAIGN_BENCH} 4-worker: "
            f"wall {parallel:.2f}s vs serial {serial:.2f}s "
            f"(cap {cap:.2f}s = {overhead_cap:.2f}x, {cpus} cpu(s))"
        )
    return ok and good


def check_worker_curve(current: dict, tolerance: float) -> bool:
    """Validate the worker-scaling curve recorded by bench_serve_worker_scaling.

    Returns True when the curve is acceptable (or absent).  Points are
    compared pairwise in worker order; each record carries the ``cpus``
    the run saw, which decides whether "more workers" may legitimately
    fail to help.
    """
    points = []
    for name, fields in current.items():
        if not name.startswith(SCALING_PREFIX):
            continue
        try:
            workers = int(name[len(SCALING_PREFIX):])
        except ValueError:
            continue
        points.append((workers, fields))
    if len(points) < 2:
        return True

    points.sort()
    ok = True
    for (prev_workers, prev), (next_workers, fields) in zip(points, points[1:]):
        prev_ops, next_ops = prev.get("ops_per_s"), fields.get("ops_per_s")
        if prev_ops is None or next_ops is None:
            print(f"FAIL worker curve: w{prev_workers}->w{next_workers} missing ops_per_s")
            ok = False
            continue
        cpus = fields.get("cpus") or 1
        if cpus >= next_workers:
            # Enough cores to use every worker: the point must win outright.
            good = next_ops > prev_ops
            rule = "strict increase"
        else:
            # Oversubscribed: extra workers can't help, but they must not
            # collapse throughput either.
            floor = prev_ops * (1.0 - tolerance)
            good = next_ops >= floor
            rule = f"within {tolerance:.0%} of w{prev_workers} ({cpus} cpu(s))"
        verdict = "ok" if good else "FAIL"
        print(
            f"{verdict:>4} worker curve w{prev_workers}->w{next_workers}: "
            f"{prev_ops:,.1f} -> {next_ops:,.1f} ops/s [{rule}]"
        )
        ok = ok and good
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benches", nargs="+", help="bench names to gate (e.g. warm_resolution)")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional drop vs baseline ops_per_s (default 0.25)",
    )
    parser.add_argument(
        "--scaling-tolerance",
        type=float,
        default=0.5,
        help="allowed per-step drop in the worker curve on CPU-starved hosts; "
        "wide because 1-core loopback serving is noisy (default 0.5)",
    )
    parser.add_argument(
        "--campaign-min-uplift",
        type=float,
        default=1.3,
        help="required campaign_large single-worker q/s as a multiple of the "
        "campaign_throughput baseline (default 1.3)",
    )
    parser.add_argument(
        "--campaign-speedup",
        type=float,
        default=3.0,
        help="required 4-worker speedup for campaign_large on hosts with "
        ">=4 CPUs (default 3.0)",
    )
    parser.add_argument(
        "--campaign-overhead",
        type=float,
        default=1.15,
        help="on <4-CPU hosts: max parallel-4 wall as a multiple of serial "
        "wall for campaign_large (default 1.15)",
    )
    args = parser.parse_args(argv)

    if not RECORDS_PATH.exists():
        print(f"FAIL: {RECORDS_PATH} missing - run `make bench-perf` first")
        return 1
    current = json.loads(RECORDS_PATH.read_text()).get("benches", {})
    baseline = load_baseline()

    failed = False
    for name in args.benches:
        base = baseline.get(name, {}).get("ops_per_s")
        ops = current.get(name, {}).get("ops_per_s")
        if base is None:
            print(f"SKIP {name}: no baseline ops_per_s recorded")
            continue
        if ops is None:
            print(f"FAIL {name}: not present in {RECORDS_PATH.name}")
            failed = True
            continue
        floor = base * (1.0 - args.max_regression)
        verdict = "FAIL" if ops < floor else "ok"
        print(
            f"{verdict:>4} {name}: {ops:,.1f} ops/s vs baseline {base:,.1f} "
            f"(floor {floor:,.1f}, {ops / base:.2f}x)"
        )
        if ops < floor:
            failed = True

    if not check_worker_curve(current, args.scaling_tolerance):
        failed = True
    if not check_campaign_gate(
        current,
        baseline,
        min_uplift=args.campaign_min_uplift,
        speedup_floor=args.campaign_speedup,
        overhead_cap=args.campaign_overhead,
    ):
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
