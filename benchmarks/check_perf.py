"""CI perf-regression gate.

Compares ``output/BENCH_perf.json`` (fresh ``make bench-perf`` results)
against the checked-in ``baseline_perf.json`` and exits non-zero when a
named bench's ``ops_per_s`` fell more than the allowed fraction below its
baseline.  Faster-than-baseline is always a pass — the gate only guards
against regressions, the baseline is a floor, not a pin.

Usage::

    python benchmarks/check_perf.py warm_resolution [campaign_throughput ...] \
        [--max-regression 0.25]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.perf_records import RECORDS_PATH, load_baseline  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benches", nargs="+", help="bench names to gate (e.g. warm_resolution)")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional drop vs baseline ops_per_s (default 0.25)",
    )
    args = parser.parse_args(argv)

    if not RECORDS_PATH.exists():
        print(f"FAIL: {RECORDS_PATH} missing - run `make bench-perf` first")
        return 1
    current = json.loads(RECORDS_PATH.read_text()).get("benches", {})
    baseline = load_baseline()

    failed = False
    for name in args.benches:
        base = baseline.get(name, {}).get("ops_per_s")
        ops = current.get(name, {}).get("ops_per_s")
        if base is None:
            print(f"SKIP {name}: no baseline ops_per_s recorded")
            continue
        if ops is None:
            print(f"FAIL {name}: not present in {RECORDS_PATH.name}")
            failed = True
            continue
        floor = base * (1.0 - args.max_regression)
        verdict = "FAIL" if ops < floor else "ok"
        print(
            f"{verdict:>4} {name}: {ops:,.1f} ops/s vs baseline {base:,.1f} "
            f"(floor {floor:,.1f}, {ops / base:.2f}x)"
        )
        if ops < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
