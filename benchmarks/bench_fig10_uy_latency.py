"""Figure 10 — RTTs for .uy NS queries before and after the TTL change.

Paper: raising the child NS TTL from 300 s to 86400 s cut the median RTT
(28.7 ms → 8 ms; 75th percentile 183 ms → 21 ms), with every region
improving (Figure 10b).
"""

from benchmarks.conftest import write_report
from repro.analysis.cdf import ECDF
from repro.analysis.latencystats import regional_summaries
from repro.analysis.tables import Table, paper_vs_measured, render_cdf


def bench_fig10(benchmark, uy_natural_run):
    run = uy_natural_run

    def analyze():
        return (
            ECDF(run.before.rtts_ms()),
            ECDF(run.after.rtts_ms()),
            regional_summaries(run.rtts_by_region("before")),
            regional_summaries(run.rtts_by_region("after")),
        )

    before, after, reg_before, reg_after = benchmark(analyze)
    from repro.analysis.tables import render_cdf_plot

    samples = {"TTL 300s (before)": before.values, "TTL 86400s (after)": after.values}
    report = render_cdf(
        samples,
        title="Figure 10a: .uy NS query RTT, before vs after the TTL change (ms)",
        unit="ms",
    )
    report += "\n\n" + render_cdf_plot(samples, title="Figure 10a (plot, ms)")
    regional = Table(
        ["region", "median before", "median after", "improved"],
        title="Figure 10b: median RTT per region (ms)",
    )
    for region in sorted(reg_before, key=lambda r: r.name):
        if region not in reg_after:
            continue
        regional.add_row(
            region.name,
            f"{reg_before[region].median:.1f}",
            f"{reg_after[region].median:.1f}",
            "yes" if reg_after[region].median < reg_before[region].median else "no",
        )
    report += "\n\n" + regional.render()
    report += "\n\n" + paper_vs_measured(
        "Figure 10 calibration",
        [
            ("median RTT before -> after", "28.7 ms -> 8 ms",
             f"{before.median:.1f} ms -> {after.median:.1f} ms"),
            ("p75 before -> after", "183 ms -> 21 ms",
             f"{before.quantile(0.75):.1f} ms -> {after.quantile(0.75):.1f} ms"),
            ("p95 before -> after", "450 ms -> 200 ms",
             f"{before.quantile(0.95):.1f} ms -> {after.quantile(0.95):.1f} ms"),
            ("regions improving", "all", "see Figure 10b table"),
        ],
    )
    write_report("fig10_uy_latency", report)

    assert after.median < before.median / 2
