"""Ablation: the NS/A linking design choice behind Figure 6.

The §4.2 finding — in-bailiwick A records die with their covering NS set
— is a resolver implementation choice, not a protocol rule.  This ablation
flips exactly that knob (``link_inbailiwick_glue``) on otherwise identical
resolvers and shows the renumbering switch time moving from the NS TTL
(60 min) to the A TTL (120 min), matching the analytical model.
"""

from benchmarks.conftest import SEED, write_report
from repro.analysis.tables import Table
from repro.core.effective_ttl import DelegationConfig, effective_switch_time
from repro.core.worlds import build_cachetest_world
from repro.dns.message import Rcode
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver

POLICIES = {
    "linked (default)": ResolverPolicy.child_centric(),
    "unlinked": ResolverPolicy.unlinked(),
    "sticky": ResolverPolicy.sticky_resolver(),
}

CONFIG = DelegationConfig(
    parent_ns_ttl=3600, child_ns_ttl=3600,
    parent_glue_ttl=7200, child_address_ttl=7200, in_bailiwick=True,
)


def _observed_switch_minutes(policy: ResolverPolicy) -> float:
    """Drive one resolver through the renumbering experiment and report
    when it first answers from the new server."""
    ct = build_cachetest_world(SEED, in_bailiwick=True)
    resolver = RecursiveResolver(
        endpoint=ct.world.topology.endpoint_in_region(Region.EU),
        network=ct.world.network,
        root_hints=ct.world.hints,
        policy=policy,
    )
    renumbered = False
    for minute in range(0, 241, 10):
        now = minute * 60.0
        if not renumbered and now >= 540.0:
            ct.renumber()
            renumbered = True
        out = resolver.resolve("probe.sub.cachetest.net.", RdataType.AAAA, now=now)
        if out.rcode != Rcode.NOERROR or not out.answers:
            continue
        if str(out.answers[-1].rdatas[0]) == ct.new_answer:
            return float(minute)
    return float("inf")


def bench_ablation_linking(benchmark):
    def run():
        return {label: _observed_switch_minutes(policy)
                for label, policy in POLICIES.items()}

    observed = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        ["policy", "analytic switch", "simulated switch"],
        title="Ablation: in-bailiwick NS/A linking vs renumbering switch time",
    )
    for label, policy in POLICIES.items():
        analytic = effective_switch_time(CONFIG, policy)
        analytic_str = f"{analytic // 60} min" if analytic is not None else "never"
        simulated = observed[label]
        simulated_str = f"{simulated:.0f} min" if simulated != float("inf") else "never"
        table.add_row(label, analytic_str, simulated_str)
    report = table.render()
    report += (
        "\n\nThe simulation lands on the analytic prediction: linking moves "
        "the effective address lifetime from min(NS,A)=3600s to A=7200s, "
        "and sticky resolvers never switch — the three behaviours visible "
        "in Figure 6."
    )
    write_report("ablation_linking", report)

    assert observed["linked (default)"] <= 70.0
    assert 110.0 <= observed["unlinked"] <= 140.0
    assert observed["sticky"] == float("inf")
