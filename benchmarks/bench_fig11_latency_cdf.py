"""Figure 11 — client latency distributions under different TTLs.

Paper: unique names — TTL60 median 49.28 ms vs TTL86400 9.68 ms; shared
names — 35.59 ms vs 7.38 ms; anycast median 29.95 ms.  Caching beats
anycast at the median; anycast helps the tail (75 %ile 106/67/24 ms for
TTL60/anycast/TTL86400).
"""

from benchmarks.conftest import write_report
from repro.analysis.cdf import ECDF
from repro.analysis.tables import paper_vs_measured, render_cdf


def bench_fig11(benchmark, controlled_runs):
    def analyze():
        return {label: ECDF(run.rtts_ms()) for label, run in controlled_runs.items()}

    cdfs = benchmark(analyze)
    from repro.analysis.tables import render_cdf_plot

    samples = {label: cdf.values for label, cdf in cdfs.items()}
    report = render_cdf(
        samples,
        title="Figure 11: client latency by TTL configuration (ms)",
        unit="ms",
    )
    report += "\n\n" + render_cdf_plot(samples, title="Figure 11 (plot, ms)")
    report += "\n\n" + paper_vs_measured(
        "Figure 11 calibration",
        [
            ("median unique: TTL60 vs TTL86400", "49.3 vs 9.7 ms",
             f"{cdfs['TTL60-u'].median:.1f} vs {cdfs['TTL86400-u'].median:.1f} ms"),
            ("median shared: TTL60 vs TTL86400", "35.6 vs 7.4 ms",
             f"{cdfs['TTL60-s'].median:.1f} vs {cdfs['TTL86400-s'].median:.1f} ms"),
            ("median anycast (TTL60)", "30.0 ms", f"{cdfs['TTL60-anycast'].median:.1f} ms"),
            ("ordering at median", "TTL86400 < anycast < TTL60",
             "TTL86400 < anycast < TTL60"
             if cdfs["TTL86400-s"].median < cdfs["TTL60-anycast"].median < cdfs["TTL60-s"].median
             else "MISMATCH"),
            ("anycast helps the tail (p95 vs TTL60-s)", "yes",
             "yes" if cdfs["TTL60-anycast"].quantile(0.95) < cdfs["TTL60-s"].quantile(0.95)
             else "no"),
        ],
    )
    write_report("fig11_latency_cdf", report)

    assert cdfs["TTL86400-s"].median < cdfs["TTL60-anycast"].median < cdfs["TTL60-s"].median
