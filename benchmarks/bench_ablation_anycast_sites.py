"""Ablation: anycast site count vs latency (diminishing returns).

The paper (§6.2) cites Schmidt et al.: "diminishing returns from very
large anycast networks".  Sweeping the cluster size shows the median and
tail improving sharply for the first few sites and flattening long before
45 — while a warm cache (TTL 86400) still beats all of them at the
median.
"""

from benchmarks.conftest import SEED, write_report
from repro.analysis.cdf import ECDF
from repro.analysis.tables import Table
from repro.atlas.measurement import Measurement, MeasurementSpec
from repro.core.experiment import make_population
from repro.core.worlds import build_controlled_world
from repro.dns.rdtypes import RdataType

SITE_COUNTS = (1, 3, 9, 45)


def _run_with_sites(sites: int) -> ECDF:
    world = build_controlled_world(SEED, anycast_sites=sites)
    population = make_population(world.world, probes=120)
    spec = MeasurementSpec(
        qname="4.anycast.mapache-de-madrid.co.",
        qtype=RdataType.AAAA,
        interval=600,
        duration=1800,
    )
    results = Measurement(
        spec=spec, vantage_points=population.vantage_points(), seed=SEED
    ).run().valid()
    return ECDF(results.rtts_ms())


def bench_ablation_anycast_sites(benchmark):
    def run():
        return {sites: _run_with_sites(sites) for sites in SITE_COUNTS}

    cdfs = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        ["sites", "median (ms)", "p75 (ms)", "p95 (ms)"],
        title="Ablation: anycast site count vs client latency (TTL 60 s)",
    )
    for sites, cdf in cdfs.items():
        table.add_row(
            sites, f"{cdf.median:.1f}", f"{cdf.quantile(0.75):.1f}",
            f"{cdf.quantile(0.95):.1f}",
        )
    gain_1_to_9 = cdfs[1].quantile(0.95) - cdfs[9].quantile(0.95)
    gain_9_to_45 = cdfs[9].quantile(0.95) - cdfs[45].quantile(0.95)
    report = table.render()
    report += (
        f"\n\np95 gain 1->9 sites: {gain_1_to_9:.0f} ms; "
        f"9->45 sites: {gain_9_to_45:.0f} ms — diminishing returns, as the "
        "paper's §6.2 (citing Schmidt et al.) argues; caching at the "
        "recursive beats all of it at the median."
    )
    write_report("ablation_anycast_sites", report)

    assert cdfs[9].quantile(0.95) <= cdfs[1].quantile(0.95)
    assert gain_1_to_9 > gain_9_to_45
