"""Ablation: cache hit rate and expected latency as a function of TTL.

Grounds the paper's latency results in the Jung et al. model its related
work builds on: hit rate λT/(1+λT) — "TTLs shorter than 1000 s were
sufficient to reap most of the benefits" at trace query rates — and the
~70 % production hit-rate band Moura et al. report for 1800–86400 s.
The simulated process is checked against the closed form.
"""

from benchmarks.conftest import write_report
from repro.analysis.hitrate import (
    analytic_hit_rate,
    diminishing_returns_ttl,
    latency_model,
    simulate_hit_rate,
)
from repro.analysis.tables import Table

TTLS = (30, 60, 300, 900, 1800, 3600, 14400, 86400)
RATE = 20 / 3600.0  # a popular name at one resolver: 20 queries/hour


def bench_ablation_hitrate(benchmark):
    def run():
        rows = []
        for ttl in TTLS:
            rows.append(
                (
                    ttl,
                    analytic_hit_rate(RATE, ttl),
                    simulate_hit_rate(RATE, ttl, duration=2_000_000, seed=1),
                    latency_model(RATE, ttl, hit_latency_ms=1.0, miss_latency_ms=100.0),
                )
            )
        return rows

    rows = benchmark(run)
    table = Table(
        ["TTL (s)", "analytic hit rate", "simulated", "expected latency (ms)"],
        title="Ablation: hit rate vs TTL at 20 queries/hour (Jung et al. model)",
    )
    for ttl, analytic, simulated, latency in rows:
        table.add_row(ttl, f"{analytic * 100:.1f}%", f"{simulated * 100:.1f}%",
                      f"{latency:.1f}")
    knee = diminishing_returns_ttl(RATE)
    report = table.render()
    report += (
        f"\n\n90% of the caching benefit is reached at TTL ~{knee:.0f}s "
        "(Jung et al.: 'TTLs shorter than 1000s were sufficient'); the "
        "1800-86400s band sits at "
        f"{analytic_hit_rate(RATE, 1800) * 100:.0f}-"
        f"{analytic_hit_rate(RATE, 86400) * 100:.0f}% hit rate "
        "(paper S7 cites ~70% in production)."
    )
    write_report("ablation_hitrate", report)

    for ttl, analytic, simulated, _ in rows:
        assert abs(analytic - simulated) < 0.05
    assert analytic_hit_rate(RATE, 1800) > 0.7
