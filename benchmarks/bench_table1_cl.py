"""Table 1 — a.nic.cl TTL values in parent and child.

Paper: three different TTLs for the same infrastructure — 172800 s at the
root (authority + additional), 3600 s for the NS and 43200 s for the A at
the child, with ★ marking authoritative answers.
"""

from benchmarks.conftest import SEED, write_report
from repro.analysis.tables import Table
from repro.core.scenarios import scenario_table1_cl


def bench_table1(benchmark):
    rows = benchmark(scenario_table1_cl, SEED)
    table = Table(
        ["Q / Type", "Server", "Response", "TTL", "Sec.", "AA"],
        title="Table 1: a.nic.cl TTL values in parent and child (* = authoritative)",
    )
    for row in rows:
        table.add_row(
            row.query,
            row.server,
            row.response,
            row.ttl,
            row.section,
            "*" if row.authoritative else "",
        )
    report = table.render()
    report += (
        "\n\npaper: root serves NS/A/AAAA at 172800 s; child serves NS at "
        "3600 s (AA) and A/AAAA at 43200 s (AA)."
    )
    write_report("table1_cl", report)

    ttls = {row.ttl for row in rows}
    assert {172800, 3600, 43200} <= ttls
