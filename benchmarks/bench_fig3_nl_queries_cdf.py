"""Figure 3 — CDF of A queries per (resolver, query-name) group at .nl.

Paper: 52 % of groups send more than one query over two days (child-
centric signal); filtering retransmissions (<2 s apart) barely changes
the curve.
"""

from benchmarks.conftest import write_report
from repro.analysis.interarrival import queries_per_group
from repro.analysis.tables import paper_vs_measured, render_cdf


def bench_fig3(benchmark, nl_passive_run):
    run = nl_passive_run
    all_counts, filtered_counts = benchmark(
        lambda: (
            queries_per_group(run.groups),
            queries_per_group(run.groups, filter_retrans=True),
        )
    )
    report = render_cdf(
        {"all": all_counts, "filtered (>2s)": filtered_counts},
        title="Figure 3: CDF of A queries per resolver/query-name group (.nl, 2 days)",
    )
    multi = run.breakdown.multi_fraction
    report += "\n\n" + paper_vs_measured(
        "Figure 3 calibration",
        [
            ("groups with >1 query", "52%", f"{multi * 100:.1f}%"),
            ("groups with 1 query", "48%", f"{run.breakdown.single_fraction * 100:.1f}%"),
            ("single-query resolvers seen multi elsewhere", "~14%",
             f"{run.breakdown.single_but_child_elsewhere} resolvers"),
            ("filtered vs unfiltered curves", "essentially identical",
             "identical" if all_counts == filtered_counts else "nearly identical"),
        ],
    )
    write_report("fig3_nl_queries_cdf", report)

    assert 0.3 < multi < 0.8
