"""Machine-readable perf records for the ``bench_perf_*`` benches.

One canonical module owns the record store so every import path
(``benchmarks.conftest``, bench modules, CI scripts) shares a single
dict.  ``flush()`` *merges* into the existing ``output/BENCH_perf.json``
instead of overwriting it, so a partial run (``pytest -k warm``) updates
only the benches it actually ran and the file stays a complete
trajectory.  Each flush stamps the git revision and a UTC timestamp, and
annotates every bench with its delta against ``baseline_perf.json`` (the
checked-in pre-optimization numbers CI gates against).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
from datetime import datetime, timezone
from typing import Optional

BENCH_DIR = pathlib.Path(__file__).parent
OUTPUT_DIR = BENCH_DIR / "output"
RECORDS_PATH = OUTPUT_DIR / "BENCH_perf.json"
BASELINE_PATH = BENCH_DIR / "baseline_perf.json"
SCHEMA = "repro.bench/v2"

#: Records accumulated by the ``bench_perf_*`` benches this session.
PERF_RECORDS: dict[str, dict] = {}


def record_perf(name: str, **fields) -> None:
    """Add one bench's machine-readable result to ``BENCH_perf.json``.

    Every record carries the host's CPU count so gates (check_perf.py)
    can judge parallel-speedup numbers by host class — a 1-core CI box
    legitimately sees no speedup where a 4-core dev box must.
    """
    fields.setdefault("cpus", os.cpu_count() or 1)
    PERF_RECORDS[name] = fields


def git_rev() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_DIR,
            capture_output=True,
            text=True,
            timeout=10,
        )
        rev = proc.stdout.strip()
        return rev if proc.returncode == 0 and rev else "unknown"
    except OSError:
        return "unknown"


def load_baseline() -> dict[str, dict]:
    """The checked-in pre-optimization numbers, ``{}`` when absent."""
    if not BASELINE_PATH.exists():
        return {}
    payload = json.loads(BASELINE_PATH.read_text())
    return payload.get("benches", {})


def _existing_benches() -> dict[str, dict]:
    if not RECORDS_PATH.exists():
        return {}
    try:
        payload = json.loads(RECORDS_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return payload.get("benches", {})


def flush() -> Optional[pathlib.Path]:
    """Merge this session's records into ``BENCH_perf.json`` on disk.

    Returns the path written, or ``None`` when no bench recorded
    anything (non-perf bench sessions leave the file untouched).
    """
    if not PERF_RECORDS:
        return None
    benches = _existing_benches()
    baseline = load_baseline()
    for name, fields in PERF_RECORDS.items():
        record = dict(fields)
        base = baseline.get(name)
        base_ops = base.get("ops_per_s") if base else None
        ops = record.get("ops_per_s")
        if base_ops and ops:
            record["baseline_ops_per_s"] = base_ops
            record["speedup_vs_baseline"] = round(ops / base_ops, 2)
        benches[name] = record
    OUTPUT_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": SCHEMA,
        "git_rev": git_rev(),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "benches": dict(sorted(benches.items())),
    }
    RECORDS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return RECORDS_PATH
