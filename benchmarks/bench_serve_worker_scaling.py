"""Worker-count scaling curve for `repro serve` over SO_REUSEPORT.

One record per point (``serve_worker_scaling_w{N}`` for N in 1/2/4), all
measured the same way: closed-loop loadgen at fixed concurrency over 16
distinct kernel flows, so the reuseport hash actually spreads load
instead of pinning every query to one worker.  ``check_perf`` reads the
records back and enforces the curve shape — strictly increasing where
the host has the cores to back it, flat-at-worst where it does not (the
``cpus`` field in each record is what lets it tell which regime a run
came from).
"""

from __future__ import annotations

import socket

import pytest

from benchmarks.bench_serve_throughput import measure_capacity
from benchmarks.perf_records import record_perf

WORKER_COUNTS = [1, 2, 4]
#: Distinct connected sockets = distinct kernel flows; 16 over at most
#: 4 workers makes a degenerate all-on-one-worker hash vanishingly rare.
SOCKETS = 16

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT unavailable on this platform",
)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_serve_worker_scaling(benchmark, workers):
    result = benchmark.pedantic(
        measure_capacity, args=(workers, SOCKETS), rounds=1, iterations=1
    )
    record_perf(f"serve_worker_scaling_w{workers}", **result)
    print(
        f"\nworker scaling w={workers}: {result['ops_per_s']} qps "
        f"({result['cpus']} cpu(s), {SOCKETS} flows)"
    )
