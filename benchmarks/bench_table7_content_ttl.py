"""Table 7 — median TTLs (hours) per .nl content category.

Paper: NS 4/24/4 h (ecommerce/parking/placeholder), A 1 h everywhere,
AAAA 0.1/1/4 h, MX 1 h everywhere, DNSKEY 1/24/4 h.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table
from repro.crawler.dmap import ContentCategory, dmap_classify

PAPER_MEDIANS = {
    "NS": {"ecommerce": 4.0, "parking": 24.0, "placeholder": 4.0},
    "A": {"ecommerce": 1.0, "parking": 1.0, "placeholder": 1.0},
    "AAAA": {"ecommerce": 0.1, "parking": 1.0, "placeholder": 4.0},
    "MX": {"ecommerce": 1.0, "parking": 1.0, "placeholder": 1.0},
    "DNSKEY": {"ecommerce": 1.0, "parking": 24.0, "placeholder": 4.0},
}


def bench_table7(benchmark, crawl_result):
    report_data = benchmark(dmap_classify, crawl_result)
    table = Table(
        ["record", "ecommerce (paper)", "parking (paper)", "placeholder (paper)"],
        title="Table 7: median TTL values (hours) for .nl domains",
    )
    medians = report_data.median_ttl_hours
    for rtype in ("NS", "A", "AAAA", "MX", "DNSKEY"):
        cells = []
        for category in (ContentCategory.ECOMMERCE, ContentCategory.PARKING,
                         ContentCategory.PLACEHOLDER):
            measured = medians.get(category, {}).get(rtype)
            paper = PAPER_MEDIANS[rtype][category.value]
            cells.append(f"{measured:.1f} ({paper})" if measured else f"- ({paper})")
        table.add_row(rtype, *cells)
    write_report("table7_content_ttl", table.render())

    assert medians[ContentCategory.PARKING]["NS"] == 24.0
    assert medians[ContentCategory.PLACEHOLDER]["A"] == 1.0
