"""Table 8 — domains with TTL = 0 s, per record type and list.

Paper: a small number of domains disable caching entirely (Alexa 4524 NS,
896 A of 1M; Root none); the paper recommends against it.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table
from repro.crawler.report import ttl_zero_census


def bench_table8(benchmark, crawl_result):
    census = benchmark(ttl_zero_census, crawl_result)
    lists = list(census)
    table = Table(["record", *lists], title="Table 8: domains with TTL=0s")
    for rtype in ("NS", "A", "AAAA", "MX", "DNSKEY", "unique"):
        table.add_row(rtype, *[census[name].get(rtype, 0) for name in lists])
    report = table.render()
    report += (
        "\n\npaper: TTL=0 exists but is rare (fractions of a percent); the "
        "root has none."
    )
    write_report("table8_ttl0", report)

    assert all(v == 0 for v in census["Root"].values())
    total_zero = sum(census["Alexa"][t] for t in ("NS", "A", "AAAA", "MX"))
    assert total_zero > 0
