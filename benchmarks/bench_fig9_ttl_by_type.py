"""Figure 9 — CDFs of TTLs per record type, for each list.

Paper: TTLs range from a minute to 48 hours, clustered on human-chosen
values; the root is long-lived (~80 % at 1-2 days); Umbrella is shortest
(25 % of NS under a minute); NS and DNSKEY live longest, A/AAAA shortest.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import paper_vs_measured, render_cdf
from repro.crawler.report import ttl_cdf_by_type


def bench_fig9(benchmark, crawl_result):
    cdfs = benchmark(ttl_cdf_by_type, crawl_result)
    sections = []
    for list_name, per_type in cdfs.items():
        sections.append(
            render_cdf(
                {rtype: cdf.values for rtype, cdf in per_type.items()},
                title=f"Figure 9 ({list_name}): TTL CDF per record type",
                unit="s",
            )
        )
    report = "\n\n".join(sections)
    alexa = cdfs["Alexa"]
    root = cdfs["Root"]
    umbrella = cdfs["Umbrella"]
    report += "\n\n" + paper_vs_measured(
        "Figure 9 calibration",
        [
            ("root records at >= 1 day", "~80%",
             f"{(1 - root['NS'].fraction_below(86399)) * 100:.0f}%"),
            ("Umbrella NS under 60s", "25%",
             f"{umbrella['NS'].fraction_below(60) * 100:.0f}%"),
            ("Alexa NS median vs A median", "NS >> A",
             f"{alexa['NS'].median:.0f}s vs {alexa['A'].median:.0f}s"),
        ],
    )
    write_report("fig9_ttl_by_type", report)

    assert alexa["NS"].median >= alexa["A"].median
    assert umbrella["NS"].fraction_below(60) > 0.15
