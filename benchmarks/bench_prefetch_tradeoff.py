"""Prefetch trade-off: authoritative volume vs client p99 across TTLs.

The paper's central tension (§7): short TTLs buy agility but cost cache
hits, so clients pay resolution latency and authoritatives pay query
volume.  :mod:`repro.predict` claims a third way — refresh hot names
*ahead* of expiry, off the client path — so this bench sweeps TTL from
60 s to a day under three policies (predict off, on-hit prefetch,
refresh-ahead) and records both axes of the trade: client p99 and
authoritative query count.  The figure should show refresh-ahead holding
hit-path p99 even at CDN-style short TTLs, at a bounded (token-bucket)
authoritative premium.
"""

from benchmarks.conftest import SEED, write_report
from repro.analysis.tables import Table
from repro.core.scenarios import scenario_prefetch_tradeoff
from repro.predict import PredictPolicy

DURATION = 1800.0


def bench_prefetch_tradeoff(benchmark):
    run = benchmark.pedantic(
        scenario_prefetch_tradeoff,
        kwargs={"seed": SEED, "duration": DURATION},
        rounds=1, iterations=1,
    )
    table = Table(
        ["TTL (s)", "mode", "hit rate", "auth queries", "p99 (ms)",
         "refreshes", "stale"],
        title="Prefetch trade-off: client p99 and authoritative volume "
              "vs TTL (60 s - 1 day)",
    )
    for cell in run.cells:
        table.add_row(
            cell.ttl, cell.mode, f"{cell.hit_rate * 100:.1f}%",
            cell.auth_queries, f"{cell.p99_ms:.2f}", cell.refreshes,
            cell.stale_answered,
        )
    off60 = run.cell("off", 60)
    ahead60 = run.cell("ahead", 60)
    report = table.render()
    report += (
        f"\n\nAt TTL 60 s refresh-ahead answers the hot set from cache "
        f"(p99 {ahead60.p99_ms:.1f} ms vs {off60.p99_ms:.1f} ms with "
        f"predict off) for {ahead60.auth_queries - off60.auth_queries} "
        "extra authoritative queries — the token-bucket premium.  At long "
        "TTLs all three policies converge: nothing expires, nothing "
        "refreshes.  Short TTLs need not cost the client anything; they "
        "cost the authoritative a bounded refresh stream instead."
    )
    write_report("prefetch_tradeoff", report)

    # ISSUE 6 acceptance: at TTL <= 300 s refresh-ahead cuts client p99
    # versus predict-off...
    for ttl in (60, 300):
        assert run.cell("ahead", ttl).p99_ms < run.cell("off", ttl).p99_ms
    # ...with authoritative volume inside the refresh budget: the extra
    # auth queries over predict-off cannot exceed what the token bucket
    # could ever emit.
    policy = PredictPolicy()
    budget = policy.max_refresh_per_s * DURATION + policy.refresh_burst
    for ttl in (60, 300, 3600, 86400):
        ahead = run.cell("ahead", ttl)
        assert ahead.refreshes <= budget
        assert ahead.auth_queries - run.cell("off", ttl).auth_queries <= budget
    # At day-long TTLs nothing expires inside the run: the policies are
    # indistinguishable on the authoritative axis.
    assert run.cell("ahead", 86400).auth_queries == run.cell("off", 86400).auth_queries
    # Each mode sweeps the full TTL axis.
    assert {cell.ttl for cell in run.cells} == {60, 300, 3600, 86400}
    assert {cell.mode for cell in run.cells} == {"off", "onhit", "ahead"}
