"""Figure 8 — responses from the new server for matched VPs.

Paper: VPs that were sticky in the out-of-bailiwick run, when matched into
the in-bailiwick run, mostly behave as expected (retrieve most responses
from the new server) — the same VP behaves differently depending on zone
configuration.
"""

from benchmarks.conftest import PROBES, SEED, write_report
from repro.analysis.tables import paper_vs_measured, render_cdf
from repro.core.scenarios import scenario_matched_sticky


def bench_fig8(benchmark):
    out_run, in_run, ratios = benchmark.pedantic(
        scenario_matched_sticky, args=(SEED,), kwargs={"probes": PROBES},
        rounds=1, iterations=1,
    )
    report = render_cdf(
        {"new-server response ratio": ratios},
        title="Figure 8: new-server response ratio, out-of-bailiwick-sticky "
        "VPs re-observed in-bailiwick",
    )
    mostly_new = sum(1 for r in ratios if r > 0.5) / len(ratios) if ratios else 0.0
    report += "\n\n" + paper_vs_measured(
        "Figure 8 calibration",
        [
            ("matched sticky VPs", "1395 of 1642", f"{len(ratios)} of {len(out_run.sticky_vp_ids)}"),
            ("matched VPs mostly answered by new server in-bailiwick",
             "most", f"{mostly_new * 100:.0f}%"),
        ],
    )
    write_report("fig8_matched_vps", report)

    assert ratios
    assert mostly_new > 0.5
