"""Table 9 — bailiwick configuration in the wild.

Paper: of NS-responding domains, out-of-bailiwick-only shares are 95.0 %
(Alexa), 95.7 % (Majestic), 90.1 % (Umbrella), 99.7 % (.nl) and 48.7 %
(root); Umbrella is dominated by CNAME responses to NS queries.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table
from repro.crawler.report import bailiwick_census

PAPER_OUT_PERCENT = {
    "Alexa": 95.0, "Majestic": 95.7, "Umbrella": 90.1, ".nl": 99.7, "Root": 48.7,
}


def bench_table9(benchmark, crawl_result):
    census = benchmark(bailiwick_census, crawl_result)
    lists = list(census)
    table = Table(["", *lists], title="Table 9: bailiwick distribution in the wild")
    table.add_row("responsive", *[census[n].responsive for n in lists])
    table.add_row("CNAME", *[census[n].cname for n in lists])
    table.add_row("SOA", *[census[n].soa for n in lists])
    table.add_row("respond NS", *[census[n].respond_ns for n in lists])
    table.add_row("out only", *[census[n].out_only for n in lists])
    table.add_row(
        "percent out (paper)",
        *[f"{census[n].percent_out:.1f} ({PAPER_OUT_PERCENT[n]})" for n in lists],
    )
    table.add_row("in only", *[census[n].in_only for n in lists])
    table.add_row("mixed", *[census[n].mixed for n in lists])
    write_report("table9_bailiwick_wild", table.render())

    for name, paper in PAPER_OUT_PERCENT.items():
        assert abs(census[name].percent_out - paper) < 12.0
