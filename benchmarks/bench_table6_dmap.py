"""Table 6 — .nl domains classified by DMap content category.

Paper: 1.2M placeholder (landing pages), 148k e-commerce, 127k parking.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table
from repro.crawler.dmap import CATEGORY_MEANING, ContentCategory, dmap_classify

PAPER_SHARES = {
    ContentCategory.PLACEHOLDER: 1199152 / 1475267,
    ContentCategory.ECOMMERCE: 148564 / 1475267,
    ContentCategory.PARKING: 127551 / 1475267,
}


def bench_table6(benchmark, crawl_result):
    report_data = benchmark(dmap_classify, crawl_result)
    table = Table(
        ["category", "#", "share (paper)", "meaning"],
        title="Table 6: .nl classified domains by DMap",
    )
    total = max(1, report_data.total_classified)
    for category in ContentCategory:
        count = report_data.category_counts.get(category, 0)
        table.add_row(
            category.value,
            count,
            f"{count / total * 100:.1f}% ({PAPER_SHARES[category] * 100:.1f}%)",
            CATEGORY_MEANING[category],
        )
    table.add_row("Total", total, "", "")
    write_report("table6_dmap", table.render())

    counts = report_data.category_counts
    assert counts[ContentCategory.PLACEHOLDER] > counts[ContentCategory.ECOMMERCE]
    assert counts[ContentCategory.PLACEHOLDER] > counts[ContentCategory.PARKING]
