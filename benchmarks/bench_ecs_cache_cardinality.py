"""ECS cache-cardinality bench (informational, not gated).

RFC 7871 multiplies cache cardinality: one entry per (name, type)
becomes up to one per *answer scope* per name.  This bench measures the
scoped overlay (`Cache.put_scoped`/`get_scoped`) under an identical
aggregate query stream split across 1, 64, and 1024 client /24s —
entries held, hit rate, overlay bytes, lookup throughput — and files
the curve into ``BENCH_perf.json`` as ``ecs_cardinality_s{N}``.  Not
gated by ``check_perf.py``: the cardinality cost is the *intended*
behaviour being measured, and these numbers are the starting point for
a sharded/tiered scoped-cache follow-on.  Model and scenario context:
``docs/ecs.md``.
"""

from __future__ import annotations

import random
import sys

from benchmarks.conftest import record_perf
from repro.dns.ecs import ClientSubnet
from repro.dns.name import Name
from repro.dns.rdtypes import A, RdataType
from repro.dns.record import RRset
from repro.resolver.cache import Cache

NAME = Name("www.cdn.example.")
SUBNET_COUNTS = (1, 64, 1024)
QUERIES = 6000
RATE_QPS = 2.0     # aggregate; each subnet sees RATE_QPS / N
TTL = 300


def _client_subnet(index: int) -> ClientSubnet:
    # The RFC 2544 block upward from 198.18.0.0, as the ECS worlds use.
    return ClientSubnet.from_ip(f"198.{18 + index // 256}.{index % 256}.0", 24)


def _overlay_bytes(cache: Cache) -> int:
    """Deep-ish size of the scoped overlay: buckets, entries, rrsets."""
    total = sys.getsizeof(cache._ecs)
    for key, bucket in cache._ecs.items():
        total += sys.getsizeof(key) + sys.getsizeof(bucket)
        for entry in bucket:
            total += sys.getsizeof(entry) + sys.getsizeof(entry.rrset)
            total += sum(sys.getsizeof(rd) for rd in entry.rrset.rdatas)
    return total


def _drive(subnets: int) -> dict:
    """One fixed aggregate stream over ``subnets`` /24s; refetch on miss.

    A miss costs a ``put_scoped`` at scope /24 (the authoritative scopes
    at the source prefix, as the CDN world does), so the steady state is
    the Jung-model hit rate at per-subnet rate ``RATE_QPS / subnets``.
    """
    cache = Cache()
    rng = random.Random(0x7871 ^ subnets)
    pool = [_client_subnet(index) for index in range(subnets)]
    hits = 0
    for step in range(QUERIES):
        now = step / RATE_QPS
        subnet = pool[rng.randrange(subnets)]
        if cache.get_scoped(NAME, RdataType.A, subnet, now=now) is not None:
            hits += 1
        else:
            rrset = RRset(NAME, RdataType.A, TTL, [A("203.0.113.1")])
            cache.put_scoped(rrset, subnet, 24, now=now)
    return {
        "subnets": subnets,
        "hit_rate": round(hits / QUERIES, 4),
        "entries": cache.ecs_scoped_len(),
        "overlay_bytes": _overlay_bytes(cache),
    }


def bench_ecs_cache_cardinality(benchmark):
    results = benchmark.pedantic(
        lambda: [_drive(n) for n in SUBNET_COUNTS], rounds=1, iterations=1
    )
    by_subnets = {row["subnets"]: row for row in results}
    # The shape, not the exact values: cardinality grows with the subnet
    # population while the per-subnet arrival rate — and so the hit
    # rate — falls.
    assert by_subnets[1]["entries"] == 1
    assert by_subnets[64]["entries"] > by_subnets[1]["entries"]
    assert by_subnets[1024]["entries"] > by_subnets[64]["entries"]
    assert (
        by_subnets[1]["hit_rate"]
        > by_subnets[64]["hit_rate"]
        > by_subnets[1024]["hit_rate"]
    )
    queries_per_s = round(len(SUBNET_COUNTS) * QUERIES / benchmark.stats.stats.mean, 1)
    for row in results:
        record_perf(
            f"ecs_cardinality_s{row['subnets']}",
            ops_per_s=queries_per_s,
            hit_rate=row["hit_rate"],
            entries=row["entries"],
            overlay_bytes=row["overlay_bytes"],
        )
    lines = ["ECS cache cardinality (aggregate 2 q/s, TTL 300 s, /24 scopes)"]
    lines.append("subnets | hit rate | entries | overlay bytes")
    for row in results:
        lines.append(
            f"{row['subnets']:7d} | {row['hit_rate']:8.1%} | "
            f"{row['entries']:7d} | {row['overlay_bytes']:13,d}"
        )
    print("\n" + "\n".join(lines))
