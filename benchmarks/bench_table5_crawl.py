"""Table 5 — crawl datasets and resource-record counts.

Paper: five lists (Alexa/Majestic/Umbrella/.nl/root), response ratios
0.99/0.93/0.78/0.94/0.97, per-record-type totals and unique counts whose
ratios expose shared hosting (.nl NS ratio 190, Alexa 9.2, ...).
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table
from repro.crawler.report import RECORD_TYPES, record_counts

PAPER_RATIOS = {"Alexa": 0.99, "Majestic": 0.93, "Umbrella": 0.78, ".nl": 0.94, "Root": 0.97}


def bench_table5(benchmark, crawl_result):
    counts = benchmark(record_counts, crawl_result)
    table = Table(
        ["list", "domains", "responsive", "ratio (paper)",
         *[f"{t} (uniq)" for t in RECORD_TYPES]],
        title="Table 5: datasets and RR counts (child authoritative)",
    )
    for name, block in counts.items():
        cells = []
        for rtype in RECORD_TYPES:
            total, unique = block.counts.get(rtype, (0, 0))
            cells.append(f"{total} ({unique})" if total else "-")
        table.add_row(
            name, block.domains, block.responsive,
            f"{block.ratio:.2f} ({PAPER_RATIOS[name]:.2f})", *cells,
        )
    report = table.render()
    report += (
        "\n\npaper unique-NS ratios: Alexa 9.2, Majestic 10.4, Umbrella 8.0, "
        ".nl 190, Root ~1.7; ours: "
        + ", ".join(
            f"{name} {block.unique_ratio('NS'):.1f}"
            for name, block in counts.items()
            if block.unique_ratio("NS")
        )
    )
    write_report("table5_crawl", report)

    for name, paper_ratio in PAPER_RATIOS.items():
        assert abs(counts[name].ratio - paper_ratio) < 0.1


def bench_table5_crawl_simulation(benchmark):
    """Times a full (small) universe build + crawl, end to end."""
    from repro.crawler import Crawler, build_crawl_universe

    def run():
        universe = build_crawl_universe(scale=0.0005, seed=7)
        return Crawler(universe).crawl()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result) > 0
