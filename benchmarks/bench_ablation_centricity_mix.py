"""Ablation: how the resolver behaviour mix shapes the §3.2 result.

The paper's "90 % child-centric" is a property of the 2019 resolver
population, not of the protocol.  Sweeping the parent-centric share of
our population shows the observable (fraction of answers at the child
TTL) tracking the mix — and quantifies the paper's warning that "one must
set TTLs the same in both parent and child to accommodate this sizable
minority".
"""

from benchmarks.conftest import SEED, write_report
from repro.analysis.centricity import classify_active_ttls
from repro.analysis.tables import Table
from repro.atlas.measurement import Measurement, MeasurementSpec
from repro.atlas.population import AtlasConfig, AtlasPopulation
from repro.core.worlds import build_uy_world
from repro.dns.rdtypes import RdataType

PARENT_SHARES = (0.0, 0.1, 0.3, 0.6)


def _run_with_mix(parent_share: float):
    uy = build_uy_world(SEED)
    config = AtlasConfig(
        probes=120,
        seed=SEED,
        public_share=0.0,
        forwarder_share=0.0,
        local_mix={
            "child": 1.0 - parent_share,
            "parent": parent_share,
        } if parent_share > 0 else {"child": 1.0},
    )
    population = AtlasPopulation(
        config, uy.world.topology, uy.world.network, uy.world.hints, uy.world.root_zone
    )
    spec = MeasurementSpec(qname="uy.", qtype=RdataType.NS, interval=600, duration=1800)
    results = Measurement(
        spec=spec, vantage_points=population.vantage_points(), seed=SEED
    ).run().valid()
    return classify_active_ttls(results.ttls(), parent_ttl=172800, child_ttl=300)


def bench_ablation_centricity_mix(benchmark):
    def run():
        return {share: _run_with_mix(share) for share in PARENT_SHARES}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        ["parent-centric share", "child-TTL answers", "parent-TTL answers"],
        title="Ablation: .uy-NS observed centricity vs population mix",
    )
    for share, breakdown in outcomes.items():
        table.add_row(
            f"{share * 100:.0f}%",
            f"{breakdown.child_fraction * 100:.1f}%",
            f"{breakdown.parent_fraction * 100:.1f}%",
        )
    report = table.render()
    report += (
        "\n\nThe observable tracks the mix: with 0% parent-centric resolvers "
        "the child controls everything; every added share hands that much "
        "control to the parent zone's 2-day TTL (paper §3's 'who controls "
        "caching')."
    )
    write_report("ablation_centricity_mix", report)

    assert outcomes[0.0].parent_fraction == 0.0
    assert outcomes[0.6].parent_fraction > outcomes[0.1].parent_fraction
