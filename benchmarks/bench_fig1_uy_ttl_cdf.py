"""Figure 1 — CDF of TTLs observed for .uy-NS and a.nic.uy-A queries.

Paper: 90 % of .uy-NS answers are below the child's 300 s; 88 % of
a.nic.uy-A below 120 s; ~10 % follow the root's 2-day TTLs; ~2-3 % show
the full 172800 s.
"""

from benchmarks.conftest import PROBES, SEED, write_report
from repro.analysis.tables import paper_vs_measured, render_cdf
from repro.core.scenarios import scenario_anicuy_a, scenario_uy_ns


def bench_fig1(benchmark):
    def run():
        return (
            scenario_uy_ns(SEED, probes=PROBES, duration=7200),
            scenario_anicuy_a(SEED, probes=PROBES, duration=10800),
        )

    ns_run, a_run = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.analysis.tables import render_cdf_plot

    samples = {".uy-NS": ns_run.results.ttls(), "a.nic.uy-A": a_run.results.ttls()}
    report = render_cdf(
        samples,
        title="Figure 1: TTLs from VPs for .uy-NS and a.nic.uy-A queries",
        unit="s",
    )
    report += "\n\n" + render_cdf_plot(samples, title="Figure 1 (plot)")
    ns_cdf = ns_run.ttl_cdf()
    a_cdf = a_run.ttl_cdf()
    report += "\n\n" + paper_vs_measured(
        "Figure 1 calibration",
        [
            ("fraction .uy-NS <= 300s", "90%", f"{ns_cdf.fraction_below(300) * 100:.1f}%"),
            ("fraction a.nic.uy-A <= 120s", "88%", f"{a_cdf.fraction_below(120) * 100:.1f}%"),
            (
                "fraction .uy-NS at full 172800s",
                "2.9%",
                f"{ns_cdf.fraction_at(172800) * 100:.1f}%",
            ),
            (
                "fraction a.nic.uy-A at full 172800s",
                "2.2%",
                f"{a_cdf.fraction_at(172800) * 100:.1f}%",
            ),
        ],
    )
    write_report("fig1_uy_ttl_cdf", report)

    assert ns_cdf.fraction_below(300) > 0.75
    assert a_cdf.fraction_below(120) > 0.75
