"""Figure 7 — timeseries of answers for the out-of-bailiwick experiment.

Paper: with no glue linking, resolvers trust the cached A record for its
full 7200 s: the switch happens at 120 min, not 60; a larger sticky share
(OpenDNS-like parent-centric holds) remains on the old server.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import paper_vs_measured, render_timeseries


def bench_fig7(benchmark, bailiwick_runs):
    run = bailiwick_runs["out"]
    series = benchmark(lambda: run.results.answer_timeseries(600.0))
    labeled = {
        ("old" if key == run.old_label else "new"): bins
        for key, bins in series.items()
    }
    report = render_timeseries(
        labeled, bin_seconds=600.0,
        title="Figure 7: answers by server, out-of-bailiwick renumbering",
    )
    switched = run.switched_by_round
    report += "\n\n" + paper_vs_measured(
        "Figure 7 calibration",
        [
            ("new-server fraction at t=110m (A TTL still valid)", "~0%",
             f"{switched.get(11, 0) * 100:.0f}%"),
            ("new-server fraction just after A expiry (t=130m)", "most",
             f"{switched.get(13, 0) * 100:.0f}%"),
            ("sticky share (parent-centric holds)", "17.8% of VPs",
             f"{len(run.sticky_vp_ids) / max(1, len(run.results.vp_ids())) * 100:.1f}%"),
        ],
    )
    write_report("fig7_outbailiwick_ts", report)

    assert switched.get(11, 0) < 0.2
    assert switched.get(13, 0) > 0.6
