"""Table 4 — sticky resolver classification from the bailiwick campaigns.

Paper: 196 sticky VPs (146 resolvers, 51 ASes) in-bailiwick vs 1642 VPs
(997 resolvers, 378 ASes) out-of-bailiwick.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table


def bench_table4(benchmark, bailiwick_runs):
    def classify():
        rows = {}
        for label, run in bailiwick_runs.items():
            vp_ids = run.sticky_vp_ids
            sticky_results = [r for r in run.results if r.vp_id in vp_ids]
            rows[label] = {
                "vps": len(vp_ids),
                "resolvers": len({r.resolver_address for r in sticky_results}),
                "ases": len({r.asn for r in sticky_results}),
            }
        return rows

    rows = benchmark(classify)
    table = Table(
        ["", "in-bailiwick", "out-of-bailiwick"],
        title="Table 4: sticky resolver classification",
    )
    for metric in ("vps", "resolvers", "ases"):
        table.add_row(metric.capitalize(), rows["in"][metric], rows["out"][metric])
    report = table.render()
    report += (
        "\n\npaper: in-bailiwick 196 VPs / 146 resolvers / 51 ASes; "
        "out-of-bailiwick 1642 VPs / 997 resolvers / 378 ASes — the key "
        "shape is out >> in, because parent-centric resolvers hold the "
        "2-day .com glue (§4.4)."
    )
    write_report("table4_sticky", report)

    assert rows["out"]["vps"] > rows["in"]["vps"]
