"""End-to-end serving throughput: loopback `repro serve` + loadgen.

Not a paper artifact: this is the whole-stack wall-clock number the perf
trajectory was missing — real sockets, real wire codec, the resolver and
cache behind them.  Each bench boots a server subprocess (the default
fast path: batched I/O + response memo, caches prewarmed), drives it
with the closed-loop generator at fixed concurrency (so the achieved
rate *is* the capacity), and files qps plus p50/p99 latency into
``BENCH_perf.json``.

The generator runs with ``parse_responses=False`` — the server is the
thing being measured, so the client reads rcodes straight from the
header instead of running the full decoder.
"""

from __future__ import annotations

import os
import selectors
import signal
import socket
import subprocess
import sys
import time

import pytest

from benchmarks.perf_records import record_perf
from repro.loadgen.client import LoadgenConfig, run_loadgen

#: Closed-loop offered concurrency; enough to saturate one worker.
CONCURRENCY = 16
DURATION_S = 2.0
#: Zipf population; the server prewarms the same names so the measured
#: window starts hot instead of charging cold resolutions to it.
POPULATION = 200


def free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_server(port: int, workers: int, extra_args: tuple = ()) -> subprocess.Popen:
    """Boot `repro serve` and wait for every worker's ready line.

    Reads are deadline-bounded through a selector — a wedged worker
    fails the bench in 60 s instead of hanging the whole session on a
    blocking readline.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--world", "nl", "--port", str(port), "--workers", str(workers),
            "--prewarm", str(POPULATION), *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    selector = selectors.DefaultSelector()
    selector.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + 60.0
    buffered = ""
    try:
        # Count ready markers over the whole accumulated buffer, not per
        # line: N workers share one pipe and their writes may interleave.
        while buffered.count("listening on") < workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                proc.kill()
                raise RuntimeError("serve did not come up in 60 s")
            if proc.poll() is not None:
                raise RuntimeError(f"serve exited early (rc={proc.returncode})")
            if not selector.select(timeout=min(remaining, 0.5)):
                continue
            chunk = os.read(proc.stdout.fileno(), 4096).decode(errors="replace")
            if not chunk:
                raise RuntimeError(f"serve closed stdout early (rc={proc.poll()})")
            buffered += chunk
    finally:
        selector.close()
    return proc


def stop_server(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()


def measure_capacity(workers: int, sockets: int = 1, extra_args: tuple = ()) -> dict:
    port = free_port()
    proc = start_server(port, workers, extra_args)
    try:
        # Closed-loop at fixed concurrency: achieved qps == capacity.
        report = run_loadgen(
            LoadgenConfig(
                port=port,
                mode="closed",
                concurrency=CONCURRENCY,
                duration_s=DURATION_S,
                population=POPULATION,
                seed=20191021,
                sockets=sockets,
                parse_responses=False,
            )
        )
    finally:
        stop_server(proc)
    assert report.received > 0
    assert report.parse_errors == 0
    latency = report.latency
    return {
        "workers": workers,
        "ops_per_s": round(report.received / report.wall_s, 1),
        "p50_ms": round(latency.median, 3),
        "p99_ms": round(latency.p99, 3),
        "loss_rate": round(report.loss_rate, 4),
        "concurrency": CONCURRENCY,
        "sockets": sockets,
        "cpus": os.cpu_count() or 1,
    }


@pytest.mark.parametrize("workers", [1, 2])
def test_serve_throughput(benchmark, workers):
    if workers > 1 and not hasattr(socket, "SO_REUSEPORT"):
        pytest.skip("SO_REUSEPORT unavailable on this platform")
    sockets = 1 if workers == 1 else 8 * workers
    result = benchmark.pedantic(
        measure_capacity, args=(workers, sockets), rounds=1, iterations=1
    )
    record_perf(f"serve_throughput_w{workers}", **result)
    print(
        f"\nserve throughput ({workers} worker{'s' if workers > 1 else ''}): "
        f"{result['ops_per_s']} qps, p50 {result['p50_ms']} ms, "
        f"p99 {result['p99_ms']} ms"
    )


def test_serve_throughput_fast_path_off(benchmark):
    """The ablation: same load with batching and the memo disabled.

    Filed alongside the default number so the fast path's contribution
    stays visible in the perf trajectory (and a regression that only
    shows with the path off still has a record to show up in).
    """
    result = benchmark.pedantic(
        measure_capacity,
        args=(1, 1, ("--no-batch", "--no-memo")),
        rounds=1,
        iterations=1,
    )
    record_perf("serve_throughput_w1_slowpath", **result)
    print(f"\nserve throughput (fast path off): {result['ops_per_s']} qps")
