"""End-to-end serving throughput: loopback `repro serve` + loadgen.

Not a paper artifact: this is the whole-stack wall-clock number the perf
trajectory was missing — real sockets, real wire codec, the resolver and
cache behind them.  Each bench boots a server subprocess (1 or 2
SO_REUSEPORT workers), drives it with the closed-loop generator at fixed
concurrency (so the achieved rate *is* the capacity), and files qps plus
p50/p99 latency into ``BENCH_perf.json``.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from benchmarks.perf_records import record_perf
from repro.loadgen.client import LoadgenConfig, run_loadgen

#: Closed-loop offered concurrency; enough to saturate one worker.
CONCURRENCY = 16
DURATION_S = 2.0


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _start_server(port: int, workers: int) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--world", "nl", "--port", str(port), "--workers", str(workers),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    ready = 0
    deadline = time.monotonic() + 60.0
    while ready < workers:
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("serve did not come up in 60 s")
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"serve exited early (rc={proc.poll()})")
        if "listening on" in line:
            ready += 1
    return proc


def _measure(workers: int) -> dict:
    port = _free_port()
    proc = _start_server(port, workers)
    try:
        # Closed-loop at fixed concurrency: achieved qps == capacity.
        report = run_loadgen(
            LoadgenConfig(
                port=port,
                mode="closed",
                concurrency=CONCURRENCY,
                duration_s=DURATION_S,
                population=200,
                seed=20191021,
            )
        )
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
    assert report.received > 0
    assert report.parse_errors == 0
    latency = report.latency
    return {
        "workers": workers,
        "ops_per_s": round(report.received / report.wall_s, 1),
        "p50_ms": round(latency.median, 3),
        "p99_ms": round(latency.p99, 3),
        "loss_rate": round(report.loss_rate, 4),
        "concurrency": CONCURRENCY,
    }


@pytest.mark.parametrize("workers", [1, 2])
def test_serve_throughput(benchmark, workers):
    if workers > 1 and not hasattr(socket, "SO_REUSEPORT"):
        pytest.skip("SO_REUSEPORT unavailable on this platform")
    result = benchmark.pedantic(_measure, args=(workers,), rounds=1, iterations=1)
    record_perf(f"serve_throughput_w{workers}", **result)
    print(
        f"\nserve throughput ({workers} worker{'s' if workers > 1 else ''}): "
        f"{result['ops_per_s']} qps, p50 {result['p50_ms']} ms, "
        f"p99 {result['p99_ms']} ms"
    )
