"""Figure 5 — TTLs and domains for the in-bailiwick experiment.

Paper: the cachetest.net hierarchy: .net delegates cachetest.net at
172800 s with glue; the child uses 3600 s; sub.cachetest.net is delegated
at NS 3600 s with A (glue) 7200 s; wildcard AAAA answers carry 60 s.
This bench regenerates the configuration and dumps the zones.
"""

from benchmarks.conftest import SEED, write_report
from repro.core.worlds import build_cachetest_world
from repro.dns.rdtypes import RdataType


def bench_fig5(benchmark):
    ct = benchmark(build_cachetest_world, SEED, True)
    world = ct.world
    lines = ["Figure 5: in-bailiwick experiment configuration", ""]
    for origin in (".", "net.", "cachetest.net.", "sub.cachetest.net."):
        zone = world.zones[origin] if origin != "." else world.root_zone
        lines.append(zone.to_text())
        lines.append("")
    report = "\n".join(lines)
    write_report("fig5_setup", report)

    cachetest = world.zone("cachetest.net.")
    assert cachetest.get("sub.cachetest.net.", RdataType.NS).ttl == 3600
    assert cachetest.get("ns1.sub.cachetest.net.", RdataType.A).ttl == 7200
    assert ct.sub_zone_old.get("*.sub.cachetest.net.", RdataType.AAAA).ttl == 60
