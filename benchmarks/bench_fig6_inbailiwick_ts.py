"""Figure 6 — timeseries of answers for the in-bailiwick experiment.

Paper: renumber at t=9 min; resolvers keep the cached (old) server until
the NS TTL expires at 60 min, when ~90 % switch — even though the A record
(7200 s) is still valid — and all but ~2.25 % sticky by 120 min.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import paper_vs_measured, render_timeseries


def bench_fig6(benchmark, bailiwick_runs):
    run = bailiwick_runs["in"]
    series = benchmark(lambda: run.results.answer_timeseries(600.0))
    labeled = {
        ("old" if key == run.old_label else "new"): bins
        for key, bins in series.items()
    }
    report = render_timeseries(
        labeled, bin_seconds=600.0,
        title="Figure 6: answers by server, in-bailiwick renumbering",
    )
    switched = run.switched_by_round
    report += "\n\n" + paper_vs_measured(
        "Figure 6 calibration",
        [
            ("new-server fraction before renumber", "0%",
             f"{switched.get(0, 0) * 100:.0f}%"),
            ("new-server fraction at t=50m (A still valid)", "small",
             f"{switched.get(5, 0) * 100:.0f}%"),
            ("new-server fraction just after NS expiry (t=70m)", "~90%",
             f"{switched.get(7, 0) * 100:.0f}%"),
            ("residual old-server share after 120m (sticky)", "~2.25%",
             f"{(1 - switched.get(13, 1)) * 100:.1f}%"),
        ],
    )
    write_report("fig6_inbailiwick_ts", report)

    assert switched.get(7, 0) > 0.8
    assert switched.get(5, 1) < 0.3
