"""Ablation: answer availability during a DDoS vs configured TTL.

The paper's §6.1 ("longer caching is more robust to DDoS attacks") rests
on Moura et al.'s finding that "to be most effective, TTLs must be longer
than the attack".  This sweep makes the threshold visible: availability
during a one-hour authoritative outage as a function of the record TTL,
with and without serve-stale.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table
from repro.core.sweeps import ddos_availability_sweep

TTLS = (60, 300, 1800, 3600, 86400)
ATTACK = 3600.0


def bench_ablation_ddos(benchmark):
    def run():
        return (
            ddos_availability_sweep(ttls=TTLS, attack_seconds=ATTACK, seed=1),
            ddos_availability_sweep(
                ttls=TTLS, attack_seconds=ATTACK, seed=1, serve_stale=True
            ),
        )

    plain, stale = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        ["TTL", "availability", "availability (serve-stale)"],
        title=f"Ablation: availability during a {ATTACK / 3600:.0f}h authoritative outage",
    )
    for plain_point, stale_point in zip(plain, stale):
        table.add_row(
            plain_point.ttl,
            f"{plain_point.availability * 100:.0f}%",
            f"{stale_point.availability * 100:.0f}%",
        )
    report = table.render()
    report += (
        "\n\nThe threshold sits exactly where Moura et al. put it: TTLs at "
        "or above the attack duration ride it out; shorter TTLs go dark "
        "for the remainder — unless the resolver serves stale (§3.1), "
        "which decouples availability from the TTL entirely."
    )
    write_report("ablation_ddos", report)

    by_ttl = {p.ttl: p for p in plain}
    assert by_ttl[86400].availability == 1.0
    assert by_ttl[60].availability < 0.2
    assert all(p.availability == 1.0 for p in stale)


def bench_ablation_ttl_latency_sweep(benchmark):
    """Extension figure: the Figure 10 contrast as a full curve."""
    from repro.core.sweeps import ttl_latency_sweep

    points = benchmark.pedantic(
        ttl_latency_sweep,
        kwargs={"ttls": (60, 300, 1800, 3600, 28800, 86400), "probes": 120, "seed": 2},
        rounds=1,
        iterations=1,
    )
    table = Table(
        ["child NS TTL", "median (ms)", "p75 (ms)", "p95 (ms)"],
        title="Extension: .uy-NS latency as a function of the child NS TTL",
    )
    for point in points:
        table.add_row(
            point.child_ns_ttl, f"{point.median_ms:.1f}",
            f"{point.p75_ms:.1f}", f"{point.p95_ms:.1f}",
        )
    report = table.render()
    report += (
        "\n\nThe 300 s -> 86400 s jump the paper measured (Figure 10) is "
        "two points on this curve; most of the gain arrives by the "
        "one-to-few-hours range, matching the hit-rate model's knee."
    )
    write_report("ablation_ttl_latency_sweep", report)

    assert points[0].median_ms > points[-1].median_ms
