"""Performance microbenchmarks for the substrate itself.

Not a paper artifact: these keep the simulator fast enough that the
paper-scale experiments stay cheap.  pytest-benchmark's statistics make
regressions visible (each op should stay comfortably in the µs range).
"""

import random

from benchmarks.perf_records import record_perf
from repro.dns.message import Message, Section
from repro.dns.name import Name
from repro.dns.rdtypes import A, NS, RdataType
from repro.dns.record import ResourceRecord, RRset
from repro.dns.zone import Zone
from repro.resolver.cache import Cache, Credibility


def _record(benchmark, name: str, **extra) -> None:
    """File this bench's stats into ``output/BENCH_perf.json``.

    ``extra`` wins on key collisions, so benches whose meaningful rate is
    not ``1 / mean`` (e.g. campaign q/s) can override ``ops_per_s``.
    """
    stats = benchmark.stats.stats
    fields = {
        "mean_s": stats.mean,
        "min_s": stats.min,
        "ops_per_s": round(1.0 / stats.mean, 1) if stats.mean else None,
    }
    fields.update(extra)
    record_perf(name, **fields)


def _sample_response() -> Message:
    query = Message.make_query("www.example.com", RdataType.A, id=0x1234)
    response = query.make_response(authoritative=True)
    response.add(
        Section.ANSWER,
        ResourceRecord(Name("www.example.com"), RdataType.A, 300, A("192.0.2.1")),
    )
    response.add(
        Section.AUTHORITY,
        ResourceRecord(Name("example.com"), RdataType.NS, 3600, NS(Name("ns1.example.com"))),
    )
    response.add(
        Section.ADDITIONAL,
        ResourceRecord(Name("ns1.example.com"), RdataType.A, 7200, A("192.0.2.53")),
    )
    return response


def bench_perf_message_encode(benchmark):
    response = _sample_response()
    blob = benchmark(response.to_wire)
    assert len(blob) > 12
    _record(benchmark, "message_encode")


def bench_perf_message_decode(benchmark):
    blob = _sample_response().to_wire()
    decoded = benchmark(Message.from_wire, blob)
    assert decoded.answer
    _record(benchmark, "message_decode")


def bench_perf_name_parse(benchmark):
    name = benchmark(Name, "some.fairly.deep.name.example.com")
    assert len(name) == 6
    _record(benchmark, "name_parse")


def bench_perf_cache_put_get(benchmark):
    cache = Cache()
    rrset = RRset(Name("srv.example.com"), RdataType.A, 300, [A("192.0.2.1")])

    def put_get():
        cache.put(rrset, Credibility.AUTH_ANSWER, now=0.0)
        return cache.get(Name("srv.example.com"), RdataType.A, now=1.0)

    entry = benchmark(put_get)
    assert entry is not None
    _record(benchmark, "cache_put_get")


def bench_perf_big_zone_lookup(benchmark):
    """Lookup cost in a TLD-sized zone (50k delegations)."""
    zone = Zone("big.", default_ttl=3600)
    zone.add_soa("ns.big.")
    for index in range(50_000):
        zone.add(f"d{index}.big.", RdataType.NS, NS("ns.hosting.example."), ttl=3600)
    rng = random.Random(1)

    def lookup():
        index = rng.randrange(50_000)
        return zone.lookup(f"www.d{index}.big.", RdataType.A)

    result = benchmark(lookup)
    assert result.status.name == "DELEGATION"
    _record(benchmark, "big_zone_lookup")


def bench_perf_full_resolution(benchmark):
    """A complete cold-cache root→TLD→child resolution."""
    from tests.conftest import build_mini_world
    from repro.net.topology import Region
    from repro.resolver.recursive import RecursiveResolver

    world = build_mini_world()

    def resolve_cold():
        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU),
            network=world.network,
            root_hints=world.hints,
        )
        return resolver.resolve("www.example.tld.", RdataType.A, now=0.0)

    out = benchmark(resolve_cold)
    assert out.rcode.name == "NOERROR"
    _record(benchmark, "full_resolution")


def bench_perf_warm_resolution(benchmark):
    """Cache-hit path: what the §6.2 latency numbers are made of."""
    from tests.conftest import build_mini_world
    from repro.net.topology import Region
    from repro.resolver.recursive import RecursiveResolver

    world = build_mini_world()
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU),
        network=world.network,
        root_hints=world.hints,
    )
    resolver.resolve("www.example.tld.", RdataType.A, now=0.0)

    out = benchmark(resolver.resolve, "www.example.tld.", RdataType.A, 1.0)
    assert out.cache_hit
    _record(benchmark, "warm_resolution")


def bench_perf_campaign_large(benchmark):
    """Serial vs 4-worker wall time for a paper-scale T2 campaign.

    The predecessor bench ran 86 queries — at that size the wall clock
    measures process-pool startup, not the campaign kernel, and its
    "speedup" numbers were noise.  This one runs >=100k queries at the
    defaults (2000 probes x 10h, 8 shards; override with
    ``REPRO_BENCH_CAMPAIGN_PROBES`` / ``REPRO_BENCH_CAMPAIGN_DURATION``
    for CI-sized smoke runs), so per-shard compute dominates and both
    the flattened probe loop and the zero-rebuild workers show up.

    Records ``campaign_large`` (single-worker q/s, gated at >= 1.3x the
    ``campaign_throughput`` baseline) and rebases
    ``sharded_campaign_speedup`` on the same run; ``check_perf.py``
    judges the speedup by the recorded ``cpus`` (strict 3x on >=4-core
    hosts, overhead-bound on 1-core CI boxes).
    """
    import os
    import time

    from repro.core.scenarios import scenario_uy_ns

    probes = int(os.environ.get("REPRO_BENCH_CAMPAIGN_PROBES", "2000"))
    duration = float(os.environ.get("REPRO_BENCH_CAMPAIGN_DURATION", "36000"))
    kwargs = dict(seed=11, probes=probes, duration=duration, shards=8)
    scenario_uy_ns(seed=11, probes=8, duration=600.0, shards=1, parallelism=1)  # warm imports

    start = time.perf_counter()
    serial = scenario_uy_ns(parallelism=1, **kwargs)
    serial_wall = time.perf_counter() - start
    queries = len(serial.results.results)

    # Two rounds, best-of: single-round pool timings are noisy on shared
    # boxes and the gate compares this number against a hard cap.
    parallel = benchmark.pedantic(
        scenario_uy_ns, kwargs={"parallelism": 4, **kwargs}, rounds=2, iterations=1
    )
    parallel_wall = benchmark.stats.stats.min
    assert parallel.results.results == serial.results.results

    serial_qps = queries / serial_wall
    speedup = serial_wall / parallel_wall
    benchmark.extra_info["queries"] = queries
    benchmark.extra_info["serial_wall_s"] = round(serial_wall, 3)
    benchmark.extra_info["serial_qps"] = round(serial_qps, 1)
    benchmark.extra_info["parallel4_wall_s"] = round(parallel_wall, 3)
    benchmark.extra_info["parallel4_qps"] = round(queries / parallel_wall, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\n[campaign-large] T2 uy-NS, {queries} queries over 8 shards: "
        f"serial {serial_wall:.2f}s ({serial_qps:,.0f} q/s) vs "
        f"4 workers {parallel_wall:.2f}s ({queries / parallel_wall:,.0f} q/s) "
        f"-> speedup {speedup:.2f}x"
    )
    shared = dict(
        queries=queries,
        serial_wall_s=round(serial_wall, 3),
        parallel4_wall_s=round(parallel_wall, 3),
        speedup=round(speedup, 2),
    )
    _record(
        benchmark, "campaign_large",
        qps=round(serial_qps, 1),
        ops_per_s=round(serial_qps, 1),  # gated as q/s, not 1/mean
        **shared,
    )
    record_perf(
        "sharded_campaign_speedup",
        ops_per_s=round(queries / parallel_wall, 1),
        **shared,
    )


def bench_perf_campaign_throughput(benchmark):
    """Merged q/s for a single-shard T2 centricity campaign.

    The end-to-end number users feel: every layer of the substrate
    (names, cache, messages, zones, transport, runner plumbing) on one
    query path, measured as campaign queries per wall-clock second.
    """
    from repro.core.scenarios import scenario_uy_ns

    kwargs = dict(seed=11, probes=200, duration=7200.0, shards=1, parallelism=1)
    scenario_uy_ns(seed=11, probes=8, duration=600.0, shards=1, parallelism=1)  # warm imports

    run = benchmark.pedantic(scenario_uy_ns, kwargs=kwargs, rounds=3, iterations=1)
    queries = len(run.results.results)
    wall = benchmark.stats.stats.min
    qps = queries / wall
    benchmark.extra_info["queries"] = queries
    benchmark.extra_info["qps"] = round(qps, 1)
    print(f"\n[campaign] T2 uy-NS single shard: {queries} queries -> {qps:,.0f} q/s")
    _record(
        benchmark, "campaign_throughput",
        queries=queries,
        qps=round(qps, 1),
        ops_per_s=round(qps, 1),  # the gate compares q/s, not 1/mean
    )


def bench_perf_metrics_overhead(benchmark):
    """Resolution throughput with metrics on stays within 5% of metrics off.

    The ISSUE 2 acceptance gate for the observability layer: disabled
    paths hit null-object singletons, enabled paths do an attribute call
    and an integer add — neither may tax the hot loop.  Timing rounds
    interleave the two resolvers so clock drift and cache warmup hit both
    sides equally, and best-of-rounds compares the clean floors.
    """
    import time

    from tests.conftest import build_mini_world
    from repro.metrics.registry import MetricsRegistry
    from repro.net.topology import Region
    from repro.resolver.recursive import RecursiveResolver

    def make_resolver(with_metrics: bool) -> RecursiveResolver:
        world = build_mini_world()
        if with_metrics:
            world.network.attach_metrics(MetricsRegistry())
        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU),
            network=world.network,
            root_hints=world.hints,
        )
        resolver.resolve("www.example.tld.", RdataType.A, now=0.0)  # warm cache
        return resolver

    plain = make_resolver(with_metrics=False)
    metered = make_resolver(with_metrics=True)
    iterations = 2000

    def loop(resolver: RecursiveResolver) -> None:
        for _ in range(iterations):
            resolver.resolve("www.example.tld.", RdataType.A, 1.0)

    loop(plain)  # warm both code paths before any timing
    loop(metered)
    best = {"off": float("inf"), "on": float("inf")}
    for _ in range(7):
        for key, resolver in (("off", plain), ("on", metered)):
            start = time.perf_counter()
            loop(resolver)
            best[key] = min(best[key], time.perf_counter() - start)
    overhead = best["on"] / best["off"] - 1.0

    off_qps = iterations / best["off"]
    on_qps = iterations / best["on"]
    print(
        f"\n[metrics] warm resolution: off {off_qps:,.0f} q/s vs "
        f"on {on_qps:,.0f} q/s -> overhead {overhead * 100:+.1f}%"
    )
    assert overhead <= 0.05, (
        f"metrics overhead {overhead * 100:.1f}% exceeds the 5% budget "
        f"({off_qps:,.0f} q/s off vs {on_qps:,.0f} q/s on)"
    )

    benchmark.pedantic(loop, args=(metered,), rounds=1, iterations=1)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    _record(
        benchmark, "metrics_overhead",
        metrics_off_qps=round(off_qps, 1),
        metrics_on_qps=round(on_qps, 1),
        overhead_pct=round(overhead * 100, 2),
        budget_pct=5.0,
    )
