"""Extension: the full parent-vs-child TTL comparison (paper's future work).

§5.1: "A full comparison of parent and child is future work, but we know
that the TTL of .nl is 1 hour, so we know that about 40% of .nl children
have shorter TTLs."  The crawler records both sides of every delegation,
so the comparison falls out directly.
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table
from repro.crawler.report import parent_child_comparison


def bench_ext_parent_child(benchmark, crawl_result):
    comparisons = benchmark(parent_child_comparison, crawl_result)
    table = Table(
        ["list", "compared", "child shorter", "equal", "child longer"],
        title="Extension: child NS TTL vs the parent's delegation TTL",
    )
    for name, comparison in comparisons.items():
        table.add_row(
            name,
            comparison.compared,
            f"{comparison.shorter_fraction * 100:.1f}%",
            f"{comparison.fraction(comparison.child_equal) * 100:.1f}%",
            f"{comparison.longer_fraction * 100:.1f}%",
        )
    report = table.render()
    report += (
        "\n\npaper anchor: ~40% of .nl children use TTLs shorter than the "
        "1-hour parent; our .nl generator is calibrated to that figure. "
        "For the TLD lists the parent delegates at 1-2 days, so most "
        "children are shorter — exactly the mismatch that makes resolver "
        "centricity (§3) matter."
    )
    write_report("ext_parent_child", report)

    nl = comparisons[".nl"]
    assert nl.compared > 0
    assert 0.25 < nl.shorter_fraction < 0.6  # the paper's ~40% anchor