"""Push-vs-poll bench (informational, not gated).

Runs a compact ``scenario_push_vs_poll`` matrix — the renumbering plan
at TTL 60 and 86400 for both update channels — and files the headline
trade-off into ``BENCH_perf.json``: the authoritative-volume ratio
between TTL-60 polling and long-TTL push, both channels' mean staleness
windows, and the scenario's wall-clock cost.  Not gated by
``check_perf.py``: the ratio is the *measured result* (the figure in
``docs/push.md``), and the cells/s rate is the starting point for any
future scenario-kernel optimisation.
"""

from __future__ import annotations

from benchmarks.conftest import record_perf
from repro.core.scenarios import scenario_push_vs_poll

TTLS = (60, 86400)
DURATION = 3600.0
CHANGES = 6  # ~514 s apart: off the 60 s probe grid, as the tests pin


def _drive():
    return scenario_push_vs_poll(
        seed=0, ttls=TTLS, plans=("renumbering",), duration=DURATION,
        changes=CHANGES,
    )


def bench_push_vs_poll(benchmark):
    run = benchmark.pedantic(_drive, rounds=1, iterations=1)
    loud = run.cell("renumbering", "poll", 60)
    quiet = run.cell("renumbering", "poll", 86400)
    push = run.cell("renumbering", "push", 86400)
    # The shape, not the exact values: push at a long TTL must post
    # roughly TTL-86400-poll volume with sub-TTL-60-poll staleness.
    assert push.auth_queries < loud.auth_queries / 10
    assert push.mean_staleness_s <= loud.mean_staleness_s
    assert push.mean_staleness_s < quiet.mean_staleness_s / 5
    elapsed = benchmark.stats.stats.mean
    cells = len(run.cells)
    record_perf(
        "push_vs_poll",
        cells_per_s=round(cells / elapsed, 2),
        sim_s_per_wall_s=round(cells * DURATION / elapsed, 1),
        poll60_auth_queries=loud.auth_queries,
        poll86400_auth_queries=quiet.auth_queries,
        push86400_auth_queries=push.auth_queries,
        auth_volume_ratio=round(loud.auth_queries / push.auth_queries, 2),
        poll60_mean_staleness_s=round(loud.mean_staleness_s, 1),
        poll86400_mean_staleness_s=round(quiet.mean_staleness_s, 1),
        push86400_mean_staleness_s=round(push.mean_staleness_s, 1),
        notifications=push.notifications,
    )
