"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Rendered
reports are written to ``benchmarks/output/<id>.txt`` (and printed, visible
with ``pytest -s``), so a bench run leaves the full paper-vs-measured
record on disk.  Expensive simulations shared by several benches (the
crawl, the bailiwick campaigns, the controlled TTL experiments) run once
per session via fixtures; those benches then time their aggregation step.
"""

from __future__ import annotations

import pathlib

import pytest

from benchmarks.perf_records import record_perf  # noqa: F401  (bench modules import it from here too)
from benchmarks import perf_records

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def pytest_sessionfinish(session, exitstatus):
    path = perf_records.flush()
    if path is not None:
        print(f"\n[perf records merged into {path}]")

#: Default scales: large enough for stable shapes, small enough that the
#: whole harness finishes in a few minutes.
PROBES = 250
CRAWL_SCALE = 0.002
SEED = 20191021  # the paper's presentation date


def write_report(name: str, text: str) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report written to {path}]")


@pytest.fixture(scope="session")
def crawl_result():
    """One crawl of all five lists, shared by the Table 5/8/9, Figure 9 and
    Table 6/7 benches."""
    from repro.crawler import Crawler, build_crawl_universe

    universe = build_crawl_universe(scale=CRAWL_SCALE, seed=SEED)
    return Crawler(universe).crawl()


@pytest.fixture(scope="session")
def bailiwick_runs():
    """The §4 campaigns (both bailiwick configurations), shared by the
    Table 3/4 and Figure 6/7 benches."""
    from repro.core.scenarios import scenario_bailiwick

    return {
        "in": scenario_bailiwick(seed=SEED, in_bailiwick=True, probes=PROBES),
        "out": scenario_bailiwick(seed=SEED, in_bailiwick=False, probes=PROBES),
    }


@pytest.fixture(scope="session")
def controlled_runs():
    """The §6.2 experiments, shared by Table 10 and Figure 11."""
    from repro.core.scenarios import scenario_controlled_ttl

    return scenario_controlled_ttl(seed=SEED, probes=PROBES)


@pytest.fixture(scope="session")
def uy_natural_run():
    """The §5.3 natural experiment, shared by Figure 10a/10b."""
    from repro.core.scenarios import scenario_uy_natural

    return scenario_uy_natural(seed=SEED, probes=PROBES)


@pytest.fixture(scope="session")
def nl_passive_run():
    """The §3.4 passive study, shared by Figures 3 and 4."""
    from repro.core.scenarios import scenario_nl_passive

    return scenario_nl_passive(seed=SEED, resolvers=300, domain_count=200)
