"""Table 2 — resolver centricity experiments (dataset bookkeeping).

Paper: four RIPE Atlas campaigns (.uy-NS, a.nic.uy-A, google.co-NS,
.uy-NS-new) with probes/VPs/queries/valid/discarded accounting.
"""

from benchmarks.conftest import PROBES, SEED, write_report
from repro.analysis.tables import Table
from repro.core.scenarios import (
    scenario_anicuy_a,
    scenario_googleco_ns,
    scenario_uy_ns,
)


def _run_all():
    return {
        ".uy-NS": scenario_uy_ns(SEED, probes=PROBES, duration=7200),
        "a.nic.uy-A": scenario_anicuy_a(SEED, probes=PROBES, duration=10800),
        "google.co-NS": scenario_googleco_ns(SEED, probes=PROBES),
        ".uy-NS-new": scenario_uy_ns(
            SEED, probes=PROBES, child_ns_ttl=86400, duration=7200
        ),
    }


def bench_table2(benchmark):
    runs = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    table = Table(
        ["experiment", "TTL parent", "TTL child", "probes", "VPs",
         "queries", "valid", "disc.", "child%", "parent%"],
        title="Table 2: resolver centricity experiments",
    )
    for name, run in runs.items():
        summary = run.summary
        table.add_row(
            name,
            run.parent_ttl,
            run.child_ttl,
            summary["probes"],
            summary["vps"],
            summary["queries"],
            summary["responses_valid"],
            summary["responses_discarded"],
            f"{run.breakdown.child_fraction * 100:.1f}",
            f"{run.breakdown.parent_fraction * 100:.1f}",
        )
    report = table.render()
    report += (
        "\n\npaper: ~9k probes / ~15-16k VPs per campaign (we run a scaled "
        "population); 90% of .uy-NS answers child-centric."
    )
    write_report("table2_centricity", report)

    assert runs[".uy-NS"].breakdown.child_fraction > 0.75
