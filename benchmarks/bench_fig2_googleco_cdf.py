"""Figure 2 — CDF of TTLs for google.co-NS queries.

Paper: ~70 % of answers above the parent's 900 s (child data), ~15 % at
Google's 21599 s cap, ~9 % exactly 900 s (fresh parent value).
"""

from benchmarks.conftest import PROBES, SEED, write_report
from repro.analysis.tables import paper_vs_measured, render_cdf
from repro.core.scenarios import scenario_googleco_ns


def bench_fig2(benchmark):
    run = benchmark.pedantic(
        scenario_googleco_ns, args=(SEED,), kwargs={"probes": PROBES},
        rounds=1, iterations=1,
    )
    report = render_cdf(
        {"google.co-NS": run.results.ttls()},
        title="Figure 2: TTLs from VPs for google.co-NS queries",
        unit="s",
    )
    breakdown = run.breakdown
    report += "\n\n" + paper_vs_measured(
        "Figure 2 calibration",
        [
            ("answers above parent 900s (child+capped)", "~85%",
             f"{(breakdown.child_fraction + breakdown.capped_fraction) * 100:.1f}%"),
            ("capped (Google-like, (900, 21599]s)", "~15%",
             f"{breakdown.capped_fraction * 100:.1f}%"),
            ("parent-shaped (<=900s)", "~9% fresh + remainder",
             f"{breakdown.parent_fraction * 100:.1f}%"),
        ],
    )
    write_report("fig2_googleco_cdf", report)

    assert breakdown.child_fraction > 0.5
    assert breakdown.capped_fraction > 0.02
