"""§6.1 resilience scenario: the fault-injection reproduction.

Where ``bench_ablation_ddos`` sweeps availability by mutating the loss
model directly, this bench drives the same claim through the
:mod:`repro.faults` layer — the outage is a scheduled, observable fault,
so the report can show not just the availability cliff but the fault
ledger around it (injections, recoveries, time-to-recovery, serve-stale
engagements).
"""

from benchmarks.conftest import write_report
from repro.analysis.tables import Table
from repro.core.scenarios import scenario_ddos_resilience

ATTACK = 3600.0


def bench_ddos_resilience(benchmark):
    run = benchmark.pedantic(
        scenario_ddos_resilience, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    table = Table(
        ["TTL", "availability", "serve-stale", "stale fraction", "recovered"],
        title=f"§6.1: availability through a {ATTACK / 3600:.0f}h "
              "authoritative DDoS (fault-injected)",
    )
    for ttl in sorted({tier.ttl for tier in run.tiers}):
        plain = run.tier(ttl, serve_stale=False)
        rescued = run.tier(ttl, serve_stale=True)
        table.add_row(
            ttl,
            f"{plain.availability * 100:.0f}%",
            f"{rescued.availability * 100:.0f}%",
            f"{rescued.served_stale_fraction * 100:.0f}%",
            "yes" if plain.recovered else "no",
        )
    metrics = run.metrics.to_payload()["metrics"]
    injected = metrics["faults.injected"]["values"].get("server_outage", 0)
    recovered = metrics["faults.recovered"]["values"].get("server_outage", 0)
    ttr = metrics["faults.time_to_recovery_s"]
    report = table.render()
    report += (
        f"\n\nFault ledger: {injected} transmissions dropped by the outage "
        f"windows; {recovered} windows healed (first delivery "
        f"{ttr['min']:.0f}-{ttr['max']:.0f}s after lifting). "
        "The availability cliff sits at TTL == attack duration (Moura et "
        "al.: 'TTLs must be longer than the attack'); serve-stale "
        "(§3.1 / RFC 8767) decouples availability from the TTL entirely."
    )
    write_report("ddos_resilience", report)

    plain = run.availability_profile(serve_stale=False)
    assert plain[60] == 0.0
    assert 0.0 < plain[300] < 0.2
    assert plain[1800] == 0.5
    assert plain[3600] == 1.0 and plain[86400] == 1.0
    assert all(v == 1.0 for v in run.availability_profile(serve_stale=True).values())
    assert recovered >= 1
