"""Ablation: prefetch (renewal) hides miss latency at short TTLs.

The paper's §7 discusses Pappas et al.'s renewal strategies ("renewing
(pre-fetching before expiration) NS records for popular domains").  With
Unbound-style prefetch, a steadily queried record never goes cold: clients
keep hitting the cache even with a short TTL — trading authoritative
query volume for latency.
"""

from benchmarks.conftest import SEED, write_report
from repro.analysis.cdf import ECDF
from repro.analysis.tables import Table
from repro.core.worlds import build_uy_world
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver

QUERY_INTERVAL = 280.0  # just under the 300 s TTL -> every hit near expiry
ROUNDS = 40


def _run(policy: ResolverPolicy):
    uy = build_uy_world(SEED)
    resolver = RecursiveResolver(
        endpoint=uy.world.topology.endpoint_in_region(Region.EU),
        network=uy.world.network,
        root_hints=uy.world.hints,
        policy=policy,
    )
    latencies = []
    hits = 0
    for index in range(ROUNDS):
        out = resolver.resolve("uy.", RdataType.NS, now=index * QUERY_INTERVAL)
        latencies.append(out.elapsed * 1000.0)
        hits += out.cache_hit
    return ECDF(latencies), hits, resolver.queries_sent


def bench_ablation_prefetch(benchmark):
    def run():
        return {
            "plain": _run(ResolverPolicy.child_centric()),
            "prefetch": _run(ResolverPolicy.prefetching()),
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        ["policy", "client cache hits", "median latency (ms)", "p95 (ms)",
         "authoritative queries"],
        title=f"Ablation: prefetch at TTL 300 s, one query per {QUERY_INTERVAL:.0f} s",
    )
    for label, (cdf, hits, sent) in outcomes.items():
        table.add_row(label, f"{hits}/{ROUNDS}", f"{cdf.median:.2f}",
                      f"{cdf.quantile(0.95):.2f}", sent)
    report = table.render()
    report += (
        "\n\nPrefetch converts repeating misses into hits: the client sees "
        "cache latency almost always, while the authoritative still gets "
        "refresh traffic — the Pappas et al. trade-off the paper cites."
    )
    write_report("ablation_prefetch", report)

    plain_cdf, plain_hits, _ = outcomes["plain"]
    prefetch_cdf, prefetch_hits, _ = outcomes["prefetch"]
    assert prefetch_hits > plain_hits
    assert prefetch_cdf.median <= plain_cdf.median
