#!/usr/bin/env python3
"""Docs-consistency check.

Three invariants, enforced in CI (the ``docs`` job) and locally via
``make docs-check``:

1. **Coverage** — every package under ``src/repro/`` (a directory with
   an ``__init__.py``) is mentioned as ``repro.<pkg>`` in both
   ``README.md`` (the package table) and ``docs/API.md`` (the reference).
   A new subsystem cannot land undocumented.
2. **Link integrity** — every intra-repo markdown link in the top-level
   docs and ``docs/*.md`` resolves to a real file.  Anchors are not
   checked; external (``http``/``https``/``mailto``) links are skipped.
3. **CLI-flag coverage** — every long ``--flag`` registered in
   ``repro.cli`` appears somewhere in ``docs/API.md``, so a new knob
   cannot land undocumented.  Intentional omissions go in
   ``tools/check_docs_allowlist.txt`` (one flag per line, ``#`` comments).

Exits 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Documents whose repro-package coverage is mandatory.
COVERAGE_DOCS = ("README.md", "docs/API.md")

#: Documents whose intra-repo links must resolve.
LINKED_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

#: ``[text](target)`` — target split from an optional ``#fragment``.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")

EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")

#: ``add_argument("--flag", ...)`` in repro.cli — long options only;
#: positionals and single-dash short options have no doc obligation.
FLAG_RE = re.compile(r"""add_argument\(\s*["'](--[a-z][a-z0-9-]*)["']""")

ALLOWLIST_PATH = "tools/check_docs_allowlist.txt"


def repro_packages() -> list[str]:
    pkg_root = REPO / "src" / "repro"
    return sorted(
        entry.name
        for entry in pkg_root.iterdir()
        if entry.is_dir() and (entry / "__init__.py").is_file()
    )


def check_coverage(errors: list[str]) -> None:
    for rel in COVERAGE_DOCS:
        text = (REPO / rel).read_text(encoding="utf-8")
        for pkg in repro_packages():
            if f"repro.{pkg}" not in text:
                errors.append(f"{rel}: package repro.{pkg} is not documented")


def check_links(errors: list[str]) -> None:
    docs = [REPO / rel for rel in LINKED_DOCS if (REPO / rel).is_file()]
    docs.extend(sorted((REPO / "docs").glob("*.md")))
    for doc in docs:
        rel = doc.relative_to(REPO)
        for lineno, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL_SCHEMES):
                    continue
                resolved = (doc.parent / target).resolve()
                if not resolved.exists():
                    errors.append(f"{rel}:{lineno}: broken link -> {target}")


def cli_flags() -> list[str]:
    """Every distinct long option repro.cli registers, sorted."""
    text = (REPO / "src" / "repro" / "cli.py").read_text(encoding="utf-8")
    return sorted(set(FLAG_RE.findall(text)))


def allowlisted_flags() -> set[str]:
    path = REPO / ALLOWLIST_PATH
    if not path.is_file():
        return set()
    flags = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            flags.add(line)
    return flags


def check_cli_flags(errors: list[str]) -> int:
    """Every CLI flag must appear in docs/API.md or the allowlist."""
    api_text = (REPO / "docs" / "API.md").read_text(encoding="utf-8")
    allowed = allowlisted_flags()
    flags = cli_flags()
    for flag in flags:
        if flag in allowed:
            continue
        if flag not in api_text:
            errors.append(
                f"docs/API.md: CLI flag {flag} is undocumented "
                f"(document it or add it to {ALLOWLIST_PATH})"
            )
    for stale in sorted(allowed - set(flags)):
        errors.append(
            f"{ALLOWLIST_PATH}: {stale} is allowlisted but no longer "
            "registered in repro.cli"
        )
    return len(flags)


def main() -> int:
    errors: list[str] = []
    check_coverage(errors)
    check_links(errors)
    flag_count = check_cli_flags(errors)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"docs-check: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"docs-check: {len(repro_packages())} packages covered, "
        f"all intra-repo links resolve, {flag_count} CLI flags documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
