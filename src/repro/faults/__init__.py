"""Deterministic, schedule-driven fault injection (docs/resilience.md).

A :class:`FaultPlan` declares *when and how* the simulated DNS ecosystem
breaks — outages, loss, delay, SERVFAIL storms, rate limits, anycast site
failures, resolver restarts — as JSON keyed to the virtual clock.  A
:class:`FaultInjector` applies one plan to one network; attach it with
``network.attach_faults(injector)`` after ``attach_metrics`` and every
hook point (transport, servers, resolvers) starts consulting it.

Determinism contract: the injector's randomness is seeded from
``(plan.seed, shard seed)`` via :func:`derive_fault_seed`, so a faulted
campaign run serially, with ``--parallel N``, or resumed from a
checkpoint produces byte-identical sim-domain metrics.
"""

from repro.faults.injector import FaultInjector, TTR_BUCKETS_S
from repro.faults.plan import (
    KINDS,
    SCHEMA_ID,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    derive_fault_seed,
    validate_json,
    validate_payload,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "KINDS",
    "SCHEMA_ID",
    "TTR_BUCKETS_S",
    "derive_fault_seed",
    "validate_json",
    "validate_payload",
]
