"""Declarative, schedule-driven fault plans.

A :class:`FaultPlan` is a JSON-serializable list of :class:`FaultSpec`
entries, each a *window on the virtual clock* during which one failure
mode is active.  Plans are data, not code: the same file drives a serial
run, a ``--parallel 4`` run, and a checkpoint resume, and because every
random choice the injector makes is seeded from ``(plan seed, shard
seed)`` the three produce byte-identical metrics — the determinism
contract of :mod:`repro.runner` extended to broken networks.

Each fault kind models one §6.1-adjacent failure the paper's guidance
speaks to (see docs/resilience.md for the full real-world mapping):

==================  =====================================================
kind                what breaks
==================  =====================================================
``loss``            probabilistic transmission loss between endpoints
``delay``           extra one-way delay (congestion, scrubbing detours)
``blackhole``       deterministic loss for an endpoint pair (routing
                    leaks, ACL mistakes)
``server_outage``   everything sent to one address is dropped — the
                    paper's DDoS-on-the-authoritative scenario
``servfail``        the server answers, but with SERVFAIL
``truncate``        the server answers with TC=1 (forcing fallback)
``ratelimit``       RRL: over-budget queries per second get a TC slip
``anycast_site_down``  one anycast site stops announcing; BGP reroutes
``resolver_restart``   a recursive resolver loses its cache (point event)
``upstream_storm``     a resolver's upstream queries all time out
``record_change``      a zone record is renumbered at an instant (point
                       event); the world applies the change, push
                       publishers fan it out, pollers stay stale until
                       TTL expiry
==================  =====================================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Optional

#: Schema identifier embedded in every serialized plan.
SCHEMA_ID = "repro.faults/v1"

#: Every fault kind the injector understands.
KINDS = (
    "loss",
    "delay",
    "blackhole",
    "server_outage",
    "servfail",
    "truncate",
    "ratelimit",
    "anycast_site_down",
    "resolver_restart",
    "upstream_storm",
    "record_change",
)

#: Kinds applied per transmission on the fabric (vs at the server or
#: resolver).  Order matters nowhere, but membership drives dispatch.
TRANSPORT_KINDS = frozenset(
    {"loss", "delay", "blackhole", "server_outage", "upstream_storm"}
)
SERVER_KINDS = frozenset({"servfail", "truncate", "ratelimit"})


class FaultPlanError(ValueError):
    """A plan or spec that fails schema validation."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault window: a kind, a ``[start, end)`` interval, and targets.

    ``target`` is the address the fault applies to (the destination for
    transport and server faults, the resolver for restarts and storms);
    ``None`` means "every matching party".  ``src`` further narrows
    transport faults to one querying endpoint.  ``site`` names an anycast
    site (by endpoint address or name) for ``anycast_site_down``.
    """

    kind: str
    start: float
    duration: float
    target: Optional[str] = None
    src: Optional[str] = None
    site: Optional[str] = None
    rate: Optional[float] = None
    delay_ms: Optional[float] = None

    def __post_init__(self) -> None:
        errors = _spec_errors(self.to_payload(), index=None)
        if errors:
            raise FaultPlanError("; ".join(errors))

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        """Whether the window covers virtual time ``t`` (half-open)."""
        if self.duration == 0.0:
            return t >= self.start
        return self.start <= t < self.end

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
        }
        for key in ("target", "src", "site", "rate", "delay_ms"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FaultSpec":
        errors = _spec_errors(payload, index=None)
        if errors:
            raise FaultPlanError("; ".join(errors))
        return cls(
            kind=payload["kind"],
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            target=payload.get("target"),
            src=payload.get("src"),
            site=payload.get("site"),
            rate=payload.get("rate"),
            delay_ms=payload.get("delay_ms"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of faults."""

    faults: tuple[FaultSpec, ...] = ()
    name: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def window(self) -> tuple[float, float]:
        """The ``(earliest start, latest end)`` across all faults."""
        if not self.faults:
            return (0.0, 0.0)
        return (
            min(spec.start for spec in self.faults),
            max(spec.end for spec in self.faults),
        )

    # -- serialization -------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_ID,
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_payload() for spec in self.faults],
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed indent, trailing newline."""
        return json.dumps(self.to_payload(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FaultPlan":
        errors = validate_payload(payload)
        if errors:
            raise FaultPlanError("; ".join(errors))
        return cls(
            faults=tuple(
                FaultSpec.from_payload(spec) for spec in payload["faults"]
            ),
            name=payload.get("name", ""),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise FaultPlanError("top level must be a JSON object")
        return cls.from_payload(payload)

    # -- convenience builders ------------------------------------------------
    @classmethod
    def renumbering(
        cls,
        target: str,
        times: Iterable[float],
        name: str = "renumbering",
        seed: int = 0,
    ) -> "FaultPlan":
        """The §4.2 scenario as a plan: ``target`` (a record owner name)
        is renumbered at each instant in ``times``.  Both the polling and
        the push scenarios consume this one deterministic schedule."""
        return cls(
            faults=tuple(
                FaultSpec(kind="record_change", start=float(t), duration=0.0,
                          target=target)
                for t in times
            ),
            name=name,
            seed=seed,
        )

    @classmethod
    def ddos(
        cls,
        target: str,
        start: float,
        duration: float,
        name: str = "ddos",
        seed: int = 0,
    ) -> "FaultPlan":
        """The §6.1 scenario: one authoritative server fully down for
        ``duration`` seconds starting at ``start``."""
        return cls(
            faults=(
                FaultSpec(
                    kind="server_outage", start=start, duration=duration,
                    target=target,
                ),
            ),
            name=name,
            seed=seed,
        )


def derive_fault_seed(plan_seed: int, shard_seed: int) -> int:
    """The injector RNG seed for one shard.

    Mixes the plan's own seed with the shard's derived seed through a
    keyed hash (same construction as :func:`repro.runner.shard.derive_seed`)
    so fault randomness is independent of the world/latency RNG streams
    while remaining a pure function of ``(plan, shard)`` — which is what
    keeps serial and ``--parallel N`` runs byte-identical.
    """
    material = f"{plan_seed}:{shard_seed}".encode("ascii")
    digest = hashlib.blake2b(
        material, digest_size=8, person=b"repro.faults"
    ).digest()
    return int.from_bytes(digest, "big")


# ---------------------------------------------------------------- validation

#: Per-kind required/forbidden parameter rules, dependency-free so the
#: CLI can validate a plan file without constructing simulator objects.
_RATE_KINDS = frozenset({"loss", "ratelimit"})


def _spec_errors(payload: Any, index: Optional[int]) -> list[str]:
    where = f"faults[{index}]" if index is not None else "fault"
    if not isinstance(payload, dict):
        return [f"{where}: must be an object"]
    errors: list[str] = []
    kind = payload.get("kind")
    if kind not in KINDS:
        return [f"{where}: unknown kind {kind!r} (expected one of {', '.join(KINDS)})"]
    for key in ("start", "duration"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}: {key} must be a number")
        elif value < 0:
            errors.append(f"{where}: {key} must be >= 0")
    for key in ("target", "src", "site"):
        value = payload.get(key)
        if value is not None and not isinstance(value, str):
            errors.append(f"{where}: {key} must be a string")
    rate = payload.get("rate")
    delay_ms = payload.get("delay_ms")

    if kind == "loss":
        if not isinstance(rate, (int, float)) or isinstance(rate, bool) or not (
            0.0 < rate <= 1.0
        ):
            errors.append(f"{where}: loss needs rate in (0, 1]")
    elif kind == "ratelimit":
        if not isinstance(rate, (int, float)) or isinstance(rate, bool) or rate < 0:
            errors.append(f"{where}: ratelimit needs rate >= 0 (answers/second)")
    elif rate is not None:
        errors.append(f"{where}: rate is only valid for {', '.join(sorted(_RATE_KINDS))}")

    if kind == "delay":
        if (
            not isinstance(delay_ms, (int, float))
            or isinstance(delay_ms, bool)
            or delay_ms <= 0
        ):
            errors.append(f"{where}: delay needs delay_ms > 0")
    elif delay_ms is not None:
        errors.append(f"{where}: delay_ms is only valid for delay")

    if kind == "server_outage" and not payload.get("target"):
        errors.append(f"{where}: server_outage needs a target address")
    if kind == "blackhole" and not (payload.get("target") or payload.get("src")):
        errors.append(f"{where}: blackhole needs target and/or src")
    if kind == "anycast_site_down" and not payload.get("site"):
        errors.append(f"{where}: anycast_site_down needs a site")
    if kind == "resolver_restart" and payload.get("duration") not in (0, 0.0):
        errors.append(f"{where}: resolver_restart is a point event (duration 0)")
    if kind == "record_change":
        if payload.get("duration") not in (0, 0.0):
            errors.append(f"{where}: record_change is a point event (duration 0)")
        if not payload.get("target"):
            errors.append(f"{where}: record_change needs a target owner name")
    if kind != "anycast_site_down" and payload.get("site") is not None:
        errors.append(f"{where}: site is only valid for anycast_site_down")
    if kind not in TRANSPORT_KINDS and payload.get("src") is not None:
        errors.append(f"{where}: src is only valid for transport faults")
    return errors


def validate_payload(payload: Any) -> list[str]:
    """Schema-check a plan payload; returns human-readable errors."""
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    errors: list[str] = []
    schema = payload.get("schema")
    if schema != SCHEMA_ID:
        errors.append(f"schema must be {SCHEMA_ID!r} (got {schema!r})")
    if "name" in payload and not isinstance(payload["name"], str):
        errors.append("name must be a string")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        errors.append("seed must be an integer")
    faults = payload.get("faults")
    if not isinstance(faults, list):
        errors.append("faults must be a list")
        return errors
    for index, spec in enumerate(faults):
        errors.extend(_spec_errors(spec, index))
    return errors


def validate_json(text: str) -> list[str]:
    """Schema-check serialized JSON; returns human-readable errors."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    return validate_payload(payload)
