"""The runtime that applies a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` is attached per :class:`~repro.net.transport.Network`
(via ``network.attach_faults``); the fabric, the authoritative servers and
the recursive resolvers then consult it at well-defined hook points:

- :meth:`transmission_fate` — per transmission, before delivery: loss,
  blackholes, outages, storms and extra delay;
- :meth:`pick_site` — per anycast delivery: reroute around down sites
  (or drop, if no site survives);
- :meth:`intercept_server` — at the server, before the zone answers:
  SERVFAIL, truncation, rate-limit slips;
- :meth:`take_restart` — at the resolver, per client query: one-shot
  cache-wipe restarts;
- :meth:`take_record_changes` — at the world, per probe tick: one-shot
  record renumbering events (the §4.2 schedule both polling and push
  scenarios share).

Every probabilistic choice draws from one :class:`random.Random` seeded by
:func:`~repro.faults.plan.derive_fault_seed`, and all bookkeeping is keyed
to the virtual clock, so the injector is a pure function of
``(plan, seed, traffic)`` — replaying a checkpointed campaign replays the
faults exactly.

Observability rides the sim metrics domain:

- ``faults.injected{kind}`` — transmissions/queries a window altered;
- ``faults.suppressed{kind}`` — events a window *covered* but left
  unchanged (a loss draw that missed, an under-budget rate-limit query);
- ``faults.recovered{kind}`` — windows that saw a successful delivery
  after ending, i.e. the service healed;
- ``faults.time_to_recovery_s`` — how long after each window's end the
  first successful delivery happened (serve-stale and retries make this
  spread: the histogram is the paper's "attack aftermath" view).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.faults.plan import (
    SERVER_KINDS,
    FaultPlan,
    FaultSpec,
    derive_fault_seed,
)
from repro.metrics.registry import NULL_COUNTER, NULL_HISTOGRAM, log_buckets

if TYPE_CHECKING:
    from repro.dns.message import Message
    from repro.metrics import MetricsRegistry
    from repro.net.latency import LatencyModel
    from repro.net.topology import Endpoint

#: Time-to-recovery buckets: 100 ms .. ~28 h, two per decade.  Fixed at
#: module level so shard histograms merge exactly.
TTR_BUCKETS_S = log_buckets(0.1, 100_000.0, per_decade=2)

#: Kinds whose end-of-window can be confirmed by a later delivery.
_RECOVERABLE_KINDS = frozenset(
    {
        "loss",
        "blackhole",
        "server_outage",
        "servfail",
        "truncate",
        "ratelimit",
        "anycast_site_down",
        "upstream_storm",
    }
)


class _FaultState:
    """Mutable per-spec bookkeeping (the spec itself stays frozen)."""

    __slots__ = ("spec", "impacted", "pending", "fired", "bucket", "bucket_count")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        #: Whether this window ever altered behaviour (gates recovery).
        self.impacted = False
        #: Whether the state sits in the injector's recovery watchlist.
        self.pending = False
        #: resolver_restart: addresses that already took their restart.
        self.fired: set[str] = set()
        #: ratelimit: the current one-second accounting bucket.
        self.bucket = -1
        self.bucket_count = 0


def _endpoint_matches(endpoint: "Endpoint", ident: str) -> bool:
    """A site identifier may be the endpoint's address or its name."""
    return endpoint.address == ident or (endpoint.name or "") == ident


class FaultInjector:
    """Applies one plan to one simulated network."""

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self._rng = random.Random(derive_fault_seed(plan.seed, seed))
        states = [_FaultState(spec) for spec in plan.faults]
        self._transport = [
            s for s in states
            if s.spec.kind in ("loss", "delay", "blackhole", "server_outage",
                               "upstream_storm")
        ]
        self._server = [s for s in states if s.spec.kind in SERVER_KINDS]
        self._sites = [s for s in states if s.spec.kind == "anycast_site_down"]
        self._restarts = [s for s in states if s.spec.kind == "resolver_restart"]
        self._changes = [s for s in states if s.spec.kind == "record_change"]
        self._watchlist: list[_FaultState] = []
        self._m_injected = NULL_COUNTER
        self._m_suppressed = NULL_COUNTER
        self._m_recovered = NULL_COUNTER
        self._m_ttr = NULL_HISTOGRAM

    def __repr__(self) -> str:
        return f"FaultInjector({self.plan.name or 'unnamed'}, {len(self.plan)} faults)"

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Count fault events in the registry's sim domain."""
        self._m_injected = registry.labeled_counter("faults.injected")
        self._m_suppressed = registry.labeled_counter("faults.suppressed")
        self._m_recovered = registry.labeled_counter("faults.recovered")
        self._m_ttr = registry.histogram("faults.time_to_recovery_s", TTR_BUCKETS_S)

    # ------------------------------------------------------------- accounting
    def _inject(self, state: _FaultState) -> None:
        self._m_injected.inc(state.spec.kind)
        state.impacted = True
        if (
            not state.pending
            and state.spec.kind in _RECOVERABLE_KINDS
            and state.spec.duration > 0.0
        ):
            state.pending = True
            self._watchlist.append(state)

    def _suppress(self, state: _FaultState) -> None:
        self._m_suppressed.inc(state.spec.kind)

    # ---------------------------------------------------------- fabric hooks
    def transmission_fate(self, src: str, dst: str, t: float) -> tuple[bool, float]:
        """Decide one transmission's fate: ``(lost, extra_delay_seconds)``.

        Called by :meth:`Network.exchange` for every transmission whose
        destination is up (the base :class:`LossModel` runs first).  All
        matching windows apply; loss draws happen even when an earlier
        window already doomed the transmission, so the RNG stream — and
        with it every later draw — does not depend on spec order.
        """
        lost = False
        extra = 0.0
        for state in self._transport:
            spec = state.spec
            if not spec.active(t):
                continue
            kind = spec.kind
            if kind == "server_outage":
                if spec.target == dst:
                    self._inject(state)
                    lost = True
            elif kind == "blackhole":
                if (spec.target is None or spec.target == dst) and (
                    spec.src is None or spec.src == src
                ):
                    self._inject(state)
                    lost = True
            elif kind == "upstream_storm":
                if spec.target is None or spec.target == src:
                    self._inject(state)
                    lost = True
            elif kind == "loss":
                if (spec.target is None or spec.target == dst) and (
                    spec.src is None or spec.src == src
                ):
                    if self._rng.random() < (spec.rate or 0.0):
                        self._inject(state)
                        lost = True
                    else:
                        self._suppress(state)
            else:  # delay
                if (spec.target is None or spec.target == dst) and (
                    spec.src is None or spec.src == src
                ):
                    self._inject(state)
                    extra += (spec.delay_ms or 0.0) / 1000.0
        return lost, extra

    def down_sites(self, service_address: str, t: float) -> tuple[str, ...]:
        """Site identifiers (addresses or names) down for this service at ``t``."""
        down: list[str] = []
        for state in self._sites:
            spec = state.spec
            if spec.active(t) and spec.target in (None, service_address):
                down.append(spec.site or "")
        return tuple(down)

    def pick_site(
        self,
        server: object,
        dst_address: str,
        client: "Endpoint",
        latency: "LatencyModel",
        site: "Endpoint",
        t: float,
    ) -> Optional["Endpoint"]:
        """Reroute a delivery around down anycast sites.

        Returns the (possibly rerouted) site, or ``None`` when every
        surviving route is gone — the transmission is then lost, exactly
        like a unicast outage.  Unicast servers have no alternate site,
        so a matching ``anycast_site_down`` takes them fully down.
        """
        down = self.down_sites(dst_address, t)
        if not down or not any(_endpoint_matches(site, ident) for ident in down):
            return site
        for state in self._sites:
            spec = state.spec
            if spec.active(t) and spec.target in (None, dst_address) and (
                spec.site is not None and _endpoint_matches(site, spec.site)
            ):
                self._inject(state)
        failover = getattr(server, "failover_site", None)
        if failover is None:
            return None
        return failover(client, latency, down)

    # ---------------------------------------------------------- server hooks
    def intercept_server(
        self, address: str, query: "Message", now: float
    ) -> Optional["Message"]:
        """A response override, or ``None`` to let the zone answer.

        ``servfail`` and ``truncate`` replace the answer wholesale;
        ``ratelimit`` accounts answers in one-second buckets and slips a
        TC=1 response for everything over ``rate`` (BIND's RRL ``slip``
        behaviour — the resolver falls back to a sibling server, it does
        not silently hang).
        """
        from dataclasses import replace

        from repro.dns.message import Rcode

        for state in self._server:
            spec = state.spec
            if not spec.active(now) or spec.target not in (None, address):
                continue
            if spec.kind == "servfail":
                self._inject(state)
                return query.make_response(rcode=Rcode.SERVFAIL)
            if spec.kind == "truncate":
                self._inject(state)
                response = query.make_response()
                response.flags = replace(response.flags, tc=True)
                return response
            # ratelimit
            bucket = int(now)
            if state.bucket != bucket:
                state.bucket = bucket
                state.bucket_count = 0
            state.bucket_count += 1
            if state.bucket_count > (spec.rate or 0.0):
                self._inject(state)
                response = query.make_response()
                response.flags = replace(response.flags, tc=True)
                return response
            self._suppress(state)
        return None

    # -------------------------------------------------------- resolver hooks
    def take_restart(self, address: str, now: float) -> bool:
        """Whether ``address`` owes a restart at ``now`` (fires at most
        once per resolver per spec)."""
        fired = False
        for state in self._restarts:
            spec = state.spec
            if (
                now >= spec.start
                and spec.target in (None, address)
                and address not in state.fired
            ):
                state.fired.add(address)
                self._inject(state)
                fired = True
        return fired

    # ----------------------------------------------------------- world hooks
    def take_record_changes(self, now: float) -> tuple[FaultSpec, ...]:
        """Record-change events newly due at ``now``, in plan order.

        Each ``record_change`` spec fires exactly once, when the virtual
        clock first reaches its ``start``.  The caller (the world or the
        scenario driving it) applies the renumbering to the zone; a push
        publisher attached to the zone then fans the change out, while
        polling resolvers stay stale until TTL expiry.
        """
        due: list[FaultSpec] = []
        for state in self._changes:
            spec = state.spec
            if now >= spec.start and "*" not in state.fired:
                state.fired.add("*")
                self._inject(state)
                due.append(spec)
        return tuple(due)

    # ------------------------------------------------------------- recovery
    def note_delivery(self, src: str, dst: str, t: float) -> None:
        """Record a completed exchange; resolves pending recoveries.

        A window counts as recovered on the first successful delivery,
        matching its targets, at or after its end.  ``t - end`` lands in
        the time-to-recovery histogram: with probes every 300 s, a 1 h
        outage recovers ~up to 300 s after it lifts (sooner if retries
        straddle the boundary).
        """
        if not self._watchlist:
            return
        kept: list[_FaultState] = []
        for state in self._watchlist:
            spec = state.spec
            if t >= spec.end and self._recovery_match(spec, src, dst):
                state.pending = False
                self._m_recovered.inc(spec.kind)
                self._m_ttr.observe(t - spec.end)
            else:
                kept.append(state)
        self._watchlist = kept

    @staticmethod
    def _recovery_match(spec: FaultSpec, src: str, dst: str) -> bool:
        if spec.kind == "upstream_storm":
            return spec.target in (None, src)
        if spec.src is not None and spec.src != src:
            return False
        return spec.target in (None, dst)
