"""Anycast authoritative service.

One address, many sites: BGP (here, the latency model's nearest-site rule)
routes each client to its catchment site.  The paper's §6.2 compares a
45-site anycast service (Route53) against unicast servers with long and
short TTLs, finding that caching beats anycast at the median while anycast
helps the tail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.dns.message import Message, Opcode, Rcode
from repro.dns.name import Name
from repro.dns.zone import Zone
from repro.net.latency import LatencyModel
from repro.net.topology import Endpoint
from repro.server.querylog import QueryLog, QueryLogEntry

if TYPE_CHECKING:
    from repro.faults import FaultInjector


class AnycastCluster:
    """Many sites sharing one service address and one zone set."""

    def __init__(
        self,
        service_address: str,
        sites: Iterable[Endpoint],
        latency: LatencyModel,
        zones: Optional[Iterable[Zone]] = None,
        log_queries: bool = True,
    ) -> None:
        self._sites = list(sites)
        if not self._sites:
            raise ValueError("an anycast cluster needs at least one site")
        self._latency = latency
        self._zones: dict[Name, Zone] = {}
        for zone in zones or ():
            self.add_zone(zone)
        self.service_address = service_address
        self._log_queries = log_queries
        self.query_log: Optional[QueryLog] = QueryLog() if log_queries else None
        #: Total queries handled, counted even when the per-entry log is off.
        self.queries_received = 0
        self._catchment_cache: dict[str, Endpoint] = {}
        #: Set by ``Network.attach_faults``; consulted per query.
        self.faults: Optional["FaultInjector"] = None
        #: Set by ``repro.push.attach_publisher``; SUBSCRIBE/UNSUBSCRIBE
        #: frames dispatch to it (NOTIMP when absent).
        self.push: Optional[object] = None

    def reset_runtime_state(self) -> None:
        """Forget everything query traffic produced (worldcache reuse).

        The catchment cache goes too: catchment follows the latency
        model's per-path offsets, which are seed-dependent.
        """
        self.query_log = QueryLog() if self._log_queries else None
        self.queries_received = 0
        self._catchment_cache.clear()
        self.faults = None
        self.push = None

    def __repr__(self) -> str:
        return f"AnycastCluster({self.service_address}, {len(self._sites)} sites)"

    @property
    def endpoint(self) -> Endpoint:
        """The nominal endpoint (first site) — used only as a fallback."""
        return self._sites[0]

    @property
    def sites(self) -> list[Endpoint]:
        return list(self._sites)

    def endpoint_for(self, client: Endpoint, latency: LatencyModel) -> Endpoint:
        """The site BGP would deliver this client's packets to.

        Catchment is stable per client (deterministic base RTT), mirroring
        real anycast where routing changes are rare on measurement
        timescales.
        """
        cached = self._catchment_cache.get(client.address)
        if cached is not None:
            return cached
        site = latency.nearest(client, self._sites)
        self._catchment_cache[client.address] = site
        return site

    def failover_site(
        self, client: Endpoint, latency: LatencyModel, exclude: Iterable[str]
    ) -> Optional[Endpoint]:
        """The best surviving site when some are withdrawn.

        Models BGP reconvergence after a site stops announcing: the
        client's packets land at the nearest *remaining* site.  Returns
        ``None`` when the exclusion covers the whole cluster.  The
        catchment cache is bypassed — failover routing is recomputed
        while the outage lasts and snaps back when it lifts.
        """
        exclusions = list(exclude)
        survivors = [
            site
            for site in self._sites
            if not any(
                site.address == ident or (site.name or "") == ident
                for ident in exclusions
            )
        ]
        if not survivors:
            return None
        return latency.nearest(client, survivors)

    # -- zone management -----------------------------------------------------
    def add_zone(self, zone: Zone) -> None:
        self._zones[zone.origin] = zone

    def best_zone_for(self, qname: Name) -> Optional[Zone]:
        probe = qname
        while True:
            zone = self._zones.get(probe)
            if zone is not None:
                return zone
            if probe.is_root:
                return None
            probe = probe.parent()

    # -- query handling ---------------------------------------------------------
    def handle_query(self, query: Message, client: Endpoint, now: float) -> Message:
        self.queries_received += 1
        site = self.endpoint_for(client, self._latency)
        if self.faults is not None:
            # Log the site that actually answered: during a site outage
            # the catchment shifts to the surviving sites.
            down = self.faults.down_sites(self.service_address, now)
            if down and any(
                site.address == ident or (site.name or "") == ident
                for ident in down
            ):
                site = self.failover_site(client, self._latency, down) or site
        if query.question is not None and self.query_log is not None:
            self.query_log.append(
                QueryLogEntry(
                    timestamp=now,
                    client_address=client.address,
                    client_asn=client.asn,
                    qname=query.question.qname,
                    qtype=query.question.qtype,
                    server=str(site),
                )
            )
        if query.question is None:
            return query.make_response(rcode=Rcode.FORMERR)
        if self.faults is not None:
            override = self.faults.intercept_server(
                self.service_address, query, now
            )
            if override is not None:
                return override
        if query.opcode in (Opcode.SUBSCRIBE, Opcode.UNSUBSCRIBE):
            if self.push is None:
                return query.make_response(rcode=Rcode.NOTIMP)
            return self.push.handle_session_message(query, client, now)  # type: ignore[attr-defined]
        zone = self.best_zone_for(query.question.qname)
        if zone is None:
            return query.make_response(rcode=Rcode.REFUSED)
        return zone.respond(query)
