"""Response rate limiting for live serving.

A small, allocation-lean reimplementation of BIND's RRL accounting for the
live frontend: responses are counted per client in one-second buckets, and
everything over the per-second budget is *slipped* — answered with a bare
TC=1 response that tells a legitimate client to retry over TCP while
costing an attacker a full round trip per amplification attempt.

This mirrors the ``ratelimit`` fault in :mod:`repro.faults.injector` (the
simulated twin) but is deliberately separate: the injector participates in
the deterministic sim contract, while this module runs on the wall clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RrlVerdict(enum.Enum):
    """What to do with one would-be response."""

    ANSWER = "answer"  # under budget: send the real response
    SLIP = "slip"  # over budget: send an empty TC=1 response
    DROP = "drop"  # far over budget: send nothing at all


@dataclass
class ResponseRateLimiter:
    """Per-client one-second token buckets with TC slip.

    ``rate`` responses per client per second are answered in full.  The
    next ``rate * slip_factor`` are slipped (TC=1); anything beyond that
    is dropped outright.  ``rate <= 0`` disables limiting entirely.

    >>> rrl = ResponseRateLimiter(rate=2)
    >>> [rrl.check("198.51.100.7", now).name for now in (0.0, 0.1, 0.2)]
    ['ANSWER', 'ANSWER', 'SLIP']
    >>> rrl.check("198.51.100.7", 1.0).name  # new one-second bucket
    'ANSWER'
    """

    rate: int = 0
    slip_factor: int = 2
    #: Buckets are pruned whenever the wall second advances, so the table
    #: never holds more than one second of distinct clients.
    _second: int = field(default=-1, repr=False)
    _counts: dict[str, int] = field(default_factory=dict, repr=False)
    answered: int = field(default=0, repr=False)
    slipped: int = field(default=0, repr=False)
    dropped: int = field(default=0, repr=False)

    def check(self, client: str, now: float) -> RrlVerdict:
        """Account one response for ``client`` at wall time ``now``."""
        if self.rate <= 0:
            self.answered += 1
            return RrlVerdict.ANSWER
        second = int(now)
        if second != self._second:
            self._second = second
            self._counts.clear()
        count = self._counts.get(client, 0) + 1
        self._counts[client] = count
        if count <= self.rate:
            self.answered += 1
            return RrlVerdict.ANSWER
        if count <= self.rate * (1 + self.slip_factor):
            self.slipped += 1
            return RrlVerdict.SLIP
        self.dropped += 1
        return RrlVerdict.DROP
