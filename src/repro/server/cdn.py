"""A CDN-style authoritative server: subnet-dependent answers.

Content delivery networks answer the *same* qname with *different*
addresses depending on where the query (appears to) come from — the
mapping system routes each client to a nearby site.  Two inputs feed the
decision, in order of preference:

1. the RFC 7871 ECS option in the query, when present — the real client
   subnet forwarded by an ECS-speaking resolver;
2. otherwise the querying resolver's own address — the classic fallback
   that misroutes clients of centralized public resolvers, the effect
   "Public DNS Resolvers Meet Content Delivery Networks" measures.

The map is a deterministic longest-prefix table (no load balancing, no
health checks), so campaigns stay byte-reproducible.  Answers chosen via
ECS are echoed back with a non-zero scope (the matched prefix length),
which is what drives the resolver's subnet-scoped cache overlay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.dns.ecs import ClientSubnet, extract_client_subnet
from repro.dns.message import Message, Rcode, Section
from repro.dns.name import Name
from repro.dns.rdtypes import A, RdataType
from repro.dns.record import ResourceRecord
from repro.dns.wire import WireError
from repro.dns.zone import Zone
from repro.net.topology import Endpoint, Region
from repro.server.authoritative import AuthoritativeServer
from repro.server.querylog import QueryLogEntry

if TYPE_CHECKING:
    from repro.metrics import MetricsRegistry


@dataclass(frozen=True)
class CdnSite:
    """One content site: where the CDN can send a client."""

    name: str
    address: str
    ttl: int
    region: Region


def _parse_prefix(cidr: str) -> ClientSubnet:
    address, _, prefix = cidr.partition("/")
    if not prefix:
        raise ValueError(f"prefix required in CDN map entry {cidr!r}")
    return ClientSubnet.from_ip(address, int(prefix))


class CdnAuthoritativeServer(AuthoritativeServer):
    """Serves ``content_names`` with per-subnet site answers.

    ``site_map`` is an iterable of ``(cidr, site_name)`` pairs matched
    longest-prefix-first; ``default_site`` answers anything unmatched.
    Non-content names fall through to the normal zone lookup, so the
    zone's SOA/NS/glue keep the delegation working.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        zones: Optional[Iterable[Zone]] = None,
        *,
        content_names: Iterable[Name | str],
        sites: Iterable[CdnSite],
        site_map: Iterable[tuple[str, str]],
        default_site: str,
        log_queries: bool = True,
    ) -> None:
        super().__init__(endpoint, zones, log_queries=log_queries)
        self.sites: dict[str, CdnSite] = {site.name: site for site in sites}
        if default_site not in self.sites:
            raise ValueError(f"default site {default_site!r} not among sites")
        self.default_site = default_site
        self.content_names: frozenset[Name] = frozenset(
            Name(name) for name in content_names
        )
        #: (family, prefix_len, left-aligned network int) -> site name,
        #: ordered longest prefix first for first-match-wins scans.
        self._map: list[tuple[int, int, int, str]] = []
        for cidr, site_name in site_map:
            if site_name not in self.sites:
                raise ValueError(f"map entry {cidr!r} names unknown site {site_name!r}")
            parsed = _parse_prefix(cidr)
            self._map.append(
                (parsed.family, parsed.source_prefix, parsed.network_bits(), site_name)
            )
        self._map.sort(key=lambda item: -item[1])
        #: Per-site answer tally (campaign cells read this directly).
        self.site_answers: dict[str, int] = {}
        self._m_site_answers = None

    def attach_metrics(self, metrics: "MetricsRegistry") -> None:
        """Register the per-site answer counter family on ``metrics``."""
        self._m_site_answers = metrics.labeled_counter("cdn.site_answers")

    def reset_runtime_state(self) -> None:
        super().reset_runtime_state()
        self.site_answers = {}
        self._m_site_answers = None

    # -- mapping -------------------------------------------------------------
    def site_for(
        self, subnet: Optional[ClientSubnet], client: Endpoint
    ) -> tuple[CdnSite, int]:
        """The chosen site and the ECS scope to announce for it.

        Without ECS the resolver's own address picks the site and the
        scope is 0 (the answer will be cached globally — the misdirection
        this module exists to demonstrate).  With ECS, the matched map
        prefix becomes the scope; an unmatched subnet is answered with
        the default site scoped to the full source prefix, so it cannot
        leak to other subnets.
        """
        if subnet is not None and subnet.source_prefix:
            probe = subnet
            announce_unmatched = subnet.source_prefix
        else:
            probe = ClientSubnet.from_ip(client.address, 32)
            announce_unmatched = 0
        bits = 32 if probe.family == 1 else 128
        probe_bits = probe.network_bits()
        for family, prefix, network, site_name in self._map:
            if family != probe.family or prefix > probe.source_prefix:
                continue
            if prefix and (network ^ probe_bits) >> (bits - prefix):
                continue
            scope = prefix if subnet is not None and subnet.source_prefix else 0
            return self.sites[site_name], scope
        return self.sites[self.default_site], announce_unmatched

    # -- query handling --------------------------------------------------------
    def handle_query(self, query: Message, client: Endpoint, now: float) -> Message:
        question = query.question
        if (
            question is None
            or question.qname not in self.content_names
            or question.qtype != RdataType.A
        ):
            return super().handle_query(query, client, now)
        self.queries_received += 1
        if self.query_log is not None:
            self.query_log.append(
                QueryLogEntry(
                    timestamp=now,
                    client_address=client.address,
                    client_asn=client.asn,
                    qname=question.qname,
                    qtype=question.qtype,
                    server=str(self._endpoint),
                )
            )
        if self.faults is not None:
            override = self.faults.intercept_server(self._endpoint.address, query, now)
            if override is not None:
                return override
        subnet: Optional[ClientSubnet] = None
        if query.edns is not None and query.edns.options:
            try:
                subnet = extract_client_subnet(query.edns.options)
            except WireError:
                return query.make_response(rcode=Rcode.FORMERR)
        site, scope = self.site_for(subnet, client)
        self.site_answers[site.name] = self.site_answers.get(site.name, 0) + 1
        if self._m_site_answers is not None:
            self._m_site_answers.inc(site.name)
        response = query.make_response(authoritative=True)
        response.add(
            Section.ANSWER,
            ResourceRecord(question.qname, RdataType.A, site.ttl, A(site.address)),
        )
        if subnet is not None:
            response.use_edns(options=subnet.with_scope(scope).to_wire())
        return response
