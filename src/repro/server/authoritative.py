"""A unicast authoritative name server."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.dns.message import Message, Opcode, Rcode
from repro.dns.name import Name
from repro.dns.zone import Zone
from repro.net.latency import LatencyModel
from repro.net.topology import Endpoint
from repro.server.querylog import QueryLog, QueryLogEntry

if TYPE_CHECKING:
    from repro.faults import FaultInjector


class AuthoritativeServer:
    """Serves one or more zones from a single endpoint.

    When several configured zones enclose a query name, the deepest origin
    wins (a server authoritative for both ``cachetest.net`` and
    ``sub.cachetest.net`` answers ``x.sub.cachetest.net`` from the
    subzone — this matters because the parent zone would instead return a
    referral with glue).
    """

    def __init__(
        self,
        endpoint: Endpoint,
        zones: Optional[Iterable[Zone]] = None,
        log_queries: bool = True,
    ) -> None:
        self._endpoint = endpoint
        self._zones: dict[Name, Zone] = {}
        for zone in zones or ():
            self.add_zone(zone)
        self._log_queries = log_queries
        self.query_log: Optional[QueryLog] = QueryLog() if log_queries else None
        #: Total queries handled, counted even when the per-entry log is off.
        self.queries_received = 0
        #: Set by ``Network.attach_faults``; consulted per query.
        self.faults: Optional["FaultInjector"] = None
        #: Set by ``repro.push.attach_publisher``; SUBSCRIBE/UNSUBSCRIBE
        #: frames dispatch to it (NOTIMP when absent).
        self.push: Optional[object] = None

    def reset_runtime_state(self) -> None:
        """Forget everything query traffic produced (worldcache reuse).

        Zones and the endpoint are structural and survive; the query log,
        tally, fault hook, and push publisher return to their
        just-constructed state.
        """
        self.query_log = QueryLog() if self._log_queries else None
        self.queries_received = 0
        self.faults = None
        self.push = None

    def __repr__(self) -> str:
        origins = ",".join(str(origin) for origin in self._zones)
        return f"AuthoritativeServer({self._endpoint}, zones=[{origins}])"

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def endpoint_for(self, client: Endpoint, latency: LatencyModel) -> Endpoint:
        """Unicast servers answer from their single endpoint."""
        return self._endpoint

    # -- zone management -----------------------------------------------------
    def add_zone(self, zone: Zone) -> None:
        self._zones[zone.origin] = zone

    def remove_zone(self, origin: Name | str) -> None:
        self._zones.pop(Name(origin), None)

    def zone(self, origin: Name | str) -> Optional[Zone]:
        return self._zones.get(Name(origin))

    def zones(self) -> list[Zone]:
        return list(self._zones.values())

    def best_zone_for(self, qname: Name) -> Optional[Zone]:
        """The deepest configured zone whose origin encloses ``qname``."""
        probe = qname
        while True:
            zone = self._zones.get(probe)
            if zone is not None:
                return zone
            if probe.is_root:
                return None
            probe = probe.parent()

    # -- query handling ---------------------------------------------------------
    def handle_query(self, query: Message, client: Endpoint, now: float) -> Message:
        self.queries_received += 1
        if query.question is not None and self.query_log is not None:
            self.query_log.append(
                QueryLogEntry(
                    timestamp=now,
                    client_address=client.address,
                    client_asn=client.asn,
                    qname=query.question.qname,
                    qtype=query.question.qtype,
                    server=str(self._endpoint),
                )
            )
        if query.question is None:
            return query.make_response(rcode=Rcode.FORMERR)
        if self.faults is not None:
            # The query reached the server and is logged above — exactly
            # like a real SERVFAIL/RRL incident, where the victim's logs
            # fill up while clients see errors.
            override = self.faults.intercept_server(
                self._endpoint.address, query, now
            )
            if override is not None:
                return override
        if query.opcode in (Opcode.SUBSCRIBE, Opcode.UNSUBSCRIBE):
            if self.push is None:
                return query.make_response(rcode=Rcode.NOTIMP)
            return self.push.handle_session_message(query, client, now)  # type: ignore[attr-defined]
        zone = self.best_zone_for(query.question.qname)
        if zone is None:
            return query.make_response(rcode=Rcode.REFUSED)
        return zone.respond(query)
