"""Zone transfer (AXFR-lite) and the RFC 7706 local mirror.

RFC 7706 resolvers "decrease access time to root servers by running one
on loopback": they transfer the root zone into a local pseudo-
authoritative and refresh it on the SOA schedule.  The paper notes the
observable consequence: "no queries to these zones will likely be seen
exiting the recursive resolver, though questions to their children will
still be sent" (§3.1).

:func:`zone_transfer` produces a deep snapshot of a zone (what AXFR
moves); :class:`LocalZoneMirror` holds such a snapshot and re-transfers
when the SOA ``refresh`` interval elapses — so a mirror serves *stale*
parent data between refreshes, exactly like a real RFC 7706 deployment.
"""

from __future__ import annotations

from typing import Optional

from repro.dns.rdtypes import RdataType, SOA
from repro.dns.zone import Zone

#: Fallback refresh when the source zone has no SOA.
DEFAULT_REFRESH = 86400.0


def zone_transfer(source: Zone) -> Zone:
    """A point-in-time copy of ``source`` (the payload of an AXFR)."""
    copy = Zone(source.origin, default_ttl=source.default_ttl)
    for rrset in source.rrsets():
        copy.add(rrset.name, rrset.rdtype, rrset.rdatas, ttl=rrset.ttl)
    return copy


class LocalZoneMirror:
    """An RFC 7706-style local copy, refreshed on the SOA schedule."""

    def __init__(self, source: Zone, transferred_at: float = 0.0) -> None:
        self._source = source
        self._snapshot = zone_transfer(source)
        self._transferred_at = transferred_at
        self.transfers = 1

    @property
    def origin(self):
        return self._snapshot.origin

    def refresh_interval(self) -> float:
        soa = self._snapshot.soa
        if soa is None or not soa.rdatas:
            return DEFAULT_REFRESH
        rdata = soa.rdatas[0]
        assert isinstance(rdata, SOA)
        return float(rdata.refresh)

    def is_stale(self, now: float) -> bool:
        return now - self._transferred_at >= self.refresh_interval()

    def serial(self) -> Optional[int]:
        soa = self._snapshot.soa
        if soa is None or not soa.rdatas:
            return None
        rdata = soa.rdatas[0]
        assert isinstance(rdata, SOA)
        return rdata.serial

    def zone(self, now: float) -> Zone:
        """The local copy, re-transferred first if the refresh is due."""
        if self.is_stale(now):
            self._snapshot = zone_transfer(self._source)
            self._transferred_at = now
            self.transfers += 1
        return self._snapshot
