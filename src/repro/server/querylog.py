"""ENTRADA-style query logging.

The paper's §3.4 passive study uses ENTRADA, a DNS traffic warehouse fed by
the .nl authoritative servers.  Our servers append one :class:`QueryLogEntry`
per received query; the analysis package consumes the same
(resolver address, query name, timestamp) tuples the paper's pipeline does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator, Optional, Union

from repro.dns.name import Name
from repro.dns.rdtypes import RdataType


@dataclass(frozen=True)
class QueryLogEntry:
    """One received query as seen by an authoritative server."""

    timestamp: float
    client_address: str
    client_asn: int
    qname: Name
    qtype: RdataType
    server: str  # server (or anycast site) name that received the query


@dataclass
class QueryLog:
    """An append-only log of queries at one server or cluster."""

    entries: list[QueryLogEntry] = field(default_factory=list)

    def append(self, entry: QueryLogEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[QueryLogEntry]:
        return iter(self.entries)

    def clear(self) -> None:
        self.entries.clear()

    # -- filters -----------------------------------------------------------
    def filtered(self, predicate: Callable[[QueryLogEntry], bool]) -> "QueryLog":
        return QueryLog([entry for entry in self.entries if predicate(entry)])

    def between(self, start: float, end: float) -> "QueryLog":
        """Entries with start <= timestamp < end."""
        return self.filtered(lambda e: start <= e.timestamp < end)

    def for_qname(self, qname: Name) -> "QueryLog":
        return self.filtered(lambda e: e.qname == qname)

    def for_qtype(self, qtype: RdataType) -> "QueryLog":
        return self.filtered(lambda e: e.qtype == qtype)

    # -- aggregations ----------------------------------------------------------
    def unique_clients(self) -> set[str]:
        return {entry.client_address for entry in self.entries}

    def unique_client_ases(self) -> set[int]:
        return {entry.client_asn for entry in self.entries}

    def by_group(self) -> dict[tuple[str, Name], list[float]]:
        """Timestamps per (resolver address, query name) group, sorted.

        This is the unit of the paper's Figure 3/4 analysis: "368k groups of
        (resolver, query-name) pairs".
        """
        groups: dict[tuple[str, Name], list[float]] = {}
        for entry in self.entries:
            groups.setdefault((entry.client_address, entry.qname), []).append(
                entry.timestamp
            )
        for timestamps in groups.values():
            timestamps.sort()
        return groups

    def query_count_by_server(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.server] = counts.get(entry.server, 0) + 1
        return counts

    # -- persistence -----------------------------------------------------------
    def write_jsonl(self, path: Union[str, Path]) -> int:
        """Write all entries as JSON lines; returns the entry count."""
        with open(path, "w", encoding="utf-8") as stream:
            for entry in self.entries:
                stream.write(json.dumps(entry_to_dict(entry)) + "\n")
        return len(self.entries)

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "QueryLog":
        """Load a log previously written by :meth:`write_jsonl` (or the
        live server's streaming :class:`QueryLogWriter`)."""
        log = cls()
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    log.append(entry_from_dict(json.loads(line)))
        return log

    def timeseries(
        self, bin_seconds: float, start: Optional[float] = None, end: Optional[float] = None
    ) -> dict[int, int]:
        """Query counts per time bin (Figure 6/7 are 10-minute bins)."""
        if bin_seconds <= 0:
            raise ValueError("bin size must be positive")
        low = start if start is not None else min(
            (e.timestamp for e in self.entries), default=0.0
        )
        counts: dict[int, int] = {}
        for entry in self.entries:
            if start is not None and entry.timestamp < start:
                continue
            if end is not None and entry.timestamp >= end:
                continue
            index = int((entry.timestamp - low) // bin_seconds)
            counts[index] = counts.get(index, 0) + 1
        return counts


# -- JSONL codec ---------------------------------------------------------------
def entry_to_dict(entry: QueryLogEntry) -> dict:
    """A JSON-safe dict for one entry (qtype by mnemonic, RFC 3597 style
    ``TYPE%d`` for unknowns, which :meth:`RdataType.from_text` reverses)."""
    return {
        "timestamp": entry.timestamp,
        "client_address": entry.client_address,
        "client_asn": entry.client_asn,
        "qname": str(entry.qname),
        "qtype": entry.qtype.name,
        "server": entry.server,
    }


def entry_from_dict(data: dict) -> QueryLogEntry:
    return QueryLogEntry(
        timestamp=float(data["timestamp"]),
        client_address=str(data["client_address"]),
        client_asn=int(data["client_asn"]),
        qname=Name(data["qname"]),
        qtype=RdataType.from_text(data["qtype"]),
        server=str(data["server"]),
    )


class QueryLogWriter:
    """Streaming JSONL sink for the live server.

    Unlike :class:`QueryLog` this never accumulates entries in memory: the
    live frontend appends one line per query, and ``repro analyze`` later
    reads the file back with :meth:`QueryLog.read_jsonl`.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._stream: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")
        self.count = 0

    def append(self, entry: QueryLogEntry) -> None:
        if self._stream is None:
            raise ValueError(f"query log {self.path} already closed")
        self._stream.write(json.dumps(entry_to_dict(entry)) + "\n")
        self.count += 1

    def extend(self, entries: Iterable[QueryLogEntry]) -> None:
        for entry in entries:
            self.append(entry)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "QueryLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
