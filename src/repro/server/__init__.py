"""Authoritative DNS servers for the simulation.

:class:`AuthoritativeServer` serves one or more zones from a single
endpoint; :class:`AnycastCluster` serves the same zones from many sites
behind one address, with per-client catchment by lowest RTT (how Route53's
45-site anycast in the paper's §6.2 experiment behaves).  Both record every
query into an ENTRADA-style :class:`QueryLog` for the passive analyses.
"""

from repro.server.authoritative import AuthoritativeServer
from repro.server.anycast import AnycastCluster
from repro.server.cdn import CdnAuthoritativeServer, CdnSite
from repro.server.querylog import (
    QueryLog,
    QueryLogEntry,
    QueryLogWriter,
    entry_from_dict,
    entry_to_dict,
)
from repro.server.rrl import ResponseRateLimiter, RrlVerdict

__all__ = [
    "AnycastCluster",
    "AuthoritativeServer",
    "CdnAuthoritativeServer",
    "CdnSite",
    "QueryLog",
    "QueryLogEntry",
    "QueryLogWriter",
    "ResponseRateLimiter",
    "RrlVerdict",
    "entry_from_dict",
    "entry_to_dict",
]
