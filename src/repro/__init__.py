"""repro — a reproduction of "Cache Me If You Can: Effects of DNS Time-to-Live".

The package implements, in pure Python, every system the IMC 2019 paper by
Moura, Heidemann, Schmidt and Hardaker depends on:

- :mod:`repro.dns` — a DNS data model and RFC 1035 wire codec,
- :mod:`repro.net` — a deterministic discrete-event network simulation with a
  geographic latency model,
- :mod:`repro.server` — authoritative name servers (including anycast
  clusters) with ENTRADA-style query logging,
- :mod:`repro.resolver` — recursive resolvers with configurable caching
  policies (parent/child centricity, TTL caps, serve-stale, RFC 7706,
  stickiness, bailiwick-linked expiry),
- :mod:`repro.atlas` — a RIPE-Atlas-like measurement platform,
- :mod:`repro.crawler` — a parent/child TTL crawler plus synthetic top-list
  and DMap content-classification generators,
- :mod:`repro.analysis` — CDF/quantile, centricity, interarrival, and latency
  analysis used by the experiment harness, and
- :mod:`repro.core` — the paper's experiments themselves: effective-TTL
  computation, canonical simulated worlds, and one scenario per section.

See ``DESIGN.md`` for the full inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
