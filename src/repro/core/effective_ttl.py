"""The effective-TTL model — the paper's analytical core.

The paper's central question (§2): with TTLs configured in several places
(parent glue, child authoritative data) and consumed by resolvers with
different preferences, what is the *effective* cache lifetime of a record,
and who controls it?

These functions answer that analytically; the simulation scenarios confirm
the same numbers empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dns.ttl import validate_ttl
from repro.resolver.policy import Centricity, ResolverPolicy


@dataclass(frozen=True)
class DelegationConfig:
    """TTLs of one delegation as configured on both sides of the cut."""

    parent_ns_ttl: int
    child_ns_ttl: int
    #: Glue (parent-side) address TTL; None when the server is
    #: out-of-bailiwick and the parent publishes no glue.
    parent_glue_ttl: Optional[int] = None
    #: Child-side address TTL for the server name.
    child_address_ttl: Optional[int] = None
    in_bailiwick: bool = True

    def __post_init__(self) -> None:
        validate_ttl(self.parent_ns_ttl)
        validate_ttl(self.child_ns_ttl)
        if self.parent_glue_ttl is not None:
            validate_ttl(self.parent_glue_ttl)
        if self.child_address_ttl is not None:
            validate_ttl(self.child_address_ttl)
        if not self.in_bailiwick and self.parent_glue_ttl is not None:
            raise ValueError("out-of-bailiwick delegations carry no glue")


@dataclass(frozen=True)
class EffectiveTTL:
    """What a resolver of a given policy effectively caches."""

    ns_ttl: int
    address_ttl: Optional[int]
    #: Seconds until a *renumbered* server address stops being used — the
    #: observable in Figures 6 and 7.
    switch_time: Optional[int]
    #: Which zone's operator controls the NS lifetime.
    controller: str  # "parent" or "child"


def effective_record_ttl(
    config: DelegationConfig, policy: ResolverPolicy
) -> EffectiveTTL:
    """The TTLs a resolver with ``policy`` will honour for a delegation."""
    if policy.centricity is Centricity.PARENT:
        ns_ttl = config.parent_ns_ttl
        controller = "parent"
        if config.in_bailiwick:
            address_ttl = config.parent_glue_ttl
        else:
            address_ttl = config.child_address_ttl
    else:
        ns_ttl = config.child_ns_ttl
        controller = "child"
        address_ttl = config.child_address_ttl
        if address_ttl is None and config.in_bailiwick:
            address_ttl = config.parent_glue_ttl

    if policy.ttl_cap is not None:
        ns_ttl = min(ns_ttl, policy.ttl_cap)
        if address_ttl is not None:
            address_ttl = min(address_ttl, policy.ttl_cap)
    ns_ttl = max(ns_ttl, policy.ttl_floor)
    if address_ttl is not None:
        address_ttl = max(address_ttl, policy.ttl_floor)

    return EffectiveTTL(
        ns_ttl=ns_ttl,
        address_ttl=address_ttl,
        switch_time=effective_switch_time(config, policy),
        controller=controller,
    )


def effective_switch_time(
    config: DelegationConfig, policy: ResolverPolicy
) -> Optional[int]:
    """Seconds until a renumbered server's new address takes effect.

    The §4 result in closed form:

    - sticky resolvers never switch (``None``);
    - parent-centric resolvers hold addresses as long as the parent NS
      data (the OpenDNS behaviour of §4.4);
    - in-bailiwick + linked glue (the ~90 % majority): the address dies
      with the NS set → ``min(ns_ttl, address_ttl)`` — in the paper's
      configuration (NS 3600, A 7200) that is 3600 s, the 60-minute switch
      of Figure 6;
    - out-of-bailiwick (or unlinked): the address lives its full TTL →
      7200 s, the 120-minute switch of Figure 7.
    """
    if policy.sticky:
        return None
    effective = effective_record_ttl_values(config, policy)
    ns_ttl, address_ttl = effective
    if address_ttl is None:
        return ns_ttl
    if policy.centricity is Centricity.PARENT:
        return max(ns_ttl, address_ttl)
    if config.in_bailiwick and policy.link_inbailiwick_glue:
        return min(ns_ttl, address_ttl)
    return address_ttl


def effective_record_ttl_values(
    config: DelegationConfig, policy: ResolverPolicy
) -> tuple[int, Optional[int]]:
    """(ns_ttl, address_ttl) after centricity and cap/floor, no recursion."""
    if policy.centricity is Centricity.PARENT:
        ns_ttl = config.parent_ns_ttl
        address_ttl = (
            config.parent_glue_ttl if config.in_bailiwick else config.child_address_ttl
        )
    else:
        ns_ttl = config.child_ns_ttl
        address_ttl = config.child_address_ttl
        if address_ttl is None and config.in_bailiwick:
            address_ttl = config.parent_glue_ttl
    if policy.ttl_cap is not None:
        ns_ttl = min(ns_ttl, policy.ttl_cap)
        if address_ttl is not None:
            address_ttl = min(address_ttl, policy.ttl_cap)
    ns_ttl = max(ns_ttl, policy.ttl_floor)
    if address_ttl is not None:
        address_ttl = max(address_ttl, policy.ttl_floor)
    return ns_ttl, address_ttl


def population_effective_ttls(
    config: DelegationConfig,
    shares: dict[ResolverPolicy, float],
) -> dict[str, float]:
    """Population-weighted view: what fraction of resolvers is controlled
    by the parent vs the child for this delegation.

    This is the paper's §3 takeaway quantified: "one must set TTLs the same
    in both parent and child to accommodate this sizable minority."
    """
    total = sum(shares.values())
    if total <= 0:
        raise ValueError("shares must sum to a positive value")
    child_share = 0.0
    parent_share = 0.0
    for policy, share in shares.items():
        effective = effective_record_ttl(config, policy)
        if effective.controller == "child":
            child_share += share
        else:
            parent_share += share
    return {
        "child_controlled": child_share / total,
        "parent_controlled": parent_share / total,
    }
