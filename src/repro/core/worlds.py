"""Canonical simulated Internets.

Each builder reproduces one of the paper's measurement targets, with the
exact TTL configurations the paper reports (Table 1, Table 2, Figure 5).
A :class:`World` bundles the topology, network fabric, root zone and
running servers, and offers helpers to add delegations with *independent*
parent and child TTLs — the core of everything the paper studies.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Optional

from repro.dns.name import Name, root
from repro.dns.rdtypes import AAAA, A, NS, RdataType
from repro.dns.zone import Zone
from repro.net.clock import SimClock
from repro.net.latency import LatencyModel
from repro.net.topology import Endpoint, Region, Topology, TopologyMark
from repro.net.transport import LossModel, Network
from repro.server.anycast import AnycastCluster
from repro.server.authoritative import AuthoritativeServer


@dataclass(frozen=True)
class WorldBaseline:
    """A rewind point for :meth:`World.restore_baseline`.

    World *structure* (which servers/zones exist, their addresses) is a
    pure function of the builder arguments and never of the seed — all
    builders place infrastructure with explicit regions, so the topology
    RNG is untouched during construction.  That makes the baseline tiny:
    a topology mark is enough, and everything else resets in place.
    """

    topology_mark: TopologyMark

#: The root zone's delegation TTL — 2 days, as for real TLDs (Table 1).
ROOT_DELEGATION_TTL = 172800


@dataclass
class World:
    """A running simulated Internet."""

    seed: int
    topology: Topology
    network: Network
    clock: SimClock
    root_zone: Zone
    hints: dict[Name, str]
    zones: dict[str, Zone] = field(default_factory=dict)
    servers: dict[str, AuthoritativeServer] = field(default_factory=dict)
    clusters: dict[str, AnycastCluster] = field(default_factory=dict)
    _server_addresses: dict[str, str] = field(default_factory=dict)

    # -- worldcache reuse ---------------------------------------------------
    def capture_baseline(self) -> WorldBaseline:
        """Capture the just-built state for later :meth:`restore_baseline`.

        The campaign worldcache calls this once per (builder, kwargs) and
        then restores between shards — a seeded reset instead of a full
        rebuild.  The contract: campaign code must not mutate zones of a
        cached world (centricity shards never do; scenarios that schedule
        zone events run through their own worlds).
        """
        return WorldBaseline(topology_mark=self.topology.mark())

    def restore_baseline(self, baseline: WorldBaseline, seed: int) -> None:
        """Return to ``baseline`` under ``seed``, as if freshly built.

        Equivalent to ``builder(seed, **same_kwargs)`` because world
        structure is seed-independent: the topology rewinds (dropping
        endpoints the previous shard's population allocated) and reseeds,
        the fabric's RNG streams/metrics/faults reset, every server
        forgets its query traffic, and the clock restarts at zero.
        """
        self.seed = seed
        self.topology.reset_to(baseline.topology_mark, seed)
        self.network.reset_runtime(seed)
        self.clock = SimClock()

    # -- infrastructure -----------------------------------------------------
    def address_of(self, server_name: str) -> str:
        return self._server_addresses[server_name]

    def add_server(
        self,
        name: str,
        region: Region,
        zones: Optional[list[Zone]] = None,
        address: Optional[str] = None,
    ) -> AuthoritativeServer:
        """Create, register and remember an authoritative server."""
        endpoint = self.topology.endpoint_in_region(region, name=name)
        if address is not None:
            endpoint = Endpoint(
                address=address, region=endpoint.region, asn=endpoint.asn, name=name
            )
        server = AuthoritativeServer(endpoint, zones or [])
        self.network.register(server)
        self.servers[name] = server
        self._server_addresses[name] = endpoint.address
        return server

    def add_anycast(
        self,
        name: str,
        site_regions: list[Region],
        zones: Optional[list[Zone]] = None,
    ) -> AnycastCluster:
        """Create an anycast cluster with one site per listed region entry."""
        sites = [
            self.topology.endpoint_in_region(region, name=f"{name}-site-{index}")
            for index, region in enumerate(site_regions)
        ]
        service_address = sites[0].address
        cluster = AnycastCluster(
            service_address=service_address,
            sites=sites,
            latency=self.network.latency,
            zones=zones or [],
        )
        self.network.register(cluster, service_address)
        self.clusters[name] = cluster
        self._server_addresses[name] = service_address
        return cluster

    # -- zone plumbing ----------------------------------------------------------
    def add_zone(self, zone: Zone) -> Zone:
        self.zones[str(zone.origin)] = zone
        return zone

    def zone(self, origin: str) -> Zone:
        return self.zones[str(Name(origin))]

    def delegate(
        self,
        parent: Zone,
        child_origin: str,
        server_names: list[str],
        parent_ns_ttl: int,
        parent_glue_ttl: Optional[int] = None,
    ) -> None:
        """Add NS (and in-bailiwick glue) for ``child_origin`` to ``parent``.

        Glue A records are added only for servers inside the delegated
        zone, using the servers' registered addresses.  ``parent_glue_ttl``
        defaults to ``parent_ns_ttl`` (as in real TLD zones).
        """
        child = Name(child_origin)
        glue_ttl = parent_glue_ttl if parent_glue_ttl is not None else parent_ns_ttl
        for server_name in server_names:
            parent.add(child, RdataType.NS, NS(Name(server_name)), ttl=parent_ns_ttl)
            if Name(server_name).is_subdomain_of(child):
                parent.add(
                    server_name,
                    RdataType.A,
                    A(self.address_of(server_name.rstrip("."))),
                    ttl=glue_ttl,
                )


def build_base_world(seed: int = 0, loss_rate: float = 0.0) -> World:
    """Root zone plus two root servers (a/b.root-servers.net)."""
    topology = Topology(seed=seed)
    network = Network(
        latency=LatencyModel(seed=seed),
        loss=LossModel(rate=loss_rate, seed=seed),
        seed=seed,
    )
    clock = SimClock()

    root_zone = Zone(root, default_ttl=ROOT_DELEGATION_TTL)
    root_zone.add_soa("a.root-servers.net.", minimum=86400, ttl=86400)

    world = World(
        seed=seed,
        topology=topology,
        network=network,
        clock=clock,
        root_zone=root_zone,
        hints={},
    )
    world.add_zone(root_zone)

    hints: dict[Name, str] = {}
    for index, (letter, region) in enumerate((("a", Region.NA), ("b", Region.EU))):
        name = f"{letter}.root-servers.net"
        server = world.add_server(name, region, [root_zone])
        root_zone.add(root, RdataType.NS, NS(Name(name)), ttl=518400)
        hints[Name(name)] = server.endpoint.address
    world.hints = hints
    return world


# --------------------------------------------------------------------------- §3.1
def build_cl_world(seed: int = 0) -> World:
    """Chile's .cl as in Table 1: parent 172800 s; child NS 3600 s, A 43200 s."""
    world = build_base_world(seed)
    cl = world.add_zone(Zone("cl.", default_ttl=3600))
    cl.add_soa("a.nic.cl.")
    server = world.add_server("a.nic.cl", Region.SA, [cl])
    cl.add("cl.", RdataType.NS, NS(Name("a.nic.cl.")), ttl=3600)
    cl.add("a.nic.cl.", RdataType.A, A(server.endpoint.address), ttl=43200)
    cl.add("a.nic.cl.", RdataType.AAAA, AAAA("2001:db8:cc1e::10"), ttl=43200)
    world.delegate(world.root_zone, "cl.", ["a.nic.cl."], ROOT_DELEGATION_TTL)
    world.root_zone.add(
        "a.nic.cl.", RdataType.AAAA, AAAA("2001:db8:cc1e::10"), ttl=ROOT_DELEGATION_TTL
    )
    # A second-level domain under .cl for full-resolution walks.
    example = world.add_zone(Zone("example.cl.", default_ttl=600))
    example.add_soa("a.nic.cl.")
    example.add("example.cl.", RdataType.NS, NS(Name("ns.example.cl.")), ttl=600)
    ns_example = world.add_server("ns.example.cl", Region.SA, [example])
    example.add("ns.example.cl.", RdataType.A, A(ns_example.endpoint.address), ttl=600)
    example.add("www.example.cl.", RdataType.A, A("203.0.113.80"), ttl=300)
    cl.add("example.cl.", RdataType.NS, NS(Name("ns.example.cl.")), ttl=3600)
    cl.add("ns.example.cl.", RdataType.A, A(ns_example.endpoint.address), ttl=3600)
    return world


# --------------------------------------------------------------------------- §3.2
@dataclass
class UyWorld:
    """The .uy configuration plus the natural-experiment TTL switch."""

    world: World
    uy_zone: Zone
    child_ns_ttl: int
    child_a_ttl: int

    def raise_ns_ttl(self, new_ttl: int = 86400) -> None:
        """The 2019-03-04 change: child NS TTL 300 s → 1 day (§5.3)."""
        self.uy_zone.set_ttl("uy.", RdataType.NS, new_ttl)
        self.child_ns_ttl = new_ttl


def build_uy_world(
    seed: int = 0, child_ns_ttl: int = 300, child_a_ttl: int = 120
) -> UyWorld:
    """Uruguay's .uy: parent NS/glue 172800 s, child NS 300 s, A 120 s."""
    world = build_base_world(seed)
    uy = world.add_zone(Zone("uy.", default_ttl=child_ns_ttl))
    uy.add_soa("a.nic.uy.")
    server = world.add_server("a.nic.uy", Region.SA, [uy])
    uy.add("uy.", RdataType.NS, NS(Name("a.nic.uy.")), ttl=child_ns_ttl)
    uy.add("a.nic.uy.", RdataType.A, A(server.endpoint.address), ttl=child_a_ttl)
    world.delegate(world.root_zone, "uy.", ["a.nic.uy."], ROOT_DELEGATION_TTL)
    return UyWorld(world=world, uy_zone=uy, child_ns_ttl=child_ns_ttl, child_a_ttl=child_a_ttl)


# --------------------------------------------------------------------------- §3.3
def build_googleco_world(seed: int = 0) -> World:
    """google.co: parent (.co) NS TTL 900 s; child NS TTL 345600 s; servers
    ns[1-4].google.com are out of bailiwick (under .com)."""
    world = build_base_world(seed)

    # .com, hosting google.com which hosts the server names.
    com = world.add_zone(Zone("com.", default_ttl=ROOT_DELEGATION_TTL))
    com.add_soa("a.gtld-servers.net.")
    com_server = world.add_server("a.gtld-servers.net", Region.NA, [com])
    com.add("com.", RdataType.NS, NS(Name("a.gtld-servers.net.")), ttl=172800)
    world.delegate(world.root_zone, "com.", ["a.gtld-servers.net."], ROOT_DELEGATION_TTL)
    world.root_zone.add(
        "a.gtld-servers.net.",
        RdataType.A,
        A(com_server.endpoint.address),
        ttl=ROOT_DELEGATION_TTL,
    )

    googlecom = world.add_zone(Zone("google.com.", default_ttl=345600))
    googlecom.add_soa("ns1.google.com.")
    google_ns_names = [f"ns{i}.google.com." for i in range(1, 5)]
    regions = [Region.NA, Region.EU, Region.AS, Region.NA]
    for ns_name, region in zip(google_ns_names, regions):
        server = world.add_server(ns_name.rstrip("."), region, [googlecom])
        googlecom.add(ns_name, RdataType.A, A(server.endpoint.address), ttl=345600)
        googlecom.add("google.com.", RdataType.NS, NS(Name(ns_name)), ttl=345600)
    world.delegate(com, "google.com.", google_ns_names, 172800)

    # .co TLD.
    co = world.add_zone(Zone("co.", default_ttl=900))
    co.add_soa("ns.cctld.co.")
    co_server = world.add_server("ns.cctld.co", Region.SA, [co])
    co.add("co.", RdataType.NS, NS(Name("ns.cctld.co.")), ttl=172800)
    co.add("ns.cctld.co.", RdataType.A, A(co_server.endpoint.address), ttl=172800)
    world.delegate(world.root_zone, "co.", ["ns.cctld.co."], ROOT_DELEGATION_TTL)

    # google.co: parent NS TTL 900 s in .co, child NS TTL 345600 s, served
    # by the (out-of-bailiwick) google.com servers.
    googleco = world.add_zone(Zone("google.co.", default_ttl=345600))
    googleco.add_soa("ns1.google.com.")
    for ns_name in google_ns_names:
        googleco.add("google.co.", RdataType.NS, NS(Name(ns_name)), ttl=345600)
        world.servers[ns_name.rstrip(".")].add_zone(googleco)
    googleco.add("google.co.", RdataType.A, A("203.0.113.100"), ttl=300)
    world.delegate(co, "google.co.", google_ns_names, 900)
    return world


# ----------------------------------------------------------------------------- §4
@dataclass
class CachetestWorld:
    """The §4 controlled renumbering experiment."""

    world: World
    in_bailiwick: bool
    sub_zone_old: Zone
    sub_zone_new: Zone
    old_server: AuthoritativeServer
    new_server: AuthoritativeServer
    old_answer: str
    new_answer: str
    server_host_zone: Optional[Zone] = None  # zurrundedu.com (out-of-bailiwick)

    def renumber(self) -> None:
        """Point the served-zone server name at the new machine (§4.2).

        For in-bailiwick setups this rewrites the glue in cachetest.net and
        the sub zone's own copies; for out-of-bailiwick it rewrites the A
        record inside zurrundedu.com.  The old machine keeps running and
        keeps answering with the old data — exactly the paper's setup.
        """
        new_address = self.new_server.endpoint.address
        if self.in_bailiwick:
            # Only the parent's glue changes; the old VM keeps serving its
            # unmodified zone (the paper's old/new servers intentionally
            # return different data, §4.2).
            parent = self.world.zone("cachetest.net.")
            parent.replace(
                "ns1.sub.cachetest.net.", RdataType.A, A(new_address), ttl=7200
            )
        else:
            # The experimenter updates the zurrundedu.com zone (served by
            # both VMs) and the .com glue — "the .com zone supports dynamic
            # updates and we verify this change is visible in seconds"
            # (§4.3).  Resolvers holding still-valid cached copies of the
            # old glue (OpenDNS-like, 2-day TTL) never notice.
            assert self.server_host_zone is not None
            self.server_host_zone.replace(
                "ns1.zurrundedu.com.", RdataType.A, A(new_address), ttl=7200
            )
            com = self.world.zone("com.")
            com.replace("ns1.zurrundedu.com.", RdataType.A, A(new_address), ttl=172800)

    def take_child_offline(self) -> None:
        """The zurrundedu-offline scenario (§4.4): both sub-zone servers
        stop answering; only parent-centric resolvers still resolve."""
        self.world.network.loss.take_down(self.old_server.endpoint.address)
        self.world.network.loss.take_down(self.new_server.endpoint.address)


def build_cachetest_world(seed: int = 0, in_bailiwick: bool = True) -> CachetestWorld:
    """The cachetest.net hierarchy of Figure 5.

    ``sub.cachetest.net`` is served by one server whose name is either
    inside the subzone (``ns1.sub.cachetest.net``, glue required) or
    outside it (``ns1.zurrundedu.com``).  NS TTL 3600 s, server A TTL
    7200 s, measurement answers (wildcard AAAA) TTL 60 s.
    """
    world = build_base_world(seed)

    # .net with cachetest.net delegated at the default 2-day TTLs.
    net_zone = world.add_zone(Zone("net.", default_ttl=ROOT_DELEGATION_TTL))
    net_zone.add_soa("a.gtld-servers.net.")
    net_server = world.add_server("a.gtld-servers.net", Region.NA, [net_zone])
    net_zone.add("net.", RdataType.NS, NS(Name("a.gtld-servers.net.")), ttl=172800)
    net_zone.add(
        "a.gtld-servers.net.", RdataType.A, A(net_server.endpoint.address), ttl=172800
    )
    world.delegate(world.root_zone, "net.", ["a.gtld-servers.net."], ROOT_DELEGATION_TTL)

    # cachetest.net, two in-bailiwick servers in EU (Frankfurt EC2 in the paper).
    cachetest = world.add_zone(Zone("cachetest.net.", default_ttl=3600))
    cachetest.add_soa("ns1.cachetest.net.")
    for index in (1, 2):
        server = world.add_server(f"ns{index}.cachetest.net", Region.EU, [cachetest])
        cachetest.add(
            "cachetest.net.", RdataType.NS, NS(Name(f"ns{index}.cachetest.net.")), ttl=3600
        )
        cachetest.add(
            f"ns{index}.cachetest.net.",
            RdataType.A,
            A(server.endpoint.address),
            ttl=3600,
        )
    world.delegate(
        net_zone,
        "cachetest.net.",
        ["ns1.cachetest.net.", "ns2.cachetest.net."],
        ROOT_DELEGATION_TTL,
    )

    old_answer = "2001:db8:0:1::60"
    new_answer = "2001:db8:0:2::60"

    if in_bailiwick:
        server_name = "ns1.sub.cachetest.net."
    else:
        server_name = "ns1.zurrundedu.com."

    def make_sub_zone(answer: str, server_address: str) -> Zone:
        zone = Zone("sub.cachetest.net.", default_ttl=3600)
        zone.add_soa(server_name)
        zone.add("sub.cachetest.net.", RdataType.NS, NS(Name(server_name)), ttl=3600)
        if in_bailiwick:
            zone.add(server_name, RdataType.A, A(server_address), ttl=7200)
        zone.add("*.sub.cachetest.net.", RdataType.AAAA, AAAA(answer), ttl=60)
        return zone

    old_server = world.add_server("sub-old", Region.EU)
    new_server = world.add_server("sub-new", Region.EU)
    sub_old = make_sub_zone(old_answer, old_server.endpoint.address)
    sub_new = make_sub_zone(new_answer, new_server.endpoint.address)
    old_server.add_zone(sub_old)
    new_server.add_zone(sub_new)
    world.add_zone(sub_old)  # the "current" child zone contents

    # Delegate sub.cachetest.net from cachetest.net, initially at the old
    # server's address.
    cachetest.add(
        "sub.cachetest.net.", RdataType.NS, NS(Name(server_name)), ttl=3600
    )
    server_host_zone: Optional[Zone] = None
    if in_bailiwick:
        cachetest.add(
            server_name, RdataType.A, A(old_server.endpoint.address), ttl=7200
        )
    else:
        # zurrundedu.com under .com, with its own (in-bailiwick) name server
        # hosting the A record of ns1.zurrundedu.com.
        com = world.add_zone(Zone("com.", default_ttl=ROOT_DELEGATION_TTL))
        com.add_soa("a.com-servers.net.")
        com_server = world.add_server("a.com-servers.net", Region.NA, [com])
        com.add("com.", RdataType.NS, NS(Name("a.com-servers.net.")), ttl=172800)
        world.delegate(world.root_zone, "com.", ["a.com-servers.net."], ROOT_DELEGATION_TTL)
        world.root_zone.add(
            "a.com-servers.net.",
            RdataType.A,
            A(com_server.endpoint.address),
            ttl=ROOT_DELEGATION_TTL,
        )

        # zurrundedu.com is served by ns1.zurrundedu.com itself (the very
        # machine being renumbered), so .com publishes 2-day glue for it —
        # the data parent-centric resolvers pin (§4.4).  Both the old and
        # the new VM serve the (single, updated-on-renumber) zone.
        zurr = world.add_zone(Zone("zurrundedu.com.", default_ttl=3600))
        zurr.add_soa(server_name)
        zurr.add("zurrundedu.com.", RdataType.NS, NS(Name(server_name)), ttl=3600)
        zurr.add(server_name, RdataType.A, A(old_server.endpoint.address), ttl=7200)
        old_server.add_zone(zurr)
        new_server.add_zone(zurr)
        com.add("zurrundedu.com.", RdataType.NS, NS(Name(server_name)), ttl=172800)
        com.add(server_name, RdataType.A, A(old_server.endpoint.address), ttl=172800)
        server_host_zone = zurr

    return CachetestWorld(
        world=world,
        in_bailiwick=in_bailiwick,
        sub_zone_old=sub_old,
        sub_zone_new=sub_new,
        old_server=old_server,
        new_server=new_server,
        old_answer=old_answer,
        new_answer=new_answer,
        server_host_zone=server_host_zone,
    )


# --------------------------------------------------------------------------- §3.4
@dataclass
class NlWorld:
    """.nl with four authoritative servers, two of them monitored."""

    world: World
    nl_zone: Zone
    server_names: list[str]
    monitored: list[str]  # the ns[1,3].dns.nl ENTRADA view

    def monitored_log_groups(self) -> dict[tuple[str, Name], list[float]]:
        """(resolver, qname) groups across the monitored servers' logs."""
        groups: dict[tuple[str, Name], list[float]] = {}
        for name in self.monitored:
            log = self.world.servers[name].query_log
            assert log is not None
            for key, stamps in log.by_group().items():
                groups.setdefault(key, []).extend(stamps)
        for stamps in groups.values():
            stamps.sort()
        return groups


def build_nl_world(seed: int = 0, domain_count: int = 500) -> NlWorld:
    """The Netherlands' .nl: glue 172800 s at the root, child A TTL 3600 s.

    ``domain_count`` synthetic second-level domains are delegated so a
    client workload can drive resolutions (the passive §3.4 study).
    """
    world = build_base_world(seed)
    nl = world.add_zone(Zone("nl.", default_ttl=3600))
    nl.add_soa("ns1.dns.nl.")

    server_names = ["ns1.dns.nl", "ns2.dns.nl", "ns3.dns.nl", "sns-pb.isc.org"]
    regions = [Region.EU, Region.EU, Region.NA, Region.NA]
    for name, region in zip(server_names, regions):
        server = world.add_server(name, region, [nl])
        nl.add("nl.", RdataType.NS, NS(Name(name)), ttl=3600)
        if Name(name).is_subdomain_of(Name("nl.")):
            nl.add(name, RdataType.A, A(server.endpoint.address), ttl=3600)

    world.delegate(
        world.root_zone,
        "nl.",
        [f"{name}." for name in server_names],
        ROOT_DELEGATION_TTL,
    )

    # sns-pb.isc.org needs the .org path to resolve.
    org = world.add_zone(Zone("org.", default_ttl=ROOT_DELEGATION_TTL))
    org.add_soa("a0.org-servers.net.")
    org_server = world.add_server("a0.org-servers.net", Region.NA, [org])
    org.add("org.", RdataType.NS, NS(Name("a0.org-servers.net.")), ttl=172800)
    world.delegate(world.root_zone, "org.", ["a0.org-servers.net."], ROOT_DELEGATION_TTL)
    world.root_zone.add(
        "a0.org-servers.net.",
        RdataType.A,
        A(org_server.endpoint.address),
        ttl=ROOT_DELEGATION_TTL,
    )
    isc = world.add_zone(Zone("isc.org.", default_ttl=7200))
    isc.add_soa("ns.isc.org.")
    isc_server = world.add_server("ns.isc.org", Region.NA, [isc])
    isc.add("isc.org.", RdataType.NS, NS(Name("ns.isc.org.")), ttl=7200)
    isc.add("ns.isc.org.", RdataType.A, A(isc_server.endpoint.address), ttl=7200)
    isc.add(
        "sns-pb.isc.org.",
        RdataType.A,
        A(world.servers["sns-pb.isc.org"].endpoint.address),
        ttl=7200,
    )
    world.delegate(org, "isc.org.", ["ns.isc.org."], 86400)

    # Synthetic .nl content domains (shared hosting: a handful of hosters).
    hoster_count = max(1, domain_count // 50)
    hosters = []
    for index in range(hoster_count):
        hoster_zone = world.add_zone(Zone(f"hoster{index}.nl.", default_ttl=3600))
        hoster_zone.add_soa(f"ns.hoster{index}.nl.")
        hoster_server = world.add_server(f"ns.hoster{index}.nl", Region.EU, [hoster_zone])
        hoster_zone.add(
            f"hoster{index}.nl.",
            RdataType.NS,
            NS(Name(f"ns.hoster{index}.nl.")),
            ttl=3600,
        )
        hoster_zone.add(
            f"ns.hoster{index}.nl.",
            RdataType.A,
            A(hoster_server.endpoint.address),
            ttl=3600,
        )
        nl.add(f"hoster{index}.nl.", RdataType.NS, NS(Name(f"ns.hoster{index}.nl.")), ttl=3600)
        nl.add(f"ns.hoster{index}.nl.", RdataType.A, A(hoster_server.endpoint.address), ttl=3600)
        hosters.append((hoster_zone, hoster_server))

    for index in range(domain_count):
        domain = f"domain{index}.nl."
        hoster_zone, hoster_server = hosters[index % hoster_count]
        zone = world.add_zone(Zone(domain, default_ttl=3600))
        zone.add_soa(f"ns.hoster{index % hoster_count}.nl.")
        zone.add(domain, RdataType.NS, NS(Name(f"ns.hoster{index % hoster_count}.nl.")), ttl=3600)
        zone.add(domain, RdataType.A, A(str(ipaddress.IPv4Address(0xC6336400 + index % 250))), ttl=3600)
        zone.add(f"www.{domain}", RdataType.A, A(str(ipaddress.IPv4Address(0xC6336400 + index % 250))), ttl=3600)
        hoster_server.add_zone(zone)
        nl.add(domain, RdataType.NS, NS(Name(f"ns.hoster{index % hoster_count}.nl.")), ttl=3600)

    return NlWorld(
        world=world,
        nl_zone=nl,
        server_names=server_names,
        monitored=["ns1.dns.nl", "ns3.dns.nl"],
    )


# --------------------------------------------------------------------------- §6.2
@dataclass
class ControlledWorld:
    """The mapache-de-madrid.co controlled TTL/anycast experiment."""

    world: World
    zone_unicast_60: Zone
    zone_unicast_86400: Zone
    zone_anycast: Zone
    unicast_server: AuthoritativeServer
    anycast: AnycastCluster


def build_controlled_world(seed: int = 0, anycast_sites: int = 45) -> ControlledWorld:
    """Test domains served from Frankfurt (unicast) and a 45-site anycast.

    Three sibling zones under .co carry the three configurations the paper
    compares: TTL 60 s unicast, TTL 86400 s unicast, TTL 60 s anycast.
    """
    world = build_base_world(seed)

    co = world.add_zone(Zone("co.", default_ttl=172800))
    co.add_soa("ns.cctld.co.")
    co_server = world.add_server("ns.cctld.co", Region.SA, [co])
    co.add("co.", RdataType.NS, NS(Name("ns.cctld.co.")), ttl=172800)
    co.add("ns.cctld.co.", RdataType.A, A(co_server.endpoint.address), ttl=172800)
    world.delegate(world.root_zone, "co.", ["ns.cctld.co."], ROOT_DELEGATION_TTL)

    def make_test_zone(origin: str, answer_ttl: int) -> Zone:
        zone = Zone(origin, default_ttl=3600)
        zone.add_soa(f"ns1.{origin}")
        zone.add(origin, RdataType.NS, NS(Name(f"ns1.{origin}")), ttl=3600)
        zone.add(f"*.{origin}", RdataType.AAAA, AAAA("2001:db8:60::1"), ttl=answer_ttl)
        return zone

    # Unicast: one Frankfurt-like EU server hosting both TTL variants.
    zone60 = make_test_zone("ttl60.mapache-de-madrid.co.", 60)
    zone86400 = make_test_zone("ttl86400.mapache-de-madrid.co.", 86400)
    unicast = world.add_server("ns1-unicast.mapache-de-madrid.co", Region.EU)
    for zone, origin in ((zone60, "ttl60"), (zone86400, "ttl86400")):
        zone.replace(
            f"ns1.{origin}.mapache-de-madrid.co.",
            RdataType.A,
            A(unicast.endpoint.address),
            ttl=3600,
        )
        unicast.add_zone(zone)
        world.add_zone(zone)
        co.add(
            f"{origin}.mapache-de-madrid.co.",
            RdataType.NS,
            NS(Name(f"ns1.{origin}.mapache-de-madrid.co.")),
            ttl=172800,
        )
        co.add(
            f"ns1.{origin}.mapache-de-madrid.co.",
            RdataType.A,
            A(unicast.endpoint.address),
            ttl=172800,
        )

    # Anycast: Route53-like, 45 sites spread over all regions.
    zone_any = make_test_zone("anycast.mapache-de-madrid.co.", 60)
    region_cycle = [Region.NA, Region.EU, Region.AS, Region.SA, Region.OC, Region.AF]
    site_regions = [region_cycle[i % len(region_cycle)] for i in range(anycast_sites)]
    cluster = world.add_anycast("route53-like", site_regions, [zone_any])
    zone_any.replace(
        "ns1.anycast.mapache-de-madrid.co.",
        RdataType.A,
        A(cluster.service_address),
        ttl=3600,
    )
    world.add_zone(zone_any)
    co.add(
        "anycast.mapache-de-madrid.co.",
        RdataType.NS,
        NS(Name("ns1.anycast.mapache-de-madrid.co.")),
        ttl=172800,
    )
    co.add(
        "ns1.anycast.mapache-de-madrid.co.",
        RdataType.A,
        A(cluster.service_address),
        ttl=172800,
    )

    return ControlledWorld(
        world=world,
        zone_unicast_60=zone60,
        zone_unicast_86400=zone86400,
        zone_anycast=zone_any,
        unicast_server=unicast,
        anycast=cluster,
    )


@dataclass
class OutageWorld:
    """The §6.1 DDoS testbed: one small zone behind one authoritative.

    Everything the availability story needs and nothing more — a root
    server, ``shop.example`` with every record at the tier's TTL, and the
    single child server whose outage the fault plan schedules.
    """

    world: World
    zone: Zone
    server: AuthoritativeServer

    @property
    def target_address(self) -> str:
        """The address a ``server_outage`` fault should target."""
        return self.server.endpoint.address


def build_outage_world(ttl: int, seed: int = 0) -> OutageWorld:
    """Build the DDoS-resilience world for one TTL tier.

    The root delegation keeps its realistic 2-day TTL; the child zone —
    NS, in-bailiwick glue, and the ``www`` answer — all carry ``ttl``, so
    the record under attack expires exactly ``ttl`` seconds after the
    cache was warmed.
    """
    topology = Topology(seed=seed)
    network = Network(seed=seed)
    clock = SimClock()

    root_zone = Zone("", default_ttl=172800)
    root_zone.add_soa("a.rootsrv.net.")
    root_zone.add("", RdataType.NS, NS(Name("a.rootsrv.net.")), ttl=518400)
    root_server = AuthoritativeServer(
        topology.endpoint_in_region(Region.NA, "a.rootsrv.net"), [root_zone]
    )
    network.register(root_server)
    root_zone.add("a.rootsrv.net.", RdataType.A, A(root_server.endpoint.address))

    zone = Zone("shop.example.", default_ttl=ttl)
    zone.add_soa("ns1.shop.example.")
    zone.add("shop.example.", RdataType.NS, NS(Name("ns1.shop.example.")), ttl=ttl)
    server = AuthoritativeServer(
        topology.endpoint_in_region(Region.EU, "ns1.shop.example"), [zone]
    )
    network.register(server)
    zone.add("ns1.shop.example.", RdataType.A, A(server.endpoint.address), ttl=ttl)
    zone.add("www.shop.example.", RdataType.A, A("203.0.113.10"), ttl=ttl)
    root_zone.add(
        "shop.example.", RdataType.NS, NS(Name("ns1.shop.example.")), ttl=172800
    )
    root_zone.add(
        "ns1.shop.example.", RdataType.A, A(server.endpoint.address), ttl=172800
    )
    hints = {Name("a.rootsrv.net."): root_server.endpoint.address}

    world = World(
        seed=seed,
        topology=topology,
        network=network,
        clock=clock,
        root_zone=root_zone,
        hints=hints,
    )
    world.add_zone(root_zone)
    world.add_zone(zone)
    world.servers["a.rootsrv.net"] = root_server
    world.servers["ns1.shop.example"] = server
    world._server_addresses["a.rootsrv.net"] = root_server.endpoint.address
    world._server_addresses["ns1.shop.example"] = server.endpoint.address
    return OutageWorld(world=world, zone=zone, server=server)


# ---------------------------------------------------------- prefetch tradeoff
@dataclass
class HotsetWorld:
    """A Zipf-skewed hot set behind one authoritative (prefetch study).

    One zone, ``names`` leaf A records all at the cell's TTL, one child
    server whose query counter is the "authoritative volume" axis of the
    prefetch/refresh-ahead trade-off figure.
    """

    world: World
    zone: Zone
    server: AuthoritativeServer
    #: The resolvable leaf names, rank order (``qnames[0]`` is rank 0 —
    #: feed :class:`repro.workload.ZipfSampler` ranks straight in).
    qnames: list[str]

    @property
    def auth_queries(self) -> int:
        """Queries the child authoritative has answered so far."""
        return self.server.queries_received


def build_hotset_world(ttl: int, seed: int = 0, names: int = 16) -> HotsetWorld:
    """Build the prefetch-tradeoff world for one TTL cell.

    Mirrors :func:`build_outage_world`: a realistic 2-day root
    delegation, and a child zone whose NS, glue, and all ``names`` leaf
    answers carry ``ttl`` — so every record a client asks for expires
    exactly ``ttl`` seconds after it was cached.
    """
    topology = Topology(seed=seed)
    network = Network(seed=seed)
    clock = SimClock()

    root_zone = Zone("", default_ttl=172800)
    root_zone.add_soa("a.rootsrv.net.")
    root_zone.add("", RdataType.NS, NS(Name("a.rootsrv.net.")), ttl=518400)
    root_server = AuthoritativeServer(
        topology.endpoint_in_region(Region.NA, "a.rootsrv.net"), [root_zone]
    )
    network.register(root_server)
    root_zone.add("a.rootsrv.net.", RdataType.A, A(root_server.endpoint.address))

    zone = Zone("hot.example.", default_ttl=ttl)
    zone.add_soa("ns1.hot.example.")
    zone.add("hot.example.", RdataType.NS, NS(Name("ns1.hot.example.")), ttl=ttl)
    server = AuthoritativeServer(
        topology.endpoint_in_region(Region.EU, "ns1.hot.example"), [zone]
    )
    network.register(server)
    zone.add("ns1.hot.example.", RdataType.A, A(server.endpoint.address), ttl=ttl)
    qnames = []
    for rank in range(names):
        qname = f"www{rank}.hot.example."
        zone.add(
            qname,
            RdataType.A,
            A(str(ipaddress.IPv4Address(0xCB007100 + rank % 250))),
            ttl=ttl,
        )
        qnames.append(qname)
    root_zone.add(
        "hot.example.", RdataType.NS, NS(Name("ns1.hot.example.")), ttl=172800
    )
    root_zone.add(
        "ns1.hot.example.", RdataType.A, A(server.endpoint.address), ttl=172800
    )
    hints = {Name("a.rootsrv.net."): root_server.endpoint.address}

    world = World(
        seed=seed,
        topology=topology,
        network=network,
        clock=clock,
        root_zone=root_zone,
        hints=hints,
    )
    world.add_zone(root_zone)
    world.add_zone(zone)
    world.servers["a.rootsrv.net"] = root_server
    world.servers["ns1.hot.example"] = server
    world._server_addresses["a.rootsrv.net"] = root_server.endpoint.address
    world._server_addresses["ns1.hot.example"] = server.endpoint.address
    return HotsetWorld(world=world, zone=zone, server=server, qnames=qnames)


# ------------------------------------------------------------------ ECS + CDN
@dataclass(frozen=True)
class EcsClient:
    """One simulated client population: a /24 and a place on the map."""

    index: int
    endpoint: Endpoint
    subnet: "ClientSubnet"
    region: Region
    #: Which public-resolver egress this subnet's anycast routing lands on
    #: ("eu" or "na") — the catchment that decouples client location from
    #: resolver location.
    egress: str


@dataclass
class EcsCdnWorld:
    """The ECS/CDN interplay testbed (RFC 7871 scenario family).

    One CDN zone whose content answer depends on where the query comes
    from: ``sites`` per region, a deterministic subnet→site map, client
    /24s spread over three regions, and public-resolver egress points
    whose anycast catchment sends AS clients to the EU egress — the
    misdirection that ECS exists to repair.
    """

    world: World
    zone: Zone
    cdn: "CdnAuthoritativeServer"
    content_name: str
    sites: dict[str, "CdnSite"]
    site_endpoints: dict[str, Endpoint]
    clients: list[EcsClient]
    #: Per-region ISP resolver endpoints (clients use their own region's).
    isp_endpoints: dict[Region, Endpoint]
    #: Public-resolver egress endpoints, keyed "eu"/"na".
    egress_endpoints: dict[str, Endpoint]

    @property
    def auth_queries(self) -> int:
        """Queries the CDN authoritative has answered so far."""
        return self.cdn.queries_received


_ECS_REGION_CYCLE = (Region.EU, Region.NA, Region.AS)
_ECS_SITE_OF_REGION = {Region.EU: "eu", Region.NA: "na", Region.AS: "as"}
#: Anycast catchment: AS clients land on the EU egress (no AS egress),
#: which is exactly the client/resolver decoupling the papers measure.
_ECS_EGRESS_OF_REGION = {Region.EU: "eu", Region.NA: "na", Region.AS: "eu"}


def _ecs_client_network(index: int) -> str:
    """The /24 network address for client population ``index``.

    Uses the RFC 2544 benchmarking block upward from 198.18.0.0, giving
    distinct /24s for as many populations as the cardinality bench asks
    for (1024 needs 198.18.0.0 through 198.21.255.0).
    """
    return f"198.{18 + index // 256}.{index % 256}.0"


def build_ecs_cdn_world(ttl: int, seed: int = 0, subnets: int = 8) -> EcsCdnWorld:
    """Build the ECS + CDN world for one (ttl, subnets) cell.

    Mirrors :func:`build_hotset_world`'s single-zone shape, but the child
    authoritative is a :class:`~repro.server.cdn.CdnAuthoritativeServer`
    answering ``www.cdn.example.`` with a per-region site address: by ECS
    subnet when the query carries one, by the resolver's own address
    otherwise.  Per-site TTLs all carry the cell's ``ttl`` so cache decay
    is uniform across sites and the TTL sweep stays interpretable.
    """
    from repro.dns.ecs import ClientSubnet
    from repro.server.cdn import CdnAuthoritativeServer, CdnSite

    if subnets < 1:
        raise ValueError(f"need at least one client subnet, got {subnets}")
    topology = Topology(seed=seed)
    network = Network(seed=seed)
    clock = SimClock()

    root_zone = Zone("", default_ttl=172800)
    root_zone.add_soa("a.rootsrv.net.")
    root_zone.add("", RdataType.NS, NS(Name("a.rootsrv.net.")), ttl=518400)
    root_server = AuthoritativeServer(
        topology.endpoint_in_region(Region.NA, "a.rootsrv.net"), [root_zone]
    )
    network.register(root_server)
    root_zone.add("a.rootsrv.net.", RdataType.A, A(root_server.endpoint.address))

    # Content sites, one per region, in TEST-NET-3 address space.
    site_specs = (
        ("eu", Region.EU, "203.0.113.1"),
        ("na", Region.NA, "203.0.113.2"),
        ("as", Region.AS, "203.0.113.3"),
    )
    sites: dict[str, CdnSite] = {}
    site_endpoints: dict[str, Endpoint] = {}
    for site_name, region, address in site_specs:
        allocated = topology.endpoint_in_region(region, name=f"cdn-site-{site_name}")
        site_endpoints[site_name] = Endpoint(
            address=address,
            region=allocated.region,
            asn=allocated.asn,
            name=f"cdn-site-{site_name}",
        )
        sites[site_name] = CdnSite(
            name=site_name, address=address, ttl=ttl, region=region
        )

    # Resolver seats are allocated here so the CDN map can route their
    # addresses; the scenario builds RecursiveResolvers on these exact
    # endpoints.
    isp_endpoints = {
        region: topology.endpoint_in_region(region, name=f"isp-res-{region.name.lower()}")
        for region in _ECS_REGION_CYCLE
    }
    egress_endpoints = {
        "eu": topology.endpoint_in_region(Region.EU, name="public-egress-eu"),
        "na": topology.endpoint_in_region(Region.NA, name="public-egress-na"),
    }

    clients: list[EcsClient] = []
    site_map: list[tuple[str, str]] = []
    for index in range(subnets):
        region = _ECS_REGION_CYCLE[index % len(_ECS_REGION_CYCLE)]
        network_address = _ecs_client_network(index)
        allocated = topology.endpoint_in_region(region, name=f"client-{index}")
        endpoint = Endpoint(
            address=network_address[:-1] + "10",
            region=allocated.region,
            asn=allocated.asn,
            name=f"client-{index}",
        )
        clients.append(
            EcsClient(
                index=index,
                endpoint=endpoint,
                subnet=ClientSubnet.from_ip(network_address, 24),
                region=region,
                egress=_ECS_EGRESS_OF_REGION[region],
            )
        )
        site_map.append((f"{network_address}/24", _ECS_SITE_OF_REGION[region]))
    for region, endpoint in isp_endpoints.items():
        site_map.append((f"{endpoint.address}/32", _ECS_SITE_OF_REGION[region]))
    site_map.append((f"{egress_endpoints['eu'].address}/32", "eu"))
    site_map.append((f"{egress_endpoints['na'].address}/32", "na"))

    zone = Zone("cdn.example.", default_ttl=ttl)
    zone.add_soa("ns1.cdn.example.")
    zone.add("cdn.example.", RdataType.NS, NS(Name("ns1.cdn.example.")), ttl=ttl)
    content_name = "www.cdn.example."
    cdn = CdnAuthoritativeServer(
        topology.endpoint_in_region(Region.EU, "ns1.cdn.example"),
        [zone],
        content_names=[content_name],
        sites=sites.values(),
        site_map=site_map,
        default_site="eu",
    )
    network.register(cdn)
    zone.add("ns1.cdn.example.", RdataType.A, A(cdn.endpoint.address), ttl=ttl)
    root_zone.add(
        "cdn.example.", RdataType.NS, NS(Name("ns1.cdn.example.")), ttl=172800
    )
    root_zone.add(
        "ns1.cdn.example.", RdataType.A, A(cdn.endpoint.address), ttl=172800
    )
    hints = {Name("a.rootsrv.net."): root_server.endpoint.address}

    world = World(
        seed=seed,
        topology=topology,
        network=network,
        clock=clock,
        root_zone=root_zone,
        hints=hints,
    )
    world.add_zone(root_zone)
    world.add_zone(zone)
    world.servers["a.rootsrv.net"] = root_server
    world.servers["ns1.cdn.example"] = cdn
    world._server_addresses["a.rootsrv.net"] = root_server.endpoint.address
    world._server_addresses["ns1.cdn.example"] = cdn.endpoint.address
    return EcsCdnWorld(
        world=world,
        zone=zone,
        cdn=cdn,
        content_name=content_name,
        sites=sites,
        site_endpoints=site_endpoints,
        clients=clients,
        isp_endpoints=isp_endpoints,
        egress_endpoints=egress_endpoints,
    )


# ------------------------------------------------------------- push vs poll
@dataclass
class PushWorld:
    """The push-vs-poll testbed: one renumbering-prone record.

    Mirrors :class:`OutageWorld` — a realistic root delegation plus one
    child zone behind one authoritative — but the interesting record is
    the content answer itself, which the scenario renumbers on the fault
    plan's ``record_change`` schedule.  :meth:`apply_change` is the one
    mutation primitive; the scenario publishes through the attached
    :class:`~repro.push.publisher.PushPublisher` (if any) right after.
    """

    world: World
    zone: Zone
    server: AuthoritativeServer
    #: The record the scenario probes and renumbers.
    content_name: str
    #: TTL every child-zone record carries.
    ttl: int

    @property
    def target_address(self) -> str:
        """The address outage/``record_change`` faults should target."""
        return self.server.endpoint.address

    def content_address(self, change_index: int) -> str:
        """The content record's address after change ``change_index``.

        The record starts at ``203.0.113.10``; change ``k`` renumbers it
        to ``203.0.113.(11 + k mod 200)`` — every change is visible.
        """
        return str(ipaddress.IPv4Address(0xCB007100 + 11 + change_index % 200))

    def apply_change(self, change_index: int) -> str:
        """Renumber the content record; returns the new address."""
        address = self.content_address(change_index)
        self.zone.replace(self.content_name, RdataType.A, A(address), ttl=self.ttl)
        return address


def build_push_world(ttl: int, seed: int = 0) -> PushWorld:
    """Build the push-vs-poll world for one TTL cell.

    Like :func:`build_outage_world`: the root delegation keeps its 2-day
    TTL, the child zone — NS, glue, and the ``www`` content answer — all
    carry ``ttl``, and the content record starts at change index 0's
    predecessor (``203.0.113.10``).
    """
    topology = Topology(seed=seed)
    network = Network(seed=seed)
    clock = SimClock()

    root_zone = Zone("", default_ttl=172800)
    root_zone.add_soa("a.rootsrv.net.")
    root_zone.add("", RdataType.NS, NS(Name("a.rootsrv.net.")), ttl=518400)
    root_server = AuthoritativeServer(
        topology.endpoint_in_region(Region.NA, "a.rootsrv.net"), [root_zone]
    )
    network.register(root_server)
    root_zone.add("a.rootsrv.net.", RdataType.A, A(root_server.endpoint.address))

    zone = Zone("pushed.example.", default_ttl=ttl)
    zone.add_soa("ns1.pushed.example.")
    zone.add("pushed.example.", RdataType.NS, NS(Name("ns1.pushed.example.")), ttl=ttl)
    server = AuthoritativeServer(
        topology.endpoint_in_region(Region.EU, "ns1.pushed.example"), [zone]
    )
    network.register(server)
    zone.add("ns1.pushed.example.", RdataType.A, A(server.endpoint.address), ttl=ttl)
    zone.add("www.pushed.example.", RdataType.A, A("203.0.113.10"), ttl=ttl)
    root_zone.add(
        "pushed.example.", RdataType.NS, NS(Name("ns1.pushed.example.")), ttl=172800
    )
    root_zone.add(
        "ns1.pushed.example.", RdataType.A, A(server.endpoint.address), ttl=172800
    )
    hints = {Name("a.rootsrv.net."): root_server.endpoint.address}

    world = World(
        seed=seed,
        topology=topology,
        network=network,
        clock=clock,
        root_zone=root_zone,
        hints=hints,
    )
    world.add_zone(root_zone)
    world.add_zone(zone)
    world.servers["a.rootsrv.net"] = root_server
    world.servers["ns1.pushed.example"] = server
    world._server_addresses["a.rootsrv.net"] = root_server.endpoint.address
    world._server_addresses["ns1.pushed.example"] = server.endpoint.address
    return PushWorld(
        world=world,
        zone=zone,
        server=server,
        content_name="www.pushed.example.",
        ttl=ttl,
    )
