"""The paper's experiments, one runnable scenario per section.

Every scenario builds its world, runs the measurement, and returns the raw
datasets plus the derived statistics that the corresponding table or
figure reports.  Bench targets under ``benchmarks/`` are thin wrappers
that print these results; tests assert the calibration targets.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.cdf import ECDF
from repro.analysis.centricity import (
    CentricityBreakdown,
    classify_active_ttls,
    classify_capped_or_child,
    classify_passive_groups,
    sticky_vps,
)
from repro.atlas.measurement import Measurement, MeasurementSpec
from repro.atlas.population import AtlasConfig, AtlasPopulation
from repro.atlas.results import ResultSet
from repro.core.experiment import make_population
from repro.core.worlds import (
    CachetestWorld,
    ControlledWorld,
    NlWorld,
    UyWorld,
    build_cachetest_world,
    build_cl_world,
    build_controlled_world,
    build_ecs_cdn_world,
    build_googleco_world,
    build_hotset_world,
    build_nl_world,
    build_outage_world,
    build_push_world,
    build_uy_world,
)
from repro.dns.message import Message, Rcode, Section
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.metrics.registry import MetricsRegistry
from repro.metrics.snapshot import MetricsSnapshot, merge_snapshots

# ------------------------------------------------- sharded campaign plumbing


def _run_sharded_campaign(
    campaign: str,
    fingerprint: dict,
    fn,
    kwargs: dict,
    total_units: int,
    seed: int,
    parallelism: int,
    shards: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    profile: Optional[str] = None,
    initializer=None,
    initargs: tuple = (),
):
    """Run a campaign through :mod:`repro.runner` and return the outcomes.

    ``parallelism=1`` uses the executor's serial in-process fallback;
    either way the shard plan depends only on ``(total_units, shards,
    seed)``, so results are identical for every worker count — the
    runner's determinism contract.  With ``shards`` unset the plan uses
    the fixed :data:`repro.runner.shard.DEFAULT_SHARDS`, never the
    worker count, so that contract holds for the defaults too.

    ``profile`` dumps per-shard cProfile stats to
    ``f"{profile}.shard-NNNN"``; ``initializer``/``initargs`` run once
    per worker process (world-cache prewarm).

    Returns ``(outcomes, metrics)``: the per-shard outcomes in shard
    order — each ``outcome.value`` already decoded from its codec
    envelope to ``{"results", "queries", "metrics"}`` — plus one merged
    :class:`MetricsSnapshot`: the shards' sim-domain metrics folded
    exactly, with the executor's host-domain telemetry (wall times,
    retries, checkpoint hits) alongside.
    """
    from repro.runner.checkpoint import CheckpointStore
    from repro.runner.codec import decode_shard_payload
    from repro.runner.executor import ShardExecutor
    from repro.runner.merge import merge_shard_metrics
    from repro.runner.progress import ProgressTracker
    from repro.runner.shard import DEFAULT_SHARDS, plan_shards

    num_shards = shards if shards is not None else DEFAULT_SHARDS
    plan = plan_shards(total_units, num_shards, seed)
    checkpoint = (
        CheckpointStore(run_dir, fingerprint) if run_dir is not None else None
    )
    tracker = ProgressTracker(campaign=campaign, callback=progress)
    host_registry = MetricsRegistry()
    executor = ShardExecutor(
        parallelism=parallelism,
        checkpoint=checkpoint,
        tracker=tracker,
        metrics=host_registry,
        initializer=initializer,
        initargs=initargs,
        profile_path=profile,
    )
    outcomes = executor.run(fn, plan, kwargs)
    for outcome in outcomes:
        outcome.value = decode_shard_payload(outcome.value)
    metrics = merge_shard_metrics(
        [outcome.value for outcome in outcomes]
    ).merge(host_registry.snapshot())
    return outcomes, metrics


def _normalize_fault_plan(faults) -> Optional[dict]:
    """Accept a :class:`FaultPlan` or a payload dict; return the payload.

    Payload form crosses the process boundary to shard workers and lands
    in the campaign fingerprint, so checkpoint resumes replay the exact
    schedule (a changed plan is a different campaign).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults.to_payload()
    return FaultPlan.from_payload(faults).to_payload()


def _run_centricity_sharded(
    campaign: str,
    builder: str,
    world_kwargs: dict,
    spec_kwargs: dict,
    qtype: RdataType,
    seed: int,
    probes: int,
    parallelism: int,
    shards: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    fault_plan: Optional[dict] = None,
    predict: bool = False,
    profile: Optional[str] = None,
    snapshot_every: int = 0,
) -> tuple[ResultSet, MetricsSnapshot]:
    """Shard an active centricity campaign over its probes and merge.

    ``snapshot_every`` (with ``run_dir``) makes each shard checkpoint
    its world-level state every that-many queries, so a killed run
    resumes mid-shard.  Snapshot cadence is deliberately *not* part of
    the fingerprint — it changes when state hits disk, never the
    results.
    """
    from repro.runner.campaigns import campaign_fingerprint, centricity_shard
    from repro.runner.merge import merge_result_sets
    from repro.runner.shard import DEFAULT_SHARDS
    from repro.runner.worldcache import prewarm

    kwargs = {
        "builder": builder,
        "world_kwargs": world_kwargs,
        "spec_kwargs": spec_kwargs,
        "qtype_name": qtype.name,
        "fault_plan": fault_plan,
    }
    if predict:
        # Only present when armed, so run dirs checkpointed before the
        # predict layer existed still fingerprint-match their campaigns.
        kwargs["predict"] = True
    fingerprint = campaign_fingerprint(
        "centricity",
        campaign=campaign,
        seed=seed,
        probes=probes,
        shards=shards if shards is not None else DEFAULT_SHARDS,
        **kwargs,
    )
    if run_dir is not None and snapshot_every > 0:
        kwargs["snapshot"] = {
            "run_dir": str(run_dir),
            "fingerprint": fingerprint,
            "every": int(snapshot_every),
        }
    outcomes, metrics = _run_sharded_campaign(
        campaign,
        fingerprint,
        centricity_shard,
        kwargs,
        total_units=probes,
        seed=seed,
        parallelism=parallelism,
        shards=shards,
        run_dir=run_dir,
        progress=progress,
        profile=profile,
        initializer=prewarm,
        initargs=(builder, world_kwargs),
    )
    merged = merge_result_sets([outcome.value["results"] for outcome in outcomes])
    return merged, metrics


# ------------------------------------------------------------------- Table 1


@dataclass
class Table1Row:
    query: str
    server: str
    response: str
    ttl: int
    section: str
    authoritative: bool


def scenario_table1_cl(seed: int = 0) -> list[Table1Row]:
    """Reproduce Table 1: the TTLs seen resolving a.nic.cl."""
    from repro.net.topology import Region

    world = build_cl_world(seed)
    client = world.topology.endpoint_in_region(Region.EU, name="table1-client")
    rows: list[Table1Row] = []

    def ask(server_name: str, qname: str, qtype: RdataType, label: str) -> None:
        address = world.address_of(server_name)
        query = Message.make_query(qname, qtype, recursion_desired=False)
        response, _ = world.network.exchange(client, address, query, now=0.0)
        for section, heading in (
            (Section.ANSWER, "Ans."),
            (Section.AUTHORITY, "Auth."),
            (Section.ADDITIONAL, "Add."),
        ):
            for record in response.section(section):
                rows.append(
                    Table1Row(
                        query=label,
                        server=server_name,
                        response=f"{record.name}/{record.rdtype.name}",
                        ttl=record.ttl,
                        section=heading,
                        authoritative=response.flags.aa,
                    )
                )

    ask("a.root-servers.net", "cl.", RdataType.NS, ".cl / NS")
    ask("a.nic.cl", "cl.", RdataType.NS, ".cl / NS")
    ask("a.nic.cl", "a.nic.cl.", RdataType.A, "a.nic.cl / A")
    return rows


# --------------------------------------------------------- §3.2/§3.3 (T2, F1, F2)


@dataclass
class CentricityRun:
    """One active centricity measurement campaign."""

    name: str
    parent_ttl: int
    child_ttl: int
    results: ResultSet
    breakdown: CentricityBreakdown
    summary: dict[str, int]
    #: Merged campaign metrics (sharded runs only; None on the plain
    #: serial path, which runs outside :mod:`repro.runner`).
    metrics: Optional[MetricsSnapshot] = None

    def ttl_cdf(self) -> ECDF:
        return ECDF(self.results.ttls())


def _expected_answer(result) -> bool:
    return result.ok


def scenario_uy_ns(
    seed: int = 0,
    probes: int = 300,
    child_ns_ttl: int = 300,
    duration: float = 7200.0,
    interval: float = 600.0,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    faults=None,
    predict: bool = False,
    profile: Optional[str] = None,
    snapshot_every: int = 0,
) -> CentricityRun:
    """The .uy-NS campaign (Table 2 col 1; Figure 1): parent 172800 s,
    child 300 s, queries every 10 min for 2 h.

    With ``parallelism`` set, the campaign runs through
    :mod:`repro.runner`: probes are sharded deterministically, shards
    execute on that many workers (1 = the serial in-process fallback),
    and the merged :class:`ResultSet` is identical for every worker
    count.  ``run_dir`` enables checkpoint/resume; ``snapshot_every``
    additionally checkpoints world-level state mid-shard (see
    docs/performance.md).  ``faults`` (a :class:`FaultPlan` or its
    payload) schedules failures against the campaign's virtual clock —
    see docs/resilience.md.  ``predict`` arms every resolver with the
    default predictive policy (refresh-ahead + RFC 8767) — see
    docs/prediction.md.  ``profile`` writes per-shard cProfile stats.
    """
    fault_plan = _normalize_fault_plan(faults)
    spec_kwargs = dict(
        qname="uy.",
        interval=interval,
        duration=duration,
        description=f".uy-NS (child TTL {child_ns_ttl})",
    )
    metrics = None
    if parallelism is not None:
        results, metrics = _run_centricity_sharded(
            campaign="uy-NS",
            builder="uy",
            world_kwargs={"child_ns_ttl": child_ns_ttl},
            spec_kwargs=spec_kwargs,
            qtype=RdataType.NS,
            seed=seed,
            probes=probes,
            parallelism=parallelism,
            shards=shards,
            run_dir=run_dir,
            progress=progress,
            fault_plan=fault_plan,
            predict=predict,
            profile=profile,
            snapshot_every=snapshot_every,
        )
    else:
        uy = build_uy_world(seed, child_ns_ttl=child_ns_ttl)
        if fault_plan is not None:
            uy.world.network.attach_faults(
                FaultInjector(FaultPlan.from_payload(fault_plan), seed=seed)
            )
        population = make_population(
            uy.world, probes=probes, seed=seed, predict=predict
        )
        spec = MeasurementSpec(qtype=RdataType.NS, **spec_kwargs)
        results = Measurement(
            spec=spec, vantage_points=population.vantage_points(), seed=seed
        ).run()
    valid = results.valid(_expected_answer)
    breakdown = classify_active_ttls(
        valid.ttls(), parent_ttl=172800, child_ttl=child_ns_ttl
    )
    return CentricityRun(
        name="uy-NS" if child_ns_ttl == 300 else "uy-NS-new",
        parent_ttl=172800,
        child_ttl=child_ns_ttl,
        results=valid,
        breakdown=breakdown,
        summary=results.summary(_expected_answer),
        metrics=metrics,
    )


def scenario_anicuy_a(
    seed: int = 0,
    probes: int = 300,
    duration: float = 10800.0,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    faults=None,
    predict: bool = False,
    profile: Optional[str] = None,
    snapshot_every: int = 0,
) -> CentricityRun:
    """The a.nic.uy-A campaign (Table 2 col 2; Figure 1): parent glue
    172800 s, child A 120 s, every 10 min for 3 h."""
    fault_plan = _normalize_fault_plan(faults)
    spec_kwargs = dict(
        qname="a.nic.uy.",
        interval=600.0,
        duration=duration,
        description="a.nic.uy-A",
    )
    metrics = None
    if parallelism is not None:
        results, metrics = _run_centricity_sharded(
            campaign="a.nic.uy-A",
            builder="uy",
            world_kwargs={},
            spec_kwargs=spec_kwargs,
            qtype=RdataType.A,
            seed=seed,
            probes=probes,
            parallelism=parallelism,
            shards=shards,
            run_dir=run_dir,
            progress=progress,
            fault_plan=fault_plan,
            predict=predict,
            profile=profile,
            snapshot_every=snapshot_every,
        )
    else:
        uy = build_uy_world(seed)
        if fault_plan is not None:
            uy.world.network.attach_faults(
                FaultInjector(FaultPlan.from_payload(fault_plan), seed=seed)
            )
        population = make_population(
            uy.world, probes=probes, seed=seed, predict=predict
        )
        spec = MeasurementSpec(qtype=RdataType.A, **spec_kwargs)
        results = Measurement(
            spec=spec, vantage_points=population.vantage_points(), seed=seed
        ).run()
    valid = results.valid(_expected_answer)
    breakdown = classify_active_ttls(valid.ttls(), parent_ttl=172800, child_ttl=120)
    return CentricityRun(
        name="a.nic.uy-A",
        parent_ttl=172800,
        child_ttl=120,
        results=valid,
        breakdown=breakdown,
        summary=results.summary(_expected_answer),
        metrics=metrics,
    )


def scenario_googleco_ns(
    seed: int = 0,
    probes: int = 300,
    duration: float = 3600.0,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    faults=None,
    predict: bool = False,
    profile: Optional[str] = None,
    snapshot_every: int = 0,
) -> CentricityRun:
    """The google.co-NS campaign (Table 2 col 3; Figure 2): parent 900 s,
    child 345600 s, every 10 min for 1 h."""
    fault_plan = _normalize_fault_plan(faults)
    spec_kwargs = dict(
        qname="google.co.",
        interval=600.0,
        duration=duration,
        description="google.co-NS",
    )
    metrics = None
    if parallelism is not None:
        results, metrics = _run_centricity_sharded(
            campaign="google.co-NS",
            builder="googleco",
            world_kwargs={},
            spec_kwargs=spec_kwargs,
            qtype=RdataType.NS,
            seed=seed,
            probes=probes,
            parallelism=parallelism,
            shards=shards,
            run_dir=run_dir,
            progress=progress,
            fault_plan=fault_plan,
            predict=predict,
            profile=profile,
            snapshot_every=snapshot_every,
        )
    else:
        world = build_googleco_world(seed)
        if fault_plan is not None:
            world.network.attach_faults(
                FaultInjector(FaultPlan.from_payload(fault_plan), seed=seed)
            )
        population = make_population(
            world, probes=probes, seed=seed, predict=predict
        )
        spec = MeasurementSpec(qtype=RdataType.NS, **spec_kwargs)
        results = Measurement(
            spec=spec, vantage_points=population.vantage_points(), seed=seed
        ).run()
    valid = results.valid(_expected_answer)
    breakdown = classify_capped_or_child(
        valid.ttls(), parent_ttl=900, child_ttl=345600, cap=21599
    )
    return CentricityRun(
        name="google.co-NS",
        parent_ttl=900,
        child_ttl=345600,
        results=valid,
        breakdown=breakdown,
        summary=results.summary(_expected_answer),
        metrics=metrics,
    )


# ------------------------------------------------------------ §3.4 (F3, F4)


@dataclass
class NlPassiveRun:
    world: NlWorld
    groups: dict[tuple[str, Name], list[float]]
    breakdown: object
    queries_per_group: list[int]
    min_interarrivals: list[float]
    total_queries: int
    unique_resolvers: int


def scenario_nl_passive(
    seed: int = 0,
    resolvers: int = 200,
    duration: float = 172800.0,
    domain_count: int = 300,
    median_rate_per_hour: float = 0.025,
    rate_sigma: float = 2.2,
) -> NlPassiveRun:
    """The passive .nl study (§3.4): a resolver fleet drives two days of
    client workload; the monitored authoritatives' logs are grouped by
    (resolver, NS-name) exactly as Figures 3 and 4 require."""
    from repro.resolver.policy import ResolverPolicy
    from repro.resolver.recursive import RecursiveResolver

    nl = build_nl_world(seed, domain_count=domain_count)
    world = nl.world
    rng = random.Random(seed ^ 0x9A55)

    fleet: list[RecursiveResolver] = []
    for index in range(resolvers):
        endpoint = world.topology.create_endpoint(name=f"nl-res-{index}")
        fleet.append(
            RecursiveResolver(
                endpoint=endpoint,
                network=world.network,
                root_hints=world.hints,
                policy=ResolverPolicy.child_centric(),
            )
        )

    # Heterogeneous client demand: a heavy-tailed lognormal over per-
    # resolver rates — most resolvers rarely need .nl (they produce the
    # paper's 48 % single-query groups), a few are very busy (they produce
    # the multi-query mass and the hourly re-fetch bumps of Figure 4).
    events: list[tuple[float, int, str]] = []
    for index in range(resolvers):
        rate = rng.lognormvariate(math.log(median_rate_per_hour), rate_sigma) / 3600.0
        t = rng.expovariate(rate) if rate > 0 else duration
        while t < duration:
            domain = f"www.domain{rng.randrange(domain_count)}.nl."
            events.append((t, index, domain))
            t += rng.expovariate(rate)
    events.sort(key=lambda event: event[0])

    for timestamp, index, qname in events:
        fleet[index].resolve(qname, RdataType.A, timestamp)

    ns_names = {Name(f"{name}.") for name in nl.server_names}
    groups = {
        key: stamps
        for key, stamps in nl.monitored_log_groups().items()
        if key[1] in ns_names
    }
    from repro.analysis.interarrival import (
        min_interarrival_per_group,
        queries_per_group,
    )

    breakdown = classify_passive_groups(groups)
    return NlPassiveRun(
        world=nl,
        groups=groups,
        breakdown=breakdown,
        queries_per_group=queries_per_group(groups),
        min_interarrivals=min_interarrival_per_group(groups),
        total_queries=sum(
            world.servers[name].queries_received for name in nl.monitored
        ),
        unique_resolvers=len({resolver for resolver, _ in groups}),
    )


# ----------------------------------------------------- §4 (T3, T4, F6, F7, F8)


@dataclass
class BailiwickRun:
    world: CachetestWorld
    results: ResultSet
    summary: dict[str, int]
    timeseries: dict[str, dict[int, int]]
    sticky_vp_ids: set[str]
    switched_by_round: dict[int, float]  # round -> fraction answered by new

    @property
    def old_label(self) -> str:
        return self.world.old_answer

    @property
    def new_label(self) -> str:
        return self.world.new_answer


def scenario_bailiwick(
    seed: int = 0,
    in_bailiwick: bool = True,
    probes: int = 300,
    duration: float = 14400.0,
    interval: float = 600.0,
    renumber_at: float = 540.0,
) -> BailiwickRun:
    """The §4 renumbering experiment (in- or out-of-bailiwick).

    Queries AAAA PROBEID.sub.cachetest.net every 10 minutes for 4 hours
    from every VP; the server is renumbered at t=9 min (paper §4.2).
    """
    ct = build_cachetest_world(seed, in_bailiwick=in_bailiwick)
    population = make_population(ct.world, probes=probes, seed=seed)
    spec = MeasurementSpec(
        qname="PROBEID.sub.cachetest.net.",
        qtype=RdataType.AAAA,
        interval=interval,
        duration=duration,
        description=f"{'in' if in_bailiwick else 'out-of'}-bailiwick renumbering",
    )
    measurement = Measurement(
        spec=spec, vantage_points=population.vantage_points(), seed=seed
    )
    measurement.schedule(renumber_at, ct.renumber, label="renumber")
    results = measurement.run()
    valid = results.valid(_expected_answer)

    per_vp: dict[str, list[tuple[float, tuple[str, ...]]]] = {}
    for result in valid:
        per_vp.setdefault(result.vp_id, []).append((result.timestamp, result.answers))
    sticky = sticky_vps(per_vp, ct.old_answer, first_round_end=interval)

    switched: dict[int, float] = {}
    for round_index in range(spec.rounds()):
        round_results = valid.for_round(round_index)
        if len(round_results) == 0:
            continue
        new_count = sum(
            1 for result in round_results if ct.new_answer in result.answers
        )
        switched[round_index] = new_count / len(round_results)

    return BailiwickRun(
        world=ct,
        results=valid,
        summary=results.summary(_expected_answer),
        timeseries=valid.answer_timeseries(bin_seconds=interval),
        sticky_vp_ids=sticky,
        switched_by_round=switched,
    )


def scenario_matched_sticky(
    seed: int = 0, probes: int = 300
) -> tuple[BailiwickRun, BailiwickRun, list[float]]:
    """Figure 8: VPs sticky in the out-of-bailiwick run, re-observed in the
    in-bailiwick run; returns their new-server response ratios there."""
    out_run = scenario_bailiwick(seed, in_bailiwick=False, probes=probes)
    in_run = scenario_bailiwick(seed, in_bailiwick=True, probes=probes)
    in_per_vp: dict[str, list] = {}
    for result in in_run.results:
        in_per_vp.setdefault(result.vp_id, []).append(result)
    ratios: list[float] = []
    for vp_id in out_run.sticky_vp_ids:
        rows = in_per_vp.get(vp_id)
        if not rows:
            continue
        new = sum(1 for r in rows if in_run.world.new_answer in r.answers)
        ratios.append(new / len(rows))
    return out_run, in_run, ratios


@dataclass
class OpenDnsCaseStudy:
    """§4.4's confirmation probe of a parent-centric public resolver."""

    responses: int
    old_answers: int
    new_answers: int
    child_ns_queries_seen: int

    @property
    def old_fraction(self) -> float:
        return self.old_answers / self.responses if self.responses else 0.0


def scenario_opendns_case_study(
    seed: int = 0,
    interval: float = 300.0,
    duration: float = 48600.0,
) -> OpenDnsCaseStudy:
    """The §4.4 single-VP probe of an OpenDNS-like resolver.

    The paper queried one OpenDNS resolver every 300 s after renumbering
    the out-of-bailiwick server and found answers from the *old* server
    long past every child TTL — because the resolver trusted the .com
    zone's 2-day NS/glue and never asked the child for NS records.
    """
    from repro.resolver.policy import ResolverPolicy
    from repro.resolver.recursive import RecursiveResolver
    from repro.net.topology import Region

    ct = build_cachetest_world(seed, in_bailiwick=False)
    world = ct.world
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU, "opendns-like"),
        network=world.network,
        root_hints=world.hints,
        policy=ResolverPolicy.parent_centric(),
    )
    # Warm the resolver, renumber at t=9min, then probe every 300 s.
    old = new = responses = 0
    renumbered = False
    t = 0.0
    while t < duration:
        if not renumbered and t >= 540.0:
            ct.renumber()
            renumbered = True
        out = resolver.resolve("probe.sub.cachetest.net.", RdataType.AAAA, now=t)
        if out.rcode.name == "NOERROR" and out.answers:
            responses += 1
            answer = str(out.answers[-1].rdatas[0])
            if answer == ct.old_answer:
                old += 1
            elif answer == ct.new_answer:
                new += 1
        t += interval
    # "our authoritative servers have received no queries for NS
    # zurrundedu.com" — verify the same from our logs.
    ns_queries = 0
    for server in (ct.old_server, ct.new_server):
        log = server.query_log
        if log is not None:
            ns_queries += sum(
                1
                for entry in log
                if entry.qtype == RdataType.NS
                and entry.qname == Name("zurrundedu.com.")
            )
    return OpenDnsCaseStudy(
        responses=responses,
        old_answers=old,
        new_answers=new,
        child_ns_queries_seen=ns_queries,
    )


def scenario_zurrundedu_offline(
    seed: int = 0, probes: int = 200
) -> tuple[ResultSet, AtlasPopulation]:
    """§4.4: child servers down; only parent-centric resolvers answer."""
    ct = build_cachetest_world(seed, in_bailiwick=False)
    population = make_population(ct.world, probes=probes, seed=seed)
    ct.take_child_offline()
    spec = MeasurementSpec(
        qname="sub.cachetest.net.",
        qtype=RdataType.NS,
        interval=600.0,
        duration=1200.0,
        description="child authoritatives offline",
    )
    results = Measurement(
        spec=spec, vantage_points=population.vantage_points(), seed=seed
    ).run()
    return results, population


# ----------------------------------------------------------- §5.3 (Figure 10)


@dataclass
class UyNaturalRun:
    before: ResultSet
    after: ResultSet

    def rtts_by_region(self, which: str) -> dict:
        dataset = self.before if which == "before" else self.after
        return {
            region: [r.rtt * 1000.0 for r in rows]
            for region, rows in dataset.by_region().items()
        }


def scenario_uy_natural(
    seed: int = 0,
    probes: int = 300,
    duration: float = 7200.0,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
) -> UyNaturalRun:
    """Figure 10: .uy NS query RTTs with TTL 300 s vs 86400 s.

    Run as two independent campaigns (before/after the operator's change),
    as the paper's uy-NS and uy-NS-new measurements were.
    """
    before = scenario_uy_ns(
        seed, probes=probes, child_ns_ttl=300, duration=duration,
        parallelism=parallelism, shards=shards,
    )
    after = scenario_uy_ns(
        seed, probes=probes, child_ns_ttl=86400, duration=duration,
        parallelism=parallelism, shards=shards,
    )
    return UyNaturalRun(before=before.results, after=after.results)


# ------------------------------------------------------- §6.2 (Table 10, F11)


@dataclass
class ControlledRun:
    label: str
    results: ResultSet
    auth_queries: int
    auth_unique_ips: int
    client_summary: dict[str, int]
    #: This run's metrics snapshot (sharded runs only; None otherwise).
    metrics: Optional[MetricsSnapshot] = None

    def rtts_ms(self) -> list[float]:
        return self.results.rtts_ms()


def _run_controlled(
    label: str,
    seed: int,
    probes: int,
    qname: str,
    zone_attr: str,
    server_attr: str,
    duration: float,
    interval: float = 600.0,
    metrics: Optional[MetricsRegistry] = None,
) -> ControlledRun:
    world = build_controlled_world(seed)
    if metrics is not None:
        world.world.network.attach_metrics(metrics)
    population = make_population(world.world, probes=probes, seed=seed)
    spec = MeasurementSpec(
        qname=qname,
        qtype=RdataType.AAAA,
        interval=interval,
        duration=duration,
        description=label,
    )
    results = Measurement(
        spec=spec, vantage_points=population.vantage_points(), seed=seed
    ).run()
    valid = results.valid(_expected_answer)
    server = getattr(world, server_attr)
    log = server.query_log
    assert log is not None
    zone = getattr(world, zone_attr)
    relevant = log.filtered(lambda e: e.qname.is_subdomain_of(zone.origin))
    return ControlledRun(
        label=label,
        results=valid,
        auth_queries=len(relevant),
        auth_unique_ips=len(relevant.unique_clients()),
        client_summary=results.summary(_expected_answer),
    )


#: The five §6.2 experiments: label -> (seed offset, qname, zone, server).
_CONTROLLED_RUNS: list[tuple[str, int, str, str, str]] = [
    ("TTL60-u", 0, "PROBEID.ttl60.mapache-de-madrid.co.",
     "zone_unicast_60", "unicast_server"),
    ("TTL86400-u", 1, "PROBEID.ttl86400.mapache-de-madrid.co.",
     "zone_unicast_86400", "unicast_server"),
    ("TTL60-s", 2, "1.ttl60.mapache-de-madrid.co.",
     "zone_unicast_60", "unicast_server"),
    ("TTL86400-s", 3, "2.ttl86400.mapache-de-madrid.co.",
     "zone_unicast_86400", "unicast_server"),
    ("TTL60-anycast", 4, "4.anycast.mapache-de-madrid.co.",
     "zone_anycast", "anycast"),
]


def scenario_controlled_ttl(
    seed: int = 0,
    probes: int = 300,
    duration: float = 3600.0,
    parallelism: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    profile: Optional[str] = None,
) -> dict[str, ControlledRun]:
    """Table 10 / Figure 11: the five controlled experiments.

    Unique-QNAME runs use PROBEID names; shared runs a single name; the
    anycast run uses the 45-site cluster.  Each runs in a fresh world —
    so with ``parallelism`` set the five runs execute as one shard each
    through :mod:`repro.runner`, and (unlike the probe-sharded
    centricity campaigns) the parallel output is identical to this
    function's serial output.
    """
    run_params = [
        {
            "label": label,
            "seed": seed + offset,
            "probes": probes,
            "qname": qname,
            "zone_attr": zone_attr,
            "server_attr": server_attr,
            "duration": duration,
        }
        for label, offset, qname, zone_attr, server_attr in _CONTROLLED_RUNS
    ]
    if parallelism is None:
        return {
            params["label"]: _run_controlled(**params) for params in run_params
        }

    from repro.runner.campaigns import campaign_fingerprint, controlled_shard

    fingerprint = campaign_fingerprint(
        "controlled-ttl", seed=seed, probes=probes, duration=duration
    )
    outcomes, _ = _run_sharded_campaign(
        "controlled-ttl",
        fingerprint,
        controlled_shard,
        {"runs": run_params},
        total_units=len(run_params),
        seed=seed,
        parallelism=parallelism,
        shards=len(run_params),
        run_dir=run_dir,
        progress=progress,
        profile=profile,
    )
    runs: dict[str, ControlledRun] = {}
    for outcome in outcomes:
        run = outcome.value["results"]
        run.metrics = MetricsSnapshot.from_payload(outcome.value["metrics"])
        runs[run.label] = run
    return runs


# ------------------------------------------------------------------- §6.1


@dataclass(frozen=True)
class DdosTierResult:
    """One (TTL, serve-stale) cell of the resilience matrix."""

    ttl: int
    serve_stale: bool
    seed: int
    #: Probe slots during the attack window.
    slots: int
    #: Slots answered with records (fresh or stale).
    answered: int
    #: Slots answered from expired cache (serve-stale engagements).
    stale_answers: int
    #: Whether the post-attack recovery probe got a fresh answer.
    recovered: bool

    @property
    def availability(self) -> float:
        return self.answered / self.slots if self.slots else 0.0

    @property
    def served_stale_fraction(self) -> float:
        return self.stale_answers / self.slots if self.slots else 0.0


@dataclass
class DdosResilienceRun:
    """§6.1: answer availability under an authoritative outage.

    The paper's claim — "longer caching is more robust to DDoS attacks",
    sharpened by Moura et al. to "TTLs must be longer than the attack" —
    falls out of the tier matrix: availability climbs from 0 to 1 as the
    TTL crosses the attack duration, and serve-stale rescues every tier.
    """

    attack_seconds: float
    probe_interval: float
    attack_start: float
    tiers: list[DdosTierResult]
    #: Merged campaign metrics (fault events, retries, recoveries).
    metrics: Optional[MetricsSnapshot] = None

    def tier(self, ttl: int, serve_stale: bool) -> DdosTierResult:
        for result in self.tiers:
            if result.ttl == ttl and result.serve_stale == serve_stale:
                return result
        raise KeyError((ttl, serve_stale))

    def availability_profile(self, serve_stale: bool) -> dict[int, float]:
        """TTL -> availability, the headline curve of the scenario."""
        return {
            result.ttl: result.availability
            for result in self.tiers
            if result.serve_stale == serve_stale
        }


def _run_ddos_tier(
    *,
    ttl: int,
    serve_stale: bool,
    seed: int,
    attack_seconds: float,
    probe_interval: float,
    attack_start: float,
    fault_plan: Optional[dict] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> DdosTierResult:
    """Probe one warmed resolver through an authoritative outage.

    The outage is injected through :mod:`repro.faults` (never by mutating
    the loss model directly), so every fault event is observable in the
    metrics stream and extra faults can ride along via ``fault_plan``.
    """
    from repro.net.topology import Region
    from repro.resolver.policy import ResolverPolicy
    from repro.resolver.recursive import RecursiveResolver

    outage = build_outage_world(ttl, seed)
    world = outage.world
    if metrics is not None:
        world.network.attach_metrics(metrics)

    specs = [
        FaultSpec(
            kind="server_outage",
            start=attack_start,
            duration=attack_seconds,
            target=outage.target_address,
        )
    ]
    plan_name, plan_seed = "ddos", seed
    if fault_plan is not None:
        extra = FaultPlan.from_payload(fault_plan)
        specs.extend(extra.faults)
        plan_name = extra.name or plan_name
        plan_seed = extra.seed
    plan = FaultPlan(faults=tuple(specs), name=plan_name, seed=plan_seed)
    world.network.attach_faults(FaultInjector(plan, seed=seed))

    policy = ResolverPolicy.child_centric().with_(serve_stale=serve_stale)
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU, "res"),
        network=world.network,
        root_hints=world.hints,
        policy=policy,
    )
    # Warm the cache just before the attack begins.
    warm = resolver.resolve("www.shop.example.", RdataType.A, now=0.0)
    assert warm.rcode == Rcode.NOERROR and warm.answers

    answered = stale = 0
    slots = int(attack_seconds // probe_interval)
    for k in range(1, slots + 1):
        out = resolver.resolve("www.shop.example.", RdataType.A, now=k * probe_interval)
        if out.rcode == Rcode.NOERROR and out.answers:
            answered += 1
            stale += out.served_stale
    # One probe after the attack lifts: the tree answers again, and the
    # delivery closes the fault's recovery clock in the metrics stream.
    after = resolver.resolve(
        "www.shop.example.", RdataType.A,
        now=attack_start + attack_seconds + probe_interval,
    )
    recovered = bool(after.rcode == Rcode.NOERROR and after.answers)
    return DdosTierResult(
        ttl=ttl,
        serve_stale=serve_stale,
        seed=seed,
        slots=slots,
        answered=answered,
        stale_answers=stale,
        recovered=recovered,
    )


def scenario_ddos_resilience(
    seed: int = 0,
    ttls: tuple = (60, 300, 1800, 3600, 86400),
    attack_seconds: float = 3600.0,
    probe_interval: float = 300.0,
    attack_start: Optional[float] = None,
    faults=None,
    parallelism: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    profile: Optional[str] = None,
) -> DdosResilienceRun:
    """§6.1: availability across TTL tiers during a 1 h authoritative DDoS.

    Runs a (TTL × serve-stale) matrix of independent tiers: each warms a
    child-centric resolver, takes the zone's only authoritative down via
    a :class:`FaultPlan`, and probes every ``probe_interval``.  With
    ``parallelism`` set the tiers run as one shard each through
    :mod:`repro.runner` — byte-identical to the serial path for any
    worker count.  ``faults`` schedules *additional* failures on top of
    the attack in every tier.
    """
    if attack_start is None:
        # Half a slot before the first probe: every probe lands mid-attack.
        attack_start = probe_interval / 2
    fault_plan = _normalize_fault_plan(faults)
    tier_params = [
        {
            "ttl": ttl,
            "serve_stale": serve_stale,
            "seed": seed + index,
            "attack_seconds": attack_seconds,
            "probe_interval": probe_interval,
            "attack_start": attack_start,
            "fault_plan": fault_plan,
        }
        for index, (serve_stale, ttl) in enumerate(
            (s, t) for s in (False, True) for t in ttls
        )
    ]

    if parallelism is None:
        tiers: list[DdosTierResult] = []
        snapshots: list[MetricsSnapshot] = []
        for params in tier_params:
            registry = MetricsRegistry()
            tiers.append(_run_ddos_tier(**params, metrics=registry))
            snapshots.append(registry.snapshot())
        metrics = merge_snapshots(snapshots)
    else:
        from repro.runner.campaigns import campaign_fingerprint, ddos_shard

        fingerprint = campaign_fingerprint(
            "ddos-resilience", seed=seed, tiers=tier_params
        )
        outcomes, metrics = _run_sharded_campaign(
            "ddos-resilience",
            fingerprint,
            ddos_shard,
            {"tiers": tier_params},
            total_units=len(tier_params),
            seed=seed,
            parallelism=parallelism,
            shards=len(tier_params),
            run_dir=run_dir,
            progress=progress,
            profile=profile,
        )
        tiers = [outcome.value["results"] for outcome in outcomes]
    return DdosResilienceRun(
        attack_seconds=attack_seconds,
        probe_interval=probe_interval,
        attack_start=attack_start,
        tiers=tiers,
        metrics=metrics,
    )


# ----------------------------------------------- prefetch/refresh-ahead figure


#: Resolver behaviour per prefetch-tradeoff mode.
_PREFETCH_MODES = ("off", "onhit", "ahead")


@dataclass(frozen=True)
class PrefetchCell:
    """One (mode, TTL) cell of the prefetch trade-off matrix."""

    mode: str
    ttl: int
    seed: int
    #: Client queries driven through the resolver.
    queries: int
    #: Queries answered straight from live cache.
    cache_hits: int
    #: Queries the child authoritative answered (the volume axis).
    auth_queries: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: Scheduler-executed refreshes + revalidations (0 for mode "off").
    refreshes: int
    #: RFC 8767 stale answers (mode "ahead" only).
    stale_answered: int

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0


@dataclass
class PrefetchTradeoffRun:
    """The prefetch figure: client p99 and authoritative volume vs TTL.

    Pappas et al.'s renewal idea, quantified: at short TTLs refresh-ahead
    buys the client hit-latency p99 at the price of budgeted refresh
    traffic; at day-long TTLs prediction buys (and costs) nothing.
    """

    duration: float
    rate_qps: float
    names: int
    cells: list[PrefetchCell]
    metrics: Optional[MetricsSnapshot] = None

    def cell(self, mode: str, ttl: int) -> PrefetchCell:
        for cell in self.cells:
            if cell.mode == mode and cell.ttl == ttl:
                return cell
        raise KeyError((mode, ttl))

    def p99_profile(self, mode: str) -> dict[int, float]:
        return {c.ttl: c.p99_ms for c in self.cells if c.mode == mode}

    def auth_profile(self, mode: str) -> dict[int, int]:
        return {c.ttl: c.auth_queries for c in self.cells if c.mode == mode}


def _run_prefetch_cell(
    *,
    mode: str,
    ttl: int,
    seed: int,
    names: int,
    rate_qps: float,
    duration: float,
    metrics: Optional[MetricsRegistry] = None,
) -> PrefetchCell:
    """Drive one resolver through a Zipf workload against one TTL tier."""
    from repro.loadgen.arrivals import poisson_schedule
    from repro.net.topology import Region
    from repro.resolver.policy import ResolverPolicy
    from repro.resolver.recursive import RecursiveResolver
    from repro.workload import ZipfSampler

    hotset = build_hotset_world(ttl, seed, names=names)
    world = hotset.world
    if metrics is not None:
        world.network.attach_metrics(metrics)
    policy = {
        "off": ResolverPolicy.child_centric,
        "onhit": ResolverPolicy.prefetching,
        "ahead": ResolverPolicy.predictive,
    }[mode]()
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(Region.EU, "prefetch-res"),
        network=world.network,
        root_hints=world.hints,
        policy=policy,
    )
    rng = random.Random(seed ^ 0x50F7)
    sampler = ZipfSampler(population=names, exponent=1.0)
    latencies: list[float] = []
    hits = 0
    count = 0
    for at in poisson_schedule(rate_qps, duration, rng):
        qname = hotset.qnames[sampler.rank(rng)]
        out = resolver.resolve(qname, RdataType.A, now=at)
        latencies.append(out.elapsed * 1000.0)
        hits += out.cache_hit
        count += 1
    cdf = ECDF(latencies) if latencies else None
    refreshes = stale = 0
    if metrics is not None:
        snapshot = metrics.snapshot()
        present = set(snapshot.metrics)
        refreshes = int(
            (snapshot.value("predict.refreshes") if "predict.refreshes" in present else 0)
            + (snapshot.value("predict.revalidations")
               if "predict.revalidations" in present else 0)
        )
        if "predict.stale_answered" in present:
            stale = int(snapshot.value("predict.stale_answered"))
    return PrefetchCell(
        mode=mode,
        ttl=ttl,
        seed=seed,
        queries=count,
        cache_hits=hits,
        auth_queries=hotset.auth_queries,
        p50_ms=cdf.median if cdf else 0.0,
        p95_ms=cdf.quantile(0.95) if cdf else 0.0,
        p99_ms=cdf.quantile(0.99) if cdf else 0.0,
        refreshes=refreshes,
        stale_answered=stale,
    )


def scenario_prefetch_tradeoff(
    seed: int = 0,
    ttls: tuple = (60, 300, 3600, 86400),
    modes: tuple = _PREFETCH_MODES,
    names: int = 16,
    rate_qps: float = 2.0,
    duration: float = 1800.0,
    parallelism: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    profile: Optional[str] = None,
) -> PrefetchTradeoffRun:
    """Authoritative volume and client p99 vs TTL, with prediction
    off / on-hit prefetch / refresh-ahead.

    Runs a (mode × TTL) matrix of independent cells, each a fresh
    :func:`build_hotset_world` plus one resolver under a seeded Zipf
    workload.  With ``parallelism`` set the cells run as one shard each
    through :mod:`repro.runner` — byte-identical to the serial path for
    any worker count, predict machinery included.
    """
    for mode in modes:
        if mode not in _PREFETCH_MODES:
            raise ValueError(
                f"unknown prefetch mode {mode!r} (have: {', '.join(_PREFETCH_MODES)})"
            )
    if not ttls or not modes:
        raise ValueError("scenario_prefetch_tradeoff needs >= 1 TTL and mode")
    cell_params = [
        {
            "mode": mode,
            "ttl": ttl,
            "seed": seed + index,
            "names": names,
            "rate_qps": rate_qps,
            "duration": duration,
        }
        for index, (mode, ttl) in enumerate(
            (m, t) for m in modes for t in ttls
        )
    ]

    if parallelism is None:
        cells: list[PrefetchCell] = []
        snapshots: list[MetricsSnapshot] = []
        for params in cell_params:
            registry = MetricsRegistry()
            cells.append(_run_prefetch_cell(**params, metrics=registry))
            snapshots.append(registry.snapshot())
        metrics = merge_snapshots(snapshots)
    else:
        from repro.runner.campaigns import campaign_fingerprint, prefetch_shard

        fingerprint = campaign_fingerprint(
            "prefetch-tradeoff", seed=seed, cells=cell_params
        )
        outcomes, metrics = _run_sharded_campaign(
            "prefetch-tradeoff",
            fingerprint,
            prefetch_shard,
            {"cells": cell_params},
            total_units=len(cell_params),
            seed=seed,
            parallelism=parallelism,
            shards=len(cell_params),
            run_dir=run_dir,
            progress=progress,
            profile=profile,
        )
        cells = [outcome.value["results"] for outcome in outcomes]
    return PrefetchTradeoffRun(
        duration=duration,
        rate_qps=rate_qps,
        names=names,
        cells=cells,
        metrics=metrics,
    )


# ------------------------------------------------------ ECS + CDN interplay


#: Resolution architectures compared by the ECS/CDN scenario.
_ECS_MODES = ("isp", "public", "public-ecs")


@dataclass(frozen=True)
class EcsCell:
    """One (mode, TTL) cell of the ECS/CDN matrix."""

    mode: str
    ttl: int
    seed: int
    #: Client queries driven through the resolvers.
    queries: int
    #: Queries answered from resolver cache (global or subnet-scoped).
    cache_hits: int
    #: Queries the CDN authoritative answered (cache-miss volume).
    auth_queries: int
    #: Client-to-content latency: DNS resolution plus one RTT to the
    #: answered site — the end-to-end number the CDN papers compare.
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: Fraction of queries answered with the client's region-local site.
    local_site_rate: float
    #: Per-site answer tallies, sorted by site name.
    site_counts: tuple[tuple[str, int], ...]
    #: Subnet-scoped cache entries at end of run (the cardinality axis).
    scoped_entries: int
    #: Scoped hits served to a different covered subnet than the one
    #: that fetched the answer.
    scope_merges: int

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0


@dataclass
class EcsCdnRun:
    """The ECS/CDN figure: end-to-end latency and hit rate vs TTL for
    ISP resolvers, a public resolver without ECS, and one with it.

    The expected shape: "isp" and "public-ecs" route clients to nearby
    sites (low p50), "public" sends every catchment to the egress's site
    (high tail for far clients); "public-ecs" pays for the repair with
    subnet-scoped cache cardinality and a lower hit rate at equal TTL.
    """

    duration: float
    rate_qps: float
    subnets: int
    cells: list[EcsCell]
    metrics: Optional[MetricsSnapshot] = None

    def cell(self, mode: str, ttl: int) -> EcsCell:
        for cell in self.cells:
            if cell.mode == mode and cell.ttl == ttl:
                return cell
        raise KeyError((mode, ttl))

    def latency_profile(self, mode: str) -> dict[int, float]:
        return {c.ttl: c.p50_ms for c in self.cells if c.mode == mode}

    def hit_profile(self, mode: str) -> dict[int, float]:
        return {c.ttl: c.hit_rate for c in self.cells if c.mode == mode}


def _run_ecs_cell(
    *,
    mode: str,
    ttl: int,
    seed: int,
    subnets: int,
    rate_qps: float,
    duration: float,
    metrics: Optional[MetricsRegistry] = None,
) -> EcsCell:
    """Drive one resolution architecture through the CDN workload."""
    from repro.core.worlds import _ECS_SITE_OF_REGION
    from repro.loadgen.arrivals import poisson_schedule
    from repro.resolver.policy import EcsPolicy, ResolverPolicy
    from repro.resolver.recursive import RecursiveResolver

    testbed = build_ecs_cdn_world(ttl, seed, subnets=subnets)
    world = testbed.world
    if metrics is not None:
        world.network.attach_metrics(metrics)
        testbed.cdn.attach_metrics(metrics)

    policy = ResolverPolicy.child_centric()
    if mode == "public-ecs":
        policy = policy.with_(ecs=EcsPolicy())
    if mode == "isp":
        resolvers = {
            region: RecursiveResolver(
                endpoint=endpoint,
                network=world.network,
                root_hints=world.hints,
                policy=policy,
            )
            for region, endpoint in testbed.isp_endpoints.items()
        }
        resolver_of = lambda client: resolvers[client.region]  # noqa: E731
    else:
        resolvers = {
            egress: RecursiveResolver(
                endpoint=endpoint,
                network=world.network,
                root_hints=world.hints,
                policy=policy,
            )
            for egress, endpoint in testbed.egress_endpoints.items()
        }
        resolver_of = lambda client: resolvers[client.egress]  # noqa: E731

    site_of_address = {site.address: name for name, site in testbed.sites.items()}
    local_site = {
        client.index: _ECS_SITE_OF_REGION[client.region]
        for client in testbed.clients
    }
    rng = random.Random(seed ^ 0xEC5D)
    clients = testbed.clients
    latencies: list[float] = []
    hits = 0
    count = 0
    local_answers = 0
    for at in poisson_schedule(rate_qps, duration, rng):
        client = clients[rng.randrange(len(clients))]
        resolver = resolver_of(client)
        out = resolver.resolve(
            testbed.content_name,
            RdataType.A,
            now=at,
            client_subnet=client.subnet if mode == "public-ecs" else None,
        )
        total_ms = out.elapsed * 1000.0
        if out.answers:
            rdata = out.answers[-1].rdatas[0]
            site_name = site_of_address.get(getattr(rdata, "address", None))
            if site_name is not None:
                total_ms += (
                    world.network.latency.rtt(
                        client.endpoint, testbed.site_endpoints[site_name], rng
                    )
                    * 1000.0
                )
                if site_name == local_site[client.index]:
                    local_answers += 1
        latencies.append(total_ms)
        hits += out.cache_hit
        count += 1
    cdf = ECDF(latencies) if latencies else None
    scope_merges = 0
    if metrics is not None:
        snapshot = metrics.snapshot()
        if "ecs.scope_merges" in snapshot.metrics:
            scope_merges = int(snapshot.value("ecs.scope_merges"))
    return EcsCell(
        mode=mode,
        ttl=ttl,
        seed=seed,
        queries=count,
        cache_hits=hits,
        auth_queries=testbed.auth_queries,
        p50_ms=cdf.median if cdf else 0.0,
        p95_ms=cdf.quantile(0.95) if cdf else 0.0,
        p99_ms=cdf.quantile(0.99) if cdf else 0.0,
        local_site_rate=local_answers / count if count else 0.0,
        site_counts=tuple(sorted(testbed.cdn.site_answers.items())),
        scoped_entries=sum(
            resolver.cache.ecs_scoped_len() for resolver in resolvers.values()
        ),
        scope_merges=scope_merges,
    )


def scenario_ecs_cdn(
    seed: int = 0,
    ttls: tuple = (60, 300, 3600),
    modes: tuple = _ECS_MODES,
    subnets: int = 12,
    rate_qps: float = 2.0,
    duration: float = 1800.0,
    parallelism: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    profile: Optional[str] = None,
) -> EcsCdnRun:
    """Client-to-content latency and cache hit rate across TTLs for ISP
    resolvers vs a public resolver without and with ECS.

    Runs a (mode × TTL) matrix of independent cells, each a fresh
    :func:`build_ecs_cdn_world` plus its resolver set under a seeded
    workload.  With ``parallelism`` set the cells run as one shard each
    through :mod:`repro.runner` — byte-identical to the serial path for
    any worker count, scoped-cache metrics included.
    """
    for mode in modes:
        if mode not in _ECS_MODES:
            raise ValueError(
                f"unknown ECS mode {mode!r} (have: {', '.join(_ECS_MODES)})"
            )
    if not ttls or not modes:
        raise ValueError("scenario_ecs_cdn needs >= 1 TTL and mode")
    cell_params = [
        {
            "mode": mode,
            "ttl": ttl,
            "seed": seed + index,
            "subnets": subnets,
            "rate_qps": rate_qps,
            "duration": duration,
        }
        for index, (mode, ttl) in enumerate((m, t) for m in modes for t in ttls)
    ]

    if parallelism is None:
        cells: list[EcsCell] = []
        snapshots: list[MetricsSnapshot] = []
        for params in cell_params:
            registry = MetricsRegistry()
            cells.append(_run_ecs_cell(**params, metrics=registry))
            snapshots.append(registry.snapshot())
        metrics = merge_snapshots(snapshots)
    else:
        from repro.runner.campaigns import campaign_fingerprint, ecs_shard

        fingerprint = campaign_fingerprint("ecs-cdn", seed=seed, cells=cell_params)
        outcomes, metrics = _run_sharded_campaign(
            "ecs-cdn",
            fingerprint,
            ecs_shard,
            {"cells": cell_params},
            total_units=len(cell_params),
            seed=seed,
            parallelism=parallelism,
            shards=len(cell_params),
            run_dir=run_dir,
            progress=progress,
            profile=profile,
        )
        cells = [outcome.value["results"] for outcome in outcomes]
    return EcsCdnRun(
        duration=duration,
        rate_qps=rate_qps,
        subnets=subnets,
        cells=cells,
        metrics=metrics,
    )


# ------------------------------------------------------- push vs TTL polling


#: Fault families the push/poll comparison runs under.
_PUSH_PLANS = ("renumbering", "ddos")
#: Update channels under comparison.
_PUSH_MODES = ("poll", "push")
#: Analytic population rungs for the 1k -> 1M projection.
PUSH_POPULATIONS = (1_000, 10_000, 100_000, 1_000_000)


@dataclass(frozen=True)
class PushCell:
    """One (plan, mode, TTL) cell of the push-vs-poll matrix."""

    plan: str
    mode: str
    ttl: int
    seed: int
    seats: int
    #: Probes driven through the resolver seats (warm probes included).
    probes: int
    #: Probes answered NOERROR with an address.
    answered: int
    #: Answered probes carrying an outdated address (the record had
    #: changed but the cached copy had not caught up).
    stale_probes: int
    #: Full DNS queries the child authoritative answered — cache-miss
    #: refetches plus (in push mode) SUBSCRIBE exchanges.  Keepalives are
    #: transport frames and deliberately excluded, as for a real DSO
    #: session.
    auth_queries: int
    #: NOTIFY frames enqueued / coalesced away / sessions reset by a
    #: doomed NOTIFY (push mode; all zero under polling).
    notifications: int
    coalesced: int
    session_resets: int
    #: Client-side session reconnects (push mode).
    reconnects: int
    #: Probe-observed staleness windows, seconds: per change and seat,
    #: how long after the change the seat's answers kept showing the old
    #: address (censored at the next change or end of run).
    mean_staleness_s: float
    p95_staleness_s: float
    max_staleness_s: float
    #: Measured per-seat authoritative query rate, queries/hour.
    per_seat_auth_per_hour: float
    #: ``(population, projected authoritative queries/s)``: the measured
    #: per-seat rate scaled to resolver populations the simulation never
    #: instantiates — the same aggregate treatment docs/ecs.md applies
    #: with the Jung model.
    projected_auth_qps: tuple[tuple[int, float], ...]
    #: Jung et al. closed-form check: a poll-mode seat probing at
    #: ``1/probe_interval`` misses at ``lambda/(1 + lambda*TTL)`` qps.
    analytic_poll_miss_qps: float

    @property
    def answered_rate(self) -> float:
        return self.answered / self.probes if self.probes else 0.0

    @property
    def stale_rate(self) -> float:
        return self.stale_probes / self.answered if self.answered else 0.0


@dataclass
class PushVsPollRun:
    """The push-vs-poll figure: staleness window and authoritative volume
    across TTLs, for TTL polling vs pub/sub record updates, under a
    renumbering plan and a DDoS plan.

    The expected shape: polling trades the two axes against each other
    (TTL 60 is fresh but loud, TTL 86400 quiet but stale for hours after
    a renumbering), while push at a long TTL holds both — staleness
    bounded by delivery latency, volume bounded by the change rate —
    and under the DDoS plan keeps answering from the long-TTL cache
    where short-TTL polling goes dark.
    """

    duration: float
    probe_interval: float
    changes: int
    seats: int
    cells: list[PushCell]
    metrics: Optional[MetricsSnapshot] = None

    def cell(self, plan: str, mode: str, ttl: int) -> PushCell:
        for cell in self.cells:
            if cell.plan == plan and cell.mode == mode and cell.ttl == ttl:
                return cell
        raise KeyError((plan, mode, ttl))

    def staleness_profile(self, plan: str, mode: str) -> dict[int, float]:
        return {
            c.ttl: c.mean_staleness_s
            for c in self.cells
            if c.plan == plan and c.mode == mode
        }

    def volume_profile(self, plan: str, mode: str) -> dict[int, int]:
        return {
            c.ttl: c.auth_queries
            for c in self.cells
            if c.plan == plan and c.mode == mode
        }


def _push_staleness_lags(
    change_log: list[tuple[float, str]],
    observations: list[list[tuple[float, Optional[str]]]],
    end: float,
) -> list[float]:
    """Per (change, seat) staleness windows from the probe record.

    For each change, each seat's lag is the time from the change until
    the seat first observed the new address — censored at the next
    change (after which the old target is unobservable) or end of run.
    Identical bookkeeping for both modes: the probe schedule is the
    measurement instrument, the update channel is the treatment.
    """
    lags: list[float] = []
    for index, (changed_at, address) in enumerate(change_log):
        horizon = (
            change_log[index + 1][0] if index + 1 < len(change_log) else end
        )
        for seat_obs in observations:
            lag = horizon - changed_at
            for at, seen in seat_obs:
                if at < changed_at or seen is None:
                    continue
                if at >= horizon:
                    break
                if seen == address:
                    lag = at - changed_at
                    break
            lags.append(lag)
    return lags


def _run_push_cell(
    *,
    plan: str,
    mode: str,
    ttl: int,
    seed: int,
    seats: int,
    changes: int,
    probe_interval: float,
    duration: float,
    fault_plan: Optional[dict] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> PushCell:
    """Probe one update channel through one fault family at one TTL."""
    from repro.analysis.hitrate import analytic_hit_rate
    from repro.net.topology import Region
    from repro.push import PushPolicy, attach_publisher
    from repro.resolver.policy import ResolverPolicy
    from repro.resolver.recursive import RecursiveResolver

    testbed = build_push_world(ttl, seed)
    world = testbed.world
    if metrics is not None:
        world.network.attach_metrics(metrics)

    change_times = [
        round(duration * (index + 1) / (changes + 1), 3)
        for index in range(changes)
    ]
    specs = list(
        FaultPlan.renumbering(testbed.content_name, change_times).faults
    )
    if plan == "ddos":
        # A 20 %-of-run outage at the child authoritative, with one
        # renumbering landing inside it: the update channel must survive
        # the attack *and* catch up afterwards.
        specs.append(
            FaultSpec(
                kind="server_outage",
                start=round(duration * 0.45, 3),
                duration=round(duration * 0.20, 3),
                target=testbed.target_address,
            )
        )
    plan_name = f"push-{plan}"
    plan_seed = seed
    if fault_plan is not None:
        extra = FaultPlan.from_payload(fault_plan)
        specs.extend(extra.faults)
        plan_name = extra.name or plan_name
        plan_seed = extra.seed
    world.network.attach_faults(
        FaultInjector(
            FaultPlan(faults=tuple(specs), name=plan_name, seed=plan_seed),
            seed=seed,
        )
    )
    injector = world.network.faults

    publisher = None
    policy = ResolverPolicy.child_centric()
    if mode == "push":
        publisher = attach_publisher(testbed.server, world.network)
        policy = ResolverPolicy.pushing(PushPolicy())

    resolvers = [
        RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU, f"res{index}"),
            network=world.network,
            root_hints=world.hints,
            policy=policy,
        )
        for index in range(seats)
    ]

    name = Name(testbed.content_name)
    change_log: list[tuple[float, str]] = []
    applied = 0

    def apply_due(now: float) -> None:
        # Fire due record_change events: mutate the zone at the scheduled
        # instant and (push mode) publish the new RRset.  Both modes
        # consume the same injector schedule — the change feed is part of
        # the world, the update channel is the experimental treatment.
        nonlocal applied
        for spec in injector.take_record_changes(now):
            address = testbed.apply_change(applied)
            if publisher is not None:
                publisher.publish(name, RdataType.A, spec.start)
            change_log.append((spec.start, address))
            applied += 1

    observations: list[list[tuple[float, Optional[str]]]] = [
        [] for _ in range(seats)
    ]
    probes = answered = 0
    # Seats probe on a staggered cadence so cache expiries and pushed
    # updates land between different seats' probes, not all at once.
    offset = probe_interval / (seats + 1)

    def probe(seat: int, at: float) -> None:
        nonlocal probes, answered
        apply_due(at)
        out = resolvers[seat].resolve(name, RdataType.A, now=at)
        address = None
        if out.rcode == Rcode.NOERROR and out.answers:
            address = getattr(out.answers[-1].rdatas[0], "address", None)
        probes += 1
        answered += address is not None
        observations[seat].append((at, address))

    for seat in range(seats):
        probe(seat, seat * offset)
    slots = int(duration // probe_interval)
    for slot in range(1, slots + 1):
        for seat in range(seats):
            probe(seat, slot * probe_interval + seat * offset)

    # Staleness and volume accounting -------------------------------------
    stale = 0
    for seat_obs in observations:
        for at, seen in seat_obs:
            if seen is None:
                continue
            truth = "203.0.113.10"
            for changed_at, address in change_log:
                if changed_at <= at:
                    truth = address
            stale += seen != truth
    lags = sorted(_push_staleness_lags(change_log, observations, duration))
    mean_lag = sum(lags) / len(lags) if lags else 0.0
    p95_lag = lags[min(len(lags) - 1, int(0.95 * len(lags)))] if lags else 0.0

    counter = lambda name_: 0  # noqa: E731
    if metrics is not None:
        snapshot = metrics.snapshot()
        counter = lambda name_: (  # noqa: E731
            int(snapshot.value(name_)) if name_ in snapshot.metrics else 0
        )
    auth_queries = testbed.server.queries_received
    probe_rate = 1.0 / probe_interval
    return PushCell(
        plan=plan,
        mode=mode,
        ttl=ttl,
        seed=seed,
        seats=seats,
        probes=probes,
        answered=answered,
        stale_probes=stale,
        auth_queries=auth_queries,
        notifications=counter("push.notifications"),
        coalesced=counter("push.coalesced"),
        session_resets=counter("push.session_resets"),
        reconnects=counter("push.reconnects"),
        mean_staleness_s=mean_lag,
        p95_staleness_s=p95_lag,
        max_staleness_s=lags[-1] if lags else 0.0,
        per_seat_auth_per_hour=auth_queries / seats / (duration / 3600.0),
        projected_auth_qps=tuple(
            (population, auth_queries / seats / duration * population)
            for population in PUSH_POPULATIONS
        ),
        analytic_poll_miss_qps=probe_rate
        * (1.0 - analytic_hit_rate(probe_rate, ttl)),
    )


def scenario_push_vs_poll(
    seed: int = 0,
    ttls: tuple = (60, 3600, 86400),
    plans: tuple = _PUSH_PLANS,
    modes: tuple = _PUSH_MODES,
    seats: int = 4,
    changes: int = 6,
    probe_interval: float = 60.0,
    duration: float = 7200.0,
    faults=None,
    parallelism: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    profile: Optional[str] = None,
) -> PushVsPollRun:
    """Staleness window vs authoritative volume: pub/sub updates against
    TTL polling, under renumbering and DDoS fault plans.

    Runs a (plan × mode × TTL) matrix of independent cells, each a fresh
    :func:`build_push_world` whose ``record_change`` schedule renumbers
    the probed answer mid-run.  Both modes consume the *same* seeded
    schedule and the *same* probe cadence; only the update channel
    differs.  With ``parallelism`` set the cells run as one shard each
    through :mod:`repro.runner` — byte-identical to the serial path for
    any worker count, push metrics included.  ``faults`` schedules extra
    failures on top of every cell's own plan.
    """
    for plan in plans:
        if plan not in _PUSH_PLANS:
            raise ValueError(
                f"unknown push plan {plan!r} (have: {', '.join(_PUSH_PLANS)})"
            )
    for mode in modes:
        if mode not in _PUSH_MODES:
            raise ValueError(
                f"unknown push mode {mode!r} (have: {', '.join(_PUSH_MODES)})"
            )
    if not ttls or not plans or not modes:
        raise ValueError("scenario_push_vs_poll needs >= 1 TTL, plan and mode")
    fault_plan = _normalize_fault_plan(faults)
    cell_params = [
        {
            "plan": plan,
            "mode": mode,
            "ttl": ttl,
            "seed": seed + index,
            "seats": seats,
            "changes": changes,
            "probe_interval": probe_interval,
            "duration": duration,
            "fault_plan": fault_plan,
        }
        for index, (plan, mode, ttl) in enumerate(
            (p, m, t) for p in plans for m in modes for t in ttls
        )
    ]

    if parallelism is None:
        cells: list[PushCell] = []
        snapshots: list[MetricsSnapshot] = []
        for params in cell_params:
            registry = MetricsRegistry()
            cells.append(_run_push_cell(**params, metrics=registry))
            snapshots.append(registry.snapshot())
        metrics = merge_snapshots(snapshots)
    else:
        from repro.runner.campaigns import campaign_fingerprint, push_shard

        fingerprint = campaign_fingerprint(
            "push-vs-poll", seed=seed, cells=cell_params
        )
        outcomes, metrics = _run_sharded_campaign(
            "push-vs-poll",
            fingerprint,
            push_shard,
            {"cells": cell_params},
            total_units=len(cell_params),
            seed=seed,
            parallelism=parallelism,
            shards=len(cell_params),
            run_dir=run_dir,
            progress=progress,
            profile=profile,
        )
        cells = [outcome.value["results"] for outcome in outcomes]
    return PushVsPollRun(
        duration=duration,
        probe_interval=probe_interval,
        changes=changes,
        seats=seats,
        cells=cells,
        metrics=metrics,
    )
