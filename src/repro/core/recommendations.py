"""Operator recommendations (paper §6.3).

The paper closes with situational guidance rather than one number; this
module encodes that guidance so tooling can apply it to a concrete zone
configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dns.ttl import HOUR, MINUTE, format_ttl


class OperatorKind(enum.Enum):
    """The situations §6.3 distinguishes."""

    GENERAL_ZONE = "general zone owner"
    TLD_REGISTRY = "TLD / registry operator"
    LOAD_BALANCED = "DNS-based load balancing user"
    DDOS_PROTECTED = "DNS-based DDoS-mitigation user"


@dataclass(frozen=True)
class ZoneSituation:
    """What we know about the operator's zone and constraints."""

    kind: OperatorKind = OperatorKind.GENERAL_ZONE
    uses_cdn_load_balancing: bool = False
    uses_dns_ddos_mitigation: bool = False
    servers_in_bailiwick: bool = True
    controls_parent_ttl: bool = False
    planned_changes_lead_time: Optional[int] = None  # seconds of notice


@dataclass(frozen=True)
class Recommendation:
    """A TTL recommendation with its reasoning."""

    ns_ttl: int
    address_ttl: int
    notes: tuple[str, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        lines = [
            f"NS TTL: {self.ns_ttl} s ({format_ttl(self.ns_ttl)})",
            f"A/AAAA TTL: {self.address_ttl} s ({format_ttl(self.address_ttl)})",
        ]
        lines.extend(f"- {note}" for note in self.notes)
        return "\n".join(lines)


#: §6.3's numbers: short TTLs are 5–15 minutes, long ones a few hours to a day.
SHORT_TTL = 5 * MINUTE
AGILE_TTL = 15 * MINUTE
LONG_TTL_FLOOR = 1 * HOUR
LONG_TTL_PREFERRED = 8 * HOUR
REGISTRY_TTL = 24 * HOUR


def recommend(situation: ZoneSituation) -> Recommendation:
    """Apply the §6.3 decision rules to a zone's situation."""
    notes: list[str] = []

    if situation.uses_dns_ddos_mitigation or situation.kind is OperatorKind.DDOS_PROTECTED:
        notes.append(
            "DNS-based DDoS mitigation requires permanently short TTLs so "
            "traffic can be redirected when an attack begins (§6.1)."
        )
        ns_ttl = AGILE_TTL
        address_ttl = SHORT_TTL
    elif situation.uses_cdn_load_balancing or situation.kind is OperatorKind.LOAD_BALANCED:
        notes.append(
            "DNS-based load balancing needs short address TTLs; 15 minutes "
            "provides sufficient agility for many operators (§6.3)."
        )
        ns_ttl = LONG_TTL_FLOOR
        address_ttl = AGILE_TTL
    elif situation.kind is OperatorKind.TLD_REGISTRY:
        notes.append(
            "Registries should use long NS TTLs in both parent and child; "
            "the .uy change to one day cut median latency from 183 ms to "
            "28.7 ms (§5.3)."
        )
        ns_ttl = REGISTRY_TTL
        address_ttl = REGISTRY_TTL
    else:
        notes.append(
            "General zone owners benefit from long TTLs: at least one hour, "
            "ideally 4, 8 or 24 (§6.3); longer caching lowers latency, "
            "traffic, metered cost, and DDoS exposure (§6.1)."
        )
        ns_ttl = LONG_TTL_PREFERRED
        address_ttl = LONG_TTL_PREFERRED

    if situation.servers_in_bailiwick and address_ttl > ns_ttl:
        address_ttl = ns_ttl
        notes.append(
            "In-bailiwick server A/AAAA TTLs should not exceed the NS TTL: "
            "most resolvers tie the address's life to the NS set anyway "
            "(§4.2, §6.3)."
        )
    if not situation.controls_parent_ttl:
        notes.append(
            "A fraction of resolvers is parent-centric: without control of "
            "the parent's TTL, expect a mix of effective TTLs (§3); set the "
            "child TTL to match the parent's where possible."
        )
    if (
        situation.planned_changes_lead_time is not None
        and situation.planned_changes_lead_time < ns_ttl
    ):
        notes.append(
            "Planned maintenance inside the TTL window: lower TTLs "
            "just-before the change and raise them afterwards (§6.1)."
        )
    return Recommendation(ns_ttl=ns_ttl, address_ttl=address_ttl, notes=tuple(notes))
