"""Zone auditing: the paper's §6.3 recommendations as a lint pass.

Given a child zone (and optionally the parent's view of the delegation),
:func:`audit_zone` reports every configuration the paper warns about:

- TTL 0 records (§5.1.2: "effectively undermines caching ... we recommend
  against"),
- in-bailiwick server A/AAAA TTLs above the NS TTL (§6.3: resolvers tie
  them to the NS set anyway),
- very short NS TTLs without an evident load-balancing need (§5.2's 34
  TLDs under 30 minutes, three of which raised them when asked),
- parent/child TTL disagreement for the same delegation (§3: a fraction
  of resolvers will use each; "one must set TTLs the same in both"),
- in-bailiwick NS targets with no address record (broken glue).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.dns.name import Name
from repro.dns.rdtypes import NS, RdataType
from repro.dns.ttl import HOUR, MINUTE, format_ttl
from repro.dns.zone import Zone


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    severity: Severity
    code: str
    name: Name
    message: str

    def render(self) -> str:
        return f"[{self.severity.value:7s}] {self.code}: {self.name} — {self.message}"


#: §6.3: "at least one hour" for general zones.
MIN_RECOMMENDED_NS_TTL = 1 * HOUR
#: §6.3: load balancers may go as low as 5 minutes — anything below that
#: is beyond even the agile use cases.
MIN_AGILE_TTL = 5 * MINUTE


def audit_zone(zone: Zone, parent_zone: Optional[Zone] = None) -> list[Finding]:
    """Audit ``zone`` (and its delegation in ``parent_zone``, if given)."""
    findings: list[Finding] = []
    findings.extend(_check_zero_ttls(zone))
    findings.extend(_check_inbailiwick_address_ttls(zone))
    findings.extend(_check_short_ns_ttls(zone))
    findings.extend(_check_missing_glue(zone))
    if parent_zone is not None:
        findings.extend(_check_parent_child_agreement(zone, parent_zone))
    return findings


def _check_zero_ttls(zone: Zone) -> list[Finding]:
    findings = []
    for rrset in zone.rrsets():
        if rrset.ttl == 0:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "ttl-zero",
                    rrset.name,
                    f"{rrset.rdtype.name} RRset has TTL 0, disabling caching "
                    "entirely; this raises client latency and removes DDoS "
                    "insulation (paper §5.1.2).",
                )
            )
    return findings


def _check_inbailiwick_address_ttls(zone: Zone) -> list[Finding]:
    findings = []
    apex_ns = zone.get(zone.origin, RdataType.NS)
    if apex_ns is None:
        return findings
    for rdata in apex_ns.rdatas:
        assert isinstance(rdata, NS)
        if not rdata.target.is_subdomain_of(zone.origin):
            continue
        for rdtype in (RdataType.A, RdataType.AAAA):
            address = zone.get(rdata.target, rdtype)
            if address is not None and address.ttl > apex_ns.ttl:
                findings.append(
                    Finding(
                        Severity.WARNING,
                        "address-outlives-ns",
                        rdata.target,
                        f"in-bailiwick server {rdtype.name} TTL "
                        f"({format_ttl(address.ttl)}) exceeds the NS TTL "
                        f"({format_ttl(apex_ns.ttl)}); most resolvers expire "
                        "it with the NS set anyway (paper §4.2, §6.3).",
                    )
                )
    return findings


def _check_short_ns_ttls(zone: Zone) -> list[Finding]:
    findings = []
    apex_ns = zone.get(zone.origin, RdataType.NS)
    if apex_ns is None:
        return findings
    if apex_ns.ttl < MIN_AGILE_TTL:
        findings.append(
            Finding(
                Severity.ERROR,
                "ns-ttl-very-short",
                zone.origin,
                f"NS TTL {format_ttl(apex_ns.ttl)} is below even the "
                "load-balancing floor of 5 minutes (paper §6.3); "
                "three ccTLDs raised comparable TTLs to one day after "
                "seeing the latency cost (§5.2/§5.3).",
            )
        )
    elif apex_ns.ttl < MIN_RECOMMENDED_NS_TTL:
        findings.append(
            Finding(
                Severity.INFO,
                "ns-ttl-short",
                zone.origin,
                f"NS TTL {format_ttl(apex_ns.ttl)} is under one hour; unless "
                "this zone drives DNS-based load balancing or DDoS "
                "redirection, prefer hours (paper §6.3).",
            )
        )
    return findings


def _check_missing_glue(zone: Zone) -> list[Finding]:
    findings = []
    apex_ns = zone.get(zone.origin, RdataType.NS)
    if apex_ns is None:
        return findings
    for rdata in apex_ns.rdatas:
        assert isinstance(rdata, NS)
        if not rdata.target.is_subdomain_of(zone.origin):
            continue
        has_address = any(
            zone.get(rdata.target, rdtype) is not None
            for rdtype in (RdataType.A, RdataType.AAAA)
        )
        if not has_address:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "missing-inbailiwick-address",
                    rdata.target,
                    "in-bailiwick NS target has no A/AAAA record in the "
                    "zone; resolvers depend on glue that cannot be "
                    "generated.",
                )
            )
    return findings


def _check_parent_child_agreement(zone: Zone, parent_zone: Zone) -> list[Finding]:
    findings = []
    child_ns = zone.get(zone.origin, RdataType.NS)
    parent_ns = parent_zone.get(zone.origin, RdataType.NS)
    if child_ns is None or parent_ns is None:
        return findings
    if child_ns.ttl != parent_ns.ttl:
        findings.append(
            Finding(
                Severity.WARNING,
                "parent-child-ttl-mismatch",
                zone.origin,
                f"NS TTL differs across the delegation: parent "
                f"{format_ttl(parent_ns.ttl)} vs child {format_ttl(child_ns.ttl)}; "
                "10–48% of resolvers are parent-centric, so users will see "
                "a mix (paper §3: 'one must set TTLs the same in both "
                "parent and child').",
            )
        )
    child_targets = {str(r.target) for r in child_ns.rdatas}
    parent_targets = {str(r.target) for r in parent_ns.rdatas}
    if child_targets != parent_targets:
        findings.append(
            Finding(
                Severity.ERROR,
                "ns-set-mismatch",
                zone.origin,
                f"NS sets differ across the delegation: parent {sorted(parent_targets)} "
                f"vs child {sorted(child_targets)} — resolvers will use "
                "whichever side they trust.",
            )
        )
    # Glue agreement for in-bailiwick targets published on both sides.
    for target_text in child_targets & parent_targets:
        target = Name(target_text)
        if not target.is_subdomain_of(zone.origin):
            continue
        for rdtype in (RdataType.A, RdataType.AAAA):
            child_address = zone.get(target, rdtype)
            parent_address = parent_zone.get(target, rdtype)
            if child_address is None or parent_address is None:
                continue
            if set(child_address.rdatas) != set(parent_address.rdatas):
                findings.append(
                    Finding(
                        Severity.ERROR,
                        "glue-address-mismatch",
                        target,
                        f"glue {rdtype.name} differs from the child's data; "
                        "parent-centric resolvers will use the stale glue "
                        "for its full TTL (paper §4.4).",
                    )
                )
            elif child_address.ttl != parent_address.ttl:
                findings.append(
                    Finding(
                        Severity.INFO,
                        "glue-ttl-mismatch",
                        target,
                        f"glue {rdtype.name} TTL differs: parent "
                        f"{format_ttl(parent_address.ttl)} vs child "
                        f"{format_ttl(child_address.ttl)}.",
                    )
                )
    return findings


def render_report(findings: list[Finding]) -> str:
    """A human-readable audit report."""
    if not findings:
        return "audit clean: no findings."
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    lines = [f"{len(findings)} finding(s):"]
    for finding in sorted(findings, key=lambda f: (order[f.severity], f.code)):
        lines.append(finding.render())
    return "\n".join(lines)
