"""Parameter sweeps: generalizing the paper's point comparisons to curves.

The paper compares discrete configurations (TTL 300 s vs 86400 s; attack
shorter vs longer than the TTL).  These sweeps fill in the curve between
the points:

- :func:`ttl_latency_sweep` — the .uy experiment as a function of the
  child NS TTL (generalizes Figure 10a),
- :func:`ddos_availability_sweep` — answer availability during an
  authoritative outage as a function of the record TTL (quantifies §6.1's
  "longer caching is more robust to DDoS attacks" and Moura et al.'s
  "TTLs must be longer than the attack").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.cdf import ECDF
from repro.core.scenarios import scenario_uy_ns
from repro.dns.message import Rcode
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver


@dataclass(frozen=True)
class TtlLatencyPoint:
    child_ns_ttl: int
    median_ms: float
    p75_ms: float
    p95_ms: float
    samples: int


def ttl_latency_sweep(
    ttls: Sequence[int] = (60, 300, 1800, 3600, 28800, 86400),
    probes: int = 150,
    seed: int = 0,
    duration: float = 3600.0,
    parallelism: Optional[int] = None,
    shards: Optional[int] = None,
) -> list[TtlLatencyPoint]:
    """Median/tail .uy-NS latency as a function of the child NS TTL.

    Each TTL runs as an independent campaign (fresh world and caches), as
    the paper's before/after measurements did.  The campaign ``seed`` is
    threaded explicitly into every population and RNG; ``parallelism``
    shards each campaign over worker processes via :mod:`repro.runner`
    (the shard plan depends on ``shards``, never on the worker count).
    """
    points: list[TtlLatencyPoint] = []
    for ttl in ttls:
        run = scenario_uy_ns(
            seed=seed, probes=probes, child_ns_ttl=ttl, duration=duration,
            parallelism=parallelism, shards=shards,
        )
        cdf = ECDF(run.results.rtts_ms())
        points.append(
            TtlLatencyPoint(
                child_ns_ttl=ttl,
                median_ms=cdf.median,
                p75_ms=cdf.quantile(0.75),
                p95_ms=cdf.quantile(0.95),
                samples=len(cdf),
            )
        )
    return points


@dataclass(frozen=True)
class AvailabilityPoint:
    ttl: int
    attack_seconds: float
    availability: float  # fraction of probe slots answered during attack
    served_stale_fraction: float


def ddos_availability_sweep(
    ttls: Sequence[int] = (60, 300, 1800, 3600, 86400),
    attack_seconds: float = 3600.0,
    probe_interval: float = 300.0,
    seed: int = 0,
    serve_stale: bool = False,
) -> list[AvailabilityPoint]:
    """Answer availability while the zone's authoritatives are down.

    One warmed child-centric resolver is probed every ``probe_interval``
    during an ``attack_seconds`` outage; availability is the fraction of
    probes answered (from cache, or stale if ``serve_stale``).  Moura et
    al.'s finding — reproduced here — is that availability is ~1 while
    TTL ≥ attack duration and collapses below it.
    """
    from repro.core.worlds import build_outage_world

    points: list[AvailabilityPoint] = []
    policy = ResolverPolicy.child_centric().with_(serve_stale=serve_stale)
    for ttl in ttls:
        outage = build_outage_world(ttl, seed)
        world, server = outage.world, outage.server
        resolver = RecursiveResolver(
            endpoint=world.topology.endpoint_in_region(Region.EU, "res"),
            network=world.network,
            root_hints=world.hints,
            policy=policy,
        )
        # Warm the cache just before the attack begins.
        warm = resolver.resolve("www.shop.example.", RdataType.A, now=0.0)
        assert warm.rcode == Rcode.NOERROR
        world.network.loss.take_down(server.endpoint.address)

        answered = 0
        stale = 0
        slots = 0
        t = probe_interval
        while t <= attack_seconds:
            out = resolver.resolve("www.shop.example.", RdataType.A, now=t)
            slots += 1
            if out.rcode == Rcode.NOERROR and out.answers:
                answered += 1
                stale += out.served_stale
            t += probe_interval
        points.append(
            AvailabilityPoint(
                ttl=ttl,
                attack_seconds=attack_seconds,
                availability=answered / slots if slots else 0.0,
                served_stale_fraction=stale / slots if slots else 0.0,
            )
        )
    return points


