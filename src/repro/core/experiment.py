"""Shared experiment plumbing: worlds + Atlas populations + bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.atlas.population import AtlasConfig, AtlasPopulation
from repro.core.worlds import World


def make_population(
    world: World,
    probes: int = 300,
    seed: Optional[int] = None,
    config: Optional[AtlasConfig] = None,
    probe_id_base: int = 0,
    predict: bool = False,
) -> AtlasPopulation:
    """Attach an Atlas-like probe population to a world.

    RFC 7706 resolvers in the population mirror the world's root zone.
    Pass ``seed`` explicitly from scenarios (falling back to
    ``world.seed`` is kept for ad-hoc use); sharded campaigns pass
    ``probe_id_base`` so each shard's probe ids are globally unique.
    ``predict`` arms every generated resolver with the default
    :class:`repro.predict.PredictPolicy`.
    """
    cfg = config or AtlasConfig(
        probes=probes,
        seed=world.seed if seed is None else seed,
        probe_id_base=probe_id_base,
        predict=predict,
    )
    return AtlasPopulation(
        config=cfg,
        topology=world.topology,
        network=world.network,
        root_hints=world.hints,
        root_zone=world.root_zone,
    )


@dataclass
class PaperComparison:
    """One paper-vs-measured line for EXPERIMENTS.md and bench output."""

    metric: str
    paper: str
    measured: str

    def as_tuple(self) -> tuple[str, str, str]:
        return (self.metric, self.paper, self.measured)


@dataclass
class ExperimentReport:
    """A scenario's structured output."""

    experiment_id: str
    title: str
    comparisons: list[PaperComparison] = field(default_factory=list)
    extra: dict[str, object] = field(default_factory=dict)

    def add(self, metric: str, paper: object, measured: object) -> None:
        self.comparisons.append(PaperComparison(metric, str(paper), str(measured)))

    def render(self) -> str:
        from repro.analysis.tables import paper_vs_measured

        return paper_vs_measured(
            f"{self.experiment_id}: {self.title}",
            [comparison.as_tuple() for comparison in self.comparisons],
        )
