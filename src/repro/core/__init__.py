"""The paper's core: effective-TTL analysis, worlds, and scenarios.

- :mod:`repro.core.effective_ttl` — the analytical model of which TTL wins
  (the paper's §2 question, "which TTLs matter?"),
- :mod:`repro.core.worlds` — canonical simulated Internets: the .cl, .uy,
  google.co, cachetest.net, .nl and controlled-experiment configurations,
- :mod:`repro.core.scenarios` — one runnable scenario per paper section,
  producing the data behind every table and figure,
- :mod:`repro.core.recommendations` — the §6 operator guidance engine.
"""

from repro.core.effective_ttl import (
    DelegationConfig,
    EffectiveTTL,
    effective_record_ttl,
    effective_switch_time,
)
from repro.core.worlds import World, build_base_world
from repro.core.recommendations import Recommendation, recommend
from repro.core.audit import Finding, audit_zone, render_report

__all__ = [
    "DelegationConfig",
    "EffectiveTTL",
    "Finding",
    "Recommendation",
    "World",
    "audit_zone",
    "build_base_world",
    "effective_record_ttl",
    "effective_switch_time",
    "recommend",
    "render_report",
]
