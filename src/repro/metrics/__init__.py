"""repro.metrics — deterministic, mergeable observability.

See ``docs/observability.md`` for the design and the JSON schema.
"""

from repro.metrics.registry import (
    FIXED_POINT,
    HOST,
    SIM,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricError,
    MetricsRegistry,
    log_buckets,
)
from repro.metrics.render import render_snapshot
from repro.metrics.schema import validate_json, validate_payload
from repro.metrics.snapshot import SCHEMA_ID, MetricsSnapshot, merge_snapshots

__all__ = [
    "FIXED_POINT",
    "HOST",
    "SIM",
    "SCHEMA_ID",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "MetricError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "log_buckets",
    "merge_snapshots",
    "render_snapshot",
    "validate_json",
    "validate_payload",
]
