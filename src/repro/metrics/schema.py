"""Schema validation for exported metrics JSON.

Dependency-free (no ``jsonschema`` in the container): a hand-rolled
structural check of the ``repro.metrics/v1`` payload.  The authoritative
prose description of the schema lives in ``docs/observability.md``; this
module is the machine-checkable version the CI smoke job runs against
every ``repro run --metrics`` output.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.metrics.snapshot import SCHEMA_ID

__all__ = ["validate_payload", "validate_json"]

_DOMAINS = ("sim", "host")

_Number = (int, float)


def _is_number(value: Any) -> bool:
    return isinstance(value, _Number) and not isinstance(value, bool)


def _is_count(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _check_common(name: str, payload: Any, problems: list[str]) -> Optional[str]:
    if not isinstance(payload, dict):
        problems.append(f"{name}: metric payload must be an object")
        return None
    domain = payload.get("domain")
    if domain not in _DOMAINS:
        problems.append(f"{name}: domain must be one of {_DOMAINS}, got {domain!r}")
    return payload.get("kind")


def _check_counter(name: str, payload: dict, problems: list[str]) -> None:
    if not _is_count(payload.get("value")):
        problems.append(f"{name}: counter value must be a non-negative integer")


def _check_labeled(name: str, payload: dict, problems: list[str]) -> None:
    values = payload.get("values")
    if not isinstance(values, dict):
        problems.append(f"{name}: labeled_counter needs a 'values' object")
        return
    for label, count in values.items():
        if not isinstance(label, str) or not _is_count(count):
            problems.append(f"{name}: label {label!r} must map to a non-negative int")


def _check_gauge(name: str, payload: dict, problems: list[str]) -> None:
    value = payload.get("value")
    if value is not None and not _is_number(value):
        problems.append(f"{name}: gauge value must be a number or null")


def _check_histogram(name: str, payload: dict, problems: list[str]) -> None:
    bounds = payload.get("bounds")
    counts = payload.get("counts")
    if not isinstance(bounds, list) or not all(_is_number(b) for b in bounds):
        problems.append(f"{name}: histogram bounds must be a list of numbers")
        return
    if any(b >= a for b, a in zip(bounds, bounds[1:])):
        problems.append(f"{name}: histogram bounds must strictly increase")
    if not isinstance(counts, list) or len(counts) != len(bounds):
        problems.append(f"{name}: counts must be a list matching bounds")
        return
    if not all(_is_count(c) for c in counts):
        problems.append(f"{name}: counts must be non-negative integers")
        return
    if not _is_count(payload.get("overflow")):
        problems.append(f"{name}: overflow must be a non-negative integer")
        return
    if not _is_count(payload.get("count")):
        problems.append(f"{name}: count must be a non-negative integer")
        return
    if sum(counts) + payload["overflow"] != payload["count"]:
        problems.append(f"{name}: bucket counts + overflow must equal count")
    if not isinstance(payload.get("sum_fp"), int) or isinstance(
        payload.get("sum_fp"), bool
    ):
        problems.append(f"{name}: sum_fp must be an integer")
    for edge in ("min", "max"):
        value = payload.get(edge)
        if value is not None and not _is_number(value):
            problems.append(f"{name}: {edge} must be a number or null")
    if (payload.get("min") is None) != (payload["count"] == 0):
        problems.append(f"{name}: min must be null exactly when count is 0")


_CHECKS = {
    "counter": _check_counter,
    "labeled_counter": _check_labeled,
    "gauge": _check_gauge,
    "histogram": _check_histogram,
}


def validate_payload(payload: Any) -> list[str]:
    """Structural problems with a metrics payload; empty means valid."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        problems.append(
            f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("'metrics' must be an object")
        return problems
    for name, metric in metrics.items():
        kind = _check_common(name, metric, problems)
        check = _CHECKS.get(kind)  # type: ignore[arg-type]
        if check is None:
            problems.append(f"{name}: unknown metric kind {kind!r}")
            continue
        check(name, metric, problems)
    return problems


def validate_json(text: str) -> list[str]:
    import json

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        return [f"not valid JSON: {error}"]
    return validate_payload(payload)
