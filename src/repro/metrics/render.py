"""Human rendering of metric snapshots for the ``repro metrics`` CLI."""

from __future__ import annotations

from repro.metrics.snapshot import MetricsSnapshot

__all__ = ["render_snapshot"]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return f"{value:,}"


def render_snapshot(snapshot: MetricsSnapshot, title: str = "Metrics") -> str:
    """Tables of counters, gauges and histogram summaries."""
    from repro.analysis.tables import Table

    sections: list[str] = []
    by_kind: dict[str, list[tuple[str, dict]]] = {}
    for name in sorted(snapshot.metrics):
        payload = snapshot.metrics[name]
        by_kind.setdefault(payload["kind"], []).append((name, payload))

    scalar_rows = [
        (name, payload) for kind in ("counter", "gauge")
        for name, payload in by_kind.get(kind, [])
    ]
    if scalar_rows:
        table = Table(["metric", "kind", "domain", "value"], title=title)
        for name, payload in scalar_rows:
            table.add_row(name, payload["kind"], payload["domain"], _fmt(payload["value"]))
        sections.append(table.render())

    labeled = by_kind.get("labeled_counter", [])
    for name, payload in labeled:
        table = Table(["label", "count"], title=f"{name} ({payload['domain']})")
        for label, count in sorted(
            payload["values"].items(), key=lambda item: (-item[1], item[0])
        ):
            table.add_row(label, _fmt(count))
        if not payload["values"]:
            table.add_row("(none)", "0")
        sections.append(table.render())

    histograms = by_kind.get("histogram", [])
    if histograms:
        table = Table(
            ["histogram", "domain", "count", "mean", "p50", "p90", "p99", "max"],
            title="Histograms (quantiles are conservative bucket upper bounds)",
        )
        for name, payload in histograms:
            table.add_row(
                name,
                payload["domain"],
                _fmt(payload["count"]),
                _fmt(snapshot.histogram_mean(name)),
                _fmt(snapshot.histogram_quantile(name, 0.50)),
                _fmt(snapshot.histogram_quantile(name, 0.90)),
                _fmt(snapshot.histogram_quantile(name, 0.99)),
                _fmt(payload["max"]),
            )
        sections.append(table.render())

    if not sections:
        return f"{title}: (empty snapshot)"
    return "\n\n".join(sections)
