"""Immutable metric snapshots: serialization and exact merging.

A snapshot is the JSON-able image of a registry at one instant.  Merging
is the algebra the sharded runner rests on: it is associative and
commutative, with the empty snapshot as identity (property-tested in
``tests/metrics/test_properties.py``), so folding any permutation of
shard snapshots yields an identical object — and identical bytes once
serialized, because :meth:`MetricsSnapshot.to_json` is canonical (sorted
keys, fixed separators, trailing newline).
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.metrics.registry import FIXED_POINT, HOST, MetricError

__all__ = ["SCHEMA_ID", "MetricsSnapshot", "merge_snapshots"]

#: Identifies the payload layout; bump on incompatible changes.
SCHEMA_ID = "repro.metrics/v1"


def _merge_optional(a, b, pick) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return pick(a, b)


def _merge_metric(name: str, left: dict, right: dict) -> dict:
    for field in ("kind", "domain"):
        if left[field] != right[field]:
            raise MetricError(
                f"cannot merge metric {name!r}: {field} differs "
                f"({left[field]!r} vs {right[field]!r})"
            )
    kind = left["kind"]
    merged = {"kind": kind, "domain": left["domain"]}
    if kind == "counter":
        merged["value"] = left["value"] + right["value"]
    elif kind == "labeled_counter":
        values = dict(left["values"])
        for label, count in right["values"].items():
            values[label] = values.get(label, 0) + count
        merged["values"] = dict(sorted(values.items()))
    elif kind == "gauge":
        merged["value"] = _merge_optional(left["value"], right["value"], max)
    elif kind == "histogram":
        if left["bounds"] != right["bounds"]:
            raise MetricError(f"cannot merge histogram {name!r}: buckets differ")
        merged["bounds"] = list(left["bounds"])
        merged["counts"] = [a + b for a, b in zip(left["counts"], right["counts"])]
        merged["overflow"] = left["overflow"] + right["overflow"]
        merged["count"] = left["count"] + right["count"]
        merged["sum_fp"] = left["sum_fp"] + right["sum_fp"]
        merged["min"] = _merge_optional(left["min"], right["min"], min)
        merged["max"] = _merge_optional(left["max"], right["max"], max)
    else:
        raise MetricError(f"metric {name!r}: unknown kind {kind!r}")
    return merged


class MetricsSnapshot:
    """A frozen ``name -> metric payload`` mapping with exact merge."""

    __slots__ = ("metrics",)

    def __init__(self, metrics: Optional[dict[str, dict]] = None) -> None:
        self.metrics: dict[str, dict] = metrics or {}

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls({})

    def __len__(self) -> int:
        return len(self.metrics)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.metrics == other.metrics

    def __repr__(self) -> str:
        return f"MetricsSnapshot({len(self.metrics)} metrics)"

    # -- merging -------------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """The exact union of two snapshots; neither input is mutated."""
        merged: dict[str, dict] = {
            name: dict(payload) for name, payload in self.metrics.items()
        }
        for name, payload in other.metrics.items():
            if name in merged:
                merged[name] = _merge_metric(name, merged[name], payload)
            else:
                merged[name] = dict(payload)
        return MetricsSnapshot(merged)

    # -- views ----------------------------------------------------------------
    def without_host(self) -> "MetricsSnapshot":
        """Only the deterministic (``sim``) domain."""
        return MetricsSnapshot(
            {
                name: payload
                for name, payload in self.metrics.items()
                if payload["domain"] != HOST
            }
        )

    def value(self, name: str):
        """The scalar value of a counter or gauge (None when absent)."""
        payload = self.metrics.get(name)
        if payload is None:
            return None
        return payload.get("value", payload.get("values"))

    def histogram_mean(self, name: str) -> Optional[float]:
        payload = self.metrics.get(name)
        if payload is None or payload.get("count", 0) == 0:
            return None
        return payload["sum_fp"] / payload["count"] / FIXED_POINT

    def histogram_quantile(self, name: str, q: float) -> Optional[float]:
        """Upper bucket bound containing the ``q`` quantile (conservative)."""
        payload = self.metrics.get(name)
        if payload is None or payload.get("count", 0) == 0:
            return None
        target = q * payload["count"]
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            if cumulative >= target:
                return bound
        return payload["max"]

    # -- serialization ---------------------------------------------------------
    def to_payload(self, include_host: bool = True) -> dict:
        source = self if include_host else self.without_host()
        return {"schema": SCHEMA_ID, "metrics": source.metrics}

    def to_json(self, include_host: bool = False) -> str:
        """Canonical JSON: byte-identical for equal snapshots.

        ``include_host`` defaults to False so exported files honour the
        determinism contract (host-domain wall clocks vary run to run).
        """
        return (
            json.dumps(
                self.to_payload(include_host=include_host),
                sort_keys=True,
                indent=2,
            )
            + "\n"
        )

    @classmethod
    def from_payload(cls, payload: dict) -> "MetricsSnapshot":
        if payload.get("schema") != SCHEMA_ID:
            raise MetricError(
                f"unsupported metrics schema {payload.get('schema')!r} "
                f"(expected {SCHEMA_ID!r})"
            )
        return cls(dict(payload["metrics"]))

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        return cls.from_payload(json.loads(text))


def merge_snapshots(parts: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold snapshots into one; order never affects the result."""
    merged = MetricsSnapshot.empty()
    for part in parts:
        merged = merged.merge(part)
    return merged
