"""A deterministic, mergeable metrics registry.

The simulator's observability layer has one hard requirement the usual
metrics libraries do not: **shard-merge must be exact**.  A campaign's
shards run in separate processes and their snapshots are folded together
by :mod:`repro.runner`, so every metric kind is chosen to make the merge
associative and commutative with an empty identity:

- *counters* (and labeled counter families) merge by integer addition;
- *gauges* are high-watermarks and merge by ``max`` — a "last value"
  gauge would depend on merge order;
- *histograms* use **fixed buckets chosen at declaration time** (usually
  log-spaced via :func:`log_buckets`), so two snapshots of the same
  histogram always have identical bucket bounds and merging is exact
  elementwise integer addition, never an approximation.  Value sums are
  accumulated in fixed-point integers (:data:`FIXED_POINT` units) because
  float addition is not associative — integer sums are.

Metrics carry a *domain*: ``"sim"`` for facts of the simulated world
(deterministic: byte-identical for any worker count) and ``"host"`` for
wall-clock execution telemetry (per-shard wall times, retry counts),
which is excluded from the determinism contract and, by default, from
exported JSON.  See ``docs/observability.md``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Optional, Sequence, Union

__all__ = [
    "FIXED_POINT",
    "SIM",
    "HOST",
    "MetricError",
    "Counter",
    "LabeledCounter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "NULL_COUNTER",
    "NULL_LABELED_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]

#: Scale for histogram value sums: 1 unit = 1e-6 of the observed value.
#: Observations are rounded to fixed point *per observation*, so sums are
#: integers and merge exactly in any order.
FIXED_POINT = 10**6

#: Metric domains.
SIM = "sim"
HOST = "host"

Number = Union[int, float]


class MetricError(ValueError):
    """Conflicting declaration or invalid metric operation."""


def log_buckets(low: float, high: float, per_decade: int = 4) -> tuple[float, ...]:
    """Log-spaced histogram bucket upper bounds covering ``[low, high]``.

    Bounds are ``10**(i / per_decade)`` for consecutive integers ``i`` —
    a pure function of the arguments, so every process declaring the same
    histogram computes bit-identical bounds.
    """
    if low <= 0 or high <= low:
        raise MetricError(f"need 0 < low < high, got ({low}, {high})")
    if per_decade < 1:
        raise MetricError(f"per_decade must be >= 1, got {per_decade}")
    first = math.floor(math.log10(low) * per_decade)
    last = math.ceil(math.log10(high) * per_decade)
    return tuple(10.0 ** (i / per_decade) for i in range(first, last + 1))


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "domain", "value")
    kind = "counter"

    def __init__(self, name: str, domain: str = SIM) -> None:
        self.name = name
        self.domain = domain
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def payload(self) -> dict:
        return {"kind": self.kind, "domain": self.domain, "value": self.value}


class LabeledCounter:
    """A family of counters keyed by a string label (e.g. per-server)."""

    __slots__ = ("name", "domain", "values")
    kind = "labeled_counter"

    def __init__(self, name: str, domain: str = SIM) -> None:
        self.name = name
        self.domain = domain
        self.values: dict[str, int] = {}

    def inc(self, label: str, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name}: negative increment {amount}")
        self.values[label] = self.values.get(label, 0) + amount

    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "domain": self.domain,
            "values": dict(sorted(self.values.items())),
        }


class Gauge:
    """A high-watermark gauge: records the maximum value ever seen.

    A "current value" gauge cannot merge commutatively across shards, so
    this registry only offers watermarks (cache size peaks, deepest
    recursion, ...).  ``value`` is ``None`` until the first record.
    """

    __slots__ = ("name", "domain", "value")
    kind = "gauge"

    def __init__(self, name: str, domain: str = SIM) -> None:
        self.name = name
        self.domain = domain
        self.value: Optional[Number] = None

    def record(self, value: Number) -> None:
        if self.value is None or value > self.value:
            self.value = value

    def payload(self) -> dict:
        return {"kind": self.kind, "domain": self.domain, "value": self.value}


class Histogram:
    """Fixed-bucket histogram; bounds are upper edges, chosen at declaration.

    ``counts[i]`` tallies observations ``<= bounds[i]`` (and greater than
    ``bounds[i-1]``); ``overflow`` tallies observations above the last
    bound.  ``sum_fp`` accumulates values in :data:`FIXED_POINT` units.
    """

    __slots__ = (
        "name", "domain", "bounds", "counts", "overflow",
        "count", "sum_fp", "min", "max",
    )
    kind = "histogram"

    def __init__(
        self, name: str, bounds: Sequence[float], domain: str = SIM
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise MetricError(f"histogram {name}: needs at least one bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise MetricError(f"histogram {name}: bounds must strictly increase")
        self.name = name
        self.domain = domain
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum_fp = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.count += 1
        self.sum_fp += round(value * FIXED_POINT)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.sum_fp / self.count / FIXED_POINT

    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "domain": self.domain,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.count,
            "sum_fp": self.sum_fp,
            "min": self.min,
            "max": self.max,
        }


class _NullMetric:
    """No-op stand-in wired into hot paths when metrics are disabled."""

    __slots__ = ()

    def inc(self, *args, **kwargs) -> None:
        pass

    def record(self, *args, **kwargs) -> None:
        pass

    def observe(self, *args, **kwargs) -> None:
        pass


NULL_COUNTER = _NullMetric()
NULL_LABELED_COUNTER = NULL_COUNTER
NULL_GAUGE = NULL_COUNTER
NULL_HISTOGRAM = NULL_COUNTER

Metric = Union[Counter, LabeledCounter, Gauge, Histogram]


class MetricsRegistry:
    """Declares and holds the metrics of one process (or one shard).

    Declaring an existing name returns the existing metric when the
    declaration matches (same kind, domain, and bounds) — components that
    share a registry share their counters — and raises
    :class:`MetricError` on any mismatch.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Metric]:
        return iter(self._metrics.values())

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def _declare(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is None:
            self._metrics[metric.name] = metric
            return metric
        if existing.kind != metric.kind or existing.domain != metric.domain:
            raise MetricError(
                f"metric {metric.name!r} redeclared as {metric.kind}/"
                f"{metric.domain}, was {existing.kind}/{existing.domain}"
            )
        if isinstance(metric, Histogram):
            assert isinstance(existing, Histogram)
            if existing.bounds != metric.bounds:
                raise MetricError(
                    f"histogram {metric.name!r} redeclared with different buckets"
                )
        return existing

    def counter(self, name: str, domain: str = SIM) -> Counter:
        return self._declare(Counter(name, domain))  # type: ignore[return-value]

    def labeled_counter(self, name: str, domain: str = SIM) -> LabeledCounter:
        return self._declare(LabeledCounter(name, domain))  # type: ignore[return-value]

    def gauge(self, name: str, domain: str = SIM) -> Gauge:
        return self._declare(Gauge(name, domain))  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Sequence[float], domain: str = SIM
    ) -> Histogram:
        return self._declare(Histogram(name, bounds, domain))  # type: ignore[return-value]

    def snapshot(self) -> "MetricsSnapshot":
        from repro.metrics.snapshot import MetricsSnapshot

        return MetricsSnapshot(
            {name: metric.payload() for name, metric in self._metrics.items()}
        )
