"""Knobs for push-based record updates.

A :class:`PushPolicy` bundles one resolver's subscription behaviour for
:mod:`repro.push`: how often the long-lived session is probed
(``keepalive_interval_s``), how many records it may subscribe to
(``max_subscriptions``), whether a NOTIFY updates the cache in place or
merely invalidates it (``update_in_place``), and the seeded reconnect
backoff schedule (the ``reconnect_*`` knobs feed the fabric's
:class:`~repro.net.transport.BackoffPolicy`).

Like :class:`~repro.predict.policy.PredictPolicy`, the policy is frozen
and round-trips through plain-JSON payloads so campaign fingerprints can
include it without hashing Python object identity — and, like predict,
it only enters a fingerprint when armed, so pre-push run directories
still match.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.net.transport import BackoffPolicy


@dataclass(frozen=True)
class PushPolicy:
    """One resolver's push-subscription configuration."""

    #: Idle-session probe interval; keepalives are how a subscriber
    #: notices a dead session when no NOTIFYs are flowing.
    keepalive_interval_s: float = 30.0
    #: Client-side bound on the subscription table.
    max_subscriptions: int = 1024
    #: NOTIFY handling: ``True`` applies the pushed RRset in place
    #: (freshness with zero refetch); ``False`` force-expires the cached
    #: entry so the next query refetches (weaker, but never trusts
    #: pushed payloads beyond "something changed").
    update_in_place: bool = True
    #: First reconnect wait after a session break; doubles per attempt.
    reconnect_timeout_s: float = 1.0
    #: Attempts after which the backoff wait plateaus (the subscriber
    #: never gives up — it keeps retrying at the plateau).
    reconnect_retries: int = 6
    #: Multiplier applied per reconnect attempt.
    reconnect_factor: float = 2.0
    #: Fractional jitter on reconnect waits, drawn from the subscriber's
    #: own seeded RNG (address-derived, so serial and parallel runs draw
    #: identically).
    reconnect_jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.keepalive_interval_s <= 0:
            raise ValueError(
                f"keepalive_interval_s must be > 0, not {self.keepalive_interval_s}"
            )
        if self.max_subscriptions < 1:
            raise ValueError(
                f"max_subscriptions must be >= 1, not {self.max_subscriptions}"
            )
        # BackoffPolicy re-validates the reconnect knobs; build it once
        # here so a bad policy fails at construction, not first break.
        self.backoff()

    def backoff(self) -> BackoffPolicy:
        """The reconnect schedule as a fabric :class:`BackoffPolicy`."""
        return BackoffPolicy(
            timeout=self.reconnect_timeout_s,
            retries=self.reconnect_retries,
            factor=self.reconnect_factor,
            jitter=self.reconnect_jitter,
        )

    def with_(self, **overrides: object) -> "PushPolicy":
        """A copy with fields replaced (dataclasses.replace shorthand)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    # -- payload round-trip --------------------------------------------------
    def to_payload(self) -> dict:
        """Plain-JSON form, stable across processes (fingerprint-safe)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_payload(cls, payload: dict) -> "PushPolicy":
        known = {field.name for field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown PushPolicy fields: {sorted(unknown)}")
        return cls(**payload)

    def describe(self) -> str:
        """Short label used in experiment outputs."""
        parts = [f"ka{self.keepalive_interval_s:g}s"]
        parts.append("update" if self.update_in_place else "invalidate")
        return "push(" + ",".join(parts) + ")"
