"""Resolver-side push subscriptions.

A :class:`PushClient` rides inside one
:class:`~repro.resolver.recursive.RecursiveResolver` (created when the
policy carries a :class:`~repro.push.policy.PushPolicy`):

- after a successful resolution the resolver calls :meth:`note_answer`;
  if the answering authoritative has a publisher attached, the client
  opens (or reuses) a long-lived :class:`~repro.net.transport.TcpSession`
  and SUBSCRIBEs to the record — the SUBSCRIBE response carries the
  current RRset, which is applied immediately, so subscription doubles
  as reconciliation;
- :meth:`pump` (called from the resolver's own pump, ahead of every
  client answer) drains delivered NOTIFY frames into the cache —
  update-in-place or invalidate per policy — observes each record's
  staleness window (``push.staleness_s``: apply time minus change time),
  sends keepalives on idle sessions, and walks broken sessions through
  a seeded reconnect backoff (the fabric's ``BackoffPolicy``, RNG
  derived from the resolver's address so serial and ``--parallel N``
  runs draw identically);
- a reconnect re-SUBSCRIBEs every key, restoring freshness after the
  outage that broke the session (the DDoS recovery path).

All instruments are declared lazily on first use, so resolvers without
push snapshot byte-identically to pre-push builds.
"""

from __future__ import annotations

import hashlib
import random
from typing import TYPE_CHECKING, Optional

from repro.dns.message import Message, Opcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.metrics.registry import log_buckets
from repro.net.transport import NetworkTimeout, SessionBroken, TcpSession
from repro.push.policy import PushPolicy
from repro.push.publisher import PushKey, PushPublisher

if TYPE_CHECKING:
    from repro.net.topology import Endpoint
    from repro.net.transport import Network
    from repro.resolver.cache import Cache

#: Staleness-window buckets: 10 ms .. ~28 h, two per decade.  Fixed at
#: module level so shard histograms merge exactly.
STALENESS_BUCKETS_S = log_buckets(0.01, 100_000.0, per_decade=2)


def derive_client_seed(address: str) -> int:
    """The reconnect-jitter RNG seed for one subscriber.

    A pure function of the resolver's address (keyed hash, same
    construction as :func:`repro.faults.plan.derive_fault_seed`), so the
    jitter stream survives serial/parallel splits and world rebuilds.
    """
    digest = hashlib.blake2b(
        address.encode("ascii"), digest_size=8, person=b"repro.push"
    ).digest()
    return int.from_bytes(digest, "big")


class _Channel:
    """Client-side state for one authoritative's session."""

    __slots__ = (
        "server_address", "session", "keys", "next_keepalive", "attempt",
        "retry_at",
    )

    def __init__(self, server_address: str, session: TcpSession) -> None:
        self.server_address = server_address
        self.session = session
        #: Ordered set of subscribed keys.
        self.keys: dict[PushKey, None] = {}
        self.next_keepalive = 0.0
        #: Reconnect ladder position; reset on a successful connect.
        self.attempt = 0
        #: Next reconnect try; 0 means "immediately".
        self.retry_at = 0.0


class PushClient:
    """One resolver's subscription sessions and NOTIFY intake."""

    def __init__(
        self,
        endpoint: "Endpoint",
        network: "Network",
        cache: "Cache",
        policy: PushPolicy,
    ) -> None:
        self.endpoint = endpoint
        self.network = network
        self.cache = cache
        self.policy = policy
        self._backoff = policy.backoff()
        self._rng = random.Random(derive_client_seed(endpoint.address))
        self._channels: dict[str, _Channel] = {}
        self.notifications_applied = 0
        self.reconnects = 0

    def __repr__(self) -> str:
        return (
            f"PushClient({self.endpoint.address}, "
            f"{len(self._channels)} sessions, "
            f"{self.subscription_count()} subscriptions)"
        )

    # -- metrics (lazy) -------------------------------------------------------
    def _count(self, name: str) -> None:
        registry = self.network.metrics
        if registry is not None:
            registry.counter(name).inc()

    def _observe_staleness(self, seconds: float) -> None:
        registry = self.network.metrics
        if registry is not None:
            registry.histogram("push.staleness_s", STALENESS_BUCKETS_S).observe(
                seconds
            )

    def _record_sessions(self) -> None:
        registry = self.network.metrics
        if registry is not None:
            alive = sum(
                1 for channel in self._channels.values() if channel.session.alive
            )
            registry.gauge("push.sessions").record(alive)

    # -- introspection --------------------------------------------------------
    def subscription_count(self) -> int:
        return sum(len(channel.keys) for channel in self._channels.values())

    def session_count(self) -> int:
        return len(self._channels)

    def alive_session_count(self) -> int:
        return sum(
            1 for channel in self._channels.values() if channel.session.alive
        )

    def restart(self) -> None:
        """Drop all sessions and subscriptions (resolver restart).

        Subscriptions rebuild organically: the restarted resolver's next
        resolutions re-subscribe via :meth:`note_answer`.
        """
        self._channels.clear()

    # -- subscription intake --------------------------------------------------
    def note_answer(
        self, name: Name, rdtype: RdataType, server_address: str, now: float
    ) -> None:
        """Subscribe to a just-resolved record, if the server can push.

        Called by the resolver after a successful upstream resolution
        with the answering authoritative's address.  No-op when that
        server has no publisher, the key is already subscribed, or the
        client-side subscription table is full.
        """
        publisher = self._publisher(server_address)
        if publisher is None:
            return
        key: PushKey = (name, rdtype)
        channel = self._channels.get(server_address)
        if channel is not None and key in channel.keys:
            return
        if self.subscription_count() >= self.policy.max_subscriptions:
            return
        if channel is None:
            channel = _Channel(
                server_address,
                self.network.open_session(self.endpoint, server_address),
            )
            self._channels[server_address] = channel
        if not channel.session.alive:
            if now < channel.retry_at:
                return
            if not self._connect(channel, now):
                return
        self._subscribe(channel, key, now)

    def _publisher(self, server_address: str) -> Optional[PushPublisher]:
        server = self.network.server_at(server_address)
        if server is None:
            return None
        return getattr(server, "push", None)

    # -- session lifecycle ----------------------------------------------------
    def _connect(self, channel: _Channel, now: float) -> bool:
        try:
            channel.session.connect(now)
        except NetworkTimeout:
            self._schedule_retry(channel, now)
            return False
        channel.attempt = 0
        channel.retry_at = 0.0
        channel.next_keepalive = now + self.policy.keepalive_interval_s
        self._record_sessions()
        return True

    def _schedule_retry(self, channel: _Channel, now: float) -> None:
        rung = min(channel.attempt, self._backoff.retries)
        wait = self._backoff.attempt_wait(rung, self._rng)
        channel.attempt += 1
        channel.retry_at = now + wait

    def _on_break(self, channel: _Channel, now: float) -> None:
        self._count("push.session_breaks")
        self._record_sessions()
        self._schedule_retry(channel, now)

    def _reconnect(self, channel: _Channel, now: float) -> None:
        if not self._connect(channel, now):
            return
        self.reconnects += 1
        self._count("push.reconnects")
        # Re-SUBSCRIBE everything: the responses reconcile the cache
        # (each carries the record's current RRset), which is what bounds
        # post-outage staleness to the reconnect backoff.
        for key in list(channel.keys):
            if not self._subscribe(channel, key, now):
                break

    def _subscribe(self, channel: _Channel, key: PushKey, now: float) -> bool:
        query = Message.make_query(key[0], key[1], recursion_desired=False)
        query.opcode = Opcode.SUBSCRIBE
        try:
            response, elapsed = channel.session.exchange(query, now)
        except SessionBroken:
            self._on_break(channel, now)
            return False
        channel.keys[key] = None
        channel.next_keepalive = now + self.policy.keepalive_interval_s
        rrset = response.answer_rrset()
        if rrset is not None and self.policy.update_in_place:
            self.cache.push_update(rrset, now + elapsed)
        return True

    # -- the pump -------------------------------------------------------------
    def pump(self, now: float) -> int:
        """Run due session maintenance; returns NOTIFYs applied.

        Per channel, in deterministic (insertion) order: reconnect broken
        sessions whose backoff has elapsed, drain delivered NOTIFY frames
        into the cache, then keepalive idle sessions.
        """
        applied = 0
        for channel in self._channels.values():
            if not channel.session.alive:
                if channel.keys and now >= channel.retry_at:
                    self._reconnect(channel, now)
                continue
            applied += self._drain(channel, now)
            if channel.session.alive and now >= channel.next_keepalive:
                try:
                    channel.session.keepalive(now)
                    channel.next_keepalive = (
                        now + self.policy.keepalive_interval_s
                    )
                    self._count("push.keepalives")
                except SessionBroken:
                    self._on_break(channel, now)
        return applied

    def _drain(self, channel: _Channel, now: float) -> int:
        publisher = self._publisher(channel.server_address)
        if publisher is None:
            return 0
        frames, broken_at = publisher.poll(self.endpoint.address, now)
        if broken_at is not None:
            # The server-side half died (a doomed NOTIFY reset it); our
            # session object learns on this poll.
            channel.session.close(now)
            self._on_break(channel, now)
            return 0
        applied = 0
        for frame in frames:
            if frame.rrset is not None and self.policy.update_in_place:
                self.cache.push_update(frame.rrset, now)
            else:
                self.cache.push_invalidate(frame.key[0], frame.key[1], now)
            self._observe_staleness(now - frame.changed_at)
            self.notifications_applied += 1
            applied += 1
        if applied:
            self._count_n("push.applied", applied)
        return applied

    def _count_n(self, name: str, n: int) -> None:
        registry = self.network.metrics
        if registry is not None:
            registry.counter(name).inc(n)
