"""Push-based record updates: pub/sub vs. TTL polling.

The paper's TTL trade-off — freshness versus query volume — exists
because polling is the only update channel plain DNS has.  This package
builds the alternative the paper's discussion gestures at: resolvers
keep a long-lived session to push-capable authoritatives (RFC 8490 DSO
flattened onto the sim's length-framed TCP transport), SUBSCRIBE to the
records they resolve, and receive NOTIFY frames when zones change —
update-in-place or invalidate, per policy.

- :mod:`repro.push.policy` — the frozen :class:`PushPolicy` knob bundle.
- :mod:`repro.push.publisher` — authoritative-side zone change feed with
  coalescing per-subscriber queues and fault-aware fan-out.
- :mod:`repro.push.subscriber` — resolver-side sessions, NOTIFY intake,
  keepalives and seeded reconnect backoff.

``scenario_push_vs_poll`` (:mod:`repro.core.scenarios`) runs the two
models head to head under renumbering and DDoS fault plans.
"""

from repro.push.policy import PushPolicy
from repro.push.publisher import (
    PendingNotify,
    PushKey,
    PushPublisher,
    attach_publisher,
)
from repro.push.subscriber import (
    STALENESS_BUCKETS_S,
    PushClient,
    derive_client_seed,
)

__all__ = [
    "PushPolicy",
    "PushKey",
    "PendingNotify",
    "PushPublisher",
    "attach_publisher",
    "PushClient",
    "derive_client_seed",
    "STALENESS_BUCKETS_S",
]
