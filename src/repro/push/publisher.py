"""Authoritative-side publication: the zone change feed.

A :class:`PushPublisher` attaches to one authoritative service (a
:class:`~repro.server.authoritative.AuthoritativeServer` or an
:class:`~repro.server.anycast.AnycastCluster`) and fans record changes
out to subscribed resolvers:

- SUBSCRIBE/UNSUBSCRIBE frames arrive through the server's normal
  ``handle_query`` path (so they ride the fault injector, the query log
  and the ``auth.queries`` tally like any query); a SUBSCRIBE response
  carries the current RRset, so subscription doubles as reconciliation
  after a reconnect.
- :meth:`publish` is called after a zone mutation (the world applies
  ``record_change`` fault events via :meth:`~repro.dns.zone.Zone.replace`)
  and enqueues one NOTIFY per live subscriber, stamped with a one-way
  delivery time drawn from the fabric's latency model.
- Per-subscriber queues hold **at most one pending frame per record
  key**: a change that lands while an older one is still in flight
  replaces it (counted in ``push.coalesced``) — the subscriber only ever
  needs the newest version.
- Delivery consults the fault injector on the subscriber<->service path
  (the direction fault plans address); a doomed frame resets the
  server-side session, and the subscriber discovers the break on its
  next poll or keepalive and re-subscribes through its seeded backoff.

Determinism: subscriber tables and queues are insertion-ordered dicts,
every RTT draw comes from the fabric's seeded RNG, and all instruments
are declared lazily on first use — a world that never attaches a
publisher snapshots byte-identically to a pre-push build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.dns.message import Message, Opcode, Rcode, Section
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.dns.record import RRset
from repro.net.topology import Endpoint

if TYPE_CHECKING:
    from repro.net.transport import Network

#: A subscription key: one record the subscriber wants pushed.
PushKey = tuple[Name, RdataType]


@dataclass
class PendingNotify:
    """One queued NOTIFY: the newest version of a changed record."""

    key: PushKey
    #: The record's current RRset, or ``None`` for a removal (the
    #: subscriber invalidates instead of updating).
    rrset: Optional[RRset]
    #: When the zone changed — the start of the staleness window.
    changed_at: float
    #: When the frame reaches the subscriber (changed_at + one-way delay).
    deliver_at: float


class _SubscriberState:
    """Server-side per-session state for one subscriber."""

    __slots__ = ("endpoint", "keys", "queue", "broken_at")

    def __init__(self, endpoint: Endpoint) -> None:
        self.endpoint = endpoint
        #: Ordered set of subscribed keys (bounded per session).
        self.keys: dict[PushKey, None] = {}
        #: Coalescing queue: at most one pending frame per key.
        self.queue: dict[PushKey, PendingNotify] = {}
        #: Set when a NOTIFY delivery was doomed: the TCP session is
        #: gone server-side; cleared by the next SUBSCRIBE.
        self.broken_at: Optional[float] = None


class PushPublisher:
    """The zone change feed for one authoritative service."""

    def __init__(
        self,
        server: object,
        network: "Network",
        max_subscribers: int = 4096,
        max_subscriptions_per_session: int = 1024,
    ) -> None:
        """``server`` must expose ``best_zone_for`` and ``endpoint_for``
        (both authoritative flavours do); ``network`` supplies latency,
        faults and the metrics registry."""
        self.server = server
        self.network = network
        self.max_subscribers = max_subscribers
        self.max_subscriptions_per_session = max_subscriptions_per_session
        self.service_address: str = (
            getattr(server, "service_address", None)
            or server.endpoint.address  # type: ignore[attr-defined]
        )
        self._subs: dict[str, _SubscriberState] = {}
        #: Reverse index: key -> ordered set of subscriber addresses.
        self._index: dict[PushKey, dict[str, None]] = {}
        self._last_change: dict[PushKey, float] = {}

    def __repr__(self) -> str:
        return (
            f"PushPublisher({self.service_address}, "
            f"{len(self._subs)} subscribers)"
        )

    # -- metrics (lazy) -------------------------------------------------------
    def _count(self, name: str) -> None:
        registry = self.network.metrics
        if registry is not None:
            registry.counter(name).inc()

    def _record_subscribers(self) -> None:
        registry = self.network.metrics
        if registry is not None:
            registry.gauge("push.subscribers").record(len(self._subs))

    # -- introspection --------------------------------------------------------
    def subscriber_count(self) -> int:
        return len(self._subs)

    def subscription_count(self) -> int:
        return sum(len(state.keys) for state in self._subs.values())

    def last_change(self, name: Name, rdtype: RdataType) -> Optional[float]:
        return self._last_change.get((name, rdtype))

    def reset(self) -> None:
        """Forget all session state (worldcache/baseline reuse)."""
        self._subs.clear()
        self._index.clear()
        self._last_change.clear()

    # -- session frames -------------------------------------------------------
    def handle_session_message(
        self, query: Message, client: Endpoint, now: float
    ) -> Message:
        """Answer one SUBSCRIBE/UNSUBSCRIBE frame (server dispatch)."""
        if query.question is None:
            return query.make_response(rcode=Rcode.FORMERR)
        key: PushKey = (query.question.qname, query.question.qtype)
        if query.opcode is Opcode.SUBSCRIBE:
            return self._subscribe(key, query, client, now)
        if query.opcode is Opcode.UNSUBSCRIBE:
            self._unsubscribe(key, client.address)
            return query.make_response()
        return query.make_response(rcode=Rcode.NOTIMP)

    def _subscribe(
        self, key: PushKey, query: Message, client: Endpoint, now: float
    ) -> Message:
        state = self._subs.get(client.address)
        if state is None:
            if len(self._subs) >= self.max_subscribers:
                self._count("push.refused_subscribers")
                return query.make_response(rcode=Rcode.REFUSED)
            state = _SubscriberState(client)
            self._subs[client.address] = state
            self._record_subscribers()
        if state.broken_at is not None:
            # Re-SUBSCRIBE over a fresh connection: frames queued on the
            # dead one are gone; the response below reconciles state.
            state.broken_at = None
            state.queue.clear()
        if key not in state.keys:
            if len(state.keys) >= self.max_subscriptions_per_session:
                self._count("push.refused_subscriptions")
                return query.make_response(rcode=Rcode.REFUSED)
            state.keys[key] = None
            self._index.setdefault(key, {})[client.address] = None
        self._count("push.subscribes")
        response = query.make_response(authoritative=True)
        rrset = self._current(key)
        if rrset is not None:
            response.add(Section.ANSWER, *rrset.records())
        return response

    def _unsubscribe(self, key: PushKey, address: str) -> None:
        state = self._subs.get(address)
        if state is None:
            return
        state.keys.pop(key, None)
        state.queue.pop(key, None)
        subscribers = self._index.get(key)
        if subscribers is not None:
            subscribers.pop(address, None)
            if not subscribers:
                del self._index[key]
        if not state.keys:
            del self._subs[address]
        self._count("push.unsubscribes")

    def _current(self, key: PushKey) -> Optional[RRset]:
        zone = self.server.best_zone_for(key[0])  # type: ignore[attr-defined]
        if zone is None:
            return None
        return zone.get(key[0], key[1])

    # -- publication ----------------------------------------------------------
    def publish(self, name: Name, rdtype: RdataType, now: float) -> int:
        """Fan one record change out; returns NOTIFYs enqueued.

        Call after mutating the zone (``Zone.replace``/``remove``); the
        current RRset is read back from the zone, so a removal publishes
        an invalidation.  Each live subscriber gets the frame at
        ``now + one-way delay``; a doomed transmission resets that
        subscriber's session instead (TCP died under the fault window).
        """
        key: PushKey = (Name(name), rdtype)
        self._last_change[key] = now
        subscribers = self._index.get(key)
        if not subscribers:
            return 0
        rrset = self._current(key)
        network = self.network
        faults = network.faults
        enqueued = 0
        for address in list(subscribers):
            state = self._subs[address]
            if state.broken_at is not None:
                continue
            lost = network.loss.is_down(self.service_address)
            extra = 0.0
            if not lost and faults is not None:
                # The session path's fate, evaluated in the canonical
                # client->server direction fault plans address.
                lost, extra = faults.transmission_fate(
                    address, self.service_address, now
                )
            site: Optional[Endpoint] = None
            if not lost:
                site = self.server.endpoint_for(  # type: ignore[attr-defined]
                    state.endpoint, network.latency
                )
                if faults is not None:
                    site = faults.pick_site(
                        self.server, self.service_address, state.endpoint,
                        network.latency, site, now,
                    )
                    lost = site is None
            if lost:
                state.broken_at = now
                state.queue.clear()
                self._count("push.session_resets")
                continue
            assert site is not None
            rtt = network.latency.rtt(state.endpoint, site, network._rng) + extra
            if key in state.queue:
                self._count("push.coalesced")
            state.queue[key] = PendingNotify(
                key=key, rrset=rrset, changed_at=now, deliver_at=now + rtt / 2.0
            )
            self._count("push.notifications")
            enqueued += 1
        return enqueued

    # -- delivery -------------------------------------------------------------
    def poll(
        self, address: str, now: float
    ) -> tuple[tuple[PendingNotify, ...], Optional[float]]:
        """Frames delivered to ``address`` by ``now``, plus break status.

        Returns ``(frames, broken_at)``: ``broken_at`` is non-``None``
        when the server-side session is gone (a doomed NOTIFY, or server
        state loss) — the subscriber must reconnect and re-SUBSCRIBE.
        The sim models the server->client half of the TCP connection as
        this pull: on the virtual clock the two are equivalent, and it
        keeps every delivery on the subscriber's own deterministic
        schedule.
        """
        state = self._subs.get(address)
        if state is None:
            return (), now
        if state.broken_at is not None:
            return (), state.broken_at
        due = [
            frame for frame in state.queue.values() if frame.deliver_at <= now
        ]
        for frame in due:
            del state.queue[frame.key]
        return tuple(due), None


def attach_publisher(
    server: object,
    network: "Network",
    max_subscribers: int = 4096,
    max_subscriptions_per_session: int = 1024,
) -> PushPublisher:
    """Build a publisher and hook it into ``server`` as ``server.push``.

    The server's ``handle_query`` dispatches SUBSCRIBE/UNSUBSCRIBE frames
    to it; ``reset_runtime_state`` drops it (scenarios attach per run).
    """
    publisher = PushPublisher(
        server,
        network,
        max_subscribers=max_subscribers,
        max_subscriptions_per_session=max_subscriptions_per_session,
    )
    server.push = publisher  # type: ignore[attr-defined]
    return publisher
