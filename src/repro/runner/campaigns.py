"""Picklable per-shard entry points for the paper's campaigns.

Worker processes cannot ship a live simulated Internet across a pipe, so
each shard *rebuilds* its slice of the campaign from the shard seed: a
fresh world, a fresh probe population covering only the shard's unit
range (probe ids offset by ``shard.start`` so merged ids stay globally
unique), and a fresh measurement.  Everything a shard does is a pure
function of ``(shard, kwargs)`` — the determinism contract of
:mod:`repro.runner.shard` — so any worker, any worker count, and any
resume order produce byte-identical shard outputs.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.runner.shard import Shard

__all__ = [
    "centricity_shard",
    "controlled_shard",
    "crawl_shard",
    "campaign_fingerprint",
]


def campaign_fingerprint(kind: str, **params: Any) -> dict[str, Any]:
    """The JSON-able identity of a campaign, used to guard run dirs."""
    return {"kind": kind, "params": dict(sorted(params.items()))}


# ------------------------------------------------------------- centricity


#: World builders a centricity shard may use, by name (names, not
#: callables, cross the process boundary).
def _world_builders():
    from repro.core.worlds import build_googleco_world, build_uy_world

    return {"uy": build_uy_world, "googleco": build_googleco_world}


def centricity_shard(
    shard: Shard,
    *,
    builder: str,
    world_kwargs: dict[str, Any],
    spec_kwargs: dict[str, Any],
    qtype_name: str,
) -> "ResultSet":
    """Run one shard of an active centricity campaign (§3.2/§3.3).

    Builds the shard's world from ``shard.seed``, attaches a population
    of ``shard.count`` probes whose ids start at ``shard.start``, and
    runs the measurement spec against every vantage point.
    """
    from repro.atlas.measurement import Measurement, MeasurementSpec
    from repro.core.experiment import make_population
    from repro.dns.rdtypes import RdataType

    built = _world_builders()[builder](shard.seed, **world_kwargs)
    world = getattr(built, "world", built)
    population = make_population(
        world, probes=shard.count, seed=shard.seed, probe_id_base=shard.start
    )
    spec = MeasurementSpec(qtype=RdataType[qtype_name], **spec_kwargs)
    return Measurement(
        spec=spec, vantage_points=population.vantage_points(), seed=shard.seed
    ).run()


# ------------------------------------------------------------- controlled TTL


def controlled_shard(
    shard: Shard, *, runs: list[dict[str, Any]]
) -> "ControlledRun":
    """Run one of the §6.2 controlled experiments (one shard per run).

    ``runs[shard.index]`` carries exactly the arguments the serial
    :func:`repro.core.scenarios._run_controlled` receives, so the
    sharded campaign reproduces the serial scenario verbatim.
    """
    from repro.core.scenarios import _run_controlled

    return _run_controlled(**runs[shard.index])


# ------------------------------------------------------------- crawl


def crawl_shard(
    shard: Shard,
    *,
    scale: float,
    seed: int,
    lists: Optional[list[str]],
    timeout: float = 1.0,
) -> dict[str, Any]:
    """Crawl one contiguous slice of the generated list universe.

    The universe is rebuilt from ``(scale, seed, lists)`` — identical in
    every shard — and the shard crawls ``domains[start:stop]``.  Returns
    ``{"result": CrawlResult, "queries": int}`` so the executor's
    progress telemetry can count simulated queries.
    """
    from repro.crawler.crawl import Crawler
    from repro.crawler.toplists import build_crawl_universe

    universe = build_crawl_universe(scale=scale, seed=seed, lists=lists)
    crawler = Crawler(universe, timeout=timeout)
    result = crawler.crawl(universe.domains[shard.start : shard.stop])
    return {"result": result, "queries": crawler.queries_sent}
