"""Picklable per-shard entry points for the paper's campaigns.

Worker processes cannot ship a live simulated Internet across a pipe, so
each shard *rebuilds* its slice of the campaign from the shard seed: a
fresh world, a fresh probe population covering only the shard's unit
range (probe ids offset by ``shard.start`` so merged ids stay globally
unique), and a fresh measurement.  Everything a shard does is a pure
function of ``(shard, kwargs)`` — the determinism contract of
:mod:`repro.runner.shard` — so any worker, any worker count, and any
resume order produce byte-identical shard outputs.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.runner.shard import Shard

__all__ = [
    "centricity_shard",
    "controlled_shard",
    "crawl_shard",
    "ddos_shard",
    "prefetch_shard",
    "campaign_fingerprint",
]


#: Version of the per-shard checkpoint payload layout.  Bumped when the
#: shape of what shard functions return changes (v2: every shard returns
#: ``{"results": ..., "queries": int, "metrics": snapshot payload}``), so
#: run dirs written by an older layout fail loudly instead of merging
#: garbage.
SHARD_PAYLOAD_VERSION = 2


def campaign_fingerprint(kind: str, **params: Any) -> dict[str, Any]:
    """The JSON-able identity of a campaign, used to guard run dirs."""
    return {
        "kind": kind,
        "payload_version": SHARD_PAYLOAD_VERSION,
        "params": dict(sorted(params.items())),
    }


# ------------------------------------------------------------- centricity


#: World builders a centricity shard may use, by name (names, not
#: callables, cross the process boundary).
def _world_builders():
    from repro.core.worlds import build_googleco_world, build_uy_world

    return {"uy": build_uy_world, "googleco": build_googleco_world}


def centricity_shard(
    shard: Shard,
    *,
    builder: str,
    world_kwargs: dict[str, Any],
    spec_kwargs: dict[str, Any],
    qtype_name: str,
    fault_plan: Optional[dict[str, Any]] = None,
    predict: bool = False,
) -> dict[str, Any]:
    """Run one shard of an active centricity campaign (§3.2/§3.3).

    Builds the shard's world from ``shard.seed``, attaches a population
    of ``shard.count`` probes whose ids start at ``shard.start``, and
    runs the measurement spec against every vantage point.  Returns
    ``{"results": ResultSet, "queries": int, "metrics": payload}`` —
    the shard's sim-domain metrics snapshot rides along so the merged
    campaign observes the whole simulated world exactly.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan` payload) schedules
    the same failures in every shard; the injector RNG is derived from
    the plan seed *and* ``shard.seed``, so per-shard draws are
    independent yet reproducible for any worker count.
    """
    from repro.atlas.measurement import Measurement, MeasurementSpec
    from repro.core.experiment import make_population
    from repro.dns.rdtypes import RdataType
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    built = _world_builders()[builder](shard.seed, **world_kwargs)
    world = getattr(built, "world", built)
    world.network.attach_metrics(registry)
    if fault_plan is not None:
        from repro.faults import FaultInjector, FaultPlan

        world.network.attach_faults(
            FaultInjector(FaultPlan.from_payload(fault_plan), seed=shard.seed)
        )
    population = make_population(
        world, probes=shard.count, seed=shard.seed, probe_id_base=shard.start,
        predict=predict,
    )
    spec = MeasurementSpec(qtype=RdataType[qtype_name], **spec_kwargs)
    results = Measurement(
        spec=spec, vantage_points=population.vantage_points(), seed=shard.seed
    ).run()
    return {
        "results": results,
        "queries": len(results),
        "metrics": registry.snapshot().to_payload(),
    }


# ------------------------------------------------------------- controlled TTL


def controlled_shard(
    shard: Shard, *, runs: list[dict[str, Any]]
) -> dict[str, Any]:
    """Run one of the §6.2 controlled experiments (one shard per run).

    ``runs[shard.index]`` carries exactly the arguments the serial
    :func:`repro.core.scenarios._run_controlled` receives, so the
    sharded campaign reproduces the serial scenario verbatim.
    """
    from repro.core.scenarios import _run_controlled
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    run = _run_controlled(**runs[shard.index], metrics=registry)
    return {
        "results": run,
        "queries": run.client_summary["queries"],
        "metrics": registry.snapshot().to_payload(),
    }


# ------------------------------------------------------------- ddos resilience


def ddos_shard(shard: Shard, *, tiers: list[dict[str, Any]]) -> dict[str, Any]:
    """Run one TTL tier of the §6.1 resilience scenario (one shard per tier).

    ``tiers[shard.index]`` carries exactly the arguments the serial
    :func:`repro.core.scenarios._run_ddos_tier` receives, so the sharded
    campaign reproduces the serial scenario verbatim — including the
    fault schedule, which is part of the tier parameters.
    """
    from repro.core.scenarios import _run_ddos_tier
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    result = _run_ddos_tier(**tiers[shard.index], metrics=registry)
    return {
        "results": result,
        "queries": result.slots + 2,
        "metrics": registry.snapshot().to_payload(),
    }


# ------------------------------------------------------------- prefetch


def prefetch_shard(
    shard: Shard, *, cells: list[dict[str, Any]]
) -> dict[str, Any]:
    """Run one (mode, TTL) cell of the prefetch trade-off (one shard per cell).

    ``cells[shard.index]`` carries exactly the arguments the serial
    :func:`repro.core.scenarios._run_prefetch_cell` receives, so the
    sharded campaign reproduces the serial scenario verbatim — the
    predict machinery runs on the sim clock and stays byte-identical
    for any worker count.
    """
    from repro.core.scenarios import _run_prefetch_cell
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    result = _run_prefetch_cell(**cells[shard.index], metrics=registry)
    return {
        "results": result,
        "queries": result.queries,
        "metrics": registry.snapshot().to_payload(),
    }


# ------------------------------------------------------------- crawl


def crawl_shard(
    shard: Shard,
    *,
    scale: float,
    seed: int,
    lists: Optional[list[str]],
    timeout: float = 1.0,
) -> dict[str, Any]:
    """Crawl one contiguous slice of the generated list universe.

    The universe is rebuilt from ``(scale, seed, lists)`` — identical in
    every shard — and the shard crawls ``domains[start:stop]``.  Returns
    ``{"results": CrawlResult, "queries": int, "metrics": payload}`` so
    the executor's progress telemetry can count simulated queries and
    the merged campaign carries an exact metrics snapshot.
    """
    from repro.crawler.crawl import Crawler
    from repro.crawler.toplists import build_crawl_universe
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    universe = build_crawl_universe(scale=scale, seed=seed, lists=lists)
    universe.network.attach_metrics(registry)
    crawler = Crawler(universe, timeout=timeout)
    result = crawler.crawl(universe.domains[shard.start : shard.stop])
    return {
        "results": result,
        "queries": crawler.queries_sent,
        "metrics": registry.snapshot().to_payload(),
    }
