"""Picklable per-shard entry points for the paper's campaigns.

Worker processes cannot ship a live simulated Internet across a pipe, so
each shard *derives* its slice of the campaign from the shard seed: a
world leased from the per-process :mod:`repro.runner.worldcache` (built
once per worker, then reset to the shard seed instead of reconstructed),
a fresh probe population covering only the shard's unit range (probe ids
offset by ``shard.start`` so merged ids stay globally unique), and a
fresh measurement.  Everything a shard does is a pure function of
``(shard, kwargs)`` — the determinism contract of
:mod:`repro.runner.shard` — so any worker, any worker count, and any
resume order produce byte-identical shard outputs.  Seeded world reset
is exactly equivalent to a rebuild because world *structure* never
depends on the seed (asserted by the worldcache tests).

Shard return values are :func:`repro.runner.codec.encode_shard_payload`
envelopes; the scenario layer decodes them after the executor returns.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.runner.codec import PAYLOAD_VERSION as SHARD_PAYLOAD_VERSION
from repro.runner.codec import encode_shard_payload
from repro.runner.shard import Shard

__all__ = [
    "centricity_shard",
    "controlled_shard",
    "crawl_shard",
    "ddos_shard",
    "ecs_shard",
    "prefetch_shard",
    "push_shard",
    "campaign_fingerprint",
    "SHARD_PAYLOAD_VERSION",
]


def campaign_fingerprint(kind: str, **params: Any) -> dict[str, Any]:
    """The JSON-able identity of a campaign, used to guard run dirs."""
    return {
        "kind": kind,
        "payload_version": SHARD_PAYLOAD_VERSION,
        "params": dict(sorted(params.items())),
    }


# ------------------------------------------------------------- centricity


#: World builders a centricity shard may use, by name (names, not
#: callables, cross the process boundary).
def _world_builders():
    from repro.core.worlds import build_googleco_world, build_uy_world

    return {"uy": build_uy_world, "googleco": build_googleco_world}


def centricity_shard(
    shard: Shard,
    *,
    builder: str,
    world_kwargs: dict[str, Any],
    spec_kwargs: dict[str, Any],
    qtype_name: str,
    fault_plan: Optional[dict[str, Any]] = None,
    predict: bool = False,
    snapshot: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Run one shard of an active centricity campaign (§3.2/§3.3).

    Leases the shard's world from the per-process
    :mod:`repro.runner.worldcache` (reset to ``shard.seed`` rather than
    rebuilt), attaches a population of ``shard.count`` probes whose ids
    start at ``shard.start``, and runs the measurement spec against
    every vantage point.  Returns a
    :func:`repro.runner.codec.encode_shard_payload` envelope — the
    shard's sim-domain metrics snapshot rides along so the merged
    campaign observes the whole simulated world exactly.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan` payload) schedules
    the same failures in every shard; the injector RNG is derived from
    the plan seed *and* ``shard.seed``, so per-shard draws are
    independent yet reproducible for any worker count.

    ``snapshot`` configures mid-shard world-snapshot/resume (not part
    of the campaign fingerprint — it changes *when* state hits disk,
    never the results)::

        {"run_dir": path, "fingerprint": dict, "every": int,
         "crash_after": int | None, "crash_hard": bool}

    With ``every > 0`` the measurement kernel checkpoints the whole
    world-level campaign state (measurement + run state + metrics
    registry, one pickled graph) every ``every`` queries.  If a
    snapshot exists when the shard starts, the run resumes from it —
    worldcache bypassed, the pickled world already carries the exact
    mid-run RNG/cache/fault state.  ``crash_after``/``crash_hard`` are
    test hooks: after the first snapshot at or past that query count a
    fresh (non-resumed) run raises (or ``os._exit(2)`` when hard,
    killing the pool worker) so the resume path can be exercised.
    """
    from repro.atlas.measurement import Measurement, MeasurementSpec
    from repro.core.experiment import make_population
    from repro.dns.rdtypes import RdataType
    from repro.metrics.registry import MetricsRegistry
    from repro.runner import worldcache

    config = snapshot or {}
    every = int(config.get("every") or 0)
    store = None
    if config.get("run_dir") is not None:
        from repro.runner.checkpoint import CheckpointStore

        store = CheckpointStore(config["run_dir"], config["fingerprint"])

    measurement = None
    state = None
    registry = None
    if store is not None:
        snap = store.load_world_snapshot(shard.index)
        if snap is not None:
            measurement = snap["measurement"]
            state = snap["state"]
            registry = snap["registry"]
    resumed = measurement is not None
    if not resumed:
        registry = MetricsRegistry()
        built = worldcache.lease(
            worldcache.cache_key(builder, world_kwargs),
            lambda: _world_builders()[builder](shard.seed, **world_kwargs),
            seed=shard.seed,
        )
        world = getattr(built, "world", built)
        world.network.attach_metrics(registry)
        if fault_plan is not None:
            from repro.faults import FaultInjector, FaultPlan

            world.network.attach_faults(
                FaultInjector(FaultPlan.from_payload(fault_plan), seed=shard.seed)
            )
        population = make_population(
            world, probes=shard.count, seed=shard.seed, probe_id_base=shard.start,
            predict=predict,
        )
        spec = MeasurementSpec(qtype=RdataType[qtype_name], **spec_kwargs)
        measurement = Measurement(
            spec=spec, vantage_points=population.vantage_points(), seed=shard.seed
        )

    checkpoint_cb = None
    if store is not None and every > 0:
        crash_after = config.get("crash_after")
        crash_hard = bool(config.get("crash_hard"))

        def checkpoint_cb(run_state):
            store.save_world_snapshot(
                shard.index,
                {
                    "measurement": measurement,
                    "state": run_state,
                    "registry": registry,
                },
            )
            if crash_after is not None and not resumed and run_state.position >= crash_after:
                if crash_hard:
                    import os

                    os._exit(2)
                raise RuntimeError(
                    f"injected crash after {run_state.position} queries (test hook)"
                )

    results = measurement.run(
        resume=state, checkpoint_every=every, checkpoint=checkpoint_cb
    )
    if store is not None:
        # The shard is complete: its mid-run snapshot is obsolete (and
        # the executor is about to spill the final payload anyway).
        store.discard_world_snapshot(shard.index)
    return encode_shard_payload(
        results=results,
        queries=len(results),
        metrics=registry.snapshot().to_payload(),
    )


# ------------------------------------------------------------- controlled TTL


def controlled_shard(
    shard: Shard, *, runs: list[dict[str, Any]]
) -> dict[str, Any]:
    """Run one of the §6.2 controlled experiments (one shard per run).

    ``runs[shard.index]`` carries exactly the arguments the serial
    :func:`repro.core.scenarios._run_controlled` receives, so the
    sharded campaign reproduces the serial scenario verbatim.
    """
    from repro.core.scenarios import _run_controlled
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    run = _run_controlled(**runs[shard.index], metrics=registry)
    return encode_shard_payload(
        results=run,
        queries=run.client_summary["queries"],
        metrics=registry.snapshot().to_payload(),
    )


# ------------------------------------------------------------- ddos resilience


def ddos_shard(shard: Shard, *, tiers: list[dict[str, Any]]) -> dict[str, Any]:
    """Run one TTL tier of the §6.1 resilience scenario (one shard per tier).

    ``tiers[shard.index]`` carries exactly the arguments the serial
    :func:`repro.core.scenarios._run_ddos_tier` receives, so the sharded
    campaign reproduces the serial scenario verbatim — including the
    fault schedule, which is part of the tier parameters.
    """
    from repro.core.scenarios import _run_ddos_tier
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    result = _run_ddos_tier(**tiers[shard.index], metrics=registry)
    return encode_shard_payload(
        results=result,
        queries=result.slots + 2,
        metrics=registry.snapshot().to_payload(),
    )


# ------------------------------------------------------------- prefetch


def prefetch_shard(
    shard: Shard, *, cells: list[dict[str, Any]]
) -> dict[str, Any]:
    """Run one (mode, TTL) cell of the prefetch trade-off (one shard per cell).

    ``cells[shard.index]`` carries exactly the arguments the serial
    :func:`repro.core.scenarios._run_prefetch_cell` receives, so the
    sharded campaign reproduces the serial scenario verbatim — the
    predict machinery runs on the sim clock and stays byte-identical
    for any worker count.
    """
    from repro.core.scenarios import _run_prefetch_cell
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    result = _run_prefetch_cell(**cells[shard.index], metrics=registry)
    return encode_shard_payload(
        results=result,
        queries=result.queries,
        metrics=registry.snapshot().to_payload(),
    )


# ------------------------------------------------------------- ecs-cdn


def ecs_shard(
    shard: Shard, *, cells: list[dict[str, Any]]
) -> dict[str, Any]:
    """Run one (mode, TTL) cell of the ECS/CDN matrix (one shard per cell).

    ``cells[shard.index]`` carries exactly the arguments the serial
    :func:`repro.core.scenarios._run_ecs_cell` receives, so the sharded
    campaign reproduces the serial scenario verbatim — subnet-scoped
    cache metrics included.
    """
    from repro.core.scenarios import _run_ecs_cell
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    result = _run_ecs_cell(**cells[shard.index], metrics=registry)
    return encode_shard_payload(
        results=result,
        queries=result.queries,
        metrics=registry.snapshot().to_payload(),
    )


# ------------------------------------------------------------- push-vs-poll


def push_shard(
    shard: Shard, *, cells: list[dict[str, Any]]
) -> dict[str, Any]:
    """Run one (plan, mode, TTL) cell of the push-vs-poll matrix.

    ``cells[shard.index]`` carries exactly the arguments the serial
    :func:`repro.core.scenarios._run_push_cell` receives, so the sharded
    campaign reproduces the serial scenario verbatim — push session and
    staleness metrics included.
    """
    from repro.core.scenarios import _run_push_cell
    from repro.metrics.registry import MetricsRegistry

    registry = MetricsRegistry()
    result = _run_push_cell(**cells[shard.index], metrics=registry)
    return encode_shard_payload(
        results=result,
        queries=result.probes,
        metrics=registry.snapshot().to_payload(),
    )


# ------------------------------------------------------------- crawl


def crawl_shard(
    shard: Shard,
    *,
    scale: float,
    seed: int,
    lists: Optional[list[str]],
    timeout: float = 1.0,
) -> dict[str, Any]:
    """Crawl one contiguous slice of the generated list universe.

    The universe — identical in every shard — is leased from the
    per-process :mod:`repro.runner.worldcache` (built once per worker
    from ``(scale, seed, lists)``, reset between shards) and the shard
    crawls ``domains[start:stop]``.  Returns a codec envelope so the
    executor's progress telemetry can count simulated queries and the
    merged campaign carries an exact metrics snapshot.
    """
    from repro.crawler.crawl import Crawler
    from repro.metrics.registry import MetricsRegistry
    from repro.runner import worldcache

    def build():
        from repro.crawler.toplists import build_crawl_universe

        return build_crawl_universe(scale=scale, seed=seed, lists=lists)

    registry = MetricsRegistry()
    universe = worldcache.lease(
        worldcache.cache_key(
            "crawl_universe", {"scale": scale, "seed": seed, "lists": lists}
        ),
        build,
        seed=seed,
    )
    universe.network.attach_metrics(registry)
    crawler = Crawler(universe, timeout=timeout)
    result = crawler.crawl(universe.domains[shard.start : shard.stop])
    return encode_shard_payload(
        results=result,
        queries=crawler.queries_sent,
        metrics=registry.snapshot().to_payload(),
    )
