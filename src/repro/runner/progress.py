"""Structured progress telemetry for sharded campaign runs.

The executor reports shard lifecycle transitions to a
:class:`ProgressTracker`; the tracker turns them into immutable
:class:`ProgressEvent` records (shards done/total, simulated queries,
queries/sec, wall time) and hands each one to an optional callback.  The
CLI renders events with :func:`render_event`; benches consume the event
stream directly (``tracker.events``) to report throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["ProgressEvent", "ProgressTracker", "render_event"]


@dataclass(frozen=True)
class ProgressEvent:
    """One point-in-time snapshot of a running campaign."""

    campaign: str
    #: "start", "shard-done", "shard-retry", "shard-failed", or "done".
    status: str
    shards_done: int
    shards_total: int
    #: Simulated queries accumulated so far (0 when shards don't report).
    queries: int
    #: Wall-clock seconds since the tracker started.
    elapsed: float
    #: Index of the shard this event is about (-1 for campaign-level events).
    shard_index: int = -1
    #: Attempt number for retry/failure events (1-based).
    attempt: int = 0
    #: True when the shard's result was loaded from a checkpoint.
    cached: bool = False
    #: Queries restored from checkpoints (subset of ``queries``).  These
    #: cost no wall time this run, so throughput excludes them — a
    #: resumed campaign must not report inflated q/s.
    cached_queries: int = 0

    @property
    def queries_per_second(self) -> float:
        """Fresh-query throughput over the wall clock so far.

        Checkpoint-restored queries are excluded: they were computed in
        an earlier run, and dividing them by this run's near-zero elapsed
        time would inflate the rate arbitrarily.
        """
        fresh = self.queries - self.cached_queries
        return fresh / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def fraction_done(self) -> float:
        return self.shards_done / self.shards_total if self.shards_total else 1.0


@dataclass
class ProgressTracker:
    """Accumulates shard completions into a stream of progress events."""

    campaign: str = "campaign"
    shards_total: int = 0
    callback: Optional[Callable[[ProgressEvent], None]] = None
    #: Injectable monotonic clock (tests pin it for stable output).
    clock: Callable[[], float] = time.monotonic
    events: list[ProgressEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._started_at = self.clock()
        self._shards_done = 0
        self._queries = 0
        self._cached_queries = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> ProgressEvent:
        return self._emit("start")

    def shard_done(
        self, shard_index: int, queries: int = 0, cached: bool = False
    ) -> ProgressEvent:
        self._shards_done += 1
        self._queries += queries
        if cached:
            self._cached_queries += queries
        return self._emit("shard-done", shard_index=shard_index, cached=cached)

    def shard_retry(self, shard_index: int, attempt: int) -> ProgressEvent:
        return self._emit("shard-retry", shard_index=shard_index, attempt=attempt)

    def shard_failed(self, shard_index: int, attempt: int) -> ProgressEvent:
        return self._emit("shard-failed", shard_index=shard_index, attempt=attempt)

    def done(self) -> ProgressEvent:
        return self._emit("done")

    # -- accessors -----------------------------------------------------------
    @property
    def queries(self) -> int:
        return self._queries

    @property
    def cached_queries(self) -> int:
        return self._cached_queries

    @property
    def elapsed(self) -> float:
        return self.clock() - self._started_at

    def _emit(
        self,
        status: str,
        shard_index: int = -1,
        attempt: int = 0,
        cached: bool = False,
    ) -> ProgressEvent:
        event = ProgressEvent(
            campaign=self.campaign,
            status=status,
            shards_done=self._shards_done,
            shards_total=self.shards_total,
            queries=self._queries,
            elapsed=self.elapsed,
            shard_index=shard_index,
            attempt=attempt,
            cached=cached,
            cached_queries=self._cached_queries,
        )
        self.events.append(event)
        if self.callback is not None:
            self.callback(event)
        return event


def render_event(event: ProgressEvent) -> str:
    """One-line human rendering, e.g. for the CLI's stderr ticker."""
    if event.status == "start":
        return f"[{event.campaign}] starting: {event.shards_total} shards"
    if event.status == "shard-retry":
        return (
            f"[{event.campaign}] shard {event.shard_index} failed "
            f"(attempt {event.attempt}), retrying"
        )
    if event.status == "shard-failed":
        return (
            f"[{event.campaign}] shard {event.shard_index} failed permanently "
            f"after {event.attempt} attempts"
        )
    tag = " (checkpoint)" if event.cached else ""
    cached_note = (
        f" ({event.cached_queries:,} from checkpoints)"
        if event.cached_queries
        else ""
    )
    line = (
        f"[{event.campaign}] {event.shards_done}/{event.shards_total} shards"
        f" · {event.queries:,} queries{cached_note}"
        f" · {event.queries_per_second:,.0f} q/s"
        f" · {event.elapsed:.1f}s"
    )
    if event.status == "shard-done":
        return f"{line}{tag}"
    return f"{line} · done"
