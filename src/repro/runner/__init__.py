"""Sharded parallel campaign execution.

The paper's experiments are embarrassingly parallel loops over
independent vantage points, domains, or clients.  This package turns
any of them into a *campaign*: a deterministic shard plan
(:mod:`repro.runner.shard`), an execution engine with retries,
timeouts, and a serial fallback (:mod:`repro.runner.executor`),
order-independent merging with invariant checks
(:mod:`repro.runner.merge`), completed-shard checkpointing
(:mod:`repro.runner.checkpoint`), and structured progress telemetry
(:mod:`repro.runner.progress`).

The load-bearing guarantee: a campaign run with N workers produces
results identical to the serial (``parallelism=1``) run of the same
shard plan, and a run killed mid-campaign resumes from its run
directory without recomputing completed shards.
"""

from repro.runner.checkpoint import CheckpointMismatch, CheckpointStore
from repro.runner.executor import RetryPolicy, ShardError, ShardExecutor, ShardOutcome
from repro.runner.merge import (
    MergeError,
    merge_counts,
    merge_crawl_results,
    merge_result_sets,
)
from repro.runner.progress import ProgressEvent, ProgressTracker, render_event
from repro.runner.shard import Shard, derive_seed, plan_shards

__all__ = [
    "CheckpointMismatch",
    "CheckpointStore",
    "MergeError",
    "ProgressEvent",
    "ProgressTracker",
    "RetryPolicy",
    "Shard",
    "ShardError",
    "ShardExecutor",
    "ShardOutcome",
    "derive_seed",
    "merge_counts",
    "merge_crawl_results",
    "merge_result_sets",
    "plan_shards",
    "render_event",
]
