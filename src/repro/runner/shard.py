"""Deterministic partitioning of a campaign's unit of work.

A *campaign* is any embarrassingly parallel loop over independent units —
vantage points for an Atlas-style measurement, domains for a crawl,
clients for a controlled-TTL run.  :func:`plan_shards` cuts the unit
range into contiguous shards; each shard carries a seed derived stably
from ``(campaign_seed, shard_index)``, so a shard's simulated world and
RNG draws are a pure function of the plan and never of the worker that
happens to execute it.  That is the determinism contract the whole
runner rests on: the same plan produces the same merged results whether
shards run serially, on 4 workers, or resumed from checkpoints.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["DEFAULT_SHARDS", "Shard", "derive_seed", "plan_shards"]

#: Default shard count when a campaign does not pin one.  A fixed
#: constant — deliberately *not* derived from the worker count — because
#: the shard plan determines every shard's seed and therefore the merged
#: results; tying it to ``parallelism`` would make scientific output
#: vary with the machine the campaign happened to run on.
DEFAULT_SHARDS = 4

#: Domain-separation tag so shard seeds never collide with other uses of
#: the campaign seed (population seeds, jitter seeds, ...).
_SEED_SALT = "repro.runner.shard"


def derive_seed(campaign_seed: int, shard_index: int, salt: str = _SEED_SALT) -> int:
    """A stable 63-bit seed for one shard of one campaign.

    Hash-based (not ``campaign_seed + shard_index``) so that campaigns
    with nearby seeds never share shard seeds, and independent of
    Python's per-process hash randomization.
    """
    material = f"{salt}:{campaign_seed}:{shard_index}".encode("ascii")
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[start, start + count)`` of a campaign."""

    index: int
    seed: int
    start: int
    count: int

    @property
    def stop(self) -> int:
        return self.start + self.count

    def unit_range(self) -> range:
        return range(self.start, self.stop)


def plan_shards(total_units: int, num_shards: int, campaign_seed: int) -> list[Shard]:
    """Split ``total_units`` into ``num_shards`` contiguous shards.

    Shard sizes differ by at most one (the first ``total % num`` shards
    take the extra unit).  Shards covering zero units are dropped, so a
    4-shard plan over 3 units yields 3 shards.  The plan is a pure
    function of its arguments — worker count plays no part.
    """
    if total_units < 0:
        raise ValueError(f"total_units must be >= 0, got {total_units}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    base, extra = divmod(total_units, num_shards)
    shards: list[Shard] = []
    start = 0
    for index in range(num_shards):
        count = base + (1 if index < extra else 0)
        if count == 0:
            continue
        shards.append(
            Shard(
                index=index,
                seed=derive_seed(campaign_seed, index),
                start=start,
                count=count,
            )
        )
        start += count
    return shards
